// skimjoin_cli — the query::Shell on stdin/stdout (or a script file).
//
//   build/tools/skimjoin_cli                 # interactive / piped stdin
//   build/tools/skimjoin_cli script.sj       # run a command script
//
// Exit status is the number of failed commands (0 = clean run). Run the
// `help` command for the command list; see src/query/shell.h for full
// syntax.

#include <fstream>
#include <iostream>

#include "query/shell.h"

int main(int argc, char** argv) {
  skimjoin::query::Shell shell;
  if (argc > 2) {
    std::cerr << "usage: " << argv[0] << " [script-file]\n";
    return 2;
  }
  if (argc == 2) {
    std::ifstream script(argv[1]);
    if (!script) {
      std::cerr << "error: cannot open script file " << argv[1] << "\n";
      return 2;
    }
    return shell.Run(script, std::cout);
  }
  return shell.Run(std::cin, std::cout);
}
