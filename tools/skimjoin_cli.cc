// skimjoin_cli — the query::Shell on stdin/stdout (or a script file).
//
//   build/tools/skimjoin_cli                 # interactive / piped stdin
//   build/tools/skimjoin_cli script.sj       # run a command script
//
// Observability flags (any combination, before or after the script path):
//   --explain                  every `answer` on a join/self-join query also
//                              renders the estimate-provenance table
//                              (per-copy estimates, confidence interval,
//                              a-priori bound, skim diagnostics) — the same
//                              output as the shell's `explain <q>` command
//   --metrics_out=<file>       write a metrics snapshot to <file> at exit
//   --metrics_format=json|prom snapshot format (default json)
//   --metrics_interval=<ms>    also rewrite the snapshot every <ms>
//                              milliseconds while running (atomic rename —
//                              readers always see a complete file)
//   --trace_out=<file>         record phase spans (ingest batches, replica
//                              merges, SKIMDENSE, estimates, checkpoints)
//                              and write Chrome trace JSON to <file> at
//                              exit; open in chrome://tracing or Perfetto.
//                              With --coordinator, tracing is enabled on
//                              every worker too and the file holds the
//                              MERGED fleet trace (one clock-aligned
//                              process track per shard)
//   --fleet_metrics_out=<file> (with --coordinator) write the merged fleet
//                              snapshot — coordinator series plus every
//                              shard's, labeled shard="<k>" — to <file> at
//                              exit, in --metrics_format
//   --fleet_metrics_interval=<ms>
//                              also rewrite the fleet snapshot (and scrape
//                              worker events into the coordinator log)
//                              every <ms> milliseconds while running
//   --health_out=<file>        write a health report to <file> at exit:
//                              stream profiles, synopsis probes, and the
//                              doctor's findings (the shell's `health`
//                              output). With --coordinator, the file holds
//                              the fleet findings, one line per finding,
//                              labeled {shard="<k>"}
//
// Distributed mode (DESIGN.md §12):
//   --worker=<socket>          run as a worker shard serving the dist wire
//                              protocol on a Unix socket (no shell); prints
//                              one "worker <shard> ready ..." line when the
//                              socket is bound, then serves until SIGTERM
//   --shard=<name>             this worker's shard name (default "shard")
//   --worker_checkpoint=<path> worker checkpoint file; restored at startup
//                              when present (incarnation bumps)
//   --checkpoint_every=<n>     auto-checkpoint after every n update batches
//                              (0 = only on coordinator request)
//   --coordinator=<name=socket,...>
//                              run the shell against a fleet of workers via
//                              a dist::Coordinator instead of the local
//                              engine
//
// Exit status is the number of failed commands (0 = clean run), or 2 for
// usage errors. Run the `help` command for the command list; see
// src/query/shell.h for full syntax.

#include <csignal>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "dist/worker.h"
#include "query/shell.h"
#include "util/durable_file.h"
#include "util/metrics.h"

namespace {

struct Options {
  std::string script_path;  // empty: read stdin
  bool explain = false;
  std::string metrics_out;
  skimjoin::metrics::PeriodicSnapshotWriter::Format metrics_format =
      skimjoin::metrics::PeriodicSnapshotWriter::Format::kJson;
  int64_t metrics_interval_ms = 0;  // 0: one snapshot at exit only
  std::string trace_out;
  std::string health_out;
  std::string fleet_metrics_out;
  int64_t fleet_metrics_interval_ms = 0;  // 0: one snapshot at exit only
  // Distributed mode.
  std::string worker_socket;  // non-empty: run as a worker, not a shell
  std::string shard_name = "shard";
  std::string worker_checkpoint;
  int64_t checkpoint_every = 0;
  std::string coordinator_spec;  // "name=socket,name=socket,..."
};

// Consumes "--name=value"; returns the value if `arg` matches.
std::optional<std::string> FlagValue(const std::string& arg,
                                     const std::string& name) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return std::nullopt;
  return arg.substr(prefix.size());
}

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--explain] [--metrics_out=<file>] "
               "[--metrics_format=json|prom]\n"
               "       [--metrics_interval=<ms>] [--trace_out=<file>] "
               "[--health_out=<file>] [script-file]\n"
               "       [--coordinator=<name=socket,...>] "
               "[--fleet_metrics_out=<file>]\n"
               "       [--fleet_metrics_interval=<ms>]\n"
            << "   or: " << argv0
            << " --worker=<socket> [--shard=<name>] "
               "[--worker_checkpoint=<path>]\n"
               "       [--checkpoint_every=<n>]\n";
  return 2;
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--explain") {
      options->explain = true;
    } else if (auto value = FlagValue(arg, "metrics_out")) {
      options->metrics_out = *value;
    } else if (auto value = FlagValue(arg, "metrics_format")) {
      if (*value == "json") {
        options->metrics_format =
            skimjoin::metrics::PeriodicSnapshotWriter::Format::kJson;
      } else if (*value == "prom") {
        options->metrics_format =
            skimjoin::metrics::PeriodicSnapshotWriter::Format::kPrometheus;
      } else {
        std::cerr << "error: --metrics_format must be json or prom\n";
        return false;
      }
    } else if (auto value = FlagValue(arg, "metrics_interval")) {
      char* end = nullptr;
      options->metrics_interval_ms = std::strtoll(value->c_str(), &end, 10);
      if (end == value->c_str() || *end != '\0' ||
          options->metrics_interval_ms < 0) {
        std::cerr << "error: --metrics_interval wants milliseconds >= 0\n";
        return false;
      }
    } else if (auto value = FlagValue(arg, "trace_out")) {
      options->trace_out = *value;
    } else if (auto value = FlagValue(arg, "health_out")) {
      options->health_out = *value;
    } else if (auto value = FlagValue(arg, "fleet_metrics_out")) {
      options->fleet_metrics_out = *value;
    } else if (auto value = FlagValue(arg, "fleet_metrics_interval")) {
      char* end = nullptr;
      options->fleet_metrics_interval_ms =
          std::strtoll(value->c_str(), &end, 10);
      if (end == value->c_str() || *end != '\0' ||
          options->fleet_metrics_interval_ms < 0) {
        std::cerr << "error: --fleet_metrics_interval wants milliseconds "
                     ">= 0\n";
        return false;
      }
    } else if (auto value = FlagValue(arg, "worker")) {
      options->worker_socket = *value;
    } else if (auto value = FlagValue(arg, "shard")) {
      options->shard_name = *value;
    } else if (auto value = FlagValue(arg, "worker_checkpoint")) {
      options->worker_checkpoint = *value;
    } else if (auto value = FlagValue(arg, "checkpoint_every")) {
      char* end = nullptr;
      options->checkpoint_every = std::strtoll(value->c_str(), &end, 10);
      if (end == value->c_str() || *end != '\0' ||
          options->checkpoint_every < 0) {
        std::cerr << "error: --checkpoint_every wants a batch count >= 0\n";
        return false;
      }
    } else if (auto value = FlagValue(arg, "coordinator")) {
      options->coordinator_spec = *value;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown flag " << arg << "\n";
      return false;
    } else if (options->script_path.empty()) {
      options->script_path = arg;
    } else {
      std::cerr << "error: more than one script file\n";
      return false;
    }
  }
  return true;
}

// "name=socket,name=socket,..." → shard addresses; nullopt on bad syntax.
std::optional<std::vector<skimjoin::dist::ShardAddress>> ParseShardSpec(
    const std::string& spec) {
  std::vector<skimjoin::dist::ShardAddress> shards;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size()) {
      return std::nullopt;
    }
    shards.push_back({entry.substr(0, eq), entry.substr(eq + 1)});
    start = end + 1;
  }
  if (shards.empty()) return std::nullopt;
  return shards;
}

skimjoin::dist::Worker* g_worker = nullptr;

void HandleStopSignal(int) {
  if (g_worker != nullptr) g_worker->RequestStop();
}

int RunWorker(const Options& options) {
  skimjoin::dist::WorkerOptions worker_options;
  worker_options.socket_path = options.worker_socket;
  worker_options.shard_name = options.shard_name;
  worker_options.checkpoint_path = options.worker_checkpoint;
  worker_options.checkpoint_every_batches =
      static_cast<uint64_t>(options.checkpoint_every);
  skimjoin::StatusOr<std::unique_ptr<skimjoin::dist::Worker>> worker =
      skimjoin::dist::Worker::Create(worker_options);
  if (!worker.ok()) {
    std::cerr << "error: worker: " << worker.status().ToString() << "\n";
    return 2;
  }
  g_worker = worker->get();
  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);
  // The readiness line launchers wait for: printed only once the socket is
  // bound and (if present) the checkpoint restored.
  std::cout << "worker " << (*worker)->shard_name() << " ready socket="
            << options.worker_socket
            << " incarnation=" << (*worker)->incarnation()
            << " epoch=" << (*worker)->epoch() << std::endl;
  const skimjoin::Status status = (*worker)->Serve();
  g_worker = nullptr;
  if (!status.ok()) {
    std::cerr << "error: worker: " << status.ToString() << "\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) return Usage(argv[0]);

  if (!options.worker_socket.empty()) {
    if (!options.coordinator_spec.empty() || !options.script_path.empty()) {
      std::cerr << "error: --worker excludes --coordinator and script files\n";
      return Usage(argv[0]);
    }
    return RunWorker(options);
  }

  skimjoin::query::Shell shell;
  shell.set_always_explain(options.explain);

  std::unique_ptr<skimjoin::dist::Coordinator> coordinator;
  if (!options.coordinator_spec.empty()) {
    auto shards = ParseShardSpec(options.coordinator_spec);
    if (!shards.has_value()) {
      std::cerr << "error: --coordinator wants name=socket[,name=socket...]\n";
      return Usage(argv[0]);
    }
    coordinator = std::make_unique<skimjoin::dist::Coordinator>(
        std::move(*shards), skimjoin::dist::CoordinatorOptions{});
    shell.set_dist_backend(coordinator.get());
  }
  if (!options.fleet_metrics_out.empty() && coordinator == nullptr) {
    std::cerr << "error: --fleet_metrics_out needs --coordinator\n";
    return Usage(argv[0]);
  }

  if (!options.trace_out.empty()) {
    if (coordinator != nullptr) {
      // Fleet-wide: flips every worker's recorder on too; workers that are
      // not up yet miss the toggle and simply contribute no spans.
      (void)coordinator->SetFleetTracing(true);
    } else {
      skimjoin::metrics::TraceRecorder::Global().Enable();
    }
  }

  // The periodic writer snapshots from a background thread, so its source
  // must only touch the registry: Registry::TakeSnapshot is mutex/atomic-
  // protected, but Engine::MetricsSnapshot walks the engine's query
  // containers, which the shell thread mutates — calling it here would be
  // a data race. Gauges (memory footprints, engine counts) are instead
  // refreshed by the shell thread between commands via the post-command
  // hook; the background thread reads the refreshed atomics.
  std::unique_ptr<skimjoin::metrics::PeriodicSnapshotWriter> writer;
  if (!options.metrics_out.empty() && options.metrics_interval_ms > 0) {
    shell.set_post_command_hook(
        [&shell] { shell.engine().RefreshMetricsGauges(); });
    writer = std::make_unique<skimjoin::metrics::PeriodicSnapshotWriter>(
        options.metrics_out, options.metrics_format,
        std::chrono::milliseconds(options.metrics_interval_ms),
        [&shell] { return shell.engine().metrics_registry().TakeSnapshot(); });
  }

  // The fleet writer's source scrapes every worker over RPC — safe from
  // the background thread because the coordinator serializes its whole
  // public surface behind one mutex. Each tick also pulls worker events
  // into the coordinator's log, so `logs --shard <k>` stays fresh between
  // explicit `fleet` commands.
  std::unique_ptr<skimjoin::metrics::PeriodicSnapshotWriter> fleet_writer;
  if (!options.fleet_metrics_out.empty() &&
      options.fleet_metrics_interval_ms > 0) {
    skimjoin::dist::Coordinator* fleet = coordinator.get();
    fleet_writer = std::make_unique<skimjoin::metrics::PeriodicSnapshotWriter>(
        options.fleet_metrics_out, options.metrics_format,
        std::chrono::milliseconds(options.fleet_metrics_interval_ms),
        [fleet] {
          (void)fleet->ScrapeFleetEvents();
          skimjoin::StatusOr<skimjoin::metrics::Snapshot> snapshot =
              fleet->FleetMetricsSnapshot();
          // Unreachable shards already degrade to a coordinator-only
          // snapshot inside FleetMetricsSnapshot; a hard failure here
          // (cannot happen today) degrades the same way.
          return snapshot.ok() ? std::move(*snapshot)
                               : fleet->metrics_registry().TakeSnapshot();
        });
  }

  int failed_commands = 0;
  if (!options.script_path.empty()) {
    std::ifstream script(options.script_path);
    if (!script) {
      std::cerr << "error: cannot open script file " << options.script_path
                << "\n";
      return 2;
    }
    failed_commands = shell.Run(script, std::cout);
  } else {
    failed_commands = shell.Run(std::cin, std::cout);
  }

  int exit_status = failed_commands;
  if (fleet_writer != nullptr) {
    skimjoin::Status status = fleet_writer->Stop();
    if (!status.ok()) {
      std::cerr << "error: fleet metrics snapshot: " << status.message()
                << "\n";
      exit_status = exit_status == 0 ? 2 : exit_status;
    }
  } else if (!options.fleet_metrics_out.empty()) {
    skimjoin::StatusOr<skimjoin::metrics::Snapshot> snapshot =
        coordinator->FleetMetricsSnapshot();
    skimjoin::Status status = snapshot.status();
    if (snapshot.ok()) {
      const std::string rendered =
          options.metrics_format ==
                  skimjoin::metrics::PeriodicSnapshotWriter::Format::kJson
              ? skimjoin::metrics::ToJson(*snapshot)
              : skimjoin::metrics::ToPrometheusText(*snapshot);
      status = skimjoin::util::AtomicWriteFile(options.fleet_metrics_out,
                                               rendered);
    }
    if (!status.ok()) {
      std::cerr << "error: fleet metrics snapshot: " << status.message()
                << "\n";
      exit_status = exit_status == 0 ? 2 : exit_status;
    }
  }
  if (writer != nullptr) {
    // Stop() writes one final snapshot so short runs still leave one.
    skimjoin::Status status = writer->Stop();
    if (!status.ok()) {
      std::cerr << "error: metrics snapshot: " << status.message() << "\n";
      exit_status = exit_status == 0 ? 2 : exit_status;
    }
  } else if (!options.metrics_out.empty()) {
    const skimjoin::metrics::Snapshot snapshot =
        shell.engine().MetricsSnapshot();
    const std::string rendered =
        options.metrics_format ==
                skimjoin::metrics::PeriodicSnapshotWriter::Format::kJson
            ? skimjoin::metrics::ToJson(snapshot)
            : skimjoin::metrics::ToPrometheusText(snapshot);
    skimjoin::Status status =
        skimjoin::util::AtomicWriteFile(options.metrics_out, rendered);
    if (!status.ok()) {
      std::cerr << "error: metrics snapshot: " << status.message() << "\n";
      exit_status = exit_status == 0 ? 2 : exit_status;
    }
  }

  if (!options.trace_out.empty()) {
    std::string trace_json;
    if (coordinator != nullptr) {
      skimjoin::StatusOr<std::string> merged = coordinator->DumpFleetTrace();
      // DumpFleetTrace always merges whatever it could reach (an
      // unreachable shard is just absent), so failure here means the
      // local drain failed too — fall back to it for the error message.
      trace_json = merged.ok()
                       ? std::move(*merged)
                       : skimjoin::metrics::TraceRecorder::Global()
                             .DrainAsChromeTrace();
    } else {
      trace_json =
          skimjoin::metrics::TraceRecorder::Global().DrainAsChromeTrace();
    }
    skimjoin::Status status =
        skimjoin::util::AtomicWriteFile(options.trace_out, trace_json);
    if (!status.ok()) {
      std::cerr << "error: trace: " << status.message() << "\n";
      exit_status = exit_status == 0 ? 2 : exit_status;
    }
  }

  if (!options.health_out.empty()) {
    std::string rendered;
    if (coordinator != nullptr) {
      // Fleet mode: only findings travel the wire, so the file is the
      // doctor's view — one labeled line per finding, unreachable shards
      // included as findings of their own.
      skimjoin::StatusOr<skimjoin::query::HealthReport> fleet =
          coordinator->FleetHealthReport();
      rendered = fleet.ok()
                     ? skimjoin::query::RenderHealthFindings(fleet->findings)
                     : "health report failed: " + fleet.status().ToString() +
                           "\n";
    } else {
      rendered = skimjoin::query::RenderHealthReport(
          shell.engine().HealthReport());
    }
    skimjoin::Status status =
        skimjoin::util::AtomicWriteFile(options.health_out, rendered);
    if (!status.ok()) {
      std::cerr << "error: health report: " << status.message() << "\n";
      exit_status = exit_status == 0 ? 2 : exit_status;
    }
  }

  return exit_status;
}
