#!/usr/bin/env python3
"""Fails when an instrumented benchmark run regresses against a baseline.

Usage:
    check_bench_regression.py BASELINE.json [MORE_BASELINES.json ...] \
        CANDIDATE.json [--threshold 0.10] [--per-benchmark 'GLOB=THRESH' ...]

All inputs are google-benchmark JSON outputs (--benchmark_out=... with
--benchmark_out_format=json). The LAST positional argument is the candidate
run; every earlier one is a baseline file, merged in order (later files
override earlier ones on name collisions), so a job can gate one candidate
against, say, a committed repo baseline plus a job-local overhead baseline
in a single invocation. Benchmarks are matched by name; the comparison
metric is items_per_second when both runs report it (higher is better),
falling back to real_time (lower is better). When a run used
--benchmark_repetitions, only the "median" aggregate rows are compared so a
single noisy repetition cannot fail the gate.

Per-benchmark thresholds: each --per-benchmark takes 'GLOB=THRESHOLD'
(fnmatch glob against the benchmark name; e.g. 'BM_Engine*=0.10' or
'BM_*KernelIngest/7=0.15'). The FIRST matching pattern wins, in the order
given; names matching no pattern use --threshold. This lets one gate hold
hot-path update benchmarks to a tight budget while giving noisier
estimate-latency rows more slack.

Intra-run comparisons: each --compare takes 'BASE=CANDIDATE=THRESHOLD' and
pairs benchmarks WITHIN the candidate run: every row named CANDIDATE (or
CANDIDATE/<args>) is compared against the row named BASE (or BASE/<args>)
from the same file, failing when the candidate is more than THRESHOLD
slower than its in-run baseline. This gates relative overheads that two
benchmarks in one binary measure directly — e.g. the stream-profiler
budget, BM_EngineUpdateBatch vs BM_EngineUpdateBatchNoProfiler — where a
cross-build comparison would confound the result with build-to-build
noise. When only --compare/--floor gates are wanted, a single positional
run (the candidate) is enough; no baseline file is required. If the
candidate file carries individual repetition rows (repetitions without
--benchmark_report_aggregates_only), each side of a --compare pair uses
its best repetition's items_per_second rather than the median: machine
interference can only slow a repetition down, so per-variant peak
throughput is the noise-robust estimator for an in-binary ratio. With
aggregate-only output the pair falls back to the median rows.

Absolute floors: each --floor takes 'GLOB=MIN_ITEMS_PER_SECOND' and fails
any candidate benchmark matching the glob whose items_per_second falls
below the minimum, regardless of what any baseline says. Floors catch the
failure mode relative trajectories cannot: a slow drift ratified into the
baseline run by run. They apply even on a self-seeding first run (a fresh
branch must still clear the absolute bar), and a floor glob that matches no
candidate row is an error — a typo must not silently waive the gate.

Exit status: 0 when every matched benchmark is within its threshold and
above its floor, 1 when any regresses or undershoots, 2 for malformed
input or no overlapping benchmarks.

When a SINGLE baseline is given and its file does not exist, the run is
treated as the first of its kind: the candidate is recorded as the new
baseline and the gate passes. This keeps perf-trajectory jobs green on a
fresh branch instead of failing before any baseline has ever been
committed. (With multiple baselines, a missing file is an error — a merged
gate should never silently self-seed.)

CI uses this to enforce the metrics overhead budget AND the update-kernel
perf trajectory: see .github/workflows/ci.yml, jobs metrics-overhead and
release-bench.
"""

import argparse
import fnmatch
import json
import os
import shutil
import sys


def load_results(path):
    """Returns {benchmark name: json row}, keeping only comparable rows."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"error: cannot read {path}: {error}")
    rows = data.get("benchmarks")
    if not isinstance(rows, list):
        sys.exit(f"error: {path} has no 'benchmarks' array")
    # Advisory only: debug-built numbers are legal inputs (handy for local
    # smoke runs) but must never silently become the perf record — a debug
    # baseline makes every release candidate look faster than it is, and a
    # debug candidate fails gates for the wrong reason. The bench binaries
    # emit 'skimjoin_build_type' (this library's own optimization level);
    # the stock 'library_build_type' describes the google-benchmark library
    # instead, and is only consulted for runs predating the custom field.
    context = data.get("context") or {}
    build_type = context.get("skimjoin_build_type",
                             context.get("library_build_type"))
    if build_type and build_type.lower() != "release":
        print(f"warning: {path} was produced by a "
              f"'{build_type}' build; benchmark numbers from "
              f"non-release builds are not representative — regenerate "
              f"from a Release build before trusting this gate",
              file=sys.stderr)
    results = {}
    # First pass: median aggregate rows, keyed by the underlying run name.
    for row in rows:
        if row.get("aggregate_name") == "median":
            name = row.get("run_name", row.get("name", ""))
            if name:
                results[name] = row
    # Second pass: plain rows not already covered by a median aggregate.
    # (Individual repetition rows share run_name with their aggregates, so
    # they are skipped here; note single runs also carry repetition_index=0
    # in some google-benchmark versions, so its presence alone proves
    # nothing.)
    for row in rows:
        if row.get("aggregate_name"):
            continue
        name = row.get("run_name", row.get("name", ""))
        if name and name not in results:
            results[name] = row
    # Annotate with the best per-repetition throughput, for gates that
    # prefer peak over median (see the --compare notes above). Absent when
    # the run reported aggregates only.
    best = {}
    for row in rows:
        if row.get("aggregate_name"):
            continue
        name = row.get("run_name", row.get("name", ""))
        qps = row.get("items_per_second")
        if name and qps is not None:
            best[name] = max(best.get(name, 0.0), qps)
    for name, qps in best.items():
        if name in results:
            results[name]["best_items_per_second"] = qps
    return results


def parse_per_benchmark(specs):
    """Parses ['GLOB=THRESH', ...] into [(glob, float)], order-preserving."""
    rules = []
    for spec in specs:
        glob, sep, value = spec.rpartition("=")
        if not sep or not glob:
            sys.exit(f"error: --per-benchmark needs GLOB=THRESHOLD, got "
                     f"{spec!r}")
        try:
            threshold = float(value)
        except ValueError:
            sys.exit(f"error: bad threshold in --per-benchmark {spec!r}")
        rules.append((glob, threshold))
    return rules


def threshold_for(name, rules, default):
    """First matching --per-benchmark rule wins; else the global default."""
    for glob, threshold in rules:
        if fnmatch.fnmatchcase(name, glob):
            return threshold
    return default


def parse_compares(specs):
    """Parses ['BASE=CAND=THRESH', ...] into [(base, cand, float)]."""
    rules = []
    for spec in specs:
        parts = spec.split("=")
        if len(parts) != 3 or not parts[0] or not parts[1]:
            sys.exit(f"error: --compare needs BASE=CANDIDATE=THRESHOLD, got "
                     f"{spec!r}")
        try:
            threshold = float(parts[2])
        except ValueError:
            sys.exit(f"error: bad threshold in --compare {spec!r}")
        rules.append((parts[0], parts[1], threshold))
    return rules


def check_compares(candidate, compares):
    """Returns names of candidate benchmarks over their --compare budget.

    Rows are paired by exact name-segment prefix plus shared '/args'
    suffix, so 'BM_EngineUpdateBatch' does not swallow the rows of
    'BM_EngineUpdateBatchNoProfiler'.
    """
    failures = []
    for base_name, cand_name, threshold in compares:
        matched = False
        for name, row in sorted(candidate.items()):
            if name != cand_name and not name.startswith(cand_name + "/"):
                continue
            matched = True
            counterpart = base_name + name[len(cand_name):]
            base_row = candidate.get(counterpart)
            if base_row is None:
                sys.exit(f"error: --compare row {name} has no in-run "
                         f"counterpart {counterpart}")
            ratio, metric, over = compare(name, base_row, row, threshold,
                                          prefer_best=True)
            marker = "OVER BUDGET" if over else "ok"
            print(f"{marker:>11}  {name} vs {counterpart}: {ratio:+.1%} "
                  f"({metric}, budget {threshold:.0%})")
            if over:
                failures.append(name)
        if not matched:
            sys.exit(f"error: --compare {cand_name!r} matched no candidate "
                     f"benchmark")
    return failures


def check_floors(candidate, floors):
    """Returns names of candidate benchmarks below their --floor minimum."""
    failures = []
    for glob, minimum in floors:
        matched = False
        for name, row in sorted(candidate.items()):
            if not fnmatch.fnmatchcase(name, glob):
                continue
            matched = True
            qps = row.get("items_per_second")
            if qps is None:
                sys.exit(f"error: --floor {glob!r} matched {name}, which "
                         f"reports no items_per_second")
            below = qps < minimum
            marker = "BELOW FLOOR" if below else "ok"
            print(f"{marker:>11}  {name}: {qps:,.0f} items/s "
                  f"(floor {minimum:,.0f})")
            if below:
                failures.append(name)
        if not matched:
            sys.exit(f"error: --floor {glob!r} matched no candidate "
                     f"benchmark")
    return failures


def compare(name, baseline, candidate, threshold, prefer_best=False):
    """Returns (ratio, metric, regressed) for one matched benchmark pair.

    ratio > 0 is the relative slowdown of candidate vs baseline (0.07 means
    7% slower); negative means the candidate is faster. With prefer_best,
    both sides use their best repetition's throughput when the run recorded
    individual repetitions (intra-run gates, where noise only ever pushes a
    repetition down).
    """
    key = "items_per_second"
    metric = "items/s"
    if (prefer_best and "best_items_per_second" in baseline
            and "best_items_per_second" in candidate):
        key = "best_items_per_second"
        metric = "best items/s"
    if key in baseline and key in candidate:
        base, cand = baseline[key], candidate[key]
        if base <= 0:
            sys.exit(f"error: non-positive items_per_second for {name}")
        ratio = (base - cand) / base  # throughput drop
    else:
        base, cand = baseline.get("real_time"), candidate.get("real_time")
        if base is None or cand is None or base <= 0:
            sys.exit(f"error: no comparable metric for {name}")
        ratio = (cand - base) / base  # time increase
        metric = "real_time"
    return ratio, metric, ratio > threshold


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("runs", nargs="+", metavar="BASELINE... CANDIDATE",
                        help="one or more baseline files followed by the "
                             "candidate run (last argument)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="maximum tolerated relative regression for "
                             "benchmarks matching no --per-benchmark rule "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--per-benchmark", action="append", default=[],
                        metavar="GLOB=THRESH",
                        help="per-benchmark threshold override; repeatable; "
                             "first matching glob wins")
    parser.add_argument("--floor", action="append", default=[],
                        metavar="GLOB=MIN_QPS",
                        help="absolute items_per_second minimum for matching "
                             "candidate benchmarks; repeatable; independent "
                             "of any baseline")
    parser.add_argument("--compare", action="append", default=[],
                        metavar="BASE=CAND=THRESH",
                        help="intra-run pairing: fail when benchmark CAND is "
                             "more than THRESH slower than benchmark BASE "
                             "within the candidate run; repeatable")
    args = parser.parse_args()

    rules = parse_per_benchmark(args.per_benchmark)
    floors = parse_per_benchmark(args.floor)
    compares = parse_compares(args.compare)

    if len(args.runs) < 2:
        # Candidate-only mode: legal when every requested gate is
        # self-contained (--compare / --floor need no baseline file).
        if not compares and not floors:
            sys.exit("error: need at least one baseline and one candidate "
                     "run (or a candidate with --compare/--floor gates)")
        baseline_paths, candidate_path = [], args.runs[0]
    else:
        baseline_paths, candidate_path = args.runs[:-1], args.runs[-1]

    candidate = load_results(candidate_path)
    floor_failures = check_floors(candidate, floors)
    compare_failures = check_compares(candidate, compares)

    if not baseline_paths:
        if floor_failures or compare_failures:
            print(f"\n{len(floor_failures) + len(compare_failures)} "
                  f"benchmark(s) failed their self-contained gates")
            return 1
        print("\nall self-contained gates within budget")
        return 0

    if len(baseline_paths) == 1 and not os.path.exists(baseline_paths[0]):
        # First run on this branch/machine: nothing to compare against yet
        # (but the absolute floors above still apply).
        os.makedirs(os.path.dirname(baseline_paths[0]) or ".", exist_ok=True)
        shutil.copyfile(candidate_path, baseline_paths[0])
        print(f"no baseline yet — recording {candidate_path} "
              f"as {baseline_paths[0]}")
        if floor_failures or compare_failures:
            print(f"\n{len(floor_failures) + len(compare_failures)} "
                  f"benchmark(s) failed their self-contained gates: "
                  f"{', '.join(floor_failures + compare_failures)}")
            return 1
        return 0

    baseline = {}
    for path in baseline_paths:
        baseline.update(load_results(path))
    common = sorted(set(baseline) & set(candidate))
    if not common:
        sys.exit("error: no benchmarks in common between the runs")

    regressions = []
    for name in common:
        threshold = threshold_for(name, rules, args.threshold)
        ratio, metric, regressed = compare(
            name, baseline[name], candidate[name], threshold)
        marker = "REGRESSED" if regressed else "ok"
        print(f"{marker:>9}  {name}: {ratio:+.1%} ({metric}, "
              f"budget {threshold:.0%})")
        if regressed:
            regressions.append(name)

    skipped = sorted(set(baseline) ^ set(candidate))
    for name in skipped:
        print(f"  skipped  {name}: only in one run")

    if regressions or floor_failures or compare_failures:
        if regressions:
            print(f"\n{len(regressions)} benchmark(s) regressed beyond "
                  f"their budget: {', '.join(regressions)}")
        if floor_failures:
            print(f"\n{len(floor_failures)} benchmark(s) below their "
                  f"floor: {', '.join(floor_failures)}")
        if compare_failures:
            print(f"\n{len(compare_failures)} benchmark(s) over their "
                  f"in-run --compare budget: {', '.join(compare_failures)}")
        return 1
    print(f"\nall {len(common)} matched benchmarks within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
