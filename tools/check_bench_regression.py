#!/usr/bin/env python3
"""Fails when an instrumented benchmark run regresses against a baseline.

Usage:
    check_bench_regression.py BASELINE.json CANDIDATE.json [--threshold 0.10]

Both inputs are google-benchmark JSON outputs (--benchmark_out=... with
--benchmark_out_format=json). Benchmarks are matched by name; the comparison
metric is items_per_second when both runs report it (higher is better),
falling back to real_time (lower is better). When a run used
--benchmark_repetitions, only the "median" aggregate rows are compared so a
single noisy repetition cannot fail the gate.

Exit status: 0 when every matched benchmark is within the threshold, 1 when
any regresses, 2 for malformed input or no overlapping benchmarks.

When the baseline file does not exist, the run is treated as the first of
its kind: the candidate is recorded as the new baseline and the gate
passes. This keeps perf-trajectory jobs green on a fresh branch instead of
failing before any baseline has ever been committed.

CI uses this to enforce the metrics overhead budget: the default build's
engine benches must stay within 10% of a -DSKIMJOIN_DISABLE_METRICS=ON
build (see .github/workflows/ci.yml, job metrics-overhead).
"""

import argparse
import json
import os
import shutil
import sys


def load_results(path):
    """Returns {benchmark name: json row}, keeping only comparable rows."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"error: cannot read {path}: {error}")
    rows = data.get("benchmarks")
    if not isinstance(rows, list):
        sys.exit(f"error: {path} has no 'benchmarks' array")
    has_aggregates = any(row.get("aggregate_name") for row in rows)
    results = {}
    for row in rows:
        if has_aggregates:
            if row.get("aggregate_name") != "median":
                continue
            name = row.get("run_name", row.get("name", ""))
        else:
            name = row.get("name", "")
        if name:
            results[name] = row
    return results


def compare(name, baseline, candidate, threshold):
    """Returns (ratio, metric, regressed) for one matched benchmark pair.

    ratio > 0 is the relative slowdown of candidate vs baseline (0.07 means
    7% slower); negative means the candidate is faster.
    """
    if "items_per_second" in baseline and "items_per_second" in candidate:
        base, cand = baseline["items_per_second"], candidate["items_per_second"]
        if base <= 0:
            sys.exit(f"error: non-positive items_per_second for {name}")
        ratio = (base - cand) / base  # throughput drop
        metric = "items/s"
    else:
        base, cand = baseline.get("real_time"), candidate.get("real_time")
        if base is None or cand is None or base <= 0:
            sys.exit(f"error: no comparable metric for {name}")
        ratio = (cand - base) / base  # time increase
        metric = "real_time"
    return ratio, metric, ratio > threshold


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="maximum tolerated relative regression "
                             "(default 0.10 = 10%%)")
    args = parser.parse_args()

    if not os.path.exists(args.baseline):
        # First run on this branch/machine: nothing to compare against yet.
        load_results(args.candidate)  # still validate the candidate's shape
        os.makedirs(os.path.dirname(args.baseline) or ".", exist_ok=True)
        shutil.copyfile(args.candidate, args.baseline)
        print(f"no baseline yet — recording {args.candidate} "
              f"as {args.baseline}")
        return 0

    baseline = load_results(args.baseline)
    candidate = load_results(args.candidate)
    common = sorted(set(baseline) & set(candidate))
    if not common:
        sys.exit("error: no benchmarks in common between the two runs")

    regressions = []
    for name in common:
        ratio, metric, regressed = compare(
            name, baseline[name], candidate[name], args.threshold)
        marker = "REGRESSED" if regressed else "ok"
        print(f"{marker:>9}  {name}: {ratio:+.1%} ({metric})")
        if regressed:
            regressions.append(name)

    skipped = sorted(set(baseline) ^ set(candidate))
    for name in skipped:
        print(f"  skipped  {name}: only in one run")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}: {', '.join(regressions)}")
        return 1
    print(f"\nall {len(common)} matched benchmarks within "
          f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
