# Empty compiler generated dependencies file for skimjoin_query.
# This may be replaced when dependencies are built.
