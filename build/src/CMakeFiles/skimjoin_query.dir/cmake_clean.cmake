file(REMOVE_RECURSE
  "CMakeFiles/skimjoin_query.dir/query/engine.cc.o"
  "CMakeFiles/skimjoin_query.dir/query/engine.cc.o.d"
  "CMakeFiles/skimjoin_query.dir/query/multi_join.cc.o"
  "CMakeFiles/skimjoin_query.dir/query/multi_join.cc.o.d"
  "CMakeFiles/skimjoin_query.dir/query/multi_join_hash.cc.o"
  "CMakeFiles/skimjoin_query.dir/query/multi_join_hash.cc.o.d"
  "CMakeFiles/skimjoin_query.dir/query/shell.cc.o"
  "CMakeFiles/skimjoin_query.dir/query/shell.cc.o.d"
  "libskimjoin_query.a"
  "libskimjoin_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skimjoin_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
