file(REMOVE_RECURSE
  "libskimjoin_query.a"
)
