# Empty dependencies file for skimjoin_hashing.
# This may be replaced when dependencies are built.
