file(REMOVE_RECURSE
  "CMakeFiles/skimjoin_hashing.dir/hashing/kwise_hash.cc.o"
  "CMakeFiles/skimjoin_hashing.dir/hashing/kwise_hash.cc.o.d"
  "CMakeFiles/skimjoin_hashing.dir/hashing/sign_hash.cc.o"
  "CMakeFiles/skimjoin_hashing.dir/hashing/sign_hash.cc.o.d"
  "CMakeFiles/skimjoin_hashing.dir/hashing/tabulation_hash.cc.o"
  "CMakeFiles/skimjoin_hashing.dir/hashing/tabulation_hash.cc.o.d"
  "libskimjoin_hashing.a"
  "libskimjoin_hashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skimjoin_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
