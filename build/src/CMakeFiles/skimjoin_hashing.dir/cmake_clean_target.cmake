file(REMOVE_RECURSE
  "libskimjoin_hashing.a"
)
