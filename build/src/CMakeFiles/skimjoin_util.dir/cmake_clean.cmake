file(REMOVE_RECURSE
  "CMakeFiles/skimjoin_util.dir/util/histogram.cc.o"
  "CMakeFiles/skimjoin_util.dir/util/histogram.cc.o.d"
  "CMakeFiles/skimjoin_util.dir/util/logging.cc.o"
  "CMakeFiles/skimjoin_util.dir/util/logging.cc.o.d"
  "CMakeFiles/skimjoin_util.dir/util/random.cc.o"
  "CMakeFiles/skimjoin_util.dir/util/random.cc.o.d"
  "CMakeFiles/skimjoin_util.dir/util/stats.cc.o"
  "CMakeFiles/skimjoin_util.dir/util/stats.cc.o.d"
  "CMakeFiles/skimjoin_util.dir/util/status.cc.o"
  "CMakeFiles/skimjoin_util.dir/util/status.cc.o.d"
  "CMakeFiles/skimjoin_util.dir/util/table_printer.cc.o"
  "CMakeFiles/skimjoin_util.dir/util/table_printer.cc.o.d"
  "libskimjoin_util.a"
  "libskimjoin_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skimjoin_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
