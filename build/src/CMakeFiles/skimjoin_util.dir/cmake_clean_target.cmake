file(REMOVE_RECURSE
  "libskimjoin_util.a"
)
