# Empty compiler generated dependencies file for skimjoin_util.
# This may be replaced when dependencies are built.
