# Empty dependencies file for skimjoin_core.
# This may be replaced when dependencies are built.
