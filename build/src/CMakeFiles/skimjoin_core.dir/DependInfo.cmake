
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dyadic_skim.cc" "src/CMakeFiles/skimjoin_core.dir/core/dyadic_skim.cc.o" "gcc" "src/CMakeFiles/skimjoin_core.dir/core/dyadic_skim.cc.o.d"
  "/root/repo/src/core/join_estimators.cc" "src/CMakeFiles/skimjoin_core.dir/core/join_estimators.cc.o" "gcc" "src/CMakeFiles/skimjoin_core.dir/core/join_estimators.cc.o.d"
  "/root/repo/src/core/skim.cc" "src/CMakeFiles/skimjoin_core.dir/core/skim.cc.o" "gcc" "src/CMakeFiles/skimjoin_core.dir/core/skim.cc.o.d"
  "/root/repo/src/core/skimmed_sketch.cc" "src/CMakeFiles/skimjoin_core.dir/core/skimmed_sketch.cc.o" "gcc" "src/CMakeFiles/skimjoin_core.dir/core/skimmed_sketch.cc.o.d"
  "/root/repo/src/core/theory.cc" "src/CMakeFiles/skimjoin_core.dir/core/theory.cc.o" "gcc" "src/CMakeFiles/skimjoin_core.dir/core/theory.cc.o.d"
  "/root/repo/src/core/top_k.cc" "src/CMakeFiles/skimjoin_core.dir/core/top_k.cc.o" "gcc" "src/CMakeFiles/skimjoin_core.dir/core/top_k.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skimjoin_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skimjoin_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skimjoin_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skimjoin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
