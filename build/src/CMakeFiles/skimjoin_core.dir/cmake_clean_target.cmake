file(REMOVE_RECURSE
  "libskimjoin_core.a"
)
