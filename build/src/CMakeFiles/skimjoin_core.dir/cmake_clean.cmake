file(REMOVE_RECURSE
  "CMakeFiles/skimjoin_core.dir/core/dyadic_skim.cc.o"
  "CMakeFiles/skimjoin_core.dir/core/dyadic_skim.cc.o.d"
  "CMakeFiles/skimjoin_core.dir/core/join_estimators.cc.o"
  "CMakeFiles/skimjoin_core.dir/core/join_estimators.cc.o.d"
  "CMakeFiles/skimjoin_core.dir/core/skim.cc.o"
  "CMakeFiles/skimjoin_core.dir/core/skim.cc.o.d"
  "CMakeFiles/skimjoin_core.dir/core/skimmed_sketch.cc.o"
  "CMakeFiles/skimjoin_core.dir/core/skimmed_sketch.cc.o.d"
  "CMakeFiles/skimjoin_core.dir/core/theory.cc.o"
  "CMakeFiles/skimjoin_core.dir/core/theory.cc.o.d"
  "CMakeFiles/skimjoin_core.dir/core/top_k.cc.o"
  "CMakeFiles/skimjoin_core.dir/core/top_k.cc.o.d"
  "libskimjoin_core.a"
  "libskimjoin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skimjoin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
