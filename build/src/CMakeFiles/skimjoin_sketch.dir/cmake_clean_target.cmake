file(REMOVE_RECURSE
  "libskimjoin_sketch.a"
)
