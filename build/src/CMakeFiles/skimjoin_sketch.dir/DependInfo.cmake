
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/agms_sketch.cc" "src/CMakeFiles/skimjoin_sketch.dir/sketch/agms_sketch.cc.o" "gcc" "src/CMakeFiles/skimjoin_sketch.dir/sketch/agms_sketch.cc.o.d"
  "/root/repo/src/sketch/count_min_sketch.cc" "src/CMakeFiles/skimjoin_sketch.dir/sketch/count_min_sketch.cc.o" "gcc" "src/CMakeFiles/skimjoin_sketch.dir/sketch/count_min_sketch.cc.o.d"
  "/root/repo/src/sketch/fm_sketch.cc" "src/CMakeFiles/skimjoin_sketch.dir/sketch/fm_sketch.cc.o" "gcc" "src/CMakeFiles/skimjoin_sketch.dir/sketch/fm_sketch.cc.o.d"
  "/root/repo/src/sketch/hash_sketch.cc" "src/CMakeFiles/skimjoin_sketch.dir/sketch/hash_sketch.cc.o" "gcc" "src/CMakeFiles/skimjoin_sketch.dir/sketch/hash_sketch.cc.o.d"
  "/root/repo/src/sketch/partitioned_agms.cc" "src/CMakeFiles/skimjoin_sketch.dir/sketch/partitioned_agms.cc.o" "gcc" "src/CMakeFiles/skimjoin_sketch.dir/sketch/partitioned_agms.cc.o.d"
  "/root/repo/src/sketch/reservoir_sample.cc" "src/CMakeFiles/skimjoin_sketch.dir/sketch/reservoir_sample.cc.o" "gcc" "src/CMakeFiles/skimjoin_sketch.dir/sketch/reservoir_sample.cc.o.d"
  "/root/repo/src/sketch/sketch_seed.cc" "src/CMakeFiles/skimjoin_sketch.dir/sketch/sketch_seed.cc.o" "gcc" "src/CMakeFiles/skimjoin_sketch.dir/sketch/sketch_seed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skimjoin_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skimjoin_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skimjoin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
