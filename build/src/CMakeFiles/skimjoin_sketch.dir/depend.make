# Empty dependencies file for skimjoin_sketch.
# This may be replaced when dependencies are built.
