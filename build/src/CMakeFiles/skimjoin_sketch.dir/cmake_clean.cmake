file(REMOVE_RECURSE
  "CMakeFiles/skimjoin_sketch.dir/sketch/agms_sketch.cc.o"
  "CMakeFiles/skimjoin_sketch.dir/sketch/agms_sketch.cc.o.d"
  "CMakeFiles/skimjoin_sketch.dir/sketch/count_min_sketch.cc.o"
  "CMakeFiles/skimjoin_sketch.dir/sketch/count_min_sketch.cc.o.d"
  "CMakeFiles/skimjoin_sketch.dir/sketch/fm_sketch.cc.o"
  "CMakeFiles/skimjoin_sketch.dir/sketch/fm_sketch.cc.o.d"
  "CMakeFiles/skimjoin_sketch.dir/sketch/hash_sketch.cc.o"
  "CMakeFiles/skimjoin_sketch.dir/sketch/hash_sketch.cc.o.d"
  "CMakeFiles/skimjoin_sketch.dir/sketch/partitioned_agms.cc.o"
  "CMakeFiles/skimjoin_sketch.dir/sketch/partitioned_agms.cc.o.d"
  "CMakeFiles/skimjoin_sketch.dir/sketch/reservoir_sample.cc.o"
  "CMakeFiles/skimjoin_sketch.dir/sketch/reservoir_sample.cc.o.d"
  "CMakeFiles/skimjoin_sketch.dir/sketch/sketch_seed.cc.o"
  "CMakeFiles/skimjoin_sketch.dir/sketch/sketch_seed.cc.o.d"
  "libskimjoin_sketch.a"
  "libskimjoin_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skimjoin_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
