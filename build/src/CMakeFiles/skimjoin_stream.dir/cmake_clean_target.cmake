file(REMOVE_RECURSE
  "libskimjoin_stream.a"
)
