file(REMOVE_RECURSE
  "CMakeFiles/skimjoin_stream.dir/stream/census_like.cc.o"
  "CMakeFiles/skimjoin_stream.dir/stream/census_like.cc.o.d"
  "CMakeFiles/skimjoin_stream.dir/stream/exact.cc.o"
  "CMakeFiles/skimjoin_stream.dir/stream/exact.cc.o.d"
  "CMakeFiles/skimjoin_stream.dir/stream/exponential_histogram.cc.o"
  "CMakeFiles/skimjoin_stream.dir/stream/exponential_histogram.cc.o.d"
  "CMakeFiles/skimjoin_stream.dir/stream/frequency_vector.cc.o"
  "CMakeFiles/skimjoin_stream.dir/stream/frequency_vector.cc.o.d"
  "CMakeFiles/skimjoin_stream.dir/stream/generators.cc.o"
  "CMakeFiles/skimjoin_stream.dir/stream/generators.cc.o.d"
  "CMakeFiles/skimjoin_stream.dir/stream/gk_quantiles.cc.o"
  "CMakeFiles/skimjoin_stream.dir/stream/gk_quantiles.cc.o.d"
  "CMakeFiles/skimjoin_stream.dir/stream/sliding_window.cc.o"
  "CMakeFiles/skimjoin_stream.dir/stream/sliding_window.cc.o.d"
  "CMakeFiles/skimjoin_stream.dir/stream/trace_io.cc.o"
  "CMakeFiles/skimjoin_stream.dir/stream/trace_io.cc.o.d"
  "CMakeFiles/skimjoin_stream.dir/stream/wavelet.cc.o"
  "CMakeFiles/skimjoin_stream.dir/stream/wavelet.cc.o.d"
  "CMakeFiles/skimjoin_stream.dir/stream/zipf.cc.o"
  "CMakeFiles/skimjoin_stream.dir/stream/zipf.cc.o.d"
  "libskimjoin_stream.a"
  "libskimjoin_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skimjoin_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
