# Empty compiler generated dependencies file for skimjoin_stream.
# This may be replaced when dependencies are built.
