
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/census_like.cc" "src/CMakeFiles/skimjoin_stream.dir/stream/census_like.cc.o" "gcc" "src/CMakeFiles/skimjoin_stream.dir/stream/census_like.cc.o.d"
  "/root/repo/src/stream/exact.cc" "src/CMakeFiles/skimjoin_stream.dir/stream/exact.cc.o" "gcc" "src/CMakeFiles/skimjoin_stream.dir/stream/exact.cc.o.d"
  "/root/repo/src/stream/exponential_histogram.cc" "src/CMakeFiles/skimjoin_stream.dir/stream/exponential_histogram.cc.o" "gcc" "src/CMakeFiles/skimjoin_stream.dir/stream/exponential_histogram.cc.o.d"
  "/root/repo/src/stream/frequency_vector.cc" "src/CMakeFiles/skimjoin_stream.dir/stream/frequency_vector.cc.o" "gcc" "src/CMakeFiles/skimjoin_stream.dir/stream/frequency_vector.cc.o.d"
  "/root/repo/src/stream/generators.cc" "src/CMakeFiles/skimjoin_stream.dir/stream/generators.cc.o" "gcc" "src/CMakeFiles/skimjoin_stream.dir/stream/generators.cc.o.d"
  "/root/repo/src/stream/gk_quantiles.cc" "src/CMakeFiles/skimjoin_stream.dir/stream/gk_quantiles.cc.o" "gcc" "src/CMakeFiles/skimjoin_stream.dir/stream/gk_quantiles.cc.o.d"
  "/root/repo/src/stream/sliding_window.cc" "src/CMakeFiles/skimjoin_stream.dir/stream/sliding_window.cc.o" "gcc" "src/CMakeFiles/skimjoin_stream.dir/stream/sliding_window.cc.o.d"
  "/root/repo/src/stream/trace_io.cc" "src/CMakeFiles/skimjoin_stream.dir/stream/trace_io.cc.o" "gcc" "src/CMakeFiles/skimjoin_stream.dir/stream/trace_io.cc.o.d"
  "/root/repo/src/stream/wavelet.cc" "src/CMakeFiles/skimjoin_stream.dir/stream/wavelet.cc.o" "gcc" "src/CMakeFiles/skimjoin_stream.dir/stream/wavelet.cc.o.d"
  "/root/repo/src/stream/zipf.cc" "src/CMakeFiles/skimjoin_stream.dir/stream/zipf.cc.o" "gcc" "src/CMakeFiles/skimjoin_stream.dir/stream/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skimjoin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
