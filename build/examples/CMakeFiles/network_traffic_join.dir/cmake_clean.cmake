file(REMOVE_RECURSE
  "CMakeFiles/network_traffic_join.dir/network_traffic_join.cpp.o"
  "CMakeFiles/network_traffic_join.dir/network_traffic_join.cpp.o.d"
  "network_traffic_join"
  "network_traffic_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_traffic_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
