# Empty dependencies file for network_traffic_join.
# This may be replaced when dependencies are built.
