# Empty compiler generated dependencies file for approximate_quantiles.
# This may be replaced when dependencies are built.
