file(REMOVE_RECURSE
  "CMakeFiles/approximate_quantiles.dir/approximate_quantiles.cpp.o"
  "CMakeFiles/approximate_quantiles.dir/approximate_quantiles.cpp.o.d"
  "approximate_quantiles"
  "approximate_quantiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximate_quantiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
