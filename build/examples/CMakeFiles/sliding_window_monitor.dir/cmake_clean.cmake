file(REMOVE_RECURSE
  "CMakeFiles/sliding_window_monitor.dir/sliding_window_monitor.cpp.o"
  "CMakeFiles/sliding_window_monitor.dir/sliding_window_monitor.cpp.o.d"
  "sliding_window_monitor"
  "sliding_window_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliding_window_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
