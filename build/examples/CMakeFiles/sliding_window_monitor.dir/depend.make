# Empty dependencies file for sliding_window_monitor.
# This may be replaced when dependencies are built.
