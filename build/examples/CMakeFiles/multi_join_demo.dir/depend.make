# Empty dependencies file for multi_join_demo.
# This may be replaced when dependencies are built.
