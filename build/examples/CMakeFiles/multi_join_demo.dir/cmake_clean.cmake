file(REMOVE_RECURSE
  "CMakeFiles/multi_join_demo.dir/multi_join_demo.cpp.o"
  "CMakeFiles/multi_join_demo.dir/multi_join_demo.cpp.o.d"
  "multi_join_demo"
  "multi_join_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_join_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
