file(REMOVE_RECURSE
  "CMakeFiles/retail_sum_aggregate.dir/retail_sum_aggregate.cpp.o"
  "CMakeFiles/retail_sum_aggregate.dir/retail_sum_aggregate.cpp.o.d"
  "retail_sum_aggregate"
  "retail_sum_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_sum_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
