# Empty dependencies file for retail_sum_aggregate.
# This may be replaced when dependencies are built.
