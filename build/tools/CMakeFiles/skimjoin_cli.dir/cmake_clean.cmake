file(REMOVE_RECURSE
  "CMakeFiles/skimjoin_cli.dir/skimjoin_cli.cc.o"
  "CMakeFiles/skimjoin_cli.dir/skimjoin_cli.cc.o.d"
  "skimjoin_cli"
  "skimjoin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skimjoin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
