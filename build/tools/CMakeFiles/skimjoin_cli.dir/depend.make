# Empty dependencies file for skimjoin_cli.
# This may be replaced when dependencies are built.
