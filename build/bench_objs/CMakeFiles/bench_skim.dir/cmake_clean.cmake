file(REMOVE_RECURSE
  "../bench/bench_skim"
  "../bench/bench_skim.pdb"
  "CMakeFiles/bench_skim.dir/bench_skim.cc.o"
  "CMakeFiles/bench_skim.dir/bench_skim.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
