# Empty dependencies file for bench_skim.
# This may be replaced when dependencies are built.
