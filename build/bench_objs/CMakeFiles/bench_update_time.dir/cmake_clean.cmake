file(REMOVE_RECURSE
  "../bench/bench_update_time"
  "../bench/bench_update_time.pdb"
  "CMakeFiles/bench_update_time.dir/bench_update_time.cc.o"
  "CMakeFiles/bench_update_time.dir/bench_update_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
