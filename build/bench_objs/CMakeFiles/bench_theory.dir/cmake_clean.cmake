file(REMOVE_RECURSE
  "../bench/bench_theory"
  "../bench/bench_theory.pdb"
  "CMakeFiles/bench_theory.dir/bench_theory.cc.o"
  "CMakeFiles/bench_theory.dir/bench_theory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
