file(REMOVE_RECURSE
  "../bench/bench_window"
  "../bench/bench_window.pdb"
  "CMakeFiles/bench_window.dir/bench_window.cc.o"
  "CMakeFiles/bench_window.dir/bench_window.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
