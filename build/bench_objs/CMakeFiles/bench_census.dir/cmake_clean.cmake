file(REMOVE_RECURSE
  "../bench/bench_census"
  "../bench/bench_census.pdb"
  "CMakeFiles/bench_census.dir/bench_census.cc.o"
  "CMakeFiles/bench_census.dir/bench_census.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
