# Empty compiler generated dependencies file for skimjoin_bench_harness.
# This may be replaced when dependencies are built.
