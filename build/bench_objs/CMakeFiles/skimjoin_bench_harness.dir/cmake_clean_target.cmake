file(REMOVE_RECURSE
  "libskimjoin_bench_harness.a"
)
