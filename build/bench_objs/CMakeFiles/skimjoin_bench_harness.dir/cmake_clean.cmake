file(REMOVE_RECURSE
  "CMakeFiles/skimjoin_bench_harness.dir/harness.cc.o"
  "CMakeFiles/skimjoin_bench_harness.dir/harness.cc.o.d"
  "libskimjoin_bench_harness.a"
  "libskimjoin_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skimjoin_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
