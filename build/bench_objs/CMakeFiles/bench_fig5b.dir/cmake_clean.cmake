file(REMOVE_RECURSE
  "../bench/bench_fig5b"
  "../bench/bench_fig5b.pdb"
  "CMakeFiles/bench_fig5b.dir/bench_fig5b.cc.o"
  "CMakeFiles/bench_fig5b.dir/bench_fig5b.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
