file(REMOVE_RECURSE
  "../bench/bench_fig5a"
  "../bench/bench_fig5a.pdb"
  "CMakeFiles/bench_fig5a.dir/bench_fig5a.cc.o"
  "CMakeFiles/bench_fig5a.dir/bench_fig5a.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
