# Empty compiler generated dependencies file for multi_join_hash_test.
# This may be replaced when dependencies are built.
