file(REMOVE_RECURSE
  "CMakeFiles/dyadic_skim_test.dir/dyadic_skim_test.cc.o"
  "CMakeFiles/dyadic_skim_test.dir/dyadic_skim_test.cc.o.d"
  "dyadic_skim_test"
  "dyadic_skim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyadic_skim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
