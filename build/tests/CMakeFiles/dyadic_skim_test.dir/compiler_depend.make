# Empty compiler generated dependencies file for dyadic_skim_test.
# This may be replaced when dependencies are built.
