# Empty compiler generated dependencies file for agms_sketch_test.
# This may be replaced when dependencies are built.
