file(REMOVE_RECURSE
  "CMakeFiles/agms_sketch_test.dir/agms_sketch_test.cc.o"
  "CMakeFiles/agms_sketch_test.dir/agms_sketch_test.cc.o.d"
  "agms_sketch_test"
  "agms_sketch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agms_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
