file(REMOVE_RECURSE
  "CMakeFiles/kwise_hash_test.dir/kwise_hash_test.cc.o"
  "CMakeFiles/kwise_hash_test.dir/kwise_hash_test.cc.o.d"
  "kwise_hash_test"
  "kwise_hash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kwise_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
