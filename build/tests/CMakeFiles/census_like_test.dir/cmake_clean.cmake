file(REMOVE_RECURSE
  "CMakeFiles/census_like_test.dir/census_like_test.cc.o"
  "CMakeFiles/census_like_test.dir/census_like_test.cc.o.d"
  "census_like_test"
  "census_like_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_like_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
