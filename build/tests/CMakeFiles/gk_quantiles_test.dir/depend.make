# Empty dependencies file for gk_quantiles_test.
# This may be replaced when dependencies are built.
