file(REMOVE_RECURSE
  "CMakeFiles/gk_quantiles_test.dir/gk_quantiles_test.cc.o"
  "CMakeFiles/gk_quantiles_test.dir/gk_quantiles_test.cc.o.d"
  "gk_quantiles_test"
  "gk_quantiles_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gk_quantiles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
