file(REMOVE_RECURSE
  "CMakeFiles/prime_field_test.dir/prime_field_test.cc.o"
  "CMakeFiles/prime_field_test.dir/prime_field_test.cc.o.d"
  "prime_field_test"
  "prime_field_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prime_field_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
