# Empty dependencies file for prime_field_test.
# This may be replaced when dependencies are built.
