# Empty dependencies file for sign_hash_test.
# This may be replaced when dependencies are built.
