file(REMOVE_RECURSE
  "CMakeFiles/sign_hash_test.dir/sign_hash_test.cc.o"
  "CMakeFiles/sign_hash_test.dir/sign_hash_test.cc.o.d"
  "sign_hash_test"
  "sign_hash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sign_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
