# Empty compiler generated dependencies file for hashing_statistical_test.
# This may be replaced when dependencies are built.
