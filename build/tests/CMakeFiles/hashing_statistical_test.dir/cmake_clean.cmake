file(REMOVE_RECURSE
  "CMakeFiles/hashing_statistical_test.dir/hashing_statistical_test.cc.o"
  "CMakeFiles/hashing_statistical_test.dir/hashing_statistical_test.cc.o.d"
  "hashing_statistical_test"
  "hashing_statistical_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashing_statistical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
