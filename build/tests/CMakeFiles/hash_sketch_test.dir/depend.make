# Empty dependencies file for hash_sketch_test.
# This may be replaced when dependencies are built.
