file(REMOVE_RECURSE
  "CMakeFiles/hash_sketch_test.dir/hash_sketch_test.cc.o"
  "CMakeFiles/hash_sketch_test.dir/hash_sketch_test.cc.o.d"
  "hash_sketch_test"
  "hash_sketch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
