file(REMOVE_RECURSE
  "CMakeFiles/partitioned_agms_test.dir/partitioned_agms_test.cc.o"
  "CMakeFiles/partitioned_agms_test.dir/partitioned_agms_test.cc.o.d"
  "partitioned_agms_test"
  "partitioned_agms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_agms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
