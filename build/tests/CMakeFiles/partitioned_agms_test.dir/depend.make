# Empty dependencies file for partitioned_agms_test.
# This may be replaced when dependencies are built.
