file(REMOVE_RECURSE
  "CMakeFiles/exponential_histogram_test.dir/exponential_histogram_test.cc.o"
  "CMakeFiles/exponential_histogram_test.dir/exponential_histogram_test.cc.o.d"
  "exponential_histogram_test"
  "exponential_histogram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exponential_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
