file(REMOVE_RECURSE
  "CMakeFiles/multi_join_test.dir/multi_join_test.cc.o"
  "CMakeFiles/multi_join_test.dir/multi_join_test.cc.o.d"
  "multi_join_test"
  "multi_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
