# Empty compiler generated dependencies file for multi_join_test.
# This may be replaced when dependencies are built.
