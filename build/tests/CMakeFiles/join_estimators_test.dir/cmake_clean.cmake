file(REMOVE_RECURSE
  "CMakeFiles/join_estimators_test.dir/join_estimators_test.cc.o"
  "CMakeFiles/join_estimators_test.dir/join_estimators_test.cc.o.d"
  "join_estimators_test"
  "join_estimators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_estimators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
