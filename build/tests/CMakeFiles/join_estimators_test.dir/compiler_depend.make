# Empty compiler generated dependencies file for join_estimators_test.
# This may be replaced when dependencies are built.
