file(REMOVE_RECURSE
  "CMakeFiles/skimmed_sketch_test.dir/skimmed_sketch_test.cc.o"
  "CMakeFiles/skimmed_sketch_test.dir/skimmed_sketch_test.cc.o.d"
  "skimmed_sketch_test"
  "skimmed_sketch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skimmed_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
