# Empty compiler generated dependencies file for skimmed_sketch_test.
# This may be replaced when dependencies are built.
