file(REMOVE_RECURSE
  "CMakeFiles/tabulation_hash_test.dir/tabulation_hash_test.cc.o"
  "CMakeFiles/tabulation_hash_test.dir/tabulation_hash_test.cc.o.d"
  "tabulation_hash_test"
  "tabulation_hash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabulation_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
