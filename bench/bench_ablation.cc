// Ablations over the skimmed-sketch design choices called out in DESIGN.md:
//   A. skim-threshold scale c in T = c·sqrt(F2̂/b) (c → ∞ degenerates to the
//      un-skimmed hash-sketch estimator; c → 0 skims noise),
//   B. tables × buckets split at fixed space,
//   C. every baseline at equal space on one skewed workload (AGMS,
//      un-skimmed hash sketch, Count-Min, reservoir sampling, skimmed).

#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/harness.h"
#include "core/join_estimators.h"
#include "stream/zipf.h"
#include "util/table_printer.h"

namespace skimjoin {
namespace bench {
namespace {

struct Workload {
  stream::FrequencyVector f;
  stream::FrequencyVector g;
  double exact;
};

Workload MakeWorkload(uint64_t domain, uint64_t count, double z,
                      uint64_t shift) {
  Workload w{stream::ZipfDistribution(domain, z).ExpectedFrequencies(count),
             stream::ZipfDistribution(domain, z, shift)
                 .ExpectedFrequencies(count),
             0.0};
  w.exact = static_cast<double>(stream::JoinSize(w.f, w.g));
  return w;
}

void RunThresholdAblation(const Workload& w, uint64_t domain, int trials) {
  std::cout << "\nAblation A: skim-threshold scale c (space 2048, 7 tables)\n";
  TablePrinter table("threshold scale", {"c", "mean err", "sd"});
  const std::vector<uint64_t> seeds = DefaultSeeds(trials);
  for (double c : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    core::EstimatorSpec spec;
    spec.kind = core::EstimatorKind::kSkimmedSketch;
    spec.domain_size = domain;
    spec.space_counters = 2048;
    spec.num_tables = 7;
    spec.threshold_scale = c;
    const TrialStats stats = RunTrials(spec, w.f, w.g, w.exact, seeds);
    table.AddRow({TablePrinter::FormatDouble(c, 2),
                  TablePrinter::FormatDouble(stats.mean_error),
                  TablePrinter::FormatDouble(stats.stddev_error)});
  }
  table.Print(std::cout);
}

void RunTableSplitAblation(const Workload& w, uint64_t domain, int trials) {
  std::cout << "\nAblation B: tables x buckets split at fixed space 4096\n";
  TablePrinter table("table split", {"tables", "buckets", "mean err", "sd"});
  const std::vector<uint64_t> seeds = DefaultSeeds(trials);
  for (uint64_t tables : {1u, 3u, 5u, 7u, 11u, 21u}) {
    core::EstimatorSpec spec;
    spec.kind = core::EstimatorKind::kSkimmedSketch;
    spec.domain_size = domain;
    spec.space_counters = 4096;
    spec.num_tables = tables;
    const TrialStats stats = RunTrials(spec, w.f, w.g, w.exact, seeds);
    table.AddRow({std::to_string(tables), std::to_string(4096 / tables),
                  TablePrinter::FormatDouble(stats.mean_error),
                  TablePrinter::FormatDouble(stats.stddev_error)});
  }
  table.Print(std::cout);
}

void RunBaselineComparison(const Workload& w, uint64_t domain, int trials) {
  std::cout << "\nAblation C: every method at equal space 2048 "
               "(partitioned-agms is given EXACT a-priori statistics — its "
               "best case; the skimmed sketch needs none)\n";
  TablePrinter table("baselines", {"method", "mean err", "min", "max"});
  const std::vector<uint64_t> seeds = DefaultSeeds(trials);
  const auto plan = std::make_shared<sketch::PartitionPlan>(
      *sketch::PlanPartitions(w.f, w.g, 8, 2048, 5));
  for (core::EstimatorKind kind :
       {core::EstimatorKind::kAgms, core::EstimatorKind::kPartitionedAgms,
        core::EstimatorKind::kHashSketch, core::EstimatorKind::kSkimmedSketch,
        core::EstimatorKind::kCountMin, core::EstimatorKind::kSampling}) {
    core::EstimatorSpec spec;
    spec.kind = kind;
    spec.domain_size = domain;
    spec.space_counters = 2048;
    spec.agms_num_medians = 11;
    spec.partition_plan = plan;
    const TrialStats stats = RunTrials(spec, w.f, w.g, w.exact, seeds);
    table.AddRow({core::EstimatorKindName(kind),
                  TablePrinter::FormatDouble(stats.mean_error),
                  TablePrinter::FormatDouble(stats.min_error),
                  TablePrinter::FormatDouble(stats.max_error)});
  }
  table.Print(std::cout);
  std::cout << "[shape check] expected ordering on skewed data: skimmed ≈ "
               "hash-sketch < partitioned-agms < agms; count-min "
               "overestimates; sampling unreliable\n";
}

void RunDyadicBudgetAblation(const Workload& w, uint64_t domain, int trials) {
  std::cout << "\nAblation D: naive skim (all space level 0) vs dyadic "
               "maintenance (half the space on auxiliary levels)\n";
  TablePrinter table("dyadic budget", {"variant", "mean err", "sd"});
  const std::vector<uint64_t> seeds = DefaultSeeds(trials);
  for (bool use_dyadic : {false, true}) {
    core::EstimatorSpec spec;
    spec.kind = core::EstimatorKind::kSkimmedSketch;
    spec.domain_size = domain;
    spec.space_counters = 4096;
    spec.num_tables = 7;
    spec.skimmed_use_dyadic = use_dyadic;
    const TrialStats stats = RunTrials(spec, w.f, w.g, w.exact, seeds);
    table.AddRow({use_dyadic ? "dyadic" : "naive-scan",
                  TablePrinter::FormatDouble(stats.mean_error),
                  TablePrinter::FormatDouble(stats.stddev_error)});
  }
  table.Print(std::cout);
}

void RunSkimMarginAblation(const Workload& w, uint64_t domain, int trials) {
  std::cout << "\nAblation E: conservative-skim margin (Theorem 4 variant; "
               "fraction of T withheld per dense value)\n";
  TablePrinter table("skim margin", {"margin", "mean err", "sd"});
  const std::vector<uint64_t> seeds = DefaultSeeds(trials);
  for (double margin : {0.0, 0.1, 0.25, 0.5, 0.9}) {
    core::EstimatorSpec spec;
    spec.kind = core::EstimatorKind::kSkimmedSketch;
    spec.domain_size = domain;
    spec.space_counters = 2048;
    spec.num_tables = 7;
    spec.skim_margin = margin;
    const TrialStats stats = RunTrials(spec, w.f, w.g, w.exact, seeds);
    table.AddRow({TablePrinter::FormatDouble(margin, 2),
                  TablePrinter::FormatDouble(stats.mean_error),
                  TablePrinter::FormatDouble(stats.stddev_error)});
  }
  table.Print(std::cout);
}

void Run(RunScale scale) {
  const uint64_t domain = scale == RunScale::kQuick ? (1u << 12) : (1u << 14);
  const uint64_t count = scale == RunScale::kQuick ? 50000 : 100000;
  const int trials = scale == RunScale::kQuick ? 3 : 5;
  std::cout << "Skimmed-sketch ablations (domain " << domain << ", n=" << count
            << ", Zipf z=1.2, shift=64)\n";
  const Workload w = MakeWorkload(domain, count, 1.2, 64);
  std::cout << "exact |F⋈G| = " << w.exact << "\n";
  RunThresholdAblation(w, domain, trials);
  RunTableSplitAblation(w, domain, trials);
  RunBaselineComparison(w, domain, trials);
  RunDyadicBudgetAblation(w, domain, trials);
  RunSkimMarginAblation(w, domain, trials);
}

}  // namespace
}  // namespace bench
}  // namespace skimjoin

int main(int argc, char** argv) {
  skimjoin::bench::Run(skimjoin::bench::ParseScale(argc, argv));
  return 0;
}
