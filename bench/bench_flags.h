// Tiny command-line helpers shared by the bench binaries. Each binary
// supports:
//   --quick  : fewer spaces/trials (CI smoke run)
//   --paper  : the paper's full-scale parameters (slow on one core)
// with the default being a laptop-scale run that preserves the figures'
// shape (see EXPERIMENTS.md for the scaling rationale).

#ifndef SKIMJOIN_BENCH_BENCH_FLAGS_H_
#define SKIMJOIN_BENCH_BENCH_FLAGS_H_

#include <cstring>

namespace skimjoin {
namespace bench {

enum class RunScale { kQuick, kDefault, kPaper };

inline RunScale ParseScale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return RunScale::kQuick;
    if (std::strcmp(argv[i], "--paper") == 0) return RunScale::kPaper;
  }
  return RunScale::kDefault;
}

/// `--csv`: additionally emit each results table as CSV (for plotting).
inline bool CsvRequested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return true;
  }
  return false;
}

}  // namespace bench
}  // namespace skimjoin

#endif  // SKIMJOIN_BENCH_BENCH_FLAGS_H_
