// Measured error vs the paper's analytical envelopes (Theorems 2 and 5)
// and the space story of §1/§4.3: basic sketching needs the SQUARE of the
// Ω(n²/(ε·J)) lower bound, the skimmed sketch matches it. Regenerates the
// space-bound comparison as a table for a sweep of target errors.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/harness.h"
#include "core/skimmed_sketch.h"
#include "core/theory.h"
#include "sketch/agms_sketch.h"
#include "stream/zipf.h"
#include "util/table_printer.h"

namespace skimjoin {
namespace bench {
namespace {

void RunEnvelopeCheck(RunScale scale) {
  const uint64_t domain = scale == RunScale::kQuick ? (1u << 12) : (1u << 14);
  const uint64_t count = scale == RunScale::kQuick ? 50000 : 100000;
  const int trials = scale == RunScale::kQuick ? 5 : 10;

  const stream::FrequencyVector f =
      stream::ZipfDistribution(domain, 1.2).ExpectedFrequencies(count);
  const stream::FrequencyVector g =
      stream::ZipfDistribution(domain, 1.2, /*shift=*/32)
          .ExpectedFrequencies(count);
  const double exact = static_cast<double>(stream::JoinSize(f, g));
  const double f2_f = static_cast<double>(f.SelfJoinSize());
  const double f2_g = static_cast<double>(g.SelfJoinSize());

  std::cout << "Theorem envelopes vs measured additive error (Zipf 1.2, "
            << trials << " seeds)\n"
            << "exact J = " << exact << ", F2(F) = " << f2_f
            << ", F2(G) = " << f2_g << "\n";

  TablePrinter table("measured |est-J| vs theorem bound",
                     {"method", "space", "bound", "worst measured",
                      "mean measured", "within bound"});
  for (uint64_t space : {1024u, 4096u}) {
    // Basic AGMS, Theorem 2.
    const uint64_t means = space / 5;
    const double agms_bound = core::AgmsAdditiveErrorBound(f2_f, f2_g, means);
    double agms_worst = 0.0, agms_sum = 0.0;
    int agms_in = 0;
    for (int seed = 0; seed < trials; ++seed) {
      auto af = *sketch::AgmsSketch::Create({means, 5},
                                            static_cast<uint64_t>(seed) + 7);
      auto ag = *sketch::AgmsSketch::Create({means, 5},
                                            static_cast<uint64_t>(seed) + 7);
      af.Absorb(f);
      ag.Absorb(g);
      const double err =
          std::abs(*sketch::AgmsSketch::EstimateJoinSize(af, ag) - exact);
      agms_worst = std::max(agms_worst, err);
      agms_sum += err;
      agms_in += (err <= agms_bound);
    }
    table.AddRow({"agms (Thm 2)", std::to_string(space),
                  TablePrinter::FormatDouble(agms_bound, 0),
                  TablePrinter::FormatDouble(agms_worst, 0),
                  TablePrinter::FormatDouble(agms_sum / trials, 0),
                  std::to_string(agms_in) + "/" + std::to_string(trials)});

    // Skimmed, Theorem 5.
    const uint64_t buckets = space / 5;
    const double skim_bound = core::SkimmedAdditiveErrorBound(
        static_cast<double>(count), static_cast<double>(count), buckets);
    double skim_worst = 0.0, skim_sum = 0.0;
    int skim_in = 0;
    for (int seed = 0; seed < trials; ++seed) {
      core::SkimmedSketchConfig config;
      config.domain_size = domain;
      config.num_tables = 5;
      config.num_buckets = buckets;
      config.use_dyadic_skim = false;
      auto sf = *core::SkimmedSketch::Create(config,
                                             static_cast<uint64_t>(seed) + 7);
      auto sg = *core::SkimmedSketch::Create(config,
                                             static_cast<uint64_t>(seed) + 7);
      sf.Absorb(f);
      sg.Absorb(g);
      const double err =
          std::abs(*core::SkimmedSketch::EstimateJoinSize(sf, sg) - exact);
      skim_worst = std::max(skim_worst, err);
      skim_sum += err;
      skim_in += (err <= skim_bound);
    }
    table.AddRow({"skimmed (Thm 5)", std::to_string(space),
                  TablePrinter::FormatDouble(skim_bound, 0),
                  TablePrinter::FormatDouble(skim_worst, 0),
                  TablePrinter::FormatDouble(skim_sum / trials, 0),
                  std::to_string(skim_in) + "/" + std::to_string(trials)});
  }
  table.Print(std::cout);
}

void RunSpaceStory() {
  std::cout << "\nSpace required for target relative error ε at confidence "
               "95% (n = 1e6 per stream, J = 1e8, skewed F2 = 1e11)\n";
  TablePrinter table("space vs ε (counters)",
                     {"epsilon", "lower bound Ω(n²/εJ)", "skimmed (matches)",
                      "basic AGMS (quadratically worse)"});
  const double n = 1e6, join = 1e8, f2 = 1e11;
  const uint64_t tables = core::TablesForConfidence(0.05);
  for (double epsilon : {0.5, 0.2, 0.1, 0.05}) {
    const auto lower = *core::JoinSizeSpaceLowerBound(n, join, epsilon);
    const auto skim_buckets =
        *core::SkimmedBucketsForError(n, n, join, epsilon);
    const auto agms = *core::AgmsSpaceForError(f2, f2, join, epsilon, 0.05);
    table.AddRow({TablePrinter::FormatDouble(epsilon, 2),
                  std::to_string(lower),
                  std::to_string(skim_buckets * tables),
                  std::to_string(agms)});
  }
  table.Print(std::cout);
  std::cout << "[shape check] skimmed column tracks the lower bound within "
               "constants; the AGMS column is ~the square of it (§1 claims "
               "(1) and the Theorem 2/5 contrast)\n";
}

}  // namespace
}  // namespace bench
}  // namespace skimjoin

int main(int argc, char** argv) {
  skimjoin::bench::RunEnvelopeCheck(skimjoin::bench::ParseScale(argc, argv));
  skimjoin::bench::RunSpaceStory();
  return 0;
}
