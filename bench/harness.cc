#include "bench/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "util/histogram.h"
#include "util/logging.h"

namespace skimjoin {
namespace bench {

double RatioError(double estimate, double exact) {
  SKIMJOIN_CHECK_GT(exact, 0.0) << "benchmarks require a non-empty join";
  if (estimate <= 0.0) return kSanityError;
  const double ratio = std::max(estimate, exact) / std::min(estimate, exact);
  return std::min(ratio - 1.0, kSanityError);
}

TrialStats RunTrials(const core::EstimatorSpec& spec,
                     const stream::FrequencyVector& f,
                     const stream::FrequencyVector& g, double exact_join,
                     const std::vector<uint64_t>& seeds) {
  SKIMJOIN_CHECK(!seeds.empty());
  // Aggregation rides util::Histogram — its exact sum/min/max/stddev
  // tracking is the same summary the metrics layer exports, so the bench
  // harness no longer maintains its own.
  Histogram errors;
  for (uint64_t seed : seeds) {
    StatusOr<std::unique_ptr<core::JoinEstimatorPair>> pair =
        core::CreateJoinEstimatorPair(spec, seed);
    SKIMJOIN_CHECK(pair.ok()) << pair.status();
    (*pair)->AbsorbF(f);
    (*pair)->AbsorbG(g);
    StatusOr<double> estimate = (*pair)->Estimate();
    SKIMJOIN_CHECK(estimate.ok()) << estimate.status();
    errors.Add(RatioError(*estimate, exact_join));
  }
  TrialStats stats;
  stats.mean_error = errors.Mean();
  stats.min_error = errors.Min();
  stats.max_error = errors.Max();
  stats.stddev_error = errors.StdDev();
  return stats;
}

std::vector<uint64_t> DefaultSeeds(int count) {
  std::vector<uint64_t> seeds;
  seeds.reserve(count);
  for (int i = 0; i < count; ++i) {
    seeds.push_back(0x5EED0000u + static_cast<uint64_t>(i));
  }
  return seeds;
}

std::string SpaceLabel(uint64_t counters) {
  const double kb = static_cast<double>(counters) * 8.0 / 1024.0;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%llu (%.1f KB)",
                static_cast<unsigned long long>(counters), kb);
  return buffer;
}

}  // namespace bench
}  // namespace skimjoin
