// SKIMDENSE quality and cost (§4.2, Theorems 3–4):
//   * recall/precision of dense-frequency extraction as the threshold and
//     bucket count vary,
//   * residual-frequency bound after skimming,
//   * wall-clock comparison of the naive O(m·s) domain-scan skim against
//     the dyadic O((n/T)·log m) candidate search as the domain grows.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <utility>
#include <vector>

#include "bench/bench_flags.h"
#include "core/dyadic_skim.h"
#include "core/skim.h"
#include "stream/zipf.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace skimjoin {
namespace bench {
namespace {

struct SkimQuality {
  double recall = 0.0;     // dense values recovered / true dense values
  double precision = 0.0;  // recovered values truly dense / recovered
  int64_t max_residual = 0;
  size_t extracted = 0;
};

SkimQuality EvaluateSkim(const stream::FrequencyVector& f,
                         const core::DenseFrequencies& dense,
                         int64_t threshold) {
  SkimQuality quality;
  quality.extracted = dense.size();
  uint64_t true_dense = 0;
  uint64_t recovered = 0;
  for (uint64_t v = 0; v < f.domain_size(); ++v) {
    if (f.Get(v) >= threshold) {
      ++true_dense;
      recovered += (core::LookupDense(dense, v) != 0);
    }
    quality.max_residual =
        std::max<int64_t>(quality.max_residual,
                          std::llabs(f.Get(v) - core::LookupDense(dense, v)));
  }
  uint64_t correct = 0;
  for (const auto& [value, freq] : dense) {
    correct += (f.Get(value) >= threshold / 2);
  }
  quality.recall =
      true_dense == 0 ? 1.0
                      : static_cast<double>(recovered) / true_dense;
  quality.precision =
      dense.empty() ? 1.0 : static_cast<double>(correct) / dense.size();
  return quality;
}

void RunQuality(RunScale scale) {
  const uint64_t domain = scale == RunScale::kQuick ? (1u << 12) : (1u << 14);
  const uint64_t count = scale == RunScale::kQuick ? 50000 : 200000;
  std::cout << "SKIMDENSE extraction quality (domain " << domain << ", n="
            << count << ", Zipf z=1.2, 7 tables)\n";

  const stream::FrequencyVector f =
      stream::ZipfDistribution(domain, 1.2).ExpectedFrequencies(count);

  TablePrinter table("extraction quality vs buckets and threshold",
                     {"buckets", "threshold", "recall", "precision",
                      "extracted", "max residual"});
  for (uint64_t buckets : {128u, 512u, 2048u}) {
    for (int64_t threshold : {int64_t{100}, int64_t{400}, int64_t{1600}}) {
      auto sketch = *sketch::HashSketch::Create({7, buckets}, 77);
      sketch.Absorb(f);
      const core::DenseFrequencies dense =
          core::SkimDenseNaive(&sketch, domain, threshold);
      const SkimQuality q = EvaluateSkim(f, dense, threshold);
      table.AddRow({std::to_string(buckets), std::to_string(threshold),
                    TablePrinter::FormatDouble(q.recall, 3),
                    TablePrinter::FormatDouble(q.precision, 3),
                    std::to_string(q.extracted),
                    std::to_string(q.max_residual)});
    }
  }
  table.Print(std::cout);
}

void RunScanVsDyadic(RunScale scale) {
  std::cout << "\nnaive domain-scan skim vs dyadic candidate search\n";
  const uint64_t count = scale == RunScale::kQuick ? 50000 : 200000;
  TablePrinter table(
      "skim wall time vs domain size",
      {"domain", "naive(ms)", "dyadic(ms)", "candidates", "dense found"});
  std::vector<uint64_t> domains = {1u << 12, 1u << 14, 1u << 16};
  if (scale != RunScale::kQuick) domains.push_back(1u << 18);
  for (uint64_t domain : domains) {
    const stream::FrequencyVector f =
        stream::ZipfDistribution(domain, 1.2).ExpectedFrequencies(count);
    const int64_t threshold =
        std::max<int64_t>(2, static_cast<int64_t>(count / 500));

    auto level0 = *sketch::HashSketch::Create({7, 1024}, 5);
    level0.Absorb(f);
    auto dyadic = *core::DyadicSkimmer::Create(domain, {7, 256}, 5);
    dyadic.Absorb(f);

    Timer naive_timer;
    auto naive_sketch = level0;
    const core::DenseFrequencies naive =
        core::SkimDenseNaive(&naive_sketch, domain, threshold);
    const double naive_ms = naive_timer.ElapsedMillis();

    Timer dyadic_timer;
    const std::vector<uint64_t> candidates =
        dyadic.FindCandidates(threshold, 0.5);
    auto dyadic_sketch = level0;
    const core::DenseFrequencies via_dyadic =
        core::SkimDenseCandidates(&dyadic_sketch, candidates, threshold);
    const double dyadic_ms = dyadic_timer.ElapsedMillis();

    table.AddRow({std::to_string(domain),
                  TablePrinter::FormatDouble(naive_ms, 2),
                  TablePrinter::FormatDouble(dyadic_ms, 2),
                  std::to_string(candidates.size()),
                  std::to_string(via_dyadic.size()) + "/" +
                      std::to_string(naive.size())});
  }
  table.Print(std::cout);
  std::cout << "\n[shape check] dyadic time grows ~log(m) while naive grows "
               "~m; both recover the same dense sets\n";
}

}  // namespace
}  // namespace bench
}  // namespace skimjoin

int main(int argc, char** argv) {
  const auto scale = skimjoin::bench::ParseScale(argc, argv);
  skimjoin::bench::RunQuality(scale);
  skimjoin::bench::RunScanVsDyadic(scale);
  return 0;
}
