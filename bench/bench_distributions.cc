// Error across input distributions at fixed space: Zipf (several skews),
// self-similar 80–20, and uniform. Complements Figure 5's Zipf-only sweep
// by showing where skimming pays off (any skew) and where it gracefully
// degenerates to the plain hash-sketch estimator (uniform data has nothing
// to skim).

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/harness.h"
#include "core/join_estimators.h"
#include "stream/generators.h"
#include "stream/zipf.h"
#include "util/table_printer.h"

namespace skimjoin {
namespace bench {
namespace {

struct NamedWorkload {
  std::string name;
  stream::FrequencyVector f;
  stream::FrequencyVector g;
};

void Run(RunScale scale) {
  const uint64_t domain = scale == RunScale::kQuick ? (1u << 12) : (1u << 14);
  const uint64_t count = scale == RunScale::kQuick ? 50000 : 100000;
  const int trials = scale == RunScale::kQuick ? 3 : 5;
  constexpr uint64_t kSpace = 2048;

  std::cout << "Estimator error across input distributions (space " << kSpace
            << " counters/stream, " << trials << " trials)\n";

  std::vector<NamedWorkload> workloads;
  for (double z : {0.5, 1.0, 1.5}) {
    workloads.push_back(
        {"zipf-" + TablePrinter::FormatDouble(z, 1),
         stream::ZipfDistribution(domain, z).ExpectedFrequencies(count),
         stream::ZipfDistribution(domain, z, /*shift=*/64)
             .ExpectedFrequencies(count)});
  }
  {
    stream::SelfSimilarDistribution dist(domain, 0.8);
    // Self-similar has no shift knob; join it against a differently-biased
    // copy for a non-self-join.
    stream::SelfSimilarDistribution other(domain, 0.7);
    workloads.push_back({"selfsim-80/20", dist.ExpectedFrequencies(count),
                         other.ExpectedFrequencies(count)});
  }
  {
    stream::UniformDistribution dist(domain);
    workloads.push_back({"uniform", dist.ExpectedFrequencies(count),
                         dist.ExpectedFrequencies(count)});
  }

  const std::vector<uint64_t> seeds = DefaultSeeds(trials);
  TablePrinter table("mean ratio error by distribution and method",
                     {"workload", "exact J", "agms", "hash-sketch", "skimmed"});
  for (const NamedWorkload& w : workloads) {
    const double exact = static_cast<double>(stream::JoinSize(w.f, w.g));
    std::vector<std::string> row = {w.name,
                                    TablePrinter::FormatDouble(exact, 0)};
    for (core::EstimatorKind kind :
         {core::EstimatorKind::kAgms, core::EstimatorKind::kHashSketch,
          core::EstimatorKind::kSkimmedSketch}) {
      core::EstimatorSpec spec;
      spec.kind = kind;
      spec.domain_size = domain;
      spec.space_counters = kSpace;
      spec.agms_num_medians = 11;
      const TrialStats stats = RunTrials(spec, w.f, w.g, exact, seeds);
      row.push_back(TablePrinter::FormatDouble(stats.mean_error));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\n[shape check] skimming's advantage grows with skew; on "
               "uniform data all ±1-sketch methods behave alike (nothing "
               "crosses the skim threshold)\n";
}

}  // namespace
}  // namespace bench
}  // namespace skimjoin

int main(int argc, char** argv) {
  skimjoin::bench::Run(skimjoin::bench::ParseScale(argc, argv));
  return 0;
}
