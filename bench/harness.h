// Shared support for the figure-regeneration benchmark binaries: the
// paper's answer-quality metric, repeated-trial runners over the uniform
// estimator interface, and workload descriptors.

#ifndef SKIMJOIN_BENCH_HARNESS_H_
#define SKIMJOIN_BENCH_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/join_estimators.h"
#include "stream/frequency_vector.h"

namespace skimjoin {
namespace bench {

/// The error cap the paper applies when an estimate is tiny or negative
/// ("we simply consider the error to be a large constant, say 10").
inline constexpr double kSanityError = 10.0;

/// The paper's symmetric answer-quality metric (§5.1): standard relative
/// error is biased in favor of underestimates, so the error is measured as
/// max(est, J)/min(est, J) - 1, clamped to kSanityError, with non-positive
/// estimates charged the full sanity constant.
double RatioError(double estimate, double exact);

/// One comparison cell: a method evaluated at a space budget over a fixed
/// workload, averaged over trials with independent seeds (the paper repeats
/// each experiment 5–10 times and averages).
struct TrialStats {
  double mean_error = 0.0;
  double min_error = 0.0;
  double max_error = 0.0;
  double stddev_error = 0.0;
};

/// Builds the estimator pair described by `spec` once per seed, absorbs the
/// two frequency vectors (linearity; see DESIGN.md "Substitutions"), and
/// aggregates the ratio errors against `exact_join`.
TrialStats RunTrials(const core::EstimatorSpec& spec,
                     const stream::FrequencyVector& f,
                     const stream::FrequencyVector& g, double exact_join,
                     const std::vector<uint64_t>& seeds);

/// The seeds used across all benches (deterministic reproduction).
std::vector<uint64_t> DefaultSeeds(int count);

/// Formats a count of counters as words and KB for the tables.
std::string SpaceLabel(uint64_t counters);

}  // namespace bench
}  // namespace skimjoin

#endif  // SKIMJOIN_BENCH_HARNESS_H_
