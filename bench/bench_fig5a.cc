// Regenerates Figure 5(a) of the paper: relative (ratio) error vs. space
// for basic AGMS sketching and skimmed sketches, joining Zipf(z = 1.0)
// against its right-shifted copy, shifts {100, 200, 300}.
//
// Default scale is laptop-sized (domain 2^14, 100k elements per stream) —
// the paper's 2^18 / 4M-element runs are available via --paper (slow on a
// single core because basic AGMS touches `space` counters per distinct
// value). What matters for reproduction is the SHAPE: skimmed error well
// below AGMS at equal space, error growing with the shift parameter, and
// errors shrinking as space grows.

#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/harness.h"
#include "core/join_estimators.h"
#include "stream/zipf.h"
#include "util/table_printer.h"

namespace skimjoin {
namespace bench {
namespace {

struct Params {
  uint64_t domain;
  uint64_t stream_count;
  std::vector<uint64_t> spaces;
  std::vector<uint64_t> shifts;
  int trials;
};

Params ParamsForScale(RunScale scale) {
  switch (scale) {
    case RunScale::kQuick:
      return {1u << 12, 50000, {512, 2048}, {100, 300}, 3};
    case RunScale::kPaper:
      return {1u << 18,  4000000, {1024, 2048, 4096, 8192, 16384},
              {100, 200, 300}, 5};
    case RunScale::kDefault:
      break;
  }
  return {1u << 14, 100000, {256, 512, 1024, 2048, 4096}, {100, 200, 300}, 5};
}

void Run(RunScale scale, bool csv) {
  const Params params = ParamsForScale(scale);
  constexpr double kZipf = 1.0;
  const std::vector<uint64_t> seeds = DefaultSeeds(params.trials);

  std::cout << "Figure 5(a): basic AGMS vs skimmed sketches, Zipf z=" << kZipf
            << ", domain=" << params.domain << ", n=" << params.stream_count
            << " per stream, " << params.trials << " trials/cell\n";

  const stream::FrequencyVector f =
      stream::ZipfDistribution(params.domain, kZipf)
          .ExpectedFrequencies(params.stream_count);

  int skim_wins = 0;
  int cells = 0;
  double improvement_sum = 0.0;

  for (uint64_t shift : params.shifts) {
    const stream::FrequencyVector g =
        stream::ZipfDistribution(params.domain, kZipf, shift)
            .ExpectedFrequencies(params.stream_count);
    const double exact = static_cast<double>(stream::JoinSize(f, g));
    std::cout << "\nshift=" << shift << "  exact |F⋈G| = " << exact
              << "  F2(F) = " << f.SelfJoinSize()
              << "  F2(G) = " << g.SelfJoinSize() << "\n";

    TablePrinter table("Fig 5(a), shift=" + std::to_string(shift),
                       {"space(words)", "agms err", "agms sd", "skim err",
                        "skim sd", "agms/skim"});
    for (uint64_t space : params.spaces) {
      core::EstimatorSpec agms_spec;
      agms_spec.kind = core::EstimatorKind::kAgms;
      agms_spec.domain_size = params.domain;
      agms_spec.space_counters = space;
      agms_spec.agms_num_medians = 11;
      const TrialStats agms = RunTrials(agms_spec, f, g, exact, seeds);

      core::EstimatorSpec skim_spec;
      skim_spec.kind = core::EstimatorKind::kSkimmedSketch;
      skim_spec.domain_size = params.domain;
      skim_spec.space_counters = space;
      skim_spec.num_tables = 7;
      const TrialStats skim = RunTrials(skim_spec, f, g, exact, seeds);

      const double improvement =
          skim.mean_error > 0 ? agms.mean_error / skim.mean_error : kSanityError;
      skim_wins += (skim.mean_error <= agms.mean_error);
      improvement_sum += improvement;
      ++cells;

      table.AddRow({std::to_string(space),
                    TablePrinter::FormatDouble(agms.mean_error),
                    TablePrinter::FormatDouble(agms.stddev_error),
                    TablePrinter::FormatDouble(skim.mean_error),
                    TablePrinter::FormatDouble(skim.stddev_error),
                    TablePrinter::FormatDouble(improvement, 2)});
    }
    table.Print(std::cout);
    if (csv) table.PrintCsv(std::cout);
  }

  std::cout << "\n[shape check] skimmed <= agms in " << skim_wins << "/"
            << cells << " cells; mean improvement factor "
            << TablePrinter::FormatDouble(improvement_sum / cells, 2)
            << " (paper reports ~5x at moderate skew)\n";
}

}  // namespace
}  // namespace bench
}  // namespace skimjoin

int main(int argc, char** argv) {
  skimjoin::bench::Run(skimjoin::bench::ParseScale(argc, argv),
                      skimjoin::bench::CsvRequested(argc, argv));
  return 0;
}
