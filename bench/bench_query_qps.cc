// Read-side throughput for the two-stage read path (DESIGN.md §11): point
// and join queries per second through the engine's Answer* calls, with the
// epoch-invalidated query cache and slim views toggled by a bitmask arg
// (1 = query cache, 2 = slim views, 3 = both; 0 = fat path, no cache).
//
// Three workload shapes:
//   * BM_PointQueryQps   — repeated point queries over a hot working set on
//                          a quiescent stream (the cache's best case; the
//                          CI gate requires >= 10x for /1 vs /0).
//   * BM_JoinQueryQps    — repeated join estimates on quiescent streams;
//                          the skimmed estimator recomputes SKIMDENSE +
//                          four subjoins per miss, so hits dominate.
//   * BM_LiveIngestMixQps — interleaved ingest batches and query bursts on
//                          one thread (the engine is single-writer): every
//                          batch bumps the stream epoch, so the cache
//                          invalidates each round and earns its keep only
//                          within a burst.
//
// Per-query latency quantiles (sampled every kLatencySampleEvery-th query
// to keep clock reads off the common path) are exported as p50/p99 counters
// in nanoseconds.

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "benchmark/benchmark.h"
#include "query/engine.h"
#include "stream/stream_element.h"
#include "stream/zipf.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/random.h"

namespace skimjoin {
namespace {

constexpr uint64_t kDomain = 1u << 16;
constexpr uint64_t kHotValues = 64;
constexpr int kLatencySampleEvery = 16;

query::Engine::ReadPathOptions ReadPathFromMask(int64_t mask) {
  query::Engine::ReadPathOptions options;
  options.use_query_cache = (mask & 1) != 0;
  options.use_slim_views = (mask & 2) != 0;
  return options;
}

const std::vector<query::StreamUpdate>& ZipfUpdates1M() {
  static const auto* updates = [] {
    Rng rng(17);
    const std::vector<stream::StreamElement> elements =
        stream::ZipfDistribution(kDomain, 1.1).GenerateElements(1'000'000,
                                                                &rng);
    auto* out = new std::vector<query::StreamUpdate>;
    out->reserve(elements.size());
    for (const stream::StreamElement& e : elements) {
      out->push_back({.value = e.value, .count = e.weight});
    }
    return out;
  }();
  return *updates;
}

void ExportLatency(benchmark::State& state, const Histogram& latency) {
  if (latency.Count() == 0) return;
  state.counters["latency_p50_ns"] = latency.ApproximateQuantile(0.5);
  state.counters["latency_p99_ns"] = latency.ApproximateQuantile(0.99);
}

void BM_PointQueryQps(benchmark::State& state) {
  query::Engine engine;
  SKIMJOIN_CHECK(
      engine.RegisterStream({.name = "f", .domain_size = kDomain}).ok());
  query::FrequencyQuerySpec freq;
  freq.stream = "f";
  // High-accuracy configuration (many independent tables, wide rows): what a
  // serving deployment that cares about point-estimate tails runs, and the
  // regime where recomputing the COUNTSKETCH median per query actually hurts.
  freq.num_tables = 21;
  freq.space_counters = 8192;
  const StatusOr<query::QueryId> id = engine.AddFrequencyQuery(freq, 1);
  SKIMJOIN_CHECK(id.ok());
  SKIMJOIN_CHECK(engine.UpdateBatch("f", ZipfUpdates1M()).ok());
  engine.SetReadPathOptions(ReadPathFromMask(state.range(0)));

  Histogram latency;
  uint64_t value = 0;
  int64_t sample_countdown = kLatencySampleEvery;
  for (auto _ : state) {
    const uint64_t probe = value++ % kHotValues;  // hot set: repeats fast
    if (--sample_countdown == 0) {
      sample_countdown = kLatencySampleEvery;
      const auto start = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(engine.AnswerPointFrequency(*id, probe));
      latency.Add(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
    } else {
      benchmark::DoNotOptimize(engine.AnswerPointFrequency(*id, probe));
    }
  }
  state.SetItemsProcessed(state.iterations());
  ExportLatency(state, latency);
}
BENCHMARK(BM_PointQueryQps)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_JoinQueryQps(benchmark::State& state) {
  query::Engine engine;
  SKIMJOIN_CHECK(
      engine.RegisterStream({.name = "f", .domain_size = kDomain}).ok());
  SKIMJOIN_CHECK(
      engine.RegisterStream({.name = "g", .domain_size = kDomain}).ok());
  query::JoinQuerySpec join;
  join.left_stream = "f";
  join.right_stream = "g";
  join.estimator.kind = core::EstimatorKind::kSkimmedSketch;
  join.estimator.space_counters = 4096;
  const StatusOr<query::QueryId> id = engine.AddJoinQuery(join, 1);
  SKIMJOIN_CHECK(id.ok());
  const auto& updates = ZipfUpdates1M();
  const std::span<const query::StreamUpdate> prefix(updates.data(), 200'000);
  SKIMJOIN_CHECK(engine.UpdateBatch("f", prefix).ok());
  SKIMJOIN_CHECK(engine.UpdateBatch("g", prefix).ok());
  engine.SetReadPathOptions(ReadPathFromMask(state.range(0)));

  Histogram latency;
  int64_t sample_countdown = kLatencySampleEvery;
  for (auto _ : state) {
    if (--sample_countdown == 0) {
      sample_countdown = kLatencySampleEvery;
      const auto start = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(engine.AnswerJoin(*id));
      latency.Add(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
    } else {
      benchmark::DoNotOptimize(engine.AnswerJoin(*id));
    }
  }
  state.SetItemsProcessed(state.iterations());
  ExportLatency(state, latency);
}
BENCHMARK(BM_JoinQueryQps)->Arg(0)->Arg(1);

// Live ingest: each iteration absorbs one 256-update batch (bumping the
// stream's epoch, so any cached answers invalidate) and then answers a
// 64-query burst over the hot set. items processed = queries answered.
void BM_LiveIngestMixQps(benchmark::State& state) {
  constexpr size_t kBatch = 256;
  constexpr uint64_t kBurst = 64;
  query::Engine engine;
  SKIMJOIN_CHECK(
      engine.RegisterStream({.name = "f", .domain_size = kDomain}).ok());
  query::FrequencyQuerySpec freq;
  freq.stream = "f";
  freq.num_tables = 21;
  freq.space_counters = 8192;
  const StatusOr<query::QueryId> id = engine.AddFrequencyQuery(freq, 1);
  SKIMJOIN_CHECK(id.ok());
  const auto& updates = ZipfUpdates1M();
  const std::span<const query::StreamUpdate> all(updates);
  SKIMJOIN_CHECK(engine.UpdateBatch("f", all.first(100'000)).ok());
  engine.SetReadPathOptions(ReadPathFromMask(state.range(0)));

  size_t offset = 100'000;
  for (auto _ : state) {
    if (offset + kBatch > all.size()) offset = 0;
    SKIMJOIN_CHECK(engine.UpdateBatch("f", all.subspan(offset, kBatch)).ok());
    offset += kBatch;
    for (uint64_t probe = 0; probe < kBurst; ++probe) {
      benchmark::DoNotOptimize(
          engine.AnswerPointFrequency(*id, probe % kHotValues));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBurst));
}
BENCHMARK(BM_LiveIngestMixQps)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace skimjoin

// BENCHMARK_MAIN plus skimjoin's own build type as a context field: the
// stock "library_build_type" describes the google-benchmark library (often
// a distribution debug build), not this library's optimization level —
// tools/check_bench_regression.py prefers this field for its advisory.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("skimjoin_build_type", "release");
#else
  benchmark::AddCustomContext("skimjoin_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
