// Regenerates the real-life (Census CPS) experiment of §5.1–5.2: joining
// the "weekly wage" attribute against "weekly wage overtime" over one
// month's worth of survey records. The raw CPS extract is not
// redistributable, so the workload comes from stream::CensusLikeGenerator,
// which reproduces its shape (zero spike, round-number modes, heavy tail;
// see DESIGN.md "Substitutions").
//
// The paper's reported outcome: both methods do well on this data, with the
// skimmed sketch at roughly HALF the relative error of basic AGMS.

#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/harness.h"
#include "core/join_estimators.h"
#include "stream/census_like.h"
#include "stream/exact.h"
#include "util/table_printer.h"

namespace skimjoin {
namespace bench {
namespace {

void Run(RunScale scale) {
  stream::CensusLikeGenerator::Options options;
  options.domain_size = 1u << 16;
  options.num_records = scale == RunScale::kQuick ? 40000 : 159434;
  const int trials = scale == RunScale::kQuick ? 3 : 5;
  const std::vector<uint64_t> spaces =
      scale == RunScale::kQuick
          ? std::vector<uint64_t>{512, 2048}
          : std::vector<uint64_t>{256, 512, 1024, 2048, 4096};

  std::cout << "Census-like experiment: weekly-wage ⋈ weekly-wage-overtime, "
            << options.num_records << " records, domain "
            << options.domain_size << " (synthetic CPS substitute)\n";

  stream::CensusLikeGenerator generator(options, /*seed=*/2002);
  const auto wage_elements = generator.GenerateWageStream();
  const auto overtime_elements = generator.GenerateOvertimeStream();
  const stream::FrequencyVector f =
      stream::Materialize(wage_elements, options.domain_size);
  const stream::FrequencyVector g =
      stream::Materialize(overtime_elements, options.domain_size);
  const double exact = static_cast<double>(stream::JoinSize(f, g));
  std::cout << "exact |F⋈G| = " << exact << "  F2(wage) = " << f.SelfJoinSize()
            << "  F2(overtime) = " << g.SelfJoinSize() << "\n";

  const std::vector<uint64_t> seeds = DefaultSeeds(trials);
  TablePrinter table("Census-like join, error vs space",
                     {"space(words)", "agms err", "skim err", "agms/skim"});
  int skim_wins = 0;
  for (uint64_t space : spaces) {
    core::EstimatorSpec agms_spec;
    agms_spec.kind = core::EstimatorKind::kAgms;
    agms_spec.domain_size = options.domain_size;
    agms_spec.space_counters = space;
    agms_spec.agms_num_medians = 11;
    const TrialStats agms = RunTrials(agms_spec, f, g, exact, seeds);

    core::EstimatorSpec skim_spec;
    skim_spec.kind = core::EstimatorKind::kSkimmedSketch;
    skim_spec.domain_size = options.domain_size;
    skim_spec.space_counters = space;
    skim_spec.num_tables = 7;
    const TrialStats skim = RunTrials(skim_spec, f, g, exact, seeds);

    skim_wins += (skim.mean_error <= agms.mean_error);
    const double improvement =
        skim.mean_error > 0 ? agms.mean_error / skim.mean_error : kSanityError;
    table.AddRow({std::to_string(space),
                  TablePrinter::FormatDouble(agms.mean_error),
                  TablePrinter::FormatDouble(skim.mean_error),
                  TablePrinter::FormatDouble(improvement, 2)});
  }
  table.Print(std::cout);
  std::cout << "\n[shape check] skimmed <= agms in " << skim_wins << "/"
            << spaces.size()
            << " cells (paper: skimmed at roughly half the AGMS error, both "
               "small)\n";
}

}  // namespace
}  // namespace bench
}  // namespace skimjoin

int main(int argc, char** argv) {
  skimjoin::bench::Run(skimjoin::bench::ParseScale(argc, argv));
  return 0;
}
