// Micro-benchmarks for the paper's per-element processing-time claims
// (§4.1, §4.3): basic AGMS touches every one of its `space` counters per
// element, the hash sketch touches one counter per table, and the dyadic-
// maintained skimmed sketch touches one counter per table per level — i.e.,
// O(space) vs O(s) vs O(s·log m). Run with google-benchmark; times are
// per-element.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "benchmark/benchmark.h"
#include "core/skimmed_sketch.h"
#include "hashing/simd_hash.h"
#include "ingest/concurrent_ingestor.h"
#include "ingest/parallel_ingestor.h"
#include "query/engine.h"
#include "sketch/agms_sketch.h"
#include "sketch/count_min_sketch.h"
#include "sketch/hash_sketch.h"
#include "sketch/kernel_options.h"
#include "stream/stream_element.h"
#include "stream/zipf.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"

namespace skimjoin {
namespace {

constexpr uint64_t kDomain = 1u << 18;

void BM_AgmsUpdate(benchmark::State& state) {
  const auto space = static_cast<uint64_t>(state.range(0));
  sketch::AgmsConfig config;
  config.num_medians = 11;
  config.num_means = space / 11;
  auto sketch = *sketch::AgmsSketch::Create(config, 1);
  Rng rng(2);
  for (auto _ : state) {
    sketch.Update(rng.NextUint64Below(kDomain), 1);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["counters_touched"] =
      static_cast<double>(config.TotalCounters());
}
BENCHMARK(BM_AgmsUpdate)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_HashSketchUpdate(benchmark::State& state) {
  const auto space = static_cast<uint64_t>(state.range(0));
  sketch::HashSketchConfig config;
  config.num_tables = 7;
  config.num_buckets = space / 7;
  auto sketch = *sketch::HashSketch::Create(config, 1);
  Rng rng(2);
  for (auto _ : state) {
    sketch.Update(rng.NextUint64Below(kDomain), 1);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["counters_touched"] = static_cast<double>(config.num_tables);
}
BENCHMARK(BM_HashSketchUpdate)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_SkimmedSketchUpdateDyadic(benchmark::State& state) {
  const auto space = static_cast<uint64_t>(state.range(0));
  core::SkimmedSketchConfig config;
  config.domain_size = kDomain;
  config.num_tables = 7;
  config.num_buckets = space / 14;
  config.dyadic_num_buckets = space / (14 * 18);
  if (config.dyadic_num_buckets == 0) config.dyadic_num_buckets = 1;
  config.use_dyadic_skim = true;
  auto sketch = *core::SkimmedSketch::Create(config, 1);
  Rng rng(2);
  for (auto _ : state) {
    sketch.Update(rng.NextUint64Below(kDomain), 1);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["counters_touched"] =
      static_cast<double>(config.num_tables * 19);  // level 0 + 18 levels
}
BENCHMARK(BM_SkimmedSketchUpdateDyadic)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384);

void BM_CountMinUpdate(benchmark::State& state) {
  sketch::CountMinConfig config;
  config.num_tables = 5;
  config.num_buckets = static_cast<uint64_t>(state.range(0)) / 5;
  auto sketch = *sketch::CountMinSketch::Create(config, 1);
  Rng rng(2);
  for (auto _ : state) {
    sketch.Update(rng.NextUint64Below(kDomain), 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinUpdate)->Arg(1024)->Arg(4096);

// Estimation-time cost: skimming a copy plus the four subjoin estimates.
void BM_SkimmedJoinEstimate(benchmark::State& state) {
  const auto domain = static_cast<uint64_t>(state.range(0));
  core::SkimmedSketchConfig config;
  config.domain_size = domain;
  config.num_tables = 5;
  config.num_buckets = 512;
  config.use_dyadic_skim = true;
  config.dyadic_num_buckets = 64;
  auto f = *core::SkimmedSketch::Create(config, 1);
  auto g = *core::SkimmedSketch::Create(config, 1);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    f.Update(rng.NextUint64Below(domain / 4), 1);
    g.Update(rng.NextUint64Below(domain / 4), 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SkimmedSketch::EstimateJoinSize(f, g));
  }
}
BENCHMARK(BM_SkimmedJoinEstimate)->Arg(1u << 12)->Arg(1u << 16)->Arg(1u << 18);

void BM_AgmsJoinEstimate(benchmark::State& state) {
  sketch::AgmsConfig config;
  config.num_medians = 11;
  config.num_means = static_cast<uint64_t>(state.range(0)) / 11;
  auto f = *sketch::AgmsSketch::Create(config, 1);
  auto g = *sketch::AgmsSketch::Create(config, 1);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    f.Update(rng.NextUint64Below(kDomain), 1);
    g.Update(rng.NextUint64Below(kDomain), 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch::AgmsSketch::EstimateJoinSize(f, g));
  }
}
BENCHMARK(BM_AgmsJoinEstimate)->Arg(1024)->Arg(4096);

// ---------------------------------------------------------------------------
// Batched and threaded ingestion. One shared 10M-element Zipf stream,
// generated once outside all timing loops.

const std::vector<stream::StreamElement>& ZipfStream10M() {
  static const auto* stream = [] {
    Rng rng(7);
    return new std::vector<stream::StreamElement>(
        stream::ZipfDistribution(kDomain, 1.1).GenerateElements(10'000'000,
                                                                &rng));
  }();
  return *stream;
}

core::SkimmedSketchConfig IngestBenchConfig() {
  core::SkimmedSketchConfig config;
  config.domain_size = kDomain;
  config.num_tables = 7;
  config.num_buckets = 1024;
  config.use_dyadic_skim = true;
  config.dyadic_num_buckets = 64;
  return config;
}

// Scalar baseline over the same stream the batch/threaded modes consume.
void BM_SkimmedSketchScalarIngest(benchmark::State& state) {
  auto sketch = *core::SkimmedSketch::Create(IngestBenchConfig(), 1);
  const auto& stream = ZipfStream10M();
  for (auto _ : state) {
    for (const stream::StreamElement& element : stream) {
      sketch.Update(element.value, element.weight);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_SkimmedSketchScalarIngest)->Unit(benchmark::kMillisecond);

// Single-threaded batch kernel, chunked at range(0) elements: isolates the
// table-major / hash-hoisting gain from the threading gain.
void BM_SkimmedSketchBatchIngest(benchmark::State& state) {
  const auto batch = static_cast<size_t>(state.range(0));
  auto sketch = *core::SkimmedSketch::Create(IngestBenchConfig(), 1);
  const auto& stream = ZipfStream10M();
  const std::span<const stream::StreamElement> all(stream);
  for (auto _ : state) {
    for (size_t off = 0; off < all.size(); off += batch) {
      sketch.UpdateBatch(all.subspan(off, std::min(batch, all.size() - off)));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_SkimmedSketchBatchIngest)
    ->Arg(4096)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);

// Threaded mode: range(0) shards, replica-merge via linearity. The result
// is bit-identical to the sequential runs above; speedup tracks physical
// cores (a 1-core host shows none, by construction).
void BM_SkimmedSketchParallelIngest(benchmark::State& state) {
  const auto shards = static_cast<uint64_t>(state.range(0));
  auto master = *core::SkimmedSketch::Create(IngestBenchConfig(), 1);
  auto ingestor =
      *ingest::ParallelIngestor<core::SkimmedSketch>::Create(master, shards);
  const auto& stream = ZipfStream10M();
  for (auto _ : state) {
    ingestor.IngestInto(&master, stream);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.counters["shards"] = static_cast<double>(shards);
}
// UseRealTime: worker-thread CPU is invisible to benchmark's per-process
// CPU clock, so wall time is the only honest basis for items/sec here.
BENCHMARK(BM_SkimmedSketchParallelIngest)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Truly concurrent ingestion (DESIGN.md §13): persistent workers, private
// replicas, relaxed-consistency propagation into the shared synopsis.
// HashSketch with all kernels on (SIMD included) is the aggregate-
// throughput target row — the release gate reads items_per_second off
// /N where N is the runner's hardware concurrency and checks the
// multi-thread scaling ratio against /1 (machine-aware: only enforced on
// runners with enough cores to scale).

// Defined with the kernel-ablation section below; shared here so the
// concurrent rows are directly comparable with the /15 single-thread row.
const std::vector<stream::StreamElement>& ZipfStream10MZ10();

void BM_HashSketchConcurrentIngest(benchmark::State& state) {
  const auto workers = static_cast<uint64_t>(state.range(0));
  sketch::HashSketchConfig config;
  config.num_tables = 7;
  config.num_buckets = 1024;
  auto shared = *sketch::HashSketch::Create(config, 1);
  ingest::ConcurrentIngestOptions options;
  options.num_workers = workers;
  auto ingestor = *ingest::ConcurrentIngestor<sketch::HashSketch>::Create(
      &shared, options);
  const auto& stream = ZipfStream10MZ10();
  const std::span<const stream::StreamElement> all(stream);
  constexpr size_t kBatch = 65536;
  for (auto _ : state) {
    for (size_t off = 0; off < all.size(); off += kBatch) {
      ingestor->AbsorbBatch(
          all.subspan(off, std::min(kBatch, all.size() - off)));
    }
    // Flush inside the timed region: the honest number includes the
    // linearization, not just handing copies to workers.
    ingestor->Flush();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.counters["workers"] = static_cast<double>(workers);
}
// UseRealTime for the same reason as BM_SkimmedSketchParallelIngest:
// worker CPU is invisible to the per-process CPU clock.
BENCHMARK(BM_HashSketchConcurrentIngest)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The same ingest with two reader threads continuously taking
// bounded-staleness point estimates — the "queries running concurrently"
// row of the acceptance criteria. Readers must never block writers for
// more than a propagation critical section.
void BM_HashSketchConcurrentIngestWithReaders(benchmark::State& state) {
  const auto workers = static_cast<uint64_t>(state.range(0));
  sketch::HashSketchConfig config;
  config.num_tables = 7;
  config.num_buckets = 1024;
  auto shared = *sketch::HashSketch::Create(config, 1);
  ingest::ConcurrentIngestOptions options;
  options.num_workers = workers;
  auto ingestor = *ingest::ConcurrentIngestor<sketch::HashSketch>::Create(
      &shared, options);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&ingestor, &stop, &reads, r] {
      Rng rng(900 + r);
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        {
          auto lock = ingestor->ReaderLock();
          benchmark::DoNotOptimize(
              ingestor->shared().PointEstimate(rng.NextUint64Below(kDomain)));
          ++local;
        }
        // Yield between probes so reader spin does not starve ingest workers
        // on low-core machines; throughput impact on real readers is nil.
        std::this_thread::yield();
      }
      reads.fetch_add(local, std::memory_order_relaxed);
    });
  }
  const auto& stream = ZipfStream10MZ10();
  const std::span<const stream::StreamElement> all(stream);
  constexpr size_t kBatch = 65536;
  for (auto _ : state) {
    for (size_t off = 0; off < all.size(); off += kBatch) {
      ingestor->AbsorbBatch(
          all.subspan(off, std::min(kBatch, all.size() - off)));
    }
    ingestor->Flush();
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["concurrent_reads"] = static_cast<double>(reads.load());
}
BENCHMARK(BM_HashSketchConcurrentIngestWithReaders)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Kernel ablation (DESIGN.md §10, §13): the same single-threaded
// 65536-element batched ingest, once per fast-path combination. Arg is a
// bitmask — 1 = fastmod bucket reduction, 2 = plan cache, 4 = blocked
// hash→scatter, 8 = SIMD polynomial lanes (runtime-dispatched; see the
// simd_dispatch context field for what this machine selected) — so /0 is
// the scalar reference, /7 the pre-SIMD all-on path, /15 the production
// all-on path, and /1, /2, /4, /12 isolate each kernel's contribution. The
// stream is 10M Zipf z=1.0 (the acceptance workload), distinct from the
// z=1.1 stream above.

const std::vector<stream::StreamElement>& ZipfStream10MZ10() {
  static const auto* stream = [] {
    Rng rng(7);
    return new std::vector<stream::StreamElement>(
        stream::ZipfDistribution(kDomain, 1.0).GenerateElements(10'000'000,
                                                                &rng));
  }();
  return *stream;
}

sketch::KernelOptions KernelModeFromMask(int64_t mask) {
  sketch::KernelOptions options = sketch::KernelOptions::Scalar();
  options.use_fastmod = (mask & 1) != 0;
  options.use_plan_cache = (mask & 2) != 0;
  options.use_blocked_batch = (mask & 4) != 0;
  options.use_simd = (mask & 8) != 0;
  return options;
}

void BM_HashSketchKernelIngest(benchmark::State& state) {
  sketch::HashSketchConfig config;
  config.num_tables = 7;
  config.num_buckets = 1024;
  auto sketch = *sketch::HashSketch::Create(config, 1);
  sketch.SetKernelOptions(KernelModeFromMask(state.range(0)));
  const auto& stream = ZipfStream10MZ10();
  const std::span<const stream::StreamElement> all(stream);
  constexpr size_t kBatch = 65536;
  for (auto _ : state) {
    for (size_t off = 0; off < all.size(); off += kBatch) {
      sketch.UpdateBatch(all.subspan(off, std::min(kBatch, all.size() - off)));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  const double probes =
      static_cast<double>(sketch.hash_cache_hits() + sketch.hash_cache_misses());
  state.counters["cache_hit_rate"] =
      probes > 0 ? static_cast<double>(sketch.hash_cache_hits()) / probes : 0.0;
}
BENCHMARK(BM_HashSketchKernelIngest)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(7)
    ->Arg(12)
    ->Arg(15)
    ->Unit(benchmark::kMillisecond);

void BM_SkimmedSketchKernelIngest(benchmark::State& state) {
  auto sketch = *core::SkimmedSketch::Create(IngestBenchConfig(), 1);
  sketch.SetKernelOptions(KernelModeFromMask(state.range(0)));
  const auto& stream = ZipfStream10MZ10();
  const std::span<const stream::StreamElement> all(stream);
  constexpr size_t kBatch = 65536;
  for (auto _ : state) {
    for (size_t off = 0; off < all.size(); off += kBatch) {
      sketch.UpdateBatch(all.subspan(off, std::min(kBatch, all.size() - off)));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  const double probes =
      static_cast<double>(sketch.hash_cache_hits() + sketch.hash_cache_misses());
  state.counters["cache_hit_rate"] =
      probes > 0 ? static_cast<double>(sketch.hash_cache_hits()) / probes : 0.0;
}
BENCHMARK(BM_SkimmedSketchKernelIngest)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(7)
    ->Arg(15)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Engine-path ingestion: everything the raw kernels above skip — stream
// lookup, predicate routing, AND the metrics instrumentation (ingest
// counters, trace spans). These are the benchmarks the CI overhead gate
// compares between a default build and -DSKIMJOIN_DISABLE_METRICS=ON
// (tools/check_bench_regression.py; budget: 10%).

const std::vector<query::StreamUpdate>& EngineUpdates1M() {
  static const auto* updates = [] {
    Rng rng(11);
    const std::vector<stream::StreamElement> elements =
        stream::ZipfDistribution(kDomain, 1.1).GenerateElements(1'000'000,
                                                                &rng);
    auto* out = new std::vector<query::StreamUpdate>;
    out->reserve(elements.size());
    for (const stream::StreamElement& e : elements) {
      out->push_back({.value = e.value, .count = e.weight});
    }
    return out;
  }();
  return *updates;
}

void BM_EngineUpdateBatch(benchmark::State& state) {
  const auto batch = static_cast<size_t>(state.range(0));
  query::Engine engine;
  SKIMJOIN_CHECK(
      engine.RegisterStream({.name = "f", .domain_size = kDomain}).ok());
  query::FrequencyQuerySpec freq;
  freq.stream = "f";
  SKIMJOIN_CHECK(engine.AddFrequencyQuery(freq, 1).ok());
  const auto& updates = EngineUpdates1M();
  const std::span<const query::StreamUpdate> all(updates);
  for (auto _ : state) {
    for (size_t off = 0; off < all.size(); off += batch) {
      SKIMJOIN_CHECK(
          engine
              .UpdateBatch("f",
                           all.subspan(off, std::min(batch, all.size() - off)))
              .ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(updates.size()));
}
BENCHMARK(BM_EngineUpdateBatch)
    ->Arg(4096)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);

// The same batch path with the stream profiler's runtime kill switch thrown.
// CI's metrics-overhead gate compares this against BM_EngineUpdateBatch in
// the SAME binary and fails if the profiler costs more than 5% of ingest
// (tools/check_bench_regression.py --compare).
void BM_EngineUpdateBatchNoProfiler(benchmark::State& state) {
  const auto batch = static_cast<size_t>(state.range(0));
  query::Engine engine;
  engine.SetProfilerEnabled(false);
  SKIMJOIN_CHECK(
      engine.RegisterStream({.name = "f", .domain_size = kDomain}).ok());
  query::FrequencyQuerySpec freq;
  freq.stream = "f";
  SKIMJOIN_CHECK(engine.AddFrequencyQuery(freq, 1).ok());
  const auto& updates = EngineUpdates1M();
  const std::span<const query::StreamUpdate> all(updates);
  for (auto _ : state) {
    for (size_t off = 0; off < all.size(); off += batch) {
      SKIMJOIN_CHECK(
          engine
              .UpdateBatch("f",
                           all.subspan(off, std::min(batch, all.size() - off)))
              .ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(updates.size()));
}
BENCHMARK(BM_EngineUpdateBatchNoProfiler)
    ->Arg(4096)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);

// Scalar Update is the documented slow path (one counter increment per
// element instead of one per batch) — benchmarked so a regression there is
// visible too, just against a looser absolute baseline.
void BM_EngineScalarUpdate(benchmark::State& state) {
  query::Engine engine;
  SKIMJOIN_CHECK(
      engine.RegisterStream({.name = "f", .domain_size = kDomain}).ok());
  query::FrequencyQuerySpec freq;
  freq.stream = "f";
  SKIMJOIN_CHECK(engine.AddFrequencyQuery(freq, 1).ok());
  const auto& updates = EngineUpdates1M();
  size_t index = 0;
  for (auto _ : state) {
    SKIMJOIN_CHECK(engine.Update("f", updates[index]).ok());
    index = (index + 1) % updates.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineScalarUpdate);

// Estimate-call latency through the instrumented Answer path (TraceSpan +
// ScopedEstimate timer + drift check on every call).
void BM_EngineAnswerJoin(benchmark::State& state) {
  query::Engine engine;
  SKIMJOIN_CHECK(
      engine.RegisterStream({.name = "f", .domain_size = kDomain}).ok());
  SKIMJOIN_CHECK(
      engine.RegisterStream({.name = "g", .domain_size = kDomain}).ok());
  query::JoinQuerySpec join;
  join.left_stream = "f";
  join.right_stream = "g";
  join.estimator.kind = core::EstimatorKind::kHashSketch;
  join.estimator.space_counters = 4096;
  const StatusOr<query::QueryId> id = engine.AddJoinQuery(join, 1);
  SKIMJOIN_CHECK(id.ok());
  const auto& updates = EngineUpdates1M();
  const std::span<const query::StreamUpdate> prefix(updates.data(), 100'000);
  SKIMJOIN_CHECK(engine.UpdateBatch("f", prefix).ok());
  SKIMJOIN_CHECK(engine.UpdateBatch("g", prefix).ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.AnswerJoin(*id));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineAnswerJoin);

}  // namespace
}  // namespace skimjoin

// BENCHMARK_MAIN plus two custom context fields: which SIMD level the
// runtime dispatcher selected on this machine, so committed baseline JSON
// records what instruction set produced its numbers (DESIGN.md §13), and
// how THIS library was compiled. The stock "library_build_type" context
// field describes the google-benchmark library, which distribution
// packages routinely ship as a debug build — it says nothing about
// skimjoin's own optimization level, which is what baseline provenance
// actually needs (tools/check_bench_regression.py prefers this field).
int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "simd_dispatch",
      skimjoin::hashing::SimdLevelName(skimjoin::hashing::DetectSimdLevel()));
#ifdef NDEBUG
  benchmark::AddCustomContext("skimjoin_build_type", "release");
#else
  benchmark::AddCustomContext("skimjoin_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
