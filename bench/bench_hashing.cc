// Micro-benchmarks for the hashing primitives under the update fast paths
// (DESIGN.md §10): Horner polynomial evaluation cost by independence,
// tabulation as the table-lookup alternative, the bucket reduction
// (hardware `%` vs the precomputed 128-bit fastmod reciprocal), and the
// plan-cache hit curve as a function of Zipf skew — the measurement behind
// the "skew-aware memoization" design point.

#include <cstdint>
#include <vector>

#include "benchmark/benchmark.h"
#include "hashing/fastmod.h"
#include "hashing/hash_plan_cache.h"
#include "hashing/kwise_hash.h"
#include "hashing/sign_hash.h"
#include "hashing/tabulation_hash.h"
#include "stream/stream_element.h"
#include "stream/zipf.h"
#include "util/random.h"

namespace skimjoin {
namespace {

constexpr uint64_t kDomain = 1u << 18;
constexpr size_t kInputCount = 1u << 16;

// Shared random inputs, generated once outside all timing loops.
const std::vector<uint64_t>& RandomInputs() {
  static const auto* inputs = [] {
    Rng rng(19);
    auto* values = new std::vector<uint64_t>(kInputCount);
    for (uint64_t& v : *values) v = rng.NextUint64();
    return values;
  }();
  return *inputs;
}

// Horner evaluation cost grows linearly in the independence k (k-1
// multiply-adds in GF(2^61 - 1) per call). k=2 is the bucket family,
// k=4 the sign family.
void BM_KWiseHashHorner(benchmark::State& state) {
  Rng rng(1);
  hashing::KWiseHash hash(static_cast<int>(state.range(0)), &rng);
  const auto& inputs = RandomInputs();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash(inputs[i]));
    i = (i + 1) & (kInputCount - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KWiseHashHorner)->Arg(2)->Arg(4)->Arg(8);

// Simple tabulation: eight table lookups, no multiplies — the alternative
// family the hashing layer offers (3-wise independent, so usable for
// buckets but not for the 4-wise sign analysis).
void BM_TabulationHash(benchmark::State& state) {
  Rng rng(1);
  hashing::TabulationHash hash(&rng);
  const auto& inputs = RandomInputs();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash(inputs[i]));
    i = (i + 1) & (kInputCount - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TabulationHash);

void BM_SignHashEval(benchmark::State& state) {
  Rng rng(1);
  hashing::SignHash xi(&rng);
  const auto& inputs = RandomInputs();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xi(inputs[i]));
    i = (i + 1) & (kInputCount - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SignHashEval);

// ---------------------------------------------------------------------------
// The bucket reduction in isolation: hardware 64-bit remainder vs the
// precomputed reciprocal multiply. Arg is the bucket count; 1024 is the
// default engine shape, 1000 a non-power-of-two the compiler cannot
// strength-reduce.

void BM_BucketReduceHardwareMod(benchmark::State& state) {
  const uint64_t buckets = static_cast<uint64_t>(state.range(0));
  const auto& inputs = RandomInputs();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inputs[i] % buckets);
    i = (i + 1) & (kInputCount - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BucketReduceHardwareMod)->Arg(1000)->Arg(1024)->Arg(65536);

void BM_BucketReduceFastmod(benchmark::State& state) {
  const hashing::FastDivisor divisor(static_cast<uint64_t>(state.range(0)));
  const auto& inputs = RandomInputs();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(divisor.Mod(inputs[i]));
    i = (i + 1) & (kInputCount - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BucketReduceFastmod)->Arg(1000)->Arg(1024)->Arg(65536);

// End-to-end BucketHash (Horner + reduction): arg(1) toggles fastmod.
void BM_BucketHashEndToEnd(benchmark::State& state) {
  Rng rng(1);
  hashing::BucketHash hash(static_cast<uint64_t>(state.range(0)), &rng);
  hash.set_use_fastmod(state.range(1) != 0);
  const auto& inputs = RandomInputs();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash(inputs[i]));
    i = (i + 1) & (kInputCount - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BucketHashEndToEnd)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({65536, 0})
    ->Args({65536, 1});

// ---------------------------------------------------------------------------
// Plan-cache hit curve vs skew. Arg is the Zipf parameter × 10 over the
// engine's default 1024-slot cache and a 2^18 domain: uniform (z=0) barely
// hits; z=1 concentrates mass on the slots; the hit_rate counter shows the
// curve that justifies the skew-aware design.

void BM_HashPlanCacheZipfProbe(benchmark::State& state) {
  const double z = static_cast<double>(state.range(0)) / 10.0;
  Rng rng(23);
  const std::vector<stream::StreamElement> elements =
      stream::ZipfDistribution(kDomain, z).GenerateElements(kInputCount, &rng);
  hashing::HashPlanCache cache(/*num_slots=*/1024, /*words_per_plan=*/7);
  size_t i = 0;
  for (auto _ : state) {
    const uint64_t value = elements[i].value;
    const uint32_t* plan = cache.Lookup(value);
    if (plan == nullptr) {
      uint32_t* slot = cache.Insert(value);
      for (uint32_t w = 0; w < 7; ++w) {
        slot[w] = static_cast<uint32_t>(value) + w;  // stand-in plan
      }
    }
    benchmark::DoNotOptimize(plan);
    i = (i + 1) & (kInputCount - 1);
  }
  state.SetItemsProcessed(state.iterations());
  const double probes = static_cast<double>(cache.hits() + cache.misses());
  state.counters["hit_rate"] =
      probes > 0 ? static_cast<double>(cache.hits()) / probes : 0.0;
}
BENCHMARK(BM_HashPlanCacheZipfProbe)->Arg(0)->Arg(5)->Arg(10)->Arg(15);

}  // namespace
}  // namespace skimjoin

BENCHMARK_MAIN();
