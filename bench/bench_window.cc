// Sliding-window experiments (related work [12] made concrete):
//   * windowed JOIN tracking: the skimmed sketch under exact window replay
//     (inserts + expiry deletes) tracks the true windowed join size as the
//     traffic mix drifts — only possible because the synopsis is linear,
//   * windowed COUNTING: exponential-histogram space/accuracy trade-off vs
//     the exact buffered window.

#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/harness.h"
#include "core/skimmed_sketch.h"
#include "stream/exponential_histogram.h"
#include "stream/frequency_vector.h"
#include "stream/sliding_window.h"
#include "stream/zipf.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace skimjoin {
namespace bench {
namespace {

void RunWindowedJoin(RunScale scale) {
  const uint64_t domain = 1u << 14;
  const uint64_t window = scale == RunScale::kQuick ? 20000 : 50000;
  const int epochs = scale == RunScale::kQuick ? 3 : 6;

  std::cout << "Windowed join tracking (window " << window
            << " elements, drifting Zipf mix)\n";
  core::SkimmedSketchConfig config;
  config.domain_size = domain;
  config.num_tables = 7;
  config.num_buckets = 512;
  config.use_dyadic_skim = false;
  auto sf = *core::SkimmedSketch::Create(config, 3);
  auto sg = *core::SkimmedSketch::Create(config, 3);
  auto wf = *stream::SlidingWindow::Create(window);
  auto wg = *stream::SlidingWindow::Create(window);
  stream::FrequencyVector exact_f(domain);
  stream::FrequencyVector exact_g(domain);

  TablePrinter table("windowed join: estimate vs exact per epoch",
                     {"epoch", "estimate", "exact", "ratio err"});
  Rng rng(5);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    stream::ZipfDistribution dist(domain, 1.2,
                                  /*shift=*/static_cast<uint64_t>(epoch) * 512);
    for (uint64_t i = 0; i < window; ++i) {
      wf.Push(dist.Sample(&rng), [&](const stream::StreamElement& e) {
        sf.Update(e);
        exact_f.Apply(e);
      });
      wg.Push(dist.Sample(&rng), [&](const stream::StreamElement& e) {
        sg.Update(e);
        exact_g.Apply(e);
      });
    }
    const double estimate = *core::SkimmedSketch::EstimateJoinSize(sf, sg);
    const double exact = static_cast<double>(JoinSize(exact_f, exact_g));
    table.AddRow({std::to_string(epoch),
                  TablePrinter::FormatDouble(estimate, 0),
                  TablePrinter::FormatDouble(exact, 0),
                  TablePrinter::FormatDouble(RatioError(estimate, exact))});
  }
  table.Print(std::cout);
  std::cout << "[shape check] the windowed estimate follows the drifting "
               "mix; expiry deletes are handled exactly by linearity\n";
}

void RunExponentialHistogram(RunScale scale) {
  const uint64_t window = scale == RunScale::kQuick ? 10000 : 100000;
  std::cout << "\nExponential-histogram windowed counting (window " << window
            << ", 40% ones)\n";
  TablePrinter table("space vs error",
                     {"epsilon", "buckets held", "exact", "estimate",
                      "rel err"});
  for (double epsilon : {0.5, 0.2, 0.1, 0.05, 0.02}) {
    auto eh = *stream::ExponentialHistogram::Create(window, epsilon);
    Rng rng(7);
    std::vector<bool> history;
    for (uint64_t i = 0; i < 3 * window; ++i) {
      const bool one = rng.NextUint64Below(100) < 40;
      history.push_back(one);
      eh.Arrive(one);
    }
    int64_t exact = 0;
    for (size_t j = history.size() - window; j < history.size(); ++j) {
      exact += history[j];
    }
    const double error =
        std::abs(static_cast<double>(eh.Estimate()) -
                 static_cast<double>(exact)) /
        static_cast<double>(exact);
    table.AddRow({TablePrinter::FormatDouble(epsilon, 2),
                  std::to_string(eh.num_buckets()), std::to_string(exact),
                  std::to_string(eh.Estimate()),
                  TablePrinter::FormatDouble(error)});
  }
  table.Print(std::cout);
  std::cout << "[shape check] buckets grow ~1/epsilon while the window "
               "itself would need " << window << " slots; error stays "
               "within epsilon\n";
}

}  // namespace
}  // namespace bench
}  // namespace skimjoin

int main(int argc, char** argv) {
  const auto scale = skimjoin::bench::ParseScale(argc, argv);
  skimjoin::bench::RunWindowedJoin(scale);
  skimjoin::bench::RunExponentialHistogram(scale);
  return 0;
}
