// Quickstart: estimate the join size of two update streams with skimmed
// sketches in a few lines, and compare against the exact answer.
//
//   build/examples/quickstart

#include <iostream>

#include "core/skimmed_sketch.h"
#include "stream/exact.h"
#include "stream/zipf.h"
#include "util/logging.h"
#include "util/random.h"

int main() {
  using skimjoin::core::SkimmedSketch;
  using skimjoin::core::SkimmedSketchConfig;

  constexpr uint64_t kDomain = 1u << 16;

  // 1. Configure one synopsis per stream. Compatibility (shared hash
  //    families) comes from using the same config and seed.
  SkimmedSketchConfig config;
  config.domain_size = kDomain;
  config.num_tables = 7;
  config.num_buckets = 512;   // ~28 KB of counters per stream
  constexpr uint64_t kSeed = 42;
  auto f_or = SkimmedSketch::Create(config, kSeed);
  auto g_or = SkimmedSketch::Create(config, kSeed);
  SKIMJOIN_CHECK_OK(f_or.status());
  SKIMJOIN_CHECK_OK(g_or.status());
  SkimmedSketch sketch_f = *std::move(f_or);
  SkimmedSketch sketch_g = *std::move(g_or);

  // 2. Stream in elements — one pass, inserts and deletes alike.
  skimjoin::stream::ZipfDistribution dist_f(kDomain, 1.2);
  skimjoin::stream::ZipfDistribution dist_g(kDomain, 1.2, /*shift=*/50);
  skimjoin::Rng rng(7);
  const auto stream_f = dist_f.GenerateElements(200000, &rng);
  const auto stream_g = dist_g.GenerateElements(200000, &rng);
  for (const auto& element : stream_f) sketch_f.Update(element);
  for (const auto& element : stream_g) sketch_g.Update(element);

  // 3. Ask for the join size whenever you like — estimation is
  //    non-destructive, so the sketches keep absorbing updates afterwards.
  auto estimate = SkimmedSketch::EstimateJoinSize(sketch_f, sketch_g);
  SKIMJOIN_CHECK_OK(estimate.status());

  const int64_t exact =
      skimjoin::stream::ExactJoinSize(stream_f, stream_g, kDomain);
  std::cout << "estimated |F ⋈ G| = " << *estimate << "\n"
            << "exact     |F ⋈ G| = " << exact << "\n"
            << "ratio error        = "
            << (*estimate > exact ? *estimate / exact : exact / *estimate) - 1.0
            << "\n";

  // Bonus: the same synopsis answers point-frequency and heavy-hitter
  // queries (that is what "skimming" extracts internally).
  std::cout << "estimated frequency of the hottest value (0): "
            << sketch_f.EstimatePointFrequency(0) << "\n";
  const auto heavy = sketch_f.HeavyHitters(/*threshold=*/2000);
  std::cout << "values with estimated frequency >= 2000: " << heavy.size()
            << "\n";
  return 0;
}
