// Distributed monitoring with serialized sketches: three collection sites
// each summarize their local slice of two streams, ship the synopses (here:
// through strings standing in for the network), and a coordinator merges
// per-stream and answers the GLOBAL join size — without any site ever
// shipping raw elements. This works because the synopses are linear and
// their hash families are a pure function of (config, seed).
//
//   build/examples/distributed_merge

#include <iostream>
#include <sstream>
#include <vector>

#include "core/skimmed_sketch.h"
#include "stream/frequency_vector.h"
#include "stream/zipf.h"
#include "util/logging.h"
#include "util/random.h"

namespace {

using skimjoin::core::SkimmedSketch;
using skimjoin::core::SkimmedSketchConfig;

constexpr uint64_t kDomain = 1u << 14;
constexpr uint64_t kSeed = 77;  // shared by every site, fixed at deploy time

SkimmedSketchConfig SiteConfig() {
  SkimmedSketchConfig config;
  config.domain_size = kDomain;
  config.num_tables = 7;
  config.num_buckets = 512;
  config.use_dyadic_skim = false;
  return config;
}

/// One site: sketches its local share of streams F and G and returns both
/// synopses serialized, plus its exact local frequencies (for the demo's
/// ground truth only).
struct SiteReport {
  std::string f_wire;
  std::string g_wire;
};

SiteReport RunSite(uint64_t site_id,
                   skimjoin::stream::FrequencyVector* exact_f,
                   skimjoin::stream::FrequencyVector* exact_g) {
  auto sketch_f = *SkimmedSketch::Create(SiteConfig(), kSeed);
  auto sketch_g = *SkimmedSketch::Create(SiteConfig(), kSeed);
  skimjoin::Rng rng(1000 + site_id);
  skimjoin::stream::ZipfDistribution dist_f(kDomain, 1.1);
  skimjoin::stream::ZipfDistribution dist_g(kDomain, 1.1, /*shift=*/32);
  for (int i = 0; i < 30000; ++i) {
    const uint64_t vf = dist_f.Sample(&rng);
    const uint64_t vg = dist_g.Sample(&rng);
    sketch_f.Update(vf, 1);
    sketch_g.Update(vg, 1);
    exact_f->Add(vf, 1);
    exact_g->Add(vg, 1);
  }
  std::ostringstream f_wire, g_wire;
  SKIMJOIN_CHECK_OK(sketch_f.SerializeTo(f_wire));
  SKIMJOIN_CHECK_OK(sketch_g.SerializeTo(g_wire));
  return SiteReport{f_wire.str(), g_wire.str()};
}

}  // namespace

int main() {
  skimjoin::stream::FrequencyVector exact_f(kDomain);
  skimjoin::stream::FrequencyVector exact_g(kDomain);

  // Three sites work independently (different data, same families).
  std::vector<SiteReport> reports;
  for (uint64_t site = 0; site < 3; ++site) {
    reports.push_back(RunSite(site, &exact_f, &exact_g));
    std::cout << "site " << site << " shipped "
              << reports.back().f_wire.size() + reports.back().g_wire.size()
              << " bytes of synopses\n";
  }

  // Coordinator: deserialize and merge per stream.
  std::istringstream first_f(reports[0].f_wire);
  std::istringstream first_g(reports[0].g_wire);
  auto global_f = *SkimmedSketch::DeserializeFrom(first_f);
  auto global_g = *SkimmedSketch::DeserializeFrom(first_g);
  for (size_t site = 1; site < reports.size(); ++site) {
    std::istringstream f_in(reports[site].f_wire);
    std::istringstream g_in(reports[site].g_wire);
    global_f.Merge(*SkimmedSketch::DeserializeFrom(f_in));
    global_g.Merge(*SkimmedSketch::DeserializeFrom(g_in));
  }

  const auto estimate = SkimmedSketch::EstimateJoinSize(global_f, global_g);
  SKIMJOIN_CHECK_OK(estimate.status());
  const double exact = static_cast<double>(JoinSize(exact_f, exact_g));
  std::cout << "global COUNT(F ⋈ G) estimate: " << *estimate << "\n"
            << "global exact:                 " << exact << "\n"
            << "raw elements that never left the sites: "
            << exact_f.TotalCount() + exact_g.TotalCount() << "\n";
  return 0;
}
