// Order statistics from the dyadic levels of a skimmed sketch: range
// frequencies, quantiles, and top-k — the surrounding query types of the
// paper's related work (§1: quantiles [1, 2], top-k [8]) answered from the
// same single-pass structure that estimates joins.
//
//   build/examples/approximate_quantiles

#include <iostream>

#include "core/skimmed_sketch.h"
#include "core/top_k.h"
#include "stream/zipf.h"
#include "util/logging.h"
#include "util/random.h"

int main() {
  using skimjoin::core::SkimmedSketch;
  using skimjoin::core::SkimmedSketchConfig;

  constexpr uint64_t kDomain = 1u << 14;  // e.g., response-time buckets
  SkimmedSketchConfig config;
  config.domain_size = kDomain;
  config.num_tables = 7;
  config.num_buckets = 1024;
  config.use_dyadic_skim = true;  // the dyadic levels ARE the range index
  auto sketch = *SkimmedSketch::Create(config, 11);
  auto topk = *skimjoin::core::TopKTracker::Create(5, {7, 1024}, 11);

  // A latency-like stream: Zipf-distributed buckets (most requests fast).
  skimjoin::stream::ZipfDistribution dist(kDomain, 1.1);
  skimjoin::Rng rng(3);
  skimjoin::stream::FrequencyVector exact(kDomain);
  for (int i = 0; i < 300000; ++i) {
    const uint64_t bucket = dist.Sample(&rng);
    sketch.Update(bucket, 1);
    topk.Update(bucket, 1);
    exact.Add(bucket, 1);
  }

  std::cout << "quantiles of the value distribution (estimated vs exact):\n";
  for (double phi : {0.5, 0.9, 0.99}) {
    const auto estimated = sketch.EstimateQuantile(phi);
    SKIMJOIN_CHECK_OK(estimated.status());
    // Exact quantile from the reference counts.
    int64_t cumulative = 0;
    uint64_t exact_quantile = 0;
    const auto target = static_cast<int64_t>(phi * 300000);
    for (uint64_t v = 0; v < kDomain; ++v) {
      cumulative += exact.Get(v);
      if (cumulative >= target) {
        exact_quantile = v;
        break;
      }
    }
    std::cout << "  p" << static_cast<int>(phi * 100) << ": " << *estimated
              << " (exact " << exact_quantile << ")\n";
  }

  std::cout << "range frequencies:\n";
  struct Range {
    uint64_t lo, hi;
    const char* label;
  };
  for (const Range r : {Range{0, 9, "hottest 10 buckets"},
                        Range{10, 999, "warm region"},
                        Range{1000, kDomain - 1, "long tail"}}) {
    const auto estimated = sketch.EstimateRangeFrequency(r.lo, r.hi);
    SKIMJOIN_CHECK_OK(estimated.status());
    int64_t exact_sum = 0;
    for (uint64_t v = r.lo; v <= r.hi; ++v) exact_sum += exact.Get(v);
    std::cout << "  " << r.label << " [" << r.lo << ", " << r.hi
              << "]: " << *estimated << " (exact " << exact_sum << ")\n";
  }

  std::cout << "top-5 buckets (continuous tracker):\n";
  for (const auto& [value, frequency] : topk.TopK()) {
    std::cout << "  bucket " << value << " ~ " << frequency
              << " (exact " << exact.Get(value) << ")\n";
  }
  return 0;
}
