// Multi-join COUNT aggregates (the extension the paper points to via Dobra
// et al. '02): a three-way chain join over click-stream data,
//   COUNT(impressions(ad) ⋈ clicks(ad, user) ⋈ purchases(user))
// estimated in one pass per stream with per-attribute sign families.
//
//   build/examples/multi_join_demo

#include <iostream>
#include <vector>

#include "query/multi_join.h"
#include "util/logging.h"
#include "util/random.h"

int main() {
  using skimjoin::query::MultiJoinConfig;
  using skimjoin::query::MultiJoinEstimator;

  constexpr uint64_t kAds = 64;
  constexpr uint64_t kUsers = 128;

  MultiJoinConfig config;
  config.num_means = 256;
  config.num_medians = 7;
  // Attribute 0 = ad id (impressions ↔ clicks), attribute 1 = user id
  // (clicks ↔ purchases).
  config.relation_attributes = {{0}, {0, 1}, {1}};
  auto estimator_or = MultiJoinEstimator::Create(config, /*seed=*/3);
  SKIMJOIN_CHECK_OK(estimator_or.status());
  MultiJoinEstimator estimator = *std::move(estimator_or);

  // Exact reference tables (tiny domains make this affordable).
  std::vector<int64_t> impressions(kAds, 0);
  std::vector<std::vector<int64_t>> clicks(kAds,
                                           std::vector<int64_t>(kUsers, 0));
  std::vector<int64_t> purchases(kUsers, 0);

  skimjoin::Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t ad = rng.NextUint64Below(kAds);
    impressions[ad] += 1;
    SKIMJOIN_CHECK_OK(estimator.Update(0, {ad}, 1));
  }
  for (int i = 0; i < 5000; ++i) {
    const uint64_t ad = rng.NextUint64Below(kAds);
    const uint64_t user = rng.NextUint64Below(kUsers);
    clicks[ad][user] += 1;
    SKIMJOIN_CHECK_OK(estimator.Update(1, {ad, user}, 1));
  }
  for (int i = 0; i < 3000; ++i) {
    const uint64_t user = rng.NextUint64Below(kUsers);
    purchases[user] += 1;
    SKIMJOIN_CHECK_OK(estimator.Update(2, {user}, 1));
  }
  // A purchase gets retracted (returned order): deletes work here too.
  purchases[5] -= 1;
  SKIMJOIN_CHECK_OK(estimator.Update(2, {uint64_t{5}}, -1));

  double exact = 0.0;
  for (uint64_t ad = 0; ad < kAds; ++ad) {
    for (uint64_t user = 0; user < kUsers; ++user) {
      exact += static_cast<double>(impressions[ad]) *
               static_cast<double>(clicks[ad][user]) *
               static_cast<double>(purchases[user]);
    }
  }

  const double estimate = estimator.Estimate();
  std::cout << "COUNT(impressions ⋈ clicks ⋈ purchases)\n"
            << "  estimate: " << estimate << "\n"
            << "  exact:    " << exact << "\n"
            << "  ratio:    " << (exact > 0 ? estimate / exact : 0.0) << "\n";
  return 0;
}
