// Windowed join monitoring: because the paper's synopses handle deletions
// exactly, a sliding window is a pure adapter (stream/sliding_window.h) —
// each expiring element is replayed as a delete. This example tracks the
// join size of the LAST 50,000 elements of two drifting streams and shows
// the estimate following the drift while the all-time join keeps growing.
//
//   build/examples/sliding_window_monitor

#include <iostream>

#include "core/skimmed_sketch.h"
#include "stream/frequency_vector.h"
#include "stream/sliding_window.h"
#include "stream/zipf.h"
#include "util/logging.h"
#include "util/random.h"

int main() {
  using skimjoin::core::SkimmedSketch;
  using skimjoin::core::SkimmedSketchConfig;
  using skimjoin::stream::SlidingWindow;

  constexpr uint64_t kDomain = 1u << 14;
  constexpr uint64_t kWindow = 50000;

  SkimmedSketchConfig config;
  config.domain_size = kDomain;
  config.num_tables = 7;
  config.num_buckets = 512;
  config.use_dyadic_skim = false;
  auto windowed_f = *SkimmedSketch::Create(config, 5);
  auto windowed_g = *SkimmedSketch::Create(config, 5);
  auto alltime_f = *SkimmedSketch::Create(config, 5);
  auto alltime_g = *SkimmedSketch::Create(config, 5);

  auto window_f = *SlidingWindow::Create(kWindow);
  auto window_g = *SlidingWindow::Create(kWindow);
  // Exact window contents, for ground truth.
  skimjoin::stream::FrequencyVector exact_f(kDomain);
  skimjoin::stream::FrequencyVector exact_g(kDomain);

  skimjoin::Rng rng(3);
  std::cout << "epoch | windowed est | windowed exact | all-time est\n";
  // The traffic mix drifts every epoch: the hot region of the Zipf
  // distribution moves right by 512 values.
  for (uint64_t epoch = 0; epoch < 6; ++epoch) {
    skimjoin::stream::ZipfDistribution dist(kDomain, 1.2,
                                            /*shift=*/epoch * 512);
    for (int i = 0; i < 50000; ++i) {
      const uint64_t vf = dist.Sample(&rng);
      const uint64_t vg = dist.Sample(&rng);
      window_f.Push(vf, [&](const skimjoin::stream::StreamElement& e) {
        windowed_f.Update(e);
        exact_f.Apply(e);
      });
      window_g.Push(vg, [&](const skimjoin::stream::StreamElement& e) {
        windowed_g.Update(e);
        exact_g.Apply(e);
      });
      alltime_f.Update(vf, 1);
      alltime_g.Update(vg, 1);
    }
    const auto windowed =
        SkimmedSketch::EstimateJoinSize(windowed_f, windowed_g);
    const auto alltime = SkimmedSketch::EstimateJoinSize(alltime_f, alltime_g);
    SKIMJOIN_CHECK_OK(windowed.status());
    SKIMJOIN_CHECK_OK(alltime.status());
    const double exact = static_cast<double>(JoinSize(exact_f, exact_g));
    std::cout << epoch << " | " << *windowed << " | " << exact << " | "
              << *alltime << "\n";
  }
  std::cout << "the windowed estimate stays near its exact value as the mix "
               "drifts;\nthe all-time join keeps accumulating history.\n";
  return 0;
}
