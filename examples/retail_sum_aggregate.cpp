// SUM aggregates over a join (§2.1 of the paper): SUM is COUNT over a
// stream whose elements are weighted by their measure value. A retail chain
// streams sales (SKU, revenue) from its stores and inventory updates
// (SKU, ±1) from its warehouses; the running query is
//   SUM_revenue(sales ⋈_SKU inventory)
// — "revenue weighted by current warehouse coverage per SKU".
//
//   build/examples/retail_sum_aggregate

#include <iostream>

#include "query/engine.h"
#include "stream/census_like.h"
#include "util/logging.h"
#include "util/random.h"

int main() {
  using skimjoin::query::AggregateInput;
  using skimjoin::query::Engine;
  using skimjoin::query::JoinQuerySpec;
  using skimjoin::query::StreamUpdate;

  constexpr uint64_t kSkus = 1u << 14;
  Engine engine;
  SKIMJOIN_CHECK_OK(engine.RegisterStream({"sales", kSkus}).status());
  SKIMJOIN_CHECK_OK(engine.RegisterStream({"inventory", kSkus}).status());

  // SUM over the sales measure: the left synopsis consumes the revenue
  // carried by each sale, the right consumes inventory counts.
  JoinQuerySpec sum_spec;
  sum_spec.left_stream = "sales";
  sum_spec.right_stream = "inventory";
  sum_spec.left_input = AggregateInput::kMeasure;
  sum_spec.estimator.kind = skimjoin::core::EstimatorKind::kSkimmedSketch;
  sum_spec.estimator.space_counters = 4096;
  auto sum_query = engine.AddJoinQuery(sum_spec, /*seed=*/11);
  SKIMJOIN_CHECK_OK(sum_query.status());

  // A plain COUNT join over the same streams for comparison.
  JoinQuerySpec count_spec = sum_spec;
  count_spec.left_input = AggregateInput::kCount;
  auto count_query = engine.AddJoinQuery(count_spec, /*seed=*/12);
  SKIMJOIN_CHECK_OK(count_query.status());

  // Workload: skewed SKU popularity, revenue per sale in [1, 500],
  // inventory that rises and falls (deletes) as stock moves.
  skimjoin::Rng rng(5);
  double exact_sum = 0.0;
  double exact_count = 0.0;
  std::vector<int64_t> sales_revenue(kSkus, 0);
  std::vector<int64_t> sales_count(kSkus, 0);
  std::vector<int64_t> stock(kSkus, 0);

  for (int day = 0; day < 5; ++day) {
    // Restock popular SKUs.
    for (uint64_t sku = 0; sku < 2000; ++sku) {
      const int64_t delta = 1 + static_cast<int64_t>(rng.NextUint64Below(3));
      SKIMJOIN_CHECK_OK(engine.Update("inventory", StreamUpdate{sku, delta, 0}));
      stock[sku] += delta;
    }
    // Sales: Zipf-ish popularity via modulo skew.
    for (int i = 0; i < 40000; ++i) {
      const uint64_t r = rng.NextUint64Below(kSkus * 8);
      const uint64_t sku = r % (1 + r % kSkus);  // crude skew toward low SKUs
      const int64_t revenue =
          1 + static_cast<int64_t>(rng.NextUint64Below(500));
      SKIMJOIN_CHECK_OK(
          engine.Update("sales", StreamUpdate{sku, 1, revenue}));
      sales_revenue[sku] += revenue;
      sales_count[sku] += 1;
    }
    // Ship stock out (deletes on the inventory stream).
    for (uint64_t sku = 0; sku < 1000; ++sku) {
      if (stock[sku] > 0) {
        SKIMJOIN_CHECK_OK(
            engine.Update("inventory", StreamUpdate{sku, -1, 0}));
        stock[sku] -= 1;
      }
    }
  }
  for (uint64_t sku = 0; sku < kSkus; ++sku) {
    exact_sum += static_cast<double>(sales_revenue[sku]) *
                 static_cast<double>(stock[sku]);
    exact_count += static_cast<double>(sales_count[sku]) *
                   static_cast<double>(stock[sku]);
  }

  auto sum_answer = engine.AnswerJoin(*sum_query);
  auto count_answer = engine.AnswerJoin(*count_query);
  SKIMJOIN_CHECK_OK(sum_answer.status());
  SKIMJOIN_CHECK_OK(count_answer.status());
  std::cout << "SUM_revenue(sales ⋈ inventory)  estimate: " << *sum_answer
            << "  (exact " << exact_sum << ")\n";
  std::cout << "COUNT(sales ⋈ inventory)        estimate: " << *count_answer
            << "  (exact " << exact_count << ")\n";
  return 0;
}
