// The paper's motivating scenario (§1): an ISP continuously collects usage
// records at two network monitoring points and wants on-line answers to
//   COUNT(R1 ⋈ R2)  — "how much traffic did both collectors see, per host?"
// without storing either stream. This example drives the full query engine
// (Fig. 1): registered streams, standing queries with different synopses,
// selection predicates, and deletions (flow-timeout retractions).
//
//   build/examples/network_traffic_join

#include <iostream>

#include "query/engine.h"
#include "stream/exact.h"
#include "stream/frequency_vector.h"
#include "util/logging.h"
#include "util/random.h"

int main() {
  using skimjoin::query::Engine;
  using skimjoin::query::JoinQuerySpec;
  using skimjoin::query::RangePredicate;
  using skimjoin::query::StreamUpdate;

  // Hosts are /16 suffixes: a 65536-value domain.
  constexpr uint64_t kHosts = 1u << 16;
  Engine engine;
  SKIMJOIN_CHECK_OK(engine.RegisterStream({"pop1.flows", kHosts}).status());
  SKIMJOIN_CHECK_OK(engine.RegisterStream({"pop2.flows", kHosts}).status());

  // Standing query 1: skimmed-sketch join estimate over all hosts.
  JoinQuerySpec join_spec;
  join_spec.left_stream = "pop1.flows";
  join_spec.right_stream = "pop2.flows";
  join_spec.estimator.kind = skimjoin::core::EstimatorKind::kSkimmedSketch;
  join_spec.estimator.space_counters = 4096;
  auto join_query = engine.AddJoinQuery(join_spec, /*seed=*/1);
  SKIMJOIN_CHECK_OK(join_query.status());

  // Standing query 2: the same join restricted to the "enterprise" block
  // [4096, 8191] via a selection predicate on both sides.
  JoinQuerySpec filtered_spec = join_spec;
  filtered_spec.left_predicate = RangePredicate{4096, 8191};
  filtered_spec.right_predicate = RangePredicate{4096, 8191};
  auto filtered_query = engine.AddJoinQuery(filtered_spec, /*seed=*/2);
  SKIMJOIN_CHECK_OK(filtered_query.status());

  // Standing query 3: heavy-hitter tracking on pop1 for the ops dashboard.
  skimjoin::query::FrequencyQuerySpec hh_spec;
  hh_spec.stream = "pop1.flows";
  hh_spec.space_counters = 8192;
  auto hh_query = engine.AddFrequencyQuery(hh_spec, /*seed=*/3);
  SKIMJOIN_CHECK_OK(hh_query.status());

  // Traffic: most hosts are light; a handful of CDN nodes are very hot, and
  // flows time out (deletes) as the sliding window advances.
  skimjoin::Rng rng(99);
  skimjoin::stream::FrequencyVector exact1(kHosts);
  skimjoin::stream::FrequencyVector exact2(kHosts);
  auto emit = [&](const char* stream, skimjoin::stream::FrequencyVector* exact,
                  uint64_t host, int64_t count) {
    SKIMJOIN_CHECK_OK(engine.Update(stream, StreamUpdate{host, count, 0}));
    exact->Add(host, count);
  };

  for (int i = 0; i < 150000; ++i) {
    emit("pop1.flows", &exact1, rng.NextUint64Below(kHosts), 1);
    emit("pop2.flows", &exact2, rng.NextUint64Below(kHosts), 1);
  }
  for (uint64_t cdn = 5000; cdn < 5004; ++cdn) {  // hot hosts in the block
    emit("pop1.flows", &exact1, cdn, 20000);
    emit("pop2.flows", &exact2, cdn, 15000);
  }
  // Flow timeouts: retract 30k of pop1's early flows.
  for (int i = 0; i < 30000; ++i) {
    emit("pop1.flows", &exact1, rng.NextUint64Below(kHosts), -1);
  }

  const double exact_join = static_cast<double>(JoinSize(exact1, exact2));
  auto total = engine.AnswerJoin(*join_query);
  auto filtered = engine.AnswerJoin(*filtered_query);
  SKIMJOIN_CHECK_OK(total.status());
  SKIMJOIN_CHECK_OK(filtered.status());

  std::cout << "COUNT(pop1 ⋈ pop2) estimate: " << *total
            << "  (exact " << exact_join << ")\n";
  std::cout << "COUNT over enterprise block estimate: " << *filtered << "\n";

  auto heavy = engine.AnswerHeavyHitters(*hh_query, /*threshold=*/10000);
  SKIMJOIN_CHECK_OK(heavy.status());
  std::cout << "pop1 heavy hitters (>= 10000 flows):\n";
  for (const auto& [host, freq] : *heavy) {
    std::cout << "  host " << host << " ~ " << freq << " flows\n";
  }
  return 0;
}
