// Carter–Wegman k-wise independent hash families.
//
// A degree-(k-1) polynomial with uniformly random coefficients over
// GF(2^61 - 1) is a k-wise independent function from the field to itself
// [Wegman–Carter '81]. The sketch structures need:
//   * pairwise (k=2) independence for the bucket-selection hashes h_j of the
//     hash sketch (Section 4.1 of the paper), and
//   * four-wise (k=4) independence for the ±1 families ξ (Section 2.2),
//     which is what bounds the variance of the tug-of-war estimators
//     [Alon–Matias–Szegedy '96].

#ifndef SKIMJOIN_HASHING_KWISE_HASH_H_
#define SKIMJOIN_HASHING_KWISE_HASH_H_

#include <cstdint>
#include <vector>

#include "hashing/fastmod.h"
#include "hashing/prime_field.h"
#include "util/random.h"

namespace skimjoin {
namespace hashing {

/// A single member of a k-wise independent family, drawn with `rng`.
/// Evaluation is Horner's rule: k-1 multiply-adds per call.
class KWiseHash {
 public:
  /// Draws random coefficients for a degree-(independence-1) polynomial.
  /// Pre-condition: independence >= 1. The leading coefficient is drawn from
  /// [1, p) so the polynomial has exact degree (this does not affect the
  /// independence guarantee and avoids degenerate constant hashes).
  KWiseHash(int independence, Rng* rng);

  /// Hash of `x` in [0, 2^61 - 1). Arbitrary 64-bit inputs are folded into
  /// the field first.
  uint64_t operator()(uint64_t x) const;

  int independence() const { return static_cast<int>(coefficients_.size()); }

  /// The polynomial coefficients, constant term first. Exposed for
  /// serialization in tests.
  const std::vector<uint64_t>& coefficients() const { return coefficients_; }

  /// Total footprint in bytes: the object itself plus the heap-allocated
  /// coefficient vector. Feeds the per-synopsis memory gauges.
  uint64_t MemoryBytes() const {
    return sizeof(*this) + coefficients_.capacity() * sizeof(uint64_t);
  }

 private:
  std::vector<uint64_t> coefficients_;
};

/// A member of a pairwise-independent family mapped onto the bucket range
/// [0, num_buckets): h(x) = poly(x) mod num_buckets. The modular projection
/// of a pairwise family stays (approximately) pairwise uniform because the
/// field size 2^61 - 1 vastly exceeds any bucket count used in practice.
///
/// The reduction runs through a precomputed 128-bit reciprocal (Lemire
/// fastmod) by default, which is bit-identical to `%` for every dividend;
/// set_use_fastmod(false) restores the hardware divide for ablation.
class BucketHash {
 public:
  /// Pre-condition: num_buckets >= 1.
  BucketHash(uint64_t num_buckets, Rng* rng);

  /// Bucket of `x`, in [0, num_buckets).
  uint64_t operator()(uint64_t x) const {
    const uint64_t h = hash_(x);
    return use_fastmod_ ? divisor_.Mod(h) : h % num_buckets_;
  }

  uint64_t num_buckets() const { return num_buckets_; }

  /// The wrapped pairwise polynomial. Exposed so the SIMD block kernels
  /// (hashing/simd_hash.h) can evaluate it over whole element blocks.
  const KWiseHash& poly() const { return hash_; }

  /// Projects a field element (a raw poly() result) into [0, num_buckets),
  /// honoring the fastmod ablation switch — the reduction half of
  /// operator(), for callers that batch the polynomial separately.
  uint64_t ModReduce(uint64_t h) const {
    return use_fastmod_ ? divisor_.Mod(h) : h % num_buckets_;
  }

  /// Ablation switch (KernelOptions::use_fastmod). Either setting produces
  /// identical buckets; this only selects the instruction sequence.
  void set_use_fastmod(bool on) { use_fastmod_ = on; }
  bool use_fastmod() const { return use_fastmod_; }

  /// Total footprint in bytes, including the wrapped polynomial's heap.
  uint64_t MemoryBytes() const {
    return sizeof(num_buckets_) + sizeof(divisor_) + sizeof(use_fastmod_) +
           hash_.MemoryBytes();
  }

 private:
  KWiseHash hash_;
  uint64_t num_buckets_;
  FastDivisor divisor_;
  bool use_fastmod_ = true;
};

}  // namespace hashing
}  // namespace skimjoin

#endif  // SKIMJOIN_HASHING_KWISE_HASH_H_
