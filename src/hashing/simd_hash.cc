#include "hashing/simd_hash.h"

#include <cstdlib>

#include "hashing/prime_field.h"

#if defined(__x86_64__) || defined(__i386__)
#define SKIMJOIN_X86_SIMD 1
#include <immintrin.h>
#else
#define SKIMJOIN_X86_SIMD 0
#endif

namespace skimjoin {
namespace hashing {

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      break;
  }
  return "scalar";
}

SimdLevel DetectSimdLevel() {
  static const SimdLevel level = [] {
    const char* force = std::getenv("SKIMJOIN_FORCE_SCALAR");
    if (force != nullptr && force[0] == '1') return SimdLevel::kScalar;
#if SKIMJOIN_X86_SIMD
    if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
    return SimdLevel::kScalar;
  }();
  return level;
}

namespace {

/// The scalar Horner loop, lifted verbatim from KWiseHash::operator() — the
/// reference every vector lane must match bit for bit, and the kernel for
/// block tails shorter than the lane width.
uint64_t ScalarEval(std::span<const uint64_t> coefficients, uint64_t x) {
  const uint64_t v = FoldToField61(x);
  uint64_t acc = coefficients.back();
  for (size_t i = coefficients.size() - 1; i-- > 0;) {
    acc = AddMod61(MulMod61(acc, v), coefficients[i]);
  }
  return acc;
}

void PolyEvalScalar(std::span<const uint64_t> coefficients,
                    const uint64_t* values, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = ScalarEval(coefficients, values[i]);
}

#if SKIMJOIN_X86_SIMD

// GCC 12's AVX-512 intrinsic headers initialize _mm512_undefined_epi32()
// with itself, which -Werror=maybe-uninitialized flags at every inline
// site (GCC PR105593). The lanes it feeds are fully overwritten by the
// masked shift results, so the warning is a header artifact, not our bug.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

// ---- AVX2: 4 × 64-bit lanes ------------------------------------------------
//
// All helpers keep lanes canonical (< 2^61 - 1); see the header comment for
// the 32-bit product decomposition and the intermediate bounds.

__attribute__((target("avx2"))) inline __m256i MulMod61Avx2(__m256i a,
                                                            __m256i b) {
  const __m256i p = _mm256_set1_epi64x(static_cast<int64_t>(kMersennePrime61));
  const __m256i mask29 = _mm256_set1_epi64x((int64_t{1} << 29) - 1);
  const __m256i a1 = _mm256_srli_epi64(a, 32);
  const __m256i b1 = _mm256_srli_epi64(b, 32);
  // vpmuludq multiplies the LOW 32 bits of each lane, so a/b serve as a0/b0.
  const __m256i p00 = _mm256_mul_epu32(a, b);
  const __m256i p01 = _mm256_mul_epu32(a, b1);
  const __m256i p10 = _mm256_mul_epu32(a1, b);
  const __m256i p11 = _mm256_mul_epu32(a1, b1);
  const __m256i mid = _mm256_add_epi64(p01, p10);  // < 2^62
  // s = (p00 & p) + (p00 >> 61) + (mid mod 2^29) << 32 + (mid >> 29) + 8·p11
  const __m256i s = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_and_si256(p00, p), _mm256_srli_epi64(p00, 61)),
      _mm256_add_epi64(
          _mm256_slli_epi64(_mm256_and_si256(mid, mask29), 32),
          _mm256_add_epi64(_mm256_srli_epi64(mid, 29),
                           _mm256_slli_epi64(p11, 3))));  // < 2^63
  const __m256i r =
      _mm256_add_epi64(_mm256_and_si256(s, p), _mm256_srli_epi64(s, 61));
  // r < 2^61 + 4: one conditional subtract canonicalizes. Lanes are < 2^63,
  // so the signed compare is order-correct.
  const __m256i ge = _mm256_cmpgt_epi64(
      r, _mm256_set1_epi64x(static_cast<int64_t>(kMersennePrime61 - 1)));
  return _mm256_sub_epi64(r, _mm256_and_si256(ge, p));
}

__attribute__((target("avx2"))) inline __m256i AddMod61Avx2(__m256i a,
                                                            __m256i b) {
  const __m256i p = _mm256_set1_epi64x(static_cast<int64_t>(kMersennePrime61));
  const __m256i s = _mm256_add_epi64(a, b);  // both < p ⇒ s < 2^62
  const __m256i ge = _mm256_cmpgt_epi64(
      s, _mm256_set1_epi64x(static_cast<int64_t>(kMersennePrime61 - 1)));
  return _mm256_sub_epi64(s, _mm256_and_si256(ge, p));
}

__attribute__((target("avx2"))) inline __m256i FoldToField61Avx2(__m256i x) {
  const __m256i p = _mm256_set1_epi64x(static_cast<int64_t>(kMersennePrime61));
  const __m256i r =
      _mm256_add_epi64(_mm256_and_si256(x, p), _mm256_srli_epi64(x, 61));
  const __m256i ge = _mm256_cmpgt_epi64(
      r, _mm256_set1_epi64x(static_cast<int64_t>(kMersennePrime61 - 1)));
  return _mm256_sub_epi64(r, _mm256_and_si256(ge, p));
}

__attribute__((target("avx2"))) void PolyEvalAvx2(
    std::span<const uint64_t> coefficients, const uint64_t* values, size_t n,
    uint64_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const __m256i v = FoldToField61Avx2(x);
    __m256i acc = _mm256_set1_epi64x(
        static_cast<int64_t>(coefficients[coefficients.size() - 1]));
    for (size_t c = coefficients.size() - 1; c-- > 0;) {
      acc = AddMod61Avx2(
          MulMod61Avx2(acc, v),
          _mm256_set1_epi64x(static_cast<int64_t>(coefficients[c])));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), acc);
  }
  if (i < n) PolyEvalScalar(coefficients, values + i, n - i, out + i);
}

// ---- AVX-512F: 8 × 64-bit lanes --------------------------------------------

__attribute__((target("avx512f"))) inline __m512i MulMod61Avx512(__m512i a,
                                                                 __m512i b) {
  const __m512i p = _mm512_set1_epi64(static_cast<int64_t>(kMersennePrime61));
  const __m512i mask29 = _mm512_set1_epi64((int64_t{1} << 29) - 1);
  const __m512i a1 = _mm512_srli_epi64(a, 32);
  const __m512i b1 = _mm512_srli_epi64(b, 32);
  const __m512i p00 = _mm512_mul_epu32(a, b);
  const __m512i p01 = _mm512_mul_epu32(a, b1);
  const __m512i p10 = _mm512_mul_epu32(a1, b);
  const __m512i p11 = _mm512_mul_epu32(a1, b1);
  const __m512i mid = _mm512_add_epi64(p01, p10);
  const __m512i s = _mm512_add_epi64(
      _mm512_add_epi64(_mm512_and_si512(p00, p), _mm512_srli_epi64(p00, 61)),
      _mm512_add_epi64(
          _mm512_slli_epi64(_mm512_and_si512(mid, mask29), 32),
          _mm512_add_epi64(_mm512_srli_epi64(mid, 29),
                           _mm512_slli_epi64(p11, 3))));
  __m512i r =
      _mm512_add_epi64(_mm512_and_si512(s, p), _mm512_srli_epi64(s, 61));
  const __mmask8 ge = _mm512_cmpge_epu64_mask(r, p);
  return _mm512_mask_sub_epi64(r, ge, r, p);
}

__attribute__((target("avx512f"))) inline __m512i AddMod61Avx512(__m512i a,
                                                                 __m512i b) {
  const __m512i p = _mm512_set1_epi64(static_cast<int64_t>(kMersennePrime61));
  const __m512i s = _mm512_add_epi64(a, b);
  const __mmask8 ge = _mm512_cmpge_epu64_mask(s, p);
  return _mm512_mask_sub_epi64(s, ge, s, p);
}

__attribute__((target("avx512f"))) inline __m512i FoldToField61Avx512(
    __m512i x) {
  const __m512i p = _mm512_set1_epi64(static_cast<int64_t>(kMersennePrime61));
  const __m512i r =
      _mm512_add_epi64(_mm512_and_si512(x, p), _mm512_srli_epi64(x, 61));
  const __mmask8 ge = _mm512_cmpge_epu64_mask(r, p);
  return _mm512_mask_sub_epi64(r, ge, r, p);
}

__attribute__((target("avx512f"))) void PolyEvalAvx512(
    std::span<const uint64_t> coefficients, const uint64_t* values, size_t n,
    uint64_t* out) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_loadu_si512(values + i);
    const __m512i v = FoldToField61Avx512(x);
    __m512i acc = _mm512_set1_epi64(
        static_cast<int64_t>(coefficients[coefficients.size() - 1]));
    for (size_t c = coefficients.size() - 1; c-- > 0;) {
      acc = AddMod61Avx512(
          MulMod61Avx512(acc, v),
          _mm512_set1_epi64(static_cast<int64_t>(coefficients[c])));
    }
    _mm512_storeu_si512(out + i, acc);
  }
  if (i < n) PolyEvalScalar(coefficients, values + i, n - i, out + i);
}

#pragma GCC diagnostic pop

#endif  // SKIMJOIN_X86_SIMD

}  // namespace

void PolyEvalBlock(std::span<const uint64_t> coefficients,
                   const uint64_t* values, size_t n, uint64_t* out,
                   SimdLevel level) {
#if SKIMJOIN_X86_SIMD
  switch (level) {
    case SimdLevel::kAvx512:
      PolyEvalAvx512(coefficients, values, n, out);
      return;
    case SimdLevel::kAvx2:
      PolyEvalAvx2(coefficients, values, n, out);
      return;
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  PolyEvalScalar(coefficients, values, n, out);
}

}  // namespace hashing
}  // namespace skimjoin
