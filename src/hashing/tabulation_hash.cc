#include "hashing/tabulation_hash.h"

#include "util/logging.h"

namespace skimjoin {
namespace hashing {

TabulationHash::TabulationHash(Rng* rng) {
  SKIMJOIN_CHECK(rng != nullptr);
  for (auto& table : tables_) {
    for (uint64_t& word : table) word = rng->NextUint64();
  }
}

}  // namespace hashing
}  // namespace skimjoin
