// SIMD block evaluation of the Carter–Wegman polynomials over
// GF(2^61 - 1) — the vector half of the update fast path (DESIGN.md §13).
//
// The hash→bucket→sign pipeline of every sketch update spends its cycles
// in Horner's rule over the Mersenne field (prime_field.h). A single lane
// needs a 64×64→128 multiply, which AVX2/AVX-512 lack — but because every
// Horner input is a canonical residue (< 2^61), the product decomposes into
// four 32×32→64 partial products (`vpmuludq`) whose Mersenne folds all fit
// 64-bit lanes:
//
//   a = a0 + a1·2^32   (a < 2^61 ⇒ a1 < 2^29), likewise b
//   a·b = p00 + (p01 + p10)·2^32 + p11·2^64
//   with 2^61 ≡ 1 (mod p):   2^64 ≡ 8,  and for mid = p01 + p10 (< 2^62)
//   mid·2^32 ≡ (mid mod 2^29)·2^32 + (mid >> 29)      [since 2^29·2^32 = 2^61]
//   s = (p00 & p) + (p00 >> 61) + (mid mod 2^29)·2^32 + (mid >> 29) + 8·p11
//     < 2^63, and the canonical residue is ((s & p) + (s >> 61)) − p·[≥ p].
//
// Every intermediate stays canonical at every Horner step, so each lane is
// BIT-IDENTICAL to the scalar MulMod61/AddMod61 sequence — the property the
// kernel differential tests hold the whole switch matrix to.
//
// Dispatch is by runtime CPUID (`__builtin_cpu_supports`), overridable with
// the environment variable SKIMJOIN_FORCE_SCALAR=1 so the always-compiled
// scalar fallback stays exercised on AVX machines (CI runs the differential
// suite both ways). The selected level is exported as the engine's
// `engine.simd_level` gauge and as a bench-context field.

#ifndef SKIMJOIN_HASHING_SIMD_HASH_H_
#define SKIMJOIN_HASHING_SIMD_HASH_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace skimjoin {
namespace hashing {

/// The instruction set the polynomial block kernels dispatch to. Values are
/// ordered by width so the level doubles as the exported gauge value.
enum class SimdLevel : int {
  kScalar = 0,  // portable fallback, always compiled
  kAvx2 = 1,    // 4 × 64-bit lanes
  kAvx512 = 2,  // 8 × 64-bit lanes (avx512f)
};

/// "scalar" / "avx2" / "avx512".
const char* SimdLevelName(SimdLevel level);

/// The widest level this CPU supports, probed once (thread-safe) via CPUID.
/// SKIMJOIN_FORCE_SCALAR=1 in the environment pins the answer to kScalar —
/// the hook CI uses to keep the fallback path tested on wide machines.
SimdLevel DetectSimdLevel();

/// Evaluates the degree-(k-1) polynomial with `coefficients` (constant term
/// first, exactly as KWiseHash stores them) at values[0..n), folding each
/// 64-bit input into the field first. out[i] is bit-identical to the scalar
/// KWiseHash evaluation of values[i] for every level (canonical residues at
/// every step). Tails shorter than the lane width run the scalar loop.
/// Pre-condition: coefficients.size() >= 1; out has room for n results.
void PolyEvalBlock(std::span<const uint64_t> coefficients,
                   const uint64_t* values, size_t n, uint64_t* out,
                   SimdLevel level);

}  // namespace hashing
}  // namespace skimjoin

#endif  // SKIMJOIN_HASHING_SIMD_HASH_H_
