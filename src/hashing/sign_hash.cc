#include "hashing/sign_hash.h"

namespace skimjoin {
namespace hashing {

SignHash::SignHash(Rng* rng) : hash_(/*independence=*/4, rng) {}

}  // namespace hashing
}  // namespace skimjoin
