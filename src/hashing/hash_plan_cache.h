// Skew-aware memoization of per-element hash plans.
//
// Sketch maintenance evaluates the same Carter–Wegman polynomials for every
// occurrence of a key, yet real streams are skewed: under Zipf-like
// workloads a handful of hot keys carries most of the mass, so the second
// and later occurrences of a hot key re-pay the full polynomial cost for an
// answer that cannot change (hash families are fixed at construction). A
// HashPlanCache is a small direct-mapped cache from element value to its
// complete per-table "plan" — the (bucket, sign) pair for every table of a
// hash/Count-Min sketch, or the per-level plans inside a skimmed sketch —
// so a cached key costs one probe plus `s` counter adds and ZERO polynomial
// evaluations.
//
// Design points:
//   * Direct-mapped, power-of-two slots, SplitMix64-mixed index: one tag
//     load to probe, eviction is plain overwrite (no LRU bookkeeping on the
//     hot path). Conflict misses just re-pay the polynomial cost — the
//     cache is a pure accelerator and never changes results.
//   * A slot's tag is `value + 1`; tag 0 means empty. This folds occupancy
//     into the tag array (one load, not two). The one value whose tag would
//     collide with "empty" (2^64 - 1) is never served from the cache — it
//     just re-pays the polynomial cost, preserving bit-identity.
//   * Plan words are 32-bit: a packed (bucket, sign) fits easily (counter
//     arrays are memory-bound long before 2^31 buckets), and halving the
//     plan footprint roughly halves the cache-line traffic per hit — the
//     probe cost is what bounds the speedup on hot keys.
//   * The cache holds DERIVED state only (plans are a pure function of the
//     hash families), so it is excluded from serialization, Merge,
//     CompatibleWith, and Reset: a counter reset does not invalidate plans.
//   * Single-writer, like the sketches that own it. Each ParallelIngestor
//     replica owns its own cache.
//   * hits()/misses() feed the `ingest.<stream>.hash_cache_{hits,misses}`
//     engine metrics (docs/OBSERVABILITY.md).

#ifndef SKIMJOIN_HASHING_HASH_PLAN_CACHE_H_
#define SKIMJOIN_HASHING_HASH_PLAN_CACHE_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace skimjoin {
namespace hashing {

/// A direct-mapped value → plan cache; each plan is `words_per_plan`
/// caller-defined 32-bit words (one per table, packed bucket+sign).
class HashPlanCache {
 public:
  /// `num_slots` is rounded up to a power of two (minimum 1);
  /// `words_per_plan` >= 1.
  HashPlanCache(uint64_t num_slots, uint64_t words_per_plan);

  /// The cached plan for `value`, or nullptr on a miss. Counts the probe.
  const uint32_t* Lookup(uint64_t value) {
    const uint64_t tag = value + 1;  // 0 ⇒ the never-cached sentinel value
    const uint64_t slot = SlotFor(value);
    if (tag != 0 && tags_[slot] == tag) {
      ++hits_;
      return &plans_[slot * words_per_plan_];
    }
    ++misses_;
    return nullptr;
  }

  /// One-shot probe-and-claim: on a hit, `*hit` is true and the cached plan
  /// is returned; on a miss the slot is claimed for `value` (tag written,
  /// previous tenant evicted) and the returned storage is the caller's to
  /// fill. Exactly one slot computation either way — the hot-path form of
  /// Lookup + Insert. Counts the probe.
  uint32_t* Probe(uint64_t value, bool* hit) {
    const uint64_t tag = value + 1;
    const uint64_t slot = SlotFor(value);
    uint32_t* plan = &plans_[slot * words_per_plan_];
    if (tag != 0 && tags_[slot] == tag) {
      ++hits_;
      *hit = true;
      return plan;
    }
    ++misses_;
    tags_[slot] = tag;  // tag 0 (sentinel value) marks the slot empty
    *hit = false;
    return plan;
  }

  /// Claims the slot for `value` (evicting any previous tenant) and returns
  /// its plan storage for the caller to fill. Does not count a probe. For
  /// the sentinel value 2^64 - 1 the written tag marks the slot EMPTY, so
  /// the plan is usable by the caller right now but never served later —
  /// the slot is sacrificed rather than aliased.
  uint32_t* Insert(uint64_t value) {
    const uint64_t slot = SlotFor(value);
    tags_[slot] = value + 1;
    return &plans_[slot * words_per_plan_];
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t num_slots() const { return mask_ + 1; }
  uint64_t words_per_plan() const { return words_per_plan_; }

  /// Total footprint in bytes (plans and tags). Feeds the per-synopsis
  /// memory gauges.
  uint64_t MemoryBytes() const;

 private:
  uint64_t SlotFor(uint64_t value) const { return Mix64(value) & mask_; }

  uint64_t mask_;
  uint64_t words_per_plan_;
  std::vector<uint64_t> tags_;
  std::vector<uint32_t> plans_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// Packing helpers shared by every sketch that stores (bucket, sign) plans:
/// the sign's negative bit rides in bit 0 so the bucket shifts left by one.
/// Callers guard that buckets fit 31 bits (sketch::KernelOptions plan
/// caches are disabled beyond that — see HashSketch::SetKernelOptions).
inline uint32_t PackBucketSign(uint64_t bucket, int64_t sign) {
  return static_cast<uint32_t>((bucket << 1) |
                               static_cast<uint64_t>(sign < 0));
}
inline uint64_t PlanBucket(uint32_t word) { return word >> 1; }
inline int64_t PlanSign(uint32_t word) {
  return int64_t{1} - 2 * static_cast<int64_t>(word & 1);
}

}  // namespace hashing
}  // namespace skimjoin

#endif  // SKIMJOIN_HASHING_HASH_PLAN_CACHE_H_
