// Four-wise independent ±1 ("Rademacher") families ξ used by every
// tug-of-war style sketch in the library. ξ(v) is the low bit of a 4-wise
// independent hash of v mapped to {-1, +1}; four-wise independence of the
// underlying family implies E[ξ_a ξ_b ξ_c ξ_d] factorizes for distinct
// values, which is exactly the property the AGMS variance analysis needs.

#ifndef SKIMJOIN_HASHING_SIGN_HASH_H_
#define SKIMJOIN_HASHING_SIGN_HASH_H_

#include <cstdint>

#include "hashing/kwise_hash.h"
#include "util/random.h"

namespace skimjoin {
namespace hashing {

/// One member of a four-wise independent ±1 family.
class SignHash {
 public:
  explicit SignHash(Rng* rng);

  /// Returns +1 or -1: low bit 0 maps to +1, low bit 1 to -1. Branchless —
  /// a select here would sit on the hot path of every counter touch.
  int64_t operator()(uint64_t x) const {
    return int64_t{1} - 2 * static_cast<int64_t>(hash_(x) & 1);
  }

  /// The wrapped four-wise polynomial. Exposed so the SIMD block kernels
  /// (hashing/simd_hash.h) can evaluate it over whole element blocks; the
  /// low bit of a raw poly() result is the packed sign bit (1 ⇒ -1).
  const KWiseHash& poly() const { return hash_; }

  /// Total footprint in bytes, including the wrapped polynomial's heap.
  uint64_t MemoryBytes() const { return hash_.MemoryBytes(); }

 private:
  KWiseHash hash_;
};

}  // namespace hashing
}  // namespace skimjoin

#endif  // SKIMJOIN_HASHING_SIGN_HASH_H_
