#include "hashing/kwise_hash.h"

#include "util/logging.h"

namespace skimjoin {
namespace hashing {

KWiseHash::KWiseHash(int independence, Rng* rng) {
  SKIMJOIN_CHECK_GE(independence, 1);
  SKIMJOIN_CHECK(rng != nullptr);
  coefficients_.reserve(static_cast<size_t>(independence));
  for (int i = 0; i < independence; ++i) {
    coefficients_.push_back(rng->NextUint64Below(kMersennePrime61));
  }
  // Leading coefficient non-zero so the polynomial has exact degree.
  if (independence > 1 && coefficients_.back() == 0) {
    coefficients_.back() = 1 + rng->NextUint64Below(kMersennePrime61 - 1);
  }
}

uint64_t KWiseHash::operator()(uint64_t x) const {
  const uint64_t v = FoldToField61(x);
  // Horner's rule, highest-degree coefficient first.
  uint64_t acc = coefficients_.back();
  for (size_t i = coefficients_.size() - 1; i-- > 0;) {
    acc = AddMod61(MulMod61(acc, v), coefficients_[i]);
  }
  return acc;
}

BucketHash::BucketHash(uint64_t num_buckets, Rng* rng)
    : hash_(/*independence=*/2, rng),
      num_buckets_(num_buckets),
      divisor_(num_buckets < 1 ? 1 : num_buckets) {
  SKIMJOIN_CHECK_GE(num_buckets, 1u);
}

}  // namespace hashing
}  // namespace skimjoin
