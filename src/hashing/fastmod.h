// Fast modular reduction by a runtime constant (Lemire–Kaser–Kurz,
// "Faster remainder by direct computation", 2019).
//
// The bucket-selection hashes reduce a field element (< 2^61) into
// [0, num_buckets) once per table per stream arrival, so on the hash-sketch
// fast path the hardware 64-bit divide behind `%` is the single most
// expensive instruction left. A divisor fixed at construction admits the
// classic magic-number trick: precompute M = floor(2^128 / d) + 1 once, then
//
//   a mod d = high_128( (M * a mod 2^128) * d )
//
// — two multiplies and a shift, no division. With F = 128 fraction bits the
// approximation is exact for every 64-bit dividend and every 64-bit divisor
// (the theorem needs F >= N + log2(d) = 64 + 64), so the mapping is
// bit-identical to `%`; tests/fastmod_test.cc checks this exhaustively over
// edge dividends and every bucket count the benches use.
//
// All arithmetic is unsigned __uint128_t: wraparound is defined behavior,
// so the kernels stay UBSan-clean (CI runs the differential test under
// -fsanitize=undefined to hold that line).

#ifndef SKIMJOIN_HASHING_FASTMOD_H_
#define SKIMJOIN_HASHING_FASTMOD_H_

#include <cstdint>

namespace skimjoin {
namespace hashing {

/// A divisor with its precomputed 128-bit reciprocal. Cheap to copy (two
/// words); default-constructed state behaves as divisor 1 (Mod == 0).
class FastDivisor {
 public:
  FastDivisor() : FastDivisor(1) {}

  /// Pre-condition: divisor >= 1.
  explicit FastDivisor(uint64_t divisor)
      : magic_(
            // M = floor((2^128 - 1) / d) + 1 == floor(2^128 / d) + 1 for
            // d > 1 (2^128 - 1 is never a multiple of d when d is not 1),
            // and wraps to 0 for d == 1 — for which every remainder is 0,
            // which is exactly what the multiply below then yields.
            static_cast<__uint128_t>(~static_cast<__uint128_t>(0)) / divisor +
            1),
        divisor_(divisor) {}

  /// a mod divisor, bit-identical to `a % divisor` for every 64-bit a.
  uint64_t Mod(uint64_t a) const {
    const __uint128_t lowbits = magic_ * a;  // mod 2^128, wraps by design
    // high 64 bits of (lowbits * divisor) >> 64 — i.e. the top of the full
    // 192-bit product, assembled from two 128-bit partial products.
    const __uint128_t bottom =
        (lowbits & ~uint64_t{0}) * divisor_ >> 64;
    const __uint128_t top = (lowbits >> 64) * divisor_;
    return static_cast<uint64_t>((bottom + top) >> 64);
  }

  uint64_t divisor() const { return divisor_; }

 private:
  __uint128_t magic_;
  uint64_t divisor_;
};

}  // namespace hashing
}  // namespace skimjoin

#endif  // SKIMJOIN_HASHING_FASTMOD_H_
