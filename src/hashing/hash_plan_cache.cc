#include "hashing/hash_plan_cache.h"

#include "util/logging.h"

namespace skimjoin {
namespace hashing {

namespace {

uint64_t RoundUpPowerOfTwo(uint64_t x) {
  uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

HashPlanCache::HashPlanCache(uint64_t num_slots, uint64_t words_per_plan)
    : mask_(RoundUpPowerOfTwo(num_slots < 1 ? 1 : num_slots) - 1),
      words_per_plan_(words_per_plan) {
  SKIMJOIN_CHECK_GE(words_per_plan, 1u);
  const uint64_t slots = mask_ + 1;
  tags_.assign(slots, 0);
  plans_.assign(slots * words_per_plan_, 0);
}

uint64_t HashPlanCache::MemoryBytes() const {
  return sizeof(*this) + plans_.capacity() * sizeof(uint32_t) +
         tags_.capacity() * sizeof(uint64_t);
}

}  // namespace hashing
}  // namespace skimjoin
