// Simple tabulation hashing [Zobrist '70; Pătraşcu–Thorup '11]: the input is
// split into 8 bytes, each byte indexes a table of random 64-bit words, and
// the words are XORed. The family is 3-wise independent and behaves like a
// fully random function in Chernoff-style applications.
//
// Provided as an alternative to the Carter–Wegman polynomials for the
// hash-family ablation benchmark: table lookups trade memory for the
// multiply-free evaluation some streaming deployments prefer. Note it is
// NOT 4-wise independent, so the AGMS variance bound does not formally hold
// with tabulation signs — the ablation measures how much that matters.

#ifndef SKIMJOIN_HASHING_TABULATION_HASH_H_
#define SKIMJOIN_HASHING_TABULATION_HASH_H_

#include <array>
#include <cstdint>

#include "util/random.h"

namespace skimjoin {
namespace hashing {

/// One member of the simple-tabulation family over 64-bit keys.
class TabulationHash {
 public:
  explicit TabulationHash(Rng* rng);

  uint64_t operator()(uint64_t x) const {
    uint64_t h = 0;
    for (int i = 0; i < 8; ++i) {
      h ^= tables_[i][(x >> (8 * i)) & 0xFF];
    }
    return h;
  }

  /// Bucket projection, for use as a drop-in bucket hash.
  /// Pre-condition: num_buckets >= 1.
  uint64_t Bucket(uint64_t x, uint64_t num_buckets) const {
    return (*this)(x) % num_buckets;
  }

  /// ±1 projection, for use as a drop-in sign hash.
  int64_t Sign(uint64_t x) const {
    return (((*this)(x) & 1) == 0) ? int64_t{1} : int64_t{-1};
  }

 private:
  std::array<std::array<uint64_t, 256>, 8> tables_;
};

}  // namespace hashing
}  // namespace skimjoin

#endif  // SKIMJOIN_HASHING_TABULATION_HASH_H_
