// Arithmetic in GF(p) for the Mersenne prime p = 2^61 - 1.
//
// Carter–Wegman k-wise independent hash families evaluate degree-(k-1)
// polynomials over a prime field; using a Mersenne prime makes the modular
// reduction branch-free (shift + add) which keeps per-element sketch update
// cost low — the property the paper's hash-sketch design is built around.

#ifndef SKIMJOIN_HASHING_PRIME_FIELD_H_
#define SKIMJOIN_HASHING_PRIME_FIELD_H_

#include <cstdint>

namespace skimjoin {
namespace hashing {

/// The field modulus 2^61 - 1. Domain values hashed by the library must be
/// strictly smaller than this (the stream model uses 64-bit values folded
/// into the field by the hash classes).
inline constexpr uint64_t kMersennePrime61 = (uint64_t{1} << 61) - 1;

/// Reduces a value < 2^122 modulo 2^61 - 1.
constexpr uint64_t ReduceMersenne61(__uint128_t x) {
  // x = hi * 2^61 + lo  =>  x ≡ hi + lo (mod 2^61 - 1).
  uint64_t lo = static_cast<uint64_t>(x) & kMersennePrime61;
  uint64_t hi = static_cast<uint64_t>(x >> 61);
  uint64_t sum = lo + hi;
  if (sum >= kMersennePrime61) sum -= kMersennePrime61;
  return sum;
}

/// (a * b) mod (2^61 - 1). Pre-condition: a, b < 2^61 - 1.
constexpr uint64_t MulMod61(uint64_t a, uint64_t b) {
  return ReduceMersenne61(static_cast<__uint128_t>(a) * b);
}

/// (a + b) mod (2^61 - 1). Pre-condition: a, b < 2^61 - 1.
constexpr uint64_t AddMod61(uint64_t a, uint64_t b) {
  uint64_t sum = a + b;  // < 2^62, no overflow
  if (sum >= kMersennePrime61) sum -= kMersennePrime61;
  return sum;
}

/// Folds an arbitrary 64-bit value into the field [0, 2^61 - 1).
constexpr uint64_t FoldToField61(uint64_t x) {
  uint64_t r = (x & kMersennePrime61) + (x >> 61);
  if (r >= kMersennePrime61) r -= kMersennePrime61;
  return r;
}

}  // namespace hashing
}  // namespace skimjoin

#endif  // SKIMJOIN_HASHING_PRIME_FIELD_H_
