#include "sketch/fm_sketch.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "sketch/serial_limits.h"
#include "sketch/sketch_seed.h"
#include "util/logging.h"

namespace skimjoin {
namespace sketch {

namespace {

// Magic constant from Flajolet–Martin's analysis.
constexpr double kPhi = 0.77351;

// Rng wrapper for drawing the two hash families deterministically.
Rng HashRng(uint64_t seed, uint64_t which) {
  return FamilyRng(seed, FamilyTag::kFmSketch, which);
}

}  // namespace

FmSketch::FmSketch(uint64_t num_maps, uint64_t seed)
    : num_maps_(num_maps),
      seed_(seed),
      map_hash_([&] {
        Rng rng = HashRng(seed, 1);
        return hashing::KWiseHash(/*independence=*/2, &rng);
      }()),
      position_hash_([&] {
        Rng rng = HashRng(seed, 2);
        return hashing::KWiseHash(/*independence=*/2, &rng);
      }()),
      counters_(num_maps * kPositions, 0) {}

StatusOr<FmSketch> FmSketch::Create(uint64_t num_maps, uint64_t seed) {
  if (num_maps == 0) {
    return InvalidArgumentError("FmSketch needs at least one bit map");
  }
  return FmSketch(num_maps, seed);
}

void FmSketch::Update(uint64_t value, int64_t weight) {
  const uint64_t map = map_hash_(value) % num_maps_;
  const uint64_t bits = position_hash_(value);
  // Geometric position: trailing zeros of the hash (position p with
  // probability 2^-(p+1)). The hash lives in [0, 2^61-1); a zero hash maps
  // to the top position.
  const uint64_t position =
      bits == 0 ? kPositions - 1
                : static_cast<uint64_t>(__builtin_ctzll(bits));
  counters_[map * kPositions + std::min(position, kPositions - 1)] += weight;
}

void FmSketch::Merge(const FmSketch& other) {
  SKIMJOIN_CHECK(CompatibleWith(other)) << "merging incompatible FM sketches";
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

Status FmSketch::SerializeTo(std::ostream& out) const {
  out << "skimjoin.fm_sketch v1\n" << num_maps_ << ' ' << seed_ << '\n';
  for (size_t i = 0; i < counters_.size(); ++i) {
    out << counters_[i] << (i + 1 == counters_.size() ? '\n' : ' ');
  }
  out << "end\n";
  if (!out) return IoError("FM-sketch serialization failed");
  return OkStatus();
}

StatusOr<FmSketch> FmSketch::DeserializeFrom(std::istream& in) {
  std::string tag, version;
  if (!(in >> tag >> version) || tag != "skimjoin.fm_sketch" ||
      version != "v1") {
    return InvalidArgumentError("not a skimjoin fm-sketch v1 record");
  }
  uint64_t num_maps = 0;
  uint64_t seed = 0;
  if (!(in >> num_maps >> seed)) {
    return InvalidArgumentError("malformed fm-sketch header");
  }
  SKIMJOIN_RETURN_IF_ERROR(
      CheckDeserializeDims(num_maps, kPositions, "fm-sketch"));
  StatusOr<FmSketch> sketch = FmSketch::Create(num_maps, seed);
  SKIMJOIN_RETURN_IF_ERROR(sketch.status());
  for (int64_t& counter : sketch->counters_) {
    if (!(in >> counter)) {
      return InvalidArgumentError("truncated fm-sketch counter block");
    }
  }
  std::string sentinel;
  if (!(in >> sentinel) || sentinel != "end") {
    return InvalidArgumentError("fm-sketch record missing its end sentinel");
  }
  return sketch;
}

double FmSketch::EstimateDistinctCount() const {
  double position_sum = 0.0;
  for (uint64_t map = 0; map < num_maps_; ++map) {
    uint64_t lowest_unset = 0;
    while (lowest_unset < kPositions &&
           counters_[map * kPositions + lowest_unset] > 0) {
      ++lowest_unset;
    }
    position_sum += static_cast<double>(lowest_unset);
  }
  const double mean_position = position_sum / static_cast<double>(num_maps_);
  return static_cast<double>(num_maps_) * std::pow(2.0, mean_position) / kPhi;
}

uint64_t FmSketch::MemoryBytes() const {
  return sizeof(*this) + counters_.capacity() * sizeof(int64_t) +
         (map_hash_.MemoryBytes() - sizeof(hashing::KWiseHash)) +
         (position_hash_.MemoryBytes() - sizeof(hashing::KWiseHash));
}

}  // namespace sketch
}  // namespace skimjoin
