// Count-Min sketch [Cormode–Muthukrishnan '04], included as an additional
// point-estimation / join-size baseline for the ablation benchmarks.
//
// Same table-of-buckets layout as the hash sketch but without ±1 signs:
// counters only ever accumulate |weight| contributions of colliding values,
// so point estimates are one-sided overestimates (min over tables) and the
// inner-product estimate is an upper bound in insert-only streams. With
// deletions the one-sided guarantee disappears — one of the reasons the
// paper's estimators are built on ±1 atomic sketches instead.

#ifndef SKIMJOIN_SKETCH_COUNT_MIN_SKETCH_H_
#define SKIMJOIN_SKETCH_COUNT_MIN_SKETCH_H_

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <vector>

#include "hashing/hash_plan_cache.h"
#include "hashing/kwise_hash.h"
#include "hashing/simd_hash.h"
#include "sketch/kernel_options.h"
#include "stream/frequency_vector.h"
#include "stream/stream_element.h"
#include "util/estimate_report.h"
#include "util/status.h"

namespace skimjoin {
namespace sketch {

/// Shape of a Count-Min sketch.
struct CountMinConfig {
  uint64_t num_tables = 5;
  uint64_t num_buckets = 256;

  uint64_t TotalCounters() const { return num_tables * num_buckets; }
};

/// One Count-Min synopsis for one stream.
class CountMinSketch {
 public:
  /// Validates `config`; families deterministic in `seed` (see
  /// sketch_seed.h).
  static StatusOr<CountMinSketch> Create(const CountMinConfig& config,
                                         uint64_t seed);

  /// O(num_tables) counter touches.
  void Update(uint64_t value, int64_t weight);

  void Update(const stream::StreamElement& element) {
    Update(element.value, element.weight);
  }

  /// Applies a batch of arrivals; counter-for-counter identical to scalar
  /// Update calls. Blocked hash→scatter by default (see
  /// HashSketch::UpdateBatch and DESIGN.md §10), legacy table-major when
  /// blocking is disabled.
  void UpdateBatch(std::span<const stream::StreamElement> elements);

  /// Selects fast-path kernels (bit-identical; DESIGN.md §10). Rebuilds or
  /// drops the plan cache, restarting its hit/miss tallies.
  void SetKernelOptions(const KernelOptions& options);

  const KernelOptions& kernel_options() const { return kernel_options_; }

  /// Plan-cache tallies (zero when the cache is disabled).
  uint64_t hash_cache_hits() const {
    return plan_cache_ ? plan_cache_->hits() : 0;
  }
  uint64_t hash_cache_misses() const {
    return plan_cache_ ? plan_cache_->misses() : 0;
  }

  /// Zeroes every counter (families untouched).
  void Reset();

  void Absorb(const stream::FrequencyVector& frequencies);

  /// Point estimate: min over tables (an overestimate for insert-only
  /// streams).
  int64_t PointEstimate(uint64_t value) const;

  /// Inner-product estimate: min over tables of Σ_k C^F[j][k]·C^G[j][k]
  /// (an upper bound on the join size for insert-only streams).
  static StatusOr<double> EstimateJoinSize(const CountMinSketch& f,
                                           const CountMinSketch& g);

  /// Join estimation with provenance: the per-table product sums as copy
  /// estimates and the one-sided a-priori envelope F1(F)·F1(G)/b (expected
  /// single-table collision excess; F1 read exactly off one table's counter
  /// sum). Because the point answer is the MINIMUM over tables, the CI's
  /// lower edge is the estimate itself. `estimate` is bit-identical to
  /// EstimateJoinSize.
  static StatusOr<EstimateReport> EstimateJoinSizeWithReport(
      const CountMinSketch& f, const CountMinSketch& g);

  /// Total stream weight F1 (one table's counter sum — exact, since every
  /// update lands in exactly one bucket per table).
  double TotalWeight() const;

  bool CompatibleWith(const CountMinSketch& other) const;

  /// Counter-wise addition of a compatible sketch (same shape and seed):
  /// merge(A, B) is bit-identical to having ingested both streams into one
  /// sketch. CHECK-fails on incompatible sketches.
  void Merge(const CountMinSketch& other);

  /// Writes a self-describing text record (config, seed, counters); hash
  /// families are reconstructed from (config, seed) on deserialization.
  Status SerializeTo(std::ostream& out) const;

  /// Reads a record written by SerializeTo. INVALID_ARGUMENT on a malformed
  /// or truncated record.
  static StatusOr<CountMinSketch> DeserializeFrom(std::istream& in);

  /// Read-only health probe (occupancy, |counter| quantiles, saturation
  /// headroom, collision pressure); see HashSketch::HealthProbe.
  SynopsisHealth HealthProbe() const;

  const CountMinConfig& config() const { return config_; }
  uint64_t seed() const { return seed_; }

  /// Total footprint in bytes: the object plus counter array and hash
  /// family heap storage. Feeds the per-synopsis memory gauges.
  uint64_t MemoryBytes() const;

  /// Raw counter array, row-major by table. Read-only substrate for
  /// sketch::SlimView refreshes.
  std::span<const int64_t> CounterArray() const { return counters_; }

  /// h_j(value), in [0, num_buckets); used by SlimView point estimates.
  uint64_t Bucket(uint64_t table, uint64_t value) const {
    return bucket_hashes_[table](value);
  }

  /// Monotone mutation epoch; see HashSketch::update_epoch (derived state,
  /// never serialized, bumped on every mutator including Reset).
  uint64_t update_epoch() const { return update_epoch_; }

 private:
  CountMinSketch(const CountMinConfig& config, uint64_t seed);

  /// The per-table copy estimates both estimation entry points reduce:
  /// copy j is Σ_k C^F[j][k]·C^G[j][k]. Pre-condition: f.CompatibleWith(g).
  static std::vector<double> PerTableProducts(const CountMinSketch& f,
                                              const CountMinSketch& g);

  /// Sequential min over per-table sums, 0.0 for an empty vector —
  /// reduction order matches the legacy loop so both paths agree bit-wise.
  static double MinOverTables(const std::vector<double>& per_table);

  /// Probes the plan cache for `value`; on a miss, evaluates all tables'
  /// buckets into the claimed slot (one bucket per word; no signs here).
  /// Pre-condition: the plan cache is enabled.
  const uint32_t* ComputePlan(uint64_t value);

  /// Evaluates every table's bucket word for `value` into `plan`.
  void FillPlan(uint64_t value, uint32_t* plan) const;

  /// SIMD form of FillPlan over a whole block: bucket plans for
  /// values[0..n) into `plans` (element-major, n × num_tables words) via
  /// the hashing/simd_hash.h block kernels. Word-for-word identical to
  /// calling FillPlan per value.
  void FillPlansBlock(const uint64_t* values, size_t n, uint32_t* plans,
                      hashing::SimdLevel level) const;

  /// Adds `weight` at each table's planned bucket.
  void ApplyPlan(const uint32_t* plan, int64_t weight);

  /// The blocked hash→scatter batch kernel (use_blocked_batch).
  void UpdateBatchBlocked(std::span<const stream::StreamElement> elements);

  CountMinConfig config_;
  uint64_t seed_;
  std::vector<hashing::BucketHash> bucket_hashes_;
  std::vector<int64_t> counters_;
  KernelOptions kernel_options_;
  uint64_t update_epoch_ = 0;
  // Derived acceleration state; see HashSketch for the contract (never
  // serialized, survives Reset, disengaged when use_plan_cache is off).
  std::optional<hashing::HashPlanCache> plan_cache_;
};

}  // namespace sketch
}  // namespace skimjoin

#endif  // SKIMJOIN_SKETCH_COUNT_MIN_SKETCH_H_
