// Count-Min sketch [Cormode–Muthukrishnan '04], included as an additional
// point-estimation / join-size baseline for the ablation benchmarks.
//
// Same table-of-buckets layout as the hash sketch but without ±1 signs:
// counters only ever accumulate |weight| contributions of colliding values,
// so point estimates are one-sided overestimates (min over tables) and the
// inner-product estimate is an upper bound in insert-only streams. With
// deletions the one-sided guarantee disappears — one of the reasons the
// paper's estimators are built on ±1 atomic sketches instead.

#ifndef SKIMJOIN_SKETCH_COUNT_MIN_SKETCH_H_
#define SKIMJOIN_SKETCH_COUNT_MIN_SKETCH_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <vector>

#include "hashing/kwise_hash.h"
#include "stream/frequency_vector.h"
#include "stream/stream_element.h"
#include "util/estimate_report.h"
#include "util/status.h"

namespace skimjoin {
namespace sketch {

/// Shape of a Count-Min sketch.
struct CountMinConfig {
  uint64_t num_tables = 5;
  uint64_t num_buckets = 256;

  uint64_t TotalCounters() const { return num_tables * num_buckets; }
};

/// One Count-Min synopsis for one stream.
class CountMinSketch {
 public:
  /// Validates `config`; families deterministic in `seed` (see
  /// sketch_seed.h).
  static StatusOr<CountMinSketch> Create(const CountMinConfig& config,
                                         uint64_t seed);

  /// O(num_tables) counter touches.
  void Update(uint64_t value, int64_t weight);

  void Update(const stream::StreamElement& element) {
    Update(element.value, element.weight);
  }

  /// Applies a batch of arrivals table-major; counter-for-counter identical
  /// to scalar Update calls (see HashSketch::UpdateBatch).
  void UpdateBatch(std::span<const stream::StreamElement> elements);

  /// Zeroes every counter (families untouched).
  void Reset();

  void Absorb(const stream::FrequencyVector& frequencies);

  /// Point estimate: min over tables (an overestimate for insert-only
  /// streams).
  int64_t PointEstimate(uint64_t value) const;

  /// Inner-product estimate: min over tables of Σ_k C^F[j][k]·C^G[j][k]
  /// (an upper bound on the join size for insert-only streams).
  static StatusOr<double> EstimateJoinSize(const CountMinSketch& f,
                                           const CountMinSketch& g);

  /// Join estimation with provenance: the per-table product sums as copy
  /// estimates and the one-sided a-priori envelope F1(F)·F1(G)/b (expected
  /// single-table collision excess; F1 read exactly off one table's counter
  /// sum). Because the point answer is the MINIMUM over tables, the CI's
  /// lower edge is the estimate itself. `estimate` is bit-identical to
  /// EstimateJoinSize.
  static StatusOr<EstimateReport> EstimateJoinSizeWithReport(
      const CountMinSketch& f, const CountMinSketch& g);

  /// Total stream weight F1 (one table's counter sum — exact, since every
  /// update lands in exactly one bucket per table).
  double TotalWeight() const;

  bool CompatibleWith(const CountMinSketch& other) const;

  /// Writes a self-describing text record (config, seed, counters); hash
  /// families are reconstructed from (config, seed) on deserialization.
  Status SerializeTo(std::ostream& out) const;

  /// Reads a record written by SerializeTo. INVALID_ARGUMENT on a malformed
  /// or truncated record.
  static StatusOr<CountMinSketch> DeserializeFrom(std::istream& in);

  const CountMinConfig& config() const { return config_; }
  uint64_t seed() const { return seed_; }

  /// Total footprint in bytes: the object plus counter array and hash
  /// family heap storage. Feeds the per-synopsis memory gauges.
  uint64_t MemoryBytes() const;

 private:
  CountMinSketch(const CountMinConfig& config, uint64_t seed);

  /// The per-table copy estimates both estimation entry points reduce:
  /// copy j is Σ_k C^F[j][k]·C^G[j][k]. Pre-condition: f.CompatibleWith(g).
  static std::vector<double> PerTableProducts(const CountMinSketch& f,
                                              const CountMinSketch& g);

  /// Sequential min over per-table sums, 0.0 for an empty vector —
  /// reduction order matches the legacy loop so both paths agree bit-wise.
  static double MinOverTables(const std::vector<double>& per_table);

  CountMinConfig config_;
  uint64_t seed_;
  std::vector<hashing::BucketHash> bucket_hashes_;
  std::vector<int64_t> counters_;
};

}  // namespace sketch
}  // namespace skimjoin

#endif  // SKIMJOIN_SKETCH_COUNT_MIN_SKETCH_H_
