#include "sketch/partitioned_agms.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.h"

namespace skimjoin {
namespace sketch {

StatusOr<PartitionPlan> PlanPartitions(
    const stream::FrequencyVector& f_stats,
    const stream::FrequencyVector& g_stats, uint64_t num_partitions,
    uint64_t total_space, uint64_t num_medians) {
  if (f_stats.domain_size() != g_stats.domain_size()) {
    return InvalidArgumentError("partition planning needs matching domains");
  }
  const uint64_t domain = f_stats.domain_size();
  if (num_partitions < 1 || num_partitions > domain) {
    return InvalidArgumentError(
        "num_partitions must be in [1, domain_size]");
  }
  if (num_medians < 1 || total_space < num_partitions * num_medians) {
    return InvalidArgumentError(
        "total_space must provide at least num_medians counters per "
        "partition");
  }

  // Per-value mass driving the partition boundaries: the per-partition
  // error terms are sqrt(F2(F_i)·F2(G_i)), so the goal is to isolate the
  // regions where EITHER stream concentrates self-join mass (a region heavy
  // in F but light in G contributes a large cross product to the monolithic
  // variance that partitioning eliminates). Sweep over the normalized
  // self-join masses of both streams, with a floor so empty regions still
  // split evenly.
  const double f2_f =
      std::max<double>(1.0, static_cast<double>(f_stats.SelfJoinSize()));
  const double f2_g =
      std::max<double>(1.0, static_cast<double>(g_stats.SelfJoinSize()));
  std::vector<double> mass(domain);
  double total_mass = 0.0;
  for (uint64_t v = 0; v < domain; ++v) {
    const double fv = static_cast<double>(f_stats.Get(v));
    const double gv = static_cast<double>(g_stats.Get(v));
    mass[v] = fv * fv / f2_f + gv * gv / f2_g + 1e-9;
    total_mass += mass[v];
  }

  // Equal-mass sweep: close a partition each time its share is reached.
  PartitionPlan plan;
  plan.domain_size = domain;
  plan.boundaries.push_back(0);
  const double share = total_mass / static_cast<double>(num_partitions);
  double accumulated = 0.0;
  for (uint64_t v = 0; v < domain && plan.boundaries.size() < num_partitions;
       ++v) {
    accumulated += mass[v];
    if (accumulated >= share * static_cast<double>(plan.boundaries.size())) {
      // Close the current partition after value v (boundary is exclusive).
      if (v + 1 < domain && v + 1 > plan.boundaries.back()) {
        plan.boundaries.push_back(v + 1);
      }
    }
  }
  plan.boundaries.push_back(domain);

  // Space allocation: minimizing Σ_i e_i/sqrt(s_i) with e_i =
  // sqrt(F2(F_i)·F2(G_i)) under Σ s_i = S gives s_i ∝ e_i^(2/3).
  const uint64_t parts = plan.boundaries.size() - 1;
  std::vector<double> weight(parts);
  double weight_total = 0.0;
  for (uint64_t i = 0; i < parts; ++i) {
    double f2f = 0.0, f2g = 0.0;
    for (uint64_t v = plan.boundaries[i]; v < plan.boundaries[i + 1]; ++v) {
      f2f += static_cast<double>(f_stats.Get(v)) *
             static_cast<double>(f_stats.Get(v));
      f2g += static_cast<double>(g_stats.Get(v)) *
             static_cast<double>(g_stats.Get(v));
    }
    weight[i] = std::pow(std::sqrt(f2f * f2g) + 1e-9, 2.0 / 3.0);
    weight_total += weight[i];
  }
  const uint64_t reserved = parts * num_medians;  // 1 mean per partition min
  const uint64_t flexible = total_space - reserved;
  for (uint64_t i = 0; i < parts; ++i) {
    const auto extra = static_cast<uint64_t>(
        static_cast<double>(flexible) * weight[i] / weight_total);
    AgmsConfig config;
    config.num_medians = num_medians;
    config.num_means = 1 + extra / num_medians;
    plan.configs.push_back(config);
  }
  return plan;
}

PartitionedAgmsSketch::PartitionedAgmsSketch(PartitionPlan plan, uint64_t seed,
                                             std::vector<AgmsSketch> partitions)
    : plan_(std::move(plan)), seed_(seed), partitions_(std::move(partitions)) {}

StatusOr<PartitionedAgmsSketch> PartitionedAgmsSketch::Create(
    const PartitionPlan& plan, uint64_t seed) {
  if (plan.boundaries.size() < 2 || plan.boundaries.front() != 0 ||
      plan.boundaries.back() != plan.domain_size ||
      plan.configs.size() + 1 != plan.boundaries.size()) {
    return InvalidArgumentError("malformed partition plan");
  }
  for (size_t i = 1; i < plan.boundaries.size(); ++i) {
    if (plan.boundaries[i] <= plan.boundaries[i - 1]) {
      return InvalidArgumentError("partition boundaries must be increasing");
    }
  }
  std::vector<AgmsSketch> partitions;
  partitions.reserve(plan.configs.size());
  for (size_t i = 0; i < plan.configs.size(); ++i) {
    StatusOr<AgmsSketch> sketch =
        AgmsSketch::Create(plan.configs[i], seed + i);
    SKIMJOIN_RETURN_IF_ERROR(sketch.status());
    partitions.push_back(*std::move(sketch));
  }
  return PartitionedAgmsSketch(plan, seed, std::move(partitions));
}

uint64_t PartitionedAgmsSketch::PartitionOf(uint64_t value) const {
  SKIMJOIN_CHECK_LT(value, plan_.domain_size);
  // First boundary strictly greater than value, minus one.
  const auto it = std::upper_bound(plan_.boundaries.begin(),
                                   plan_.boundaries.end(), value);
  return static_cast<uint64_t>(it - plan_.boundaries.begin()) - 1;
}

void PartitionedAgmsSketch::Update(uint64_t value, int64_t weight) {
  partitions_[PartitionOf(value)].Update(value, weight);
}

void PartitionedAgmsSketch::Absorb(const stream::FrequencyVector& frequencies) {
  const auto& counts = frequencies.counts();
  for (uint64_t value = 0; value < counts.size(); ++value) {
    if (counts[value] != 0) Update(value, counts[value]);
  }
}

bool PartitionedAgmsSketch::CompatibleWith(
    const PartitionedAgmsSketch& other) const {
  if (seed_ != other.seed_ || plan_.domain_size != other.plan_.domain_size ||
      plan_.boundaries != other.plan_.boundaries ||
      plan_.configs.size() != other.plan_.configs.size()) {
    return false;
  }
  for (size_t i = 0; i < plan_.configs.size(); ++i) {
    if (plan_.configs[i].num_means != other.plan_.configs[i].num_means ||
        plan_.configs[i].num_medians != other.plan_.configs[i].num_medians) {
      return false;
    }
  }
  return true;
}

StatusOr<double> PartitionedAgmsSketch::EstimateJoinSize(
    const PartitionedAgmsSketch& f, const PartitionedAgmsSketch& g) {
  if (!f.CompatibleWith(g)) {
    return InvalidArgumentError(
        "partitioned AGMS estimation requires synopses built from equal "
        "plans and seeds");
  }
  double total = 0.0;
  for (size_t i = 0; i < f.partitions_.size(); ++i) {
    StatusOr<double> partial =
        AgmsSketch::EstimateJoinSize(f.partitions_[i], g.partitions_[i]);
    SKIMJOIN_RETURN_IF_ERROR(partial.status());
    total += *partial;
  }
  return total;
}

uint64_t PartitionedAgmsSketch::MemoryBytes() const {
  uint64_t total = sizeof(*this) +
                   plan_.boundaries.capacity() * sizeof(uint64_t) +
                   plan_.configs.capacity() * sizeof(AgmsConfig);
  for (const AgmsSketch& partition : partitions_) {
    total += partition.MemoryBytes();
  }
  return total;
}

}  // namespace sketch
}  // namespace skimjoin
