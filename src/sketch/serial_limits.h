// Process-wide guard rails for synopsis deserialization.
//
// A serialized sketch record is untrusted input: a hostile or corrupt
// header can claim arbitrarily large dimensions and trick the reader into
// a multi-GB counter allocation before a single counter is parsed. Every
// DeserializeFrom implementation therefore validates its header dimensions
// through CheckDeserializeDims before allocating: the product must be
// non-zero, must not overflow, and must not exceed a configurable cap.
//
// The cap is process-wide (servers deserialize synopses of many shapes on
// one codepath) and defaults to 1 << 26 counters — 512 MiB of int64, far
// beyond any configuration the estimators use, yet small enough that a
// rejected record never destabilizes the process.

#ifndef SKIMJOIN_SKETCH_SERIAL_LIMITS_H_
#define SKIMJOIN_SKETCH_SERIAL_LIMITS_H_

#include <cstdint>

#include "util/status.h"

namespace skimjoin {
namespace sketch {

/// Default value of the deserialization counter cap.
inline constexpr uint64_t kDefaultMaxDeserializeCounters = uint64_t{1} << 26;

/// Current cap on counters a single deserialized record may allocate.
uint64_t MaxDeserializeCounters();

/// Overrides the cap (e.g. tightened by a server that only ever ships
/// small synopses, or loosened for an offline bulk loader). Passing 0
/// restores the default.
void SetMaxDeserializeCounters(uint64_t cap);

/// Validates a counter-block shape read from an untrusted header:
/// both dimensions >= 1, rows * cols free of uint64 overflow, and the
/// product within MaxDeserializeCounters(). `what` names the record kind
/// for the error message. Returns INVALID_ARGUMENT on violation.
Status CheckDeserializeDims(uint64_t rows, uint64_t cols, const char* what);

}  // namespace sketch
}  // namespace skimjoin

#endif  // SKIMJOIN_SKETCH_SERIAL_LIMITS_H_
