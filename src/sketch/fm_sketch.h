// Probabilistic distinct-value counting (Flajolet–Martin / PCSA), the
// classic synopsis the paper cites alongside join sketches ([6, 7] in its
// bibliography). Included so the query engine can answer COUNT DISTINCT
// over the same streams.
//
// Layout: `num_maps` bit maps of 64 positions. An arrival hashes to one
// map (pairwise hash) and to a geometric position (number of trailing
// zeros of a second hash). Positions hold signed COUNTERS rather than
// bits, so matched insert/delete pairs cancel exactly — the same
// linear-update discipline as every other synopsis here; a position is
// "set" while its counter is positive. The estimate is the PCSA formula
// 2^(mean lowest-unset-position) · num_maps / 0.77351.

#ifndef SKIMJOIN_SKETCH_FM_SKETCH_H_
#define SKIMJOIN_SKETCH_FM_SKETCH_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "hashing/kwise_hash.h"
#include "stream/stream_element.h"
#include "util/status.h"

namespace skimjoin {
namespace sketch {

/// Distinct-count synopsis for one stream.
class FmSketch {
 public:
  /// `num_maps` bit maps (more maps → lower variance; the standard error is
  /// about 0.78/sqrt(num_maps)). INVALID_ARGUMENT if num_maps == 0.
  static StatusOr<FmSketch> Create(uint64_t num_maps, uint64_t seed);

  /// Applies one arrival. A deletion of a value that was inserted earlier
  /// exactly cancels its insertion.
  void Update(uint64_t value, int64_t weight);

  void Update(const stream::StreamElement& element) {
    Update(element.value, element.weight);
  }

  /// Merges a compatible sketch (union of multisets).
  /// Pre-condition: same num_maps and seed.
  void Merge(const FmSketch& other);

  /// Estimated number of distinct values with positive net frequency.
  double EstimateDistinctCount() const;

  uint64_t num_maps() const { return num_maps_; }
  uint64_t seed() const { return seed_; }

  /// Space accounting: counters held.
  uint64_t TotalCounters() const { return num_maps_ * kPositions; }

  /// Total footprint in bytes: the object plus counter array and hash
  /// heap storage. Feeds the per-synopsis memory gauges.
  uint64_t MemoryBytes() const;

  bool CompatibleWith(const FmSketch& other) const {
    return num_maps_ == other.num_maps_ && seed_ == other.seed_;
  }

  /// Writes a self-describing text record (num_maps, seed, counters); hash
  /// families are reconstructed from the seed on deserialization.
  Status SerializeTo(std::ostream& out) const;

  /// Reads a record written by SerializeTo. INVALID_ARGUMENT on a malformed
  /// or truncated record.
  static StatusOr<FmSketch> DeserializeFrom(std::istream& in);

 private:
  static constexpr uint64_t kPositions = 64;

  FmSketch(uint64_t num_maps, uint64_t seed);

  uint64_t num_maps_;
  uint64_t seed_;
  hashing::KWiseHash map_hash_;       // value → map
  hashing::KWiseHash position_hash_;  // value → geometric position
  std::vector<int64_t> counters_;     // num_maps × kPositions
};

}  // namespace sketch
}  // namespace skimjoin

#endif  // SKIMJOIN_SKETCH_FM_SKETCH_H_
