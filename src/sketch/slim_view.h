// The slim half of the fat/slim two-stage read path (DESIGN.md §11),
// after the SF-sketch fat/slim split: the ingest path keeps updating the
// full-width "fat" synopsis (HashSketch / CountMinSketch), while reads are
// served from a compact query-optimized SlimView derived from it.
//
// Two deliberate deviations from the lossy SF-sketch slim part:
//   * The view is LOSSLESS in answer space — it narrows counters to 32 bits
//     when every counter fits (the common case by orders of magnitude) but
//     performs all estimator arithmetic in the fat sketch's own width, so
//     every PointEstimate / EstimateJoinSize is bit-identical to the fat
//     sketch's answer. Bit-identity is what lets the engine's QueryCache
//     and the differential tests treat slim and fat as interchangeable.
//   * "Incremental" refresh is epoch-gated, not per-delta: every sketch
//     update touches one counter in EVERY table, so per-element deltas have
//     no sparsity to exploit. Instead the fat sketch carries a monotone
//     update_epoch(); Refresh() is a no-op (O(1)) while the epoch is
//     unchanged and one sequential narrowing pass when it advanced.
//
// The view owns its own copies of the hash families (rebuilt
// deterministically from the fat sketch's (config, seed), exactly as
// deserialization does), so a refreshed view answers queries without
// touching the fat sketch at all — it can live on a read-only thread or be
// shipped to a read replica while ingest keeps mutating the fat side.

#ifndef SKIMJOIN_SKETCH_SLIM_VIEW_H_
#define SKIMJOIN_SKETCH_SLIM_VIEW_H_

#include <cstdint>
#include <vector>

#include "hashing/kwise_hash.h"
#include "hashing/sign_hash.h"
#include "sketch/count_min_sketch.h"
#include "sketch/hash_sketch.h"
#include "util/status.h"

namespace skimjoin {
namespace sketch {

/// A query-optimized view of one fat synopsis. Copyable; a copy keeps
/// answering at the epoch it was refreshed at.
class SlimView {
 public:
  /// Builds a view over `fat` and performs the initial refresh.
  explicit SlimView(const HashSketch& fat);
  explicit SlimView(const CountMinSketch& fat);

  /// Re-derives the packed counters iff `fat`'s update epoch advanced since
  /// the last refresh. Returns true when a pass actually ran. CHECK-fails
  /// when `fat` is not the synopsis shape this view was built over.
  bool Refresh(const HashSketch& fat);
  bool Refresh(const CountMinSketch& fat);

  /// True when the view reflects `fat` as of `fat.update_epoch()`.
  bool FreshFor(uint64_t fat_epoch) const {
    return refreshed_epoch_ == fat_epoch;
  }

  /// Point frequency estimate; bit-identical to the fat sketch's
  /// PointEstimate at the refreshed epoch (COUNTSKETCH median for a
  /// hash-sketch view, min over tables for a count-min view).
  int64_t PointEstimate(uint64_t value) const;

  /// Join-size estimate from two slim views; bit-identical to
  /// HashSketch::EstimateJoinSize / CountMinSketch::EstimateJoinSize on the
  /// fat pair at the refreshed epochs. INVALID_ARGUMENT when the views were
  /// built over incompatible or differently-typed synopses.
  static StatusOr<double> EstimateJoinSize(const SlimView& f,
                                           const SlimView& g);

  /// The fat epoch the counters were last derived at.
  uint64_t refreshed_epoch() const { return refreshed_epoch_; }

  /// Refresh passes that actually copied counters (epoch had advanced).
  uint64_t refresh_count() const { return refresh_count_; }

  /// Whether the last refresh packed counters into 32 bits.
  bool narrowed() const { return use32_; }

  /// Total footprint in bytes (object, packed counters, hash families).
  uint64_t MemoryBytes() const;

 private:
  enum class Kind { kHashSketch, kCountMin };

  bool CompatibleWith(const SlimView& other) const;

  /// Counter of `bucket` in `table`, widened back to the fat width.
  int64_t CounterAt(uint64_t table, uint64_t bucket) const {
    const uint64_t i = table * num_buckets_ + bucket;
    return use32_ ? int64_t{counters32_[i]} : counters64_[i];
  }

  /// Copies `fat_counters` into whichever packed array fits.
  void PackCounters(std::span<const int64_t> fat_counters);

  Kind kind_;
  uint64_t num_tables_;
  uint64_t num_buckets_;
  uint64_t seed_;
  std::vector<hashing::BucketHash> bucket_hashes_;  // one per table
  std::vector<hashing::SignHash> sign_hashes_;      // empty for count-min
  bool use32_ = true;
  std::vector<int32_t> counters32_;
  std::vector<int64_t> counters64_;
  uint64_t refreshed_epoch_ = 0;
  uint64_t refresh_count_ = 0;
};

}  // namespace sketch
}  // namespace skimjoin

#endif  // SKIMJOIN_SKETCH_SLIM_VIEW_H_
