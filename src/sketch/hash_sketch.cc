#include "sketch/hash_sketch.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "sketch/serial_limits.h"
#include "sketch/sketch_seed.h"
#include "util/logging.h"
#include "util/stats.h"

namespace skimjoin {
namespace sketch {

HashSketch::HashSketch(const HashSketchConfig& config, uint64_t seed)
    : config_(config), seed_(seed) {
  bucket_hashes_.reserve(config.num_tables);
  sign_hashes_.reserve(config.num_tables);
  for (uint64_t table = 0; table < config.num_tables; ++table) {
    Rng bucket_rng = FamilyRng(seed, FamilyTag::kHashSketchBucket, table);
    bucket_hashes_.emplace_back(config.num_buckets, &bucket_rng);
    Rng sign_rng = FamilyRng(seed, FamilyTag::kHashSketchSign, table);
    sign_hashes_.emplace_back(&sign_rng);
  }
  counters_.assign(config.TotalCounters(), 0);
  SetKernelOptions(KernelOptions{});
}

void HashSketch::SetKernelOptions(const KernelOptions& options) {
  kernel_options_ = options;
  for (hashing::BucketHash& hash : bucket_hashes_) {
    hash.set_use_fastmod(options.use_fastmod);
  }
  // Packed (bucket, sign) plan words are 32-bit; a bucket count beyond 2^31
  // cannot pack, so the cache quietly stands down (the other kernels and
  // the scalar path are unaffected — results are identical either way).
  if (options.use_plan_cache && config_.num_buckets <= (uint64_t{1} << 31)) {
    plan_cache_.emplace(options.plan_cache_slots, config_.num_tables);
  } else {
    plan_cache_.reset();
  }
}

const uint32_t* HashSketch::ComputePlan(uint64_t value) {
  bool hit = false;
  uint32_t* plan = plan_cache_->Probe(value, &hit);
  if (!hit) FillPlan(value, plan);
  return plan;
}

void HashSketch::FillPlan(uint64_t value, uint32_t* plan) const {
  for (uint64_t table = 0; table < config_.num_tables; ++table) {
    plan[table] = hashing::PackBucketSign(bucket_hashes_[table](value),
                                          sign_hashes_[table](value));
  }
}

void HashSketch::FillPlansBlock(const uint64_t* values, size_t n,
                                uint32_t* plans,
                                hashing::SimdLevel level) const {
  // Per-table scratch for the raw field residues; thread_local for the same
  // reasons as the blocked kernel's plan scratch.
  static thread_local std::vector<uint64_t> bucket_scratch;
  static thread_local std::vector<uint64_t> sign_scratch;
  bucket_scratch.resize(n);
  sign_scratch.resize(n);
  const uint64_t tables = config_.num_tables;
  for (uint64_t table = 0; table < tables; ++table) {
    const hashing::BucketHash& bucket = bucket_hashes_[table];
    hashing::PolyEvalBlock(bucket.poly().coefficients(), values, n,
                           bucket_scratch.data(), level);
    hashing::PolyEvalBlock(sign_hashes_[table].poly().coefficients(), values,
                           n, sign_scratch.data(), level);
    // PackBucketSign by hand: the packed sign bit IS the residue's low bit
    // (ξ(v) = 1 - 2·(h(v) & 1)), so no ±1 materialization is needed.
    for (size_t i = 0; i < n; ++i) {
      plans[i * tables + table] = static_cast<uint32_t>(
          (bucket.ModReduce(bucket_scratch[i]) << 1) | (sign_scratch[i] & 1));
    }
  }
}

void HashSketch::ApplyPlan(const uint32_t* plan, int64_t weight) {
  int64_t* row = counters_.data();
  for (uint64_t table = 0; table < config_.num_tables; ++table) {
    const uint32_t word = plan[table];
    row[hashing::PlanBucket(word)] += hashing::PlanSign(word) * weight;
    row += config_.num_buckets;
  }
}

StatusOr<HashSketch> HashSketch::Create(const HashSketchConfig& config,
                                        uint64_t seed) {
  if (config.num_tables < 1) {
    return InvalidArgumentError("HashSketchConfig.num_tables must be >= 1");
  }
  if (config.num_buckets < 1) {
    return InvalidArgumentError("HashSketchConfig.num_buckets must be >= 1");
  }
  return HashSketch(config, seed);
}

void HashSketch::Update(uint64_t value, int64_t weight) {
  ++update_epoch_;
  if (plan_cache_) {
    ApplyPlan(ComputePlan(value), weight);
    return;
  }
  for (uint64_t table = 0; table < config_.num_tables; ++table) {
    const uint64_t bucket = bucket_hashes_[table](value);
    counters_[table * config_.num_buckets + bucket] +=
        sign_hashes_[table](value) * weight;
  }
}

void HashSketch::UpdateBatch(std::span<const stream::StreamElement> elements) {
  ++update_epoch_;
  // The blocked kernel stores packed 32-bit plan words; beyond 2^31 buckets
  // it cannot, so such shapes take the legacy kernels below.
  if (kernel_options_.use_blocked_batch &&
      config_.num_buckets <= (uint64_t{1} << 31)) {
    UpdateBatchBlocked(elements);
    return;
  }
  if (plan_cache_) {
    // Element-major so each element's plan is probed once, not per table.
    for (const stream::StreamElement& element : elements) {
      Update(element.value, element.weight);
    }
    return;
  }
  // Legacy table-major reference kernel: each table's hash families and
  // counter row stay hot across the whole batch.
  for (uint64_t table = 0; table < config_.num_tables; ++table) {
    const hashing::BucketHash& bucket = bucket_hashes_[table];
    const hashing::SignHash& sign = sign_hashes_[table];
    int64_t* row = &counters_[table * config_.num_buckets];
    for (const stream::StreamElement& element : elements) {
      row[bucket(element.value)] += sign(element.value) * element.weight;
    }
  }
}

void HashSketch::UpdateBatchBlocked(
    std::span<const stream::StreamElement> elements) {
  const uint64_t tables = config_.num_tables;
  const size_t block = static_cast<size_t>(
      kernel_options_.batch_block_size < 1 ? 1
                                           : kernel_options_.batch_block_size);
  // Function-local thread_local scratch: zero allocations per batch, and
  // each ParallelIngestor worker gets its own copy, so the sketch itself
  // stays cheaply copyable.
  static thread_local std::vector<uint32_t> plan_scratch;
  static thread_local std::vector<int64_t> weight_scratch;
  plan_scratch.resize(block * tables);
  weight_scratch.resize(block);
  constexpr size_t kPrefetchDistance = 8;
  // Staging plans for a table-major scatter only pays once the counter
  // array outgrows the fast cache levels — below that, every bucket line is
  // resident anyway and the extra scratch traffic is pure loss (measured:
  // ~20% slower at 56 KiB of counters, ~20% faster at 3.5 MiB). Small
  // shapes therefore apply misses on the spot too.
  constexpr uint64_t kScatterStageBytes = uint64_t{1} << 21;
  const bool stage = counters_.size() * sizeof(int64_t) > kScatterStageBytes;
  const hashing::SimdLevel simd = kernel_options_.use_simd
                                      ? hashing::DetectSimdLevel()
                                      : hashing::SimdLevel::kScalar;
  static thread_local std::vector<uint64_t> value_scratch;
  if (simd != hashing::SimdLevel::kScalar) value_scratch.resize(block);
  for (size_t begin = 0; begin < elements.size(); begin += block) {
    const size_t n = std::min(block, elements.size() - begin);
    // Phase 1 (hash): cache hits apply on the spot — the plan words were
    // just pulled into L1 by the probe, so staging them through scratch
    // would only add traffic. Misses (or, with the cache off, everything)
    // evaluate their polynomials into the scratch arrays for phase 2.
    // Counters only ever accumulate integer adds, which commute exactly,
    // so the hit/miss split leaves every final counter bit-identical to
    // the scalar kernels.
    size_t pending = 0;
    if (simd != hashing::SimdLevel::kScalar) {
      // SIMD phase 1: probe with the non-claiming Lookup — Probe would
      // claim the slot before the deferred vector fill, so a duplicate
      // value later in the block would hit a claimed-but-unfilled plan.
      // Hits apply on the spot; misses collect into the value scratch for
      // one block evaluation, then install into the cache. A duplicate
      // miss inside a block is evaluated (and installed) twice with the
      // same result — counters stay bit-identical, only the hit/miss
      // tallies shift against the scalar phase 1.
      for (size_t i = 0; i < n; ++i) {
        const stream::StreamElement& element = elements[begin + i];
        if (plan_cache_) {
          const uint32_t* plan = plan_cache_->Lookup(element.value);
          if (plan != nullptr) {
            ApplyPlan(plan, element.weight);
            continue;
          }
        }
        value_scratch[pending] = element.value;
        weight_scratch[pending] = element.weight;
        ++pending;
      }
      FillPlansBlock(value_scratch.data(), pending, plan_scratch.data(), simd);
      if (plan_cache_) {
        for (size_t i = 0; i < pending; ++i) {
          std::copy_n(&plan_scratch[i * tables], tables,
                      plan_cache_->Insert(value_scratch[i]));
        }
      }
      if (!stage) {
        for (size_t i = 0; i < pending; ++i) {
          ApplyPlan(&plan_scratch[i * tables], weight_scratch[i]);
        }
        pending = 0;
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const stream::StreamElement& element = elements[begin + i];
        if (plan_cache_) {
          bool hit = false;
          uint32_t* plan = plan_cache_->Probe(element.value, &hit);
          if (hit) {
            ApplyPlan(plan, element.weight);
            continue;
          }
          FillPlan(element.value, plan);
          if (!stage) {
            ApplyPlan(plan, element.weight);
            continue;
          }
          std::copy_n(plan, tables, &plan_scratch[pending * tables]);
        } else {
          uint32_t* plan = &plan_scratch[pending * tables];
          FillPlan(element.value, plan);
          if (!stage) {
            ApplyPlan(plan, element.weight);
            continue;
          }
        }
        weight_scratch[pending] = element.weight;
        ++pending;
      }
    }
    // Phase 2 (scatter): table-major over the block's unapplied plans,
    // prefetching the counter line a few elements ahead.
    for (uint64_t table = 0; table < tables; ++table) {
      int64_t* row = &counters_[table * config_.num_buckets];
      for (size_t i = 0; i < pending; ++i) {
        if (i + kPrefetchDistance < pending) {
          const uint32_t ahead =
              plan_scratch[(i + kPrefetchDistance) * tables + table];
          __builtin_prefetch(&row[hashing::PlanBucket(ahead)], 1);
        }
        const uint32_t word = plan_scratch[i * tables + table];
        row[hashing::PlanBucket(word)] +=
            hashing::PlanSign(word) * weight_scratch[i];
      }
    }
  }
}

void HashSketch::Reset() {
  ++update_epoch_;
  counters_.assign(counters_.size(), 0);
}

void HashSketch::Absorb(const stream::FrequencyVector& frequencies) {
  ++update_epoch_;
  const auto& counts = frequencies.counts();
  for (uint64_t value = 0; value < counts.size(); ++value) {
    if (counts[value] != 0) Update(value, counts[value]);
  }
}

void HashSketch::Merge(const HashSketch& other) {
  SKIMJOIN_CHECK(CompatibleWith(other)) << "merging incompatible hash sketches";
  ++update_epoch_;
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

int64_t HashSketch::PointEstimate(uint64_t value) const {
  std::vector<int64_t> estimates;
  estimates.reserve(config_.num_tables);
  for (uint64_t table = 0; table < config_.num_tables; ++table) {
    const uint64_t bucket = bucket_hashes_[table](value);
    estimates.push_back(sign_hashes_[table](value) *
                        counters_[table * config_.num_buckets + bucket]);
  }
  return MedianInt64(std::move(estimates));
}

bool HashSketch::CompatibleWith(const HashSketch& other) const {
  return config_.num_tables == other.config_.num_tables &&
         config_.num_buckets == other.config_.num_buckets &&
         seed_ == other.seed_;
}

StatusOr<double> HashSketch::EstimateJoinSize(const HashSketch& f,
                                              const HashSketch& g) {
  if (!f.CompatibleWith(g)) {
    return InvalidArgumentError(
        "hash-sketch join estimation requires sketches with equal "
        "configuration and seed (shared h_j and ξ_j families)");
  }
  return Median(PerTableJoinProducts(f, g));
}

std::vector<double> HashSketch::PerTableJoinProducts(const HashSketch& f,
                                                     const HashSketch& g) {
  std::vector<double> per_table;
  per_table.reserve(f.config_.num_tables);
  for (uint64_t table = 0; table < f.config_.num_tables; ++table) {
    const int64_t* fc = &f.counters_[table * f.config_.num_buckets];
    const int64_t* gc = &g.counters_[table * g.config_.num_buckets];
    double sum = 0.0;
    for (uint64_t k = 0; k < f.config_.num_buckets; ++k) {
      sum += static_cast<double>(fc[k]) * static_cast<double>(gc[k]);
    }
    per_table.push_back(sum);
  }
  return per_table;
}

StatusOr<EstimateReport> HashSketch::EstimateJoinSizeWithReport(
    const HashSketch& f, const HashSketch& g) {
  if (!f.CompatibleWith(g)) {
    return InvalidArgumentError(
        "hash-sketch join estimation requires sketches with equal "
        "configuration and seed (shared h_j and ξ_j families)");
  }
  EstimateReport report;
  report.method = "hash-sketch";
  report.copy_estimates = PerTableJoinProducts(f, g);
  report.estimate = Median(report.copy_estimates);
  const double f2_f = std::max(f.EstimateSelfJoinSize(), 0.0);
  const double f2_g = std::max(g.EstimateSelfJoinSize(), 0.0);
  report.apriori_bound = 4.0 * std::sqrt(f2_f * f2_g /
                                         static_cast<double>(
                                             f.config_.num_buckets));
  FinishReportFromCopies(&report);
  return report;
}

Status HashSketch::SerializeTo(std::ostream& out) const {
  out << "skimjoin.hash_sketch v2\n"
      << config_.num_tables << ' ' << config_.num_buckets << ' ' << seed_
      << '\n';
  for (size_t i = 0; i < counters_.size(); ++i) {
    out << counters_[i] << (i + 1 == counters_.size() ? '\n' : ' ');
  }
  // Trailing sentinel: lets the reader tell a complete counter block from
  // one truncated exactly at a counter boundary.
  out << "end\n";
  if (!out) return IoError("hash-sketch serialization failed");
  return OkStatus();
}

StatusOr<HashSketch> HashSketch::DeserializeFrom(std::istream& in) {
  std::string tag, version;
  if (!(in >> tag >> version) || tag != "skimjoin.hash_sketch" ||
      version != "v2") {
    return InvalidArgumentError("not a skimjoin hash-sketch v2 record");
  }
  HashSketchConfig config;
  uint64_t seed = 0;
  if (!(in >> config.num_tables >> config.num_buckets >> seed)) {
    return InvalidArgumentError("malformed hash-sketch header");
  }
  // Validate the untrusted dimensions BEFORE Create allocates counters (a
  // hostile header could otherwise demand a multi-GB assign).
  SKIMJOIN_RETURN_IF_ERROR(CheckDeserializeDims(
      config.num_tables, config.num_buckets, "hash-sketch"));
  StatusOr<HashSketch> sketch = HashSketch::Create(config, seed);
  SKIMJOIN_RETURN_IF_ERROR(sketch.status());
  for (int64_t& counter : sketch->counters_) {
    if (!(in >> counter)) {
      return InvalidArgumentError("truncated hash-sketch counter block");
    }
  }
  std::string sentinel;
  if (!(in >> sentinel) || sentinel != "end") {
    return InvalidArgumentError("hash-sketch record missing its end sentinel");
  }
  return sketch;
}

double HashSketch::EstimateSelfJoinSize() const {
  StatusOr<double> result = EstimateJoinSize(*this, *this);
  SKIMJOIN_CHECK(result.ok());
  return *result;
}

EstimateReport HashSketch::EstimateSelfJoinSizeWithReport() const {
  StatusOr<EstimateReport> report = EstimateJoinSizeWithReport(*this, *this);
  SKIMJOIN_CHECK(report.ok());
  report->method = "hash-sketch-selfjoin";
  return *std::move(report);
}

uint64_t HashSketch::MemoryBytes() const {
  uint64_t total = sizeof(*this) + counters_.capacity() * sizeof(int64_t);
  for (const hashing::BucketHash& h : bucket_hashes_) total += h.MemoryBytes();
  for (const hashing::SignHash& h : sign_hashes_) total += h.MemoryBytes();
  if (plan_cache_) total += plan_cache_->MemoryBytes();
  return total;
}

SynopsisHealth HashSketch::HealthProbe() const {
  SynopsisHealth health = ProbeCounters(counters_, config_.num_tables);
  health.kind = "hash-sketch";
  return health;
}

}  // namespace sketch
}  // namespace skimjoin
