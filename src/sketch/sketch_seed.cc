#include "sketch/sketch_seed.h"

namespace skimjoin {
namespace sketch {

Rng FamilyRng(uint64_t seed, FamilyTag tag, uint64_t index) {
  const uint64_t tagged =
      Mix64(seed ^ Mix64(static_cast<uint64_t>(tag) * 0x9E3779B97F4A7C15ull));
  return Rng(tagged).Fork(index);
}

}  // namespace sketch
}  // namespace skimjoin
