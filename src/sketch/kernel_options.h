// Ablation switches for the sketch update fast paths (DESIGN.md §10).
//
// Every fast path is bit-identical to the scalar reference kernel —
// tests/kernel_differential_test.cc proves it across randomized configs —
// so these switches exist for measurement (bench_update_time runs each
// mode) and for bisecting a perf surprise, not for correctness trade-offs.
// Defaults are all-on: the fast paths ARE the production path.

#ifndef SKIMJOIN_SKETCH_KERNEL_OPTIONS_H_
#define SKIMJOIN_SKETCH_KERNEL_OPTIONS_H_

#include <cstdint>

namespace skimjoin {
namespace sketch {

struct KernelOptions {
  /// Replace `% num_buckets` in BucketHash with a precomputed 128-bit
  /// reciprocal multiply (hashing::FastDivisor).
  bool use_fastmod = true;

  /// Memoize per-element (bucket, sign) plans in a direct-mapped
  /// hashing::HashPlanCache so hot keys skip polynomial evaluation.
  bool use_plan_cache = true;

  /// Batch updates in fixed-size blocks: hash a block into scratch arrays,
  /// then scatter with prefetch, instead of a per-element hash→store chain.
  bool use_blocked_batch = true;

  /// Slots in each sketch's plan cache (rounded up to a power of two).
  /// 16384 slots is tags (128 KiB) + plans (16384 × tables × 4 B ≈ 448 KiB
  /// at s=7) — large enough that a z=1.0 Zipf hot set over a 2^18 domain
  /// hits ~2/3 of probes, small enough to stay cache-resident next to the
  /// counter arrays. Dyadic levels clamp this to their own prefix domain
  /// (DyadicSkimmer::SetKernelOptions), so deep levels cost almost nothing.
  uint64_t plan_cache_slots = 16384;

  /// Elements hashed per block before the scatter phase; 256 keeps the
  /// scratch plan array (256 × tables × 8 B ≈ 14 KiB at s=7) inside L1.
  uint64_t batch_block_size = 256;

  /// Evaluate the Carter–Wegman polynomials of the blocked batch kernels
  /// with the SIMD block kernels (hashing/simd_hash.h): AVX-512 or AVX2
  /// lanes by runtime CPUID dispatch, scalar fallback elsewhere (and under
  /// SKIMJOIN_FORCE_SCALAR=1). Lane-for-lane bit-identical to the scalar
  /// Horner loop; inert unless use_blocked_batch is on (the SIMD path lives
  /// inside the blocked kernels).
  bool use_simd = true;

  /// Everything off: the pre-kernel scalar reference path, kept for
  /// differential tests and ablation baselines.
  static KernelOptions Scalar() {
    KernelOptions o;
    o.use_fastmod = false;
    o.use_plan_cache = false;
    o.use_blocked_batch = false;
    o.use_simd = false;
    return o;
  }

  bool operator==(const KernelOptions&) const = default;
};

}  // namespace sketch
}  // namespace skimjoin

#endif  // SKIMJOIN_SKETCH_KERNEL_OPTIONS_H_
