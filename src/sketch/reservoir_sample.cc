#include "sketch/reservoir_sample.h"

#include <algorithm>
#include <unordered_map>

#include "sketch/sketch_seed.h"
#include "util/logging.h"

namespace skimjoin {
namespace sketch {

ReservoirSample::ReservoirSample(uint64_t capacity, uint64_t seed)
    : capacity_(capacity), rng_(FamilyRng(seed, FamilyTag::kReservoir, 0)) {
  sample_.reserve(capacity);
}

StatusOr<ReservoirSample> ReservoirSample::Create(uint64_t capacity,
                                                  uint64_t seed) {
  if (capacity < 1) {
    return InvalidArgumentError("reservoir capacity must be >= 1");
  }
  return ReservoirSample(capacity, seed);
}

void ReservoirSample::Update(uint64_t value, int64_t weight) {
  SKIMJOIN_CHECK(weight == 1 || weight == -1)
      << "reservoir sampling handles unit inserts/deletes only";
  if (weight == 1) {
    ++insert_count_;
    ++stream_size_;
    if (sample_.size() < capacity_) {
      sample_.push_back(value);
      return;
    }
    // Algorithm R: keep the new element with probability capacity / t.
    const uint64_t slot =
        rng_.NextUint64Below(static_cast<uint64_t>(insert_count_));
    if (slot < capacity_) sample_[slot] = value;
    return;
  }
  // Delete: best effort — drop one sampled copy if we have one.
  --stream_size_;
  auto it = std::find(sample_.begin(), sample_.end(), value);
  if (it != sample_.end()) {
    *it = sample_.back();
    sample_.pop_back();
  }
}

double ReservoirSample::EstimateJoinSize(const ReservoirSample& f,
                                         const ReservoirSample& g) {
  if (f.sample_.empty() || g.sample_.empty()) return 0.0;
  std::unordered_map<uint64_t, int64_t> f_counts;
  for (uint64_t v : f.sample_) ++f_counts[v];
  int64_t matches = 0;
  for (uint64_t v : g.sample_) {
    auto it = f_counts.find(v);
    if (it != f_counts.end()) matches += it->second;
  }
  const double scale_f = static_cast<double>(f.stream_size_) /
                         static_cast<double>(f.sample_.size());
  const double scale_g = static_cast<double>(g.stream_size_) /
                         static_cast<double>(g.sample_.size());
  return scale_f * scale_g * static_cast<double>(matches);
}

}  // namespace sketch
}  // namespace skimjoin
