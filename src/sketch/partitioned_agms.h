// Domain-partitioned AGMS sketching [Dobra–Garofalakis–Gehrke–Rastogi,
// SIGMOD '02] — the third join-size estimation baseline the paper positions
// against (§1): split the value domain into contiguous partitions, give
// each partition its own AGMS sketch pair with space allocated according to
// the partitions' (self-join) masses, and estimate the join as the sum of
// per-partition estimates. Separating heavy regions from light ones cuts
// the products F2(F_i)·F2(G_i) that drive the variance.
//
// The catch — and the skimmed-sketch paper's core criticism — is that
// GOOD partitions require a-priori coarse frequency statistics, which a
// true streaming deployment usually lacks. The planner here takes explicit
// frequency statistics (e.g., from a historical window); the ablation bench
// feeds it EXACT statistics, i.e., this baseline runs under the most
// favorable assumption possible.

#ifndef SKIMJOIN_SKETCH_PARTITIONED_AGMS_H_
#define SKIMJOIN_SKETCH_PARTITIONED_AGMS_H_

#include <cstdint>
#include <vector>

#include "sketch/agms_sketch.h"
#include "stream/frequency_vector.h"
#include "util/status.h"

namespace skimjoin {
namespace sketch {

/// A partitioning of [0, domain_size) into contiguous ranges plus the AGMS
/// shape assigned to each. Partition i covers [boundaries[i],
/// boundaries[i+1]); boundaries.front() == 0 and boundaries.back() ==
/// domain_size.
struct PartitionPlan {
  uint64_t domain_size = 0;
  std::vector<uint64_t> boundaries;
  std::vector<AgmsConfig> configs;

  uint64_t num_partitions() const { return configs.size(); }
  uint64_t TotalCounters() const {
    uint64_t total = 0;
    for (const AgmsConfig& config : configs) total += config.TotalCounters();
    return total;
  }
};

/// Builds a plan from coarse frequency statistics: partitions are chosen by
/// an equal-mass sweep over sqrt(f_v²·g_v²) contributions and each
/// partition's share of `total_space` is proportional to
/// sqrt(F2(F_i)·F2(G_i)) (the allocation that balances per-partition error
/// terms, following Dobra et al.). INVALID_ARGUMENT on empty stats,
/// mismatched domains, or budgets too small for the requested shape
/// (every partition needs at least num_medians counters).
StatusOr<PartitionPlan> PlanPartitions(
    const stream::FrequencyVector& f_stats,
    const stream::FrequencyVector& g_stats, uint64_t num_partitions,
    uint64_t total_space, uint64_t num_medians);

/// One partitioned synopsis for one stream: a bank of per-partition AGMS
/// sketches. Updates route to exactly one partition (binary search on the
/// boundaries + O(partition space) counter updates).
class PartitionedAgmsSketch {
 public:
  /// Validates the plan's invariants; families derive from (plan, seed):
  /// partition i uses seed+i, so two synopses built from equal plans and
  /// seeds are compatible.
  static StatusOr<PartitionedAgmsSketch> Create(const PartitionPlan& plan,
                                                uint64_t seed);

  /// Applies one arrival. Pre-condition: value < plan domain size.
  void Update(uint64_t value, int64_t weight);

  /// Folds a whole frequency vector in (linearity).
  void Absorb(const stream::FrequencyVector& frequencies);

  /// Sum over partitions of the per-partition ESTJOINSIZE estimates.
  /// INVALID_ARGUMENT for synopses built from different plans/seeds.
  static StatusOr<double> EstimateJoinSize(const PartitionedAgmsSketch& f,
                                           const PartitionedAgmsSketch& g);

  bool CompatibleWith(const PartitionedAgmsSketch& other) const;

  const PartitionPlan& plan() const { return plan_; }
  uint64_t TotalCounters() const { return plan_.TotalCounters(); }

  /// Total footprint in bytes across every partition sketch plus the plan.
  /// Feeds the per-synopsis memory gauges.
  uint64_t MemoryBytes() const;

 private:
  PartitionedAgmsSketch(PartitionPlan plan, uint64_t seed,
                        std::vector<AgmsSketch> partitions);

  /// Index of the partition containing `value`.
  uint64_t PartitionOf(uint64_t value) const;

  PartitionPlan plan_;
  uint64_t seed_;
  std::vector<AgmsSketch> partitions_;
};

}  // namespace sketch
}  // namespace skimjoin

#endif  // SKIMJOIN_SKETCH_PARTITIONED_AGMS_H_
