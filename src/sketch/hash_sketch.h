// The hash sketch data structure (§4.1 of the paper; structurally the
// COUNTSKETCH of Charikar–Chen–Farach-Colton '02).
//
// An array of `s` hash tables, each with `b` buckets holding one atomic-
// sketch counter. Table j carries a pairwise-independent bucket hash h_j and
// a four-wise-independent ±1 family ξ_j; an arrival (v, w) adds w·ξ_j(v) to
// bucket h_j(v) of every table — i.e., O(s) counter touches per element,
// logarithmic overall, versus the O(s1·s2) of basic AGMS sketching.
//
// The same structure serves three roles in this library:
//   * point (top-k / dense) frequency estimation — medians of ξ_j(v)·C[j][h_j(v)],
//   * the un-skimmed hash-sketch join estimator (a baseline; bucket-wise
//     products per table, median over tables),
//   * the substrate that core/skim.* skims dense frequencies out of, after
//     which it represents only residual ("sparse") frequencies.

#ifndef SKIMJOIN_SKETCH_HASH_SKETCH_H_
#define SKIMJOIN_SKETCH_HASH_SKETCH_H_

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <vector>

#include "hashing/hash_plan_cache.h"
#include "hashing/kwise_hash.h"
#include "hashing/sign_hash.h"
#include "hashing/simd_hash.h"
#include "sketch/kernel_options.h"
#include "stream/frequency_vector.h"
#include "stream/stream_element.h"
#include "util/estimate_report.h"
#include "util/status.h"

namespace skimjoin {
namespace sketch {

/// Shape of a hash sketch.
struct HashSketchConfig {
  /// s: number of hash tables (confidence booster; odd keeps medians crisp).
  uint64_t num_tables = 7;
  /// b: buckets per table (accuracy: estimation error scales with 1/sqrt(b)).
  uint64_t num_buckets = 256;

  /// Total counters ("space in words").
  uint64_t TotalCounters() const { return num_tables * num_buckets; }
};

/// One hash sketch for one stream. Copyable; copies are independent.
class HashSketch {
 public:
  /// Validates `config` (both dimensions >= 1). Families are deterministic
  /// in `seed`: equal (config, seed) ⇒ compatible sketches with identical
  /// h_j and ξ_j — required for join estimation across two streams.
  static StatusOr<HashSketch> Create(const HashSketchConfig& config,
                                     uint64_t seed);

  /// Applies one stream arrival: one counter touched per table.
  void Update(uint64_t value, int64_t weight);

  void Update(const stream::StreamElement& element) {
    Update(element.value, element.weight);
  }

  /// Applies a batch of arrivals. Counter-for-counter identical to calling
  /// Update element by element (integer addition commutes). The default
  /// kernel blocks the batch: it hashes `batch_block_size` elements into a
  /// reusable scratch plan array, then scatters table-major with prefetch
  /// (DESIGN.md §10); with blocking disabled it falls back to the legacy
  /// table-major loop.
  void UpdateBatch(std::span<const stream::StreamElement> elements);

  /// Selects which fast-path kernels this sketch uses (DESIGN.md §10).
  /// Every combination is bit-identical on counters; this only trades
  /// instruction sequences. Rebuilds (or drops) the plan cache, so hit/miss
  /// tallies restart from zero.
  void SetKernelOptions(const KernelOptions& options);

  const KernelOptions& kernel_options() const { return kernel_options_; }

  /// Plan-cache hit/miss tallies since the cache was (re)built; both zero
  /// when the cache is disabled. Feed the `ingest.<stream>.hash_cache_*`
  /// engine metrics.
  uint64_t hash_cache_hits() const {
    return plan_cache_ ? plan_cache_->hits() : 0;
  }
  uint64_t hash_cache_misses() const {
    return plan_cache_ ? plan_cache_->misses() : 0;
  }

  /// Zeroes every counter, returning the sketch to its freshly created
  /// state (hash families are untouched). Used by the parallel ingestor to
  /// recycle thread-local replicas between flushes.
  void Reset();

  /// Folds a whole frequency vector in (linearity; see AgmsSketch::Absorb).
  void Absorb(const stream::FrequencyVector& frequencies);

  /// Merges a compatible sketch (concatenation of streams).
  /// Pre-condition: CompatibleWith(other).
  void Merge(const HashSketch& other);

  /// Point frequency estimate for `value`: median over tables of
  /// ξ_j(value)·C[j][h_j(value)] (the COUNTSKETCH estimator used by
  /// SKIMDENSE, Fig. 3 step 5).
  int64_t PointEstimate(uint64_t value) const;

  /// Join-size estimate WITHOUT skimming: for each table, the sum over
  /// buckets of C^F[j][k]·C^G[j][k]; median over tables. This is the
  /// sparse·sparse estimator of Fig. 4 (steps 3–7) and doubles as the
  /// "hash-sketch only" baseline. Returns INVALID_ARGUMENT for incompatible
  /// synopses.
  static StatusOr<double> EstimateJoinSize(const HashSketch& f,
                                           const HashSketch& g);

  /// Join estimation with provenance: the per-table bucket-product sums as
  /// copy estimates, their spread, an empirical confidence interval, and
  /// the a-priori envelope 4·sqrt(F̂2(F)·F̂2(G)/b) (the hash-sketch analogue
  /// of Theorem 1 — variance shrinks with buckets instead of averaged
  /// copies). `estimate` is bit-identical to EstimateJoinSize.
  static StatusOr<EstimateReport> EstimateJoinSizeWithReport(
      const HashSketch& f, const HashSketch& g);

  /// The per-table copy estimates behind EstimateJoinSize (copy j is
  /// Σ_k C^F[j][k]·C^G[j][k]). Exposed so the skimmed estimator (core/) can
  /// report its sparse⋈sparse sub-join per table; also used by white-box
  /// tests. Pre-condition: f.CompatibleWith(g).
  static std::vector<double> PerTableJoinProducts(const HashSketch& f,
                                                  const HashSketch& g);

  /// Self-join (F2) estimate: median over tables of Σ_k C[j][k]^2.
  double EstimateSelfJoinSize() const;

  /// Self-join provenance (the F = G case of EstimateJoinSizeWithReport);
  /// `estimate` bit-identical to EstimateSelfJoinSize.
  EstimateReport EstimateSelfJoinSizeWithReport() const;

  bool CompatibleWith(const HashSketch& other) const;

  /// Writes a self-describing text record (config, seed, counters) so the
  /// sketch can be shipped between processes/sites and merged remotely —
  /// hash families are reconstructed from (config, seed) on the other end.
  Status SerializeTo(std::ostream& out) const;

  /// Reads a record written by SerializeTo. INVALID_ARGUMENT on a
  /// malformed or truncated record.
  static StatusOr<HashSketch> DeserializeFrom(std::istream& in);

  /// Read-only health probe: bucket-occupancy quantiles, |counter|
  /// order statistics with int32/int64 saturation headroom, and estimated
  /// collision pressure (see util::SynopsisHealth). Never mutates the
  /// sketch; runs at health/report time, not on the ingest path.
  SynopsisHealth HealthProbe() const;

  const HashSketchConfig& config() const { return config_; }
  uint64_t seed() const { return seed_; }

  /// Total footprint in bytes: the object plus counter array and hash
  /// family heap storage. Feeds the per-synopsis memory gauges.
  uint64_t MemoryBytes() const;

  // --- Low-level access used by the skimmed-sketch estimator (core/) and
  // --- white-box tests.

  /// h_j(value), in [0, num_buckets).
  uint64_t Bucket(uint64_t table, uint64_t value) const {
    return bucket_hashes_[table](value);
  }

  /// ξ_j(value), in {-1, +1}.
  int64_t Sign(uint64_t table, uint64_t value) const {
    return sign_hashes_[table](value);
  }

  /// Counter of `bucket` in `table`.
  int64_t Counter(uint64_t table, uint64_t bucket) const {
    return counters_[table * config_.num_buckets + bucket];
  }

  /// Raw counter array, row-major by table (num_tables * num_buckets).
  /// Read-only substrate for sketch::SlimView refreshes.
  std::span<const int64_t> CounterArray() const { return counters_; }

  /// Monotone mutation epoch: bumped on every Update/UpdateBatch/Absorb/
  /// Merge/Reset. Derived state (like the plan cache): never serialized,
  /// ignored by CompatibleWith. Lets read-side caches (sketch::SlimView,
  /// query::QueryCache) detect "has this sketch changed since I looked?"
  /// in O(1) without hashing counters.
  uint64_t update_epoch() const { return update_epoch_; }

 private:
  HashSketch(const HashSketchConfig& config, uint64_t seed);

  /// Probes the plan cache for `value`; on a miss, evaluates all tables'
  /// (bucket, sign) pairs into the claimed slot. Returns the plan either
  /// way. Pre-condition: the plan cache is enabled.
  const uint32_t* ComputePlan(uint64_t value);

  /// Evaluates every table's packed (bucket, sign) word for `value` into
  /// `plan` (`num_tables` words) — the full polynomial path.
  void FillPlan(uint64_t value, uint32_t* plan) const;

  /// SIMD form of FillPlan over a whole block: plans for values[0..n) into
  /// `plans` (element-major, n × num_tables words), evaluating each table's
  /// polynomials with the hashing/simd_hash.h block kernels at `level`.
  /// Word-for-word identical to calling FillPlan per value.
  void FillPlansBlock(const uint64_t* values, size_t n, uint32_t* plans,
                      hashing::SimdLevel level) const;

  /// Adds `weight` (sign-adjusted per table) at each table's planned
  /// bucket.
  void ApplyPlan(const uint32_t* plan, int64_t weight);

  /// The blocked hash→scatter batch kernel (use_blocked_batch).
  void UpdateBatchBlocked(std::span<const stream::StreamElement> elements);

  HashSketchConfig config_;
  uint64_t seed_;
  std::vector<hashing::BucketHash> bucket_hashes_;  // one per table
  std::vector<hashing::SignHash> sign_hashes_;      // one per table
  std::vector<int64_t> counters_;                   // row-major by table
  KernelOptions kernel_options_;
  uint64_t update_epoch_ = 0;
  // Derived acceleration state: never serialized, ignored by
  // CompatibleWith/Merge, and kept across Reset (plans depend only on the
  // hash families). Disengaged when use_plan_cache is off.
  std::optional<hashing::HashPlanCache> plan_cache_;
};

}  // namespace sketch
}  // namespace skimjoin

#endif  // SKIMJOIN_SKETCH_HASH_SKETCH_H_
