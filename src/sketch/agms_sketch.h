// Basic AGMS ("tug-of-war") sketches — the paper's baseline.
//
// The synopsis is an s1 × s2 array of atomic sketches (§2.2): atomic sketch
// (i, j) is the random linear projection X_ij = Σ_v f_v · ξ_ij(v) with an
// independent four-wise ±1 family ξ_ij per cell. Estimation boosts accuracy
// and confidence by taking the median over j of the mean over i of the
// products X^F_ij · X^G_ij (Fig. 2: ESTJOINSIZE; ESTSJSIZE is the F = G
// case).
//
// Per-element maintenance touches ALL s1·s2 counters — the drawback the
// skimmed-sketch structure removes (compare sketch/hash_sketch.h, which
// touches one counter per table).

#ifndef SKIMJOIN_SKETCH_AGMS_SKETCH_H_
#define SKIMJOIN_SKETCH_AGMS_SKETCH_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <vector>

#include "hashing/sign_hash.h"
#include "sketch/kernel_options.h"
#include "stream/frequency_vector.h"
#include "stream/stream_element.h"
#include "util/estimate_report.h"
#include "util/status.h"

namespace skimjoin {
namespace sketch {

/// Shape of an AGMS synopsis.
struct AgmsConfig {
  /// s1: number of iid atomic sketches averaged per estimate (controls the
  /// relative-error parameter ε).
  uint64_t num_means = 32;
  /// s2: number of independent averages medianed together (controls the
  /// confidence parameter δ). Odd values make the median unambiguous.
  uint64_t num_medians = 5;

  /// Total counters (the paper's "space in words" for this synopsis).
  uint64_t TotalCounters() const { return num_means * num_medians; }
};

/// One AGMS synopsis for one stream. Copyable (copies share no state).
class AgmsSketch {
 public:
  /// Validates `config` (both dimensions >= 1) and draws the ξ families
  /// deterministically from `seed`. Two sketches created with equal config
  /// and seed are compatible for join estimation.
  static StatusOr<AgmsSketch> Create(const AgmsConfig& config, uint64_t seed);

  /// Applies one stream arrival: O(s1 · s2) counter updates.
  void Update(uint64_t value, int64_t weight);

  void Update(const stream::StreamElement& element) {
    Update(element.value, element.weight);
  }

  /// Applies a batch of arrivals; counter-for-counter identical to scalar
  /// Update calls. The default kernel walks the batch in element blocks of
  /// `batch_block_size` (cells inner, per-cell partial sum per block) so
  /// the element block stays in L1 across all s1·s2 ξ evaluations; with
  /// blocking disabled it falls back to the legacy cell-major sweep over
  /// the whole batch. Identical final counters either way (integer partial
  /// sums regroup associatively).
  void UpdateBatch(std::span<const stream::StreamElement> elements);

  /// Selects fast-path kernels (DESIGN.md §10). AGMS has no bucket hashes
  /// or plan cache; only use_blocked_batch / batch_block_size apply here.
  void SetKernelOptions(const KernelOptions& options) {
    kernel_options_ = options;
  }

  const KernelOptions& kernel_options() const { return kernel_options_; }

  /// Zeroes every counter (families untouched); see HashSketch::Reset.
  void Reset();

  /// Folds a whole frequency vector into the sketch. Because the sketch is a
  /// linear projection, this is arithmetically identical to applying f_v
  /// single-weight updates per value; values with zero frequency are skipped.
  void Absorb(const stream::FrequencyVector& frequencies);

  /// Merges another sketch of the SAME config/seed: the result summarizes
  /// the concatenation of both input streams (linearity).
  /// Pre-condition: CompatibleWith(other).
  void Merge(const AgmsSketch& other);

  /// ESTJOINSIZE (Fig. 2): median over j of the mean over i of
  /// X^F_ij · X^G_ij. Returns INVALID_ARGUMENT if the synopses were built
  /// with different configurations or seeds.
  static StatusOr<double> EstimateJoinSize(const AgmsSketch& f,
                                           const AgmsSketch& g);

  /// ESTJOINSIZE with provenance: the per-median copy estimates (mean of
  /// products per median group), their spread, an empirical confidence
  /// interval, and the Theorem 1 a-priori envelope 4·sqrt(F̂2(F)·F̂2(G)/s1)
  /// evaluated with the sketches' own self-join estimates. The `estimate`
  /// field is bit-identical to EstimateJoinSize (both median the same
  /// per-copy vector).
  static StatusOr<EstimateReport> EstimateJoinSizeWithReport(
      const AgmsSketch& f, const AgmsSketch& g);

  /// ESTSJSIZE: self-join (second moment F2) estimate.
  double EstimateSelfJoinSize() const;

  /// Self-join provenance (the F = G case of EstimateJoinSizeWithReport);
  /// `estimate` bit-identical to EstimateSelfJoinSize.
  EstimateReport EstimateSelfJoinSizeWithReport() const;

  /// True iff `other` shares this sketch's families (equal config and seed).
  bool CompatibleWith(const AgmsSketch& other) const;

  /// Writes a self-describing text record (config, seed, counters); see
  /// HashSketch::SerializeTo for the distributed-merge use case.
  Status SerializeTo(std::ostream& out) const;

  /// Reads a record written by SerializeTo.
  static StatusOr<AgmsSketch> DeserializeFrom(std::istream& in);

  /// Read-only health probe. Every AGMS update touches every cell, so
  /// occupancy carries no sizing signal and collision pressure is NaN;
  /// the useful fields are the |counter| quantiles and the int32/int64
  /// saturation headroom.
  SynopsisHealth HealthProbe() const;

  const AgmsConfig& config() const { return config_; }
  uint64_t seed() const { return seed_; }

  /// Total footprint in bytes: the object plus counter array and sign
  /// family heap storage. Feeds the per-synopsis memory gauges.
  uint64_t MemoryBytes() const;

  /// Counter (i, j). Exposed for white-box tests.
  int64_t counter(uint64_t mean_index, uint64_t median_index) const;

 private:
  AgmsSketch(const AgmsConfig& config, uint64_t seed);

  /// The s2 independent copy estimates both estimation entry points median:
  /// copy j is the mean over i of X^F_ij · X^G_ij.
  /// Pre-condition: f.CompatibleWith(g).
  static std::vector<double> PerMedianAverages(const AgmsSketch& f,
                                               const AgmsSketch& g);

  uint64_t CellIndex(uint64_t mean_index, uint64_t median_index) const {
    return median_index * config_.num_means + mean_index;
  }

  AgmsConfig config_;
  uint64_t seed_;
  std::vector<hashing::SignHash> signs_;  // one per cell, row-major by median
  std::vector<int64_t> counters_;
  KernelOptions kernel_options_;
};

}  // namespace sketch
}  // namespace skimjoin

#endif  // SKIMJOIN_SKETCH_AGMS_SKETCH_H_
