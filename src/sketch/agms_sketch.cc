#include "sketch/agms_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "hashing/simd_hash.h"
#include "sketch/serial_limits.h"
#include "sketch/sketch_seed.h"
#include "util/logging.h"
#include "util/stats.h"

namespace skimjoin {
namespace sketch {

AgmsSketch::AgmsSketch(const AgmsConfig& config, uint64_t seed)
    : config_(config), seed_(seed) {
  const uint64_t cells = config.TotalCounters();
  signs_.reserve(cells);
  for (uint64_t cell = 0; cell < cells; ++cell) {
    Rng rng = FamilyRng(seed, FamilyTag::kAgmsSign, cell);
    signs_.emplace_back(&rng);
  }
  counters_.assign(cells, 0);
}

StatusOr<AgmsSketch> AgmsSketch::Create(const AgmsConfig& config,
                                        uint64_t seed) {
  if (config.num_means < 1) {
    return InvalidArgumentError("AgmsConfig.num_means must be >= 1");
  }
  if (config.num_medians < 1) {
    return InvalidArgumentError("AgmsConfig.num_medians must be >= 1");
  }
  return AgmsSketch(config, seed);
}

void AgmsSketch::Update(uint64_t value, int64_t weight) {
  for (size_t cell = 0; cell < counters_.size(); ++cell) {
    counters_[cell] += signs_[cell](value) * weight;
  }
}

void AgmsSketch::UpdateBatch(std::span<const stream::StreamElement> elements) {
  if (!kernel_options_.use_blocked_batch) {
    // Legacy cell-major reference kernel: one pass over the whole batch per
    // cell, so each ξ family stays hot but large batches stream from L2+.
    for (size_t cell = 0; cell < counters_.size(); ++cell) {
      const hashing::SignHash& sign = signs_[cell];
      int64_t sum = 0;
      for (const stream::StreamElement& element : elements) {
        sum += sign(element.value) * element.weight;
      }
      counters_[cell] += sum;
    }
    return;
  }
  // Blocked kernel: element blocks outer, cells inner, so the block's
  // elements are read from L1 for all s1·s2 ξ evaluations. Per-cell block
  // partial sums regroup the same integer additions, so final counters are
  // bit-identical to the legacy kernel.
  const size_t block = static_cast<size_t>(
      kernel_options_.batch_block_size < 1 ? 1
                                           : kernel_options_.batch_block_size);
  const hashing::SimdLevel simd = kernel_options_.use_simd
                                      ? hashing::DetectSimdLevel()
                                      : hashing::SimdLevel::kScalar;
  if (simd != hashing::SimdLevel::kScalar) {
    // SIMD kernel: the block's values deinterleave once into a contiguous
    // scratch shared by every cell, then each cell's four-wise ξ polynomial
    // evaluates over the whole block in vector lanes. The per-cell partial
    // sums keep the blocked kernel's exact grouping, so counters remain
    // bit-identical to both scalar kernels.
    static thread_local std::vector<uint64_t> value_scratch;
    static thread_local std::vector<uint64_t> hash_scratch;
    for (size_t begin = 0; begin < elements.size(); begin += block) {
      const std::span<const stream::StreamElement> chunk =
          elements.subspan(begin, std::min(block, elements.size() - begin));
      const size_t n = chunk.size();
      value_scratch.resize(n);
      hash_scratch.resize(n);
      for (size_t i = 0; i < n; ++i) value_scratch[i] = chunk[i].value;
      for (size_t cell = 0; cell < counters_.size(); ++cell) {
        hashing::PolyEvalBlock(signs_[cell].poly().coefficients(),
                               value_scratch.data(), n, hash_scratch.data(),
                               simd);
        int64_t sum = 0;
        for (size_t i = 0; i < n; ++i) {
          // ξ(v) = 1 - 2·(h(v) & 1), exactly SignHash::operator().
          sum += (int64_t{1} -
                  2 * static_cast<int64_t>(hash_scratch[i] & 1)) *
                 chunk[i].weight;
        }
        counters_[cell] += sum;
      }
    }
    return;
  }
  for (size_t begin = 0; begin < elements.size(); begin += block) {
    const std::span<const stream::StreamElement> chunk =
        elements.subspan(begin, std::min(block, elements.size() - begin));
    for (size_t cell = 0; cell < counters_.size(); ++cell) {
      const hashing::SignHash& sign = signs_[cell];
      int64_t sum = 0;
      for (const stream::StreamElement& element : chunk) {
        sum += sign(element.value) * element.weight;
      }
      counters_[cell] += sum;
    }
  }
}

void AgmsSketch::Reset() { counters_.assign(counters_.size(), 0); }

void AgmsSketch::Absorb(const stream::FrequencyVector& frequencies) {
  const auto& counts = frequencies.counts();
  for (uint64_t value = 0; value < counts.size(); ++value) {
    if (counts[value] != 0) Update(value, counts[value]);
  }
}

void AgmsSketch::Merge(const AgmsSketch& other) {
  SKIMJOIN_CHECK(CompatibleWith(other)) << "merging incompatible AGMS sketches";
  for (size_t cell = 0; cell < counters_.size(); ++cell) {
    counters_[cell] += other.counters_[cell];
  }
}

bool AgmsSketch::CompatibleWith(const AgmsSketch& other) const {
  return config_.num_means == other.config_.num_means &&
         config_.num_medians == other.config_.num_medians &&
         seed_ == other.seed_;
}

std::vector<double> AgmsSketch::PerMedianAverages(const AgmsSketch& f,
                                                  const AgmsSketch& g) {
  std::vector<double> averages;
  averages.reserve(f.config_.num_medians);
  for (uint64_t j = 0; j < f.config_.num_medians; ++j) {
    double sum = 0.0;
    for (uint64_t i = 0; i < f.config_.num_means; ++i) {
      const uint64_t cell = f.CellIndex(i, j);
      sum += static_cast<double>(f.counters_[cell]) *
             static_cast<double>(g.counters_[cell]);
    }
    averages.push_back(sum / static_cast<double>(f.config_.num_means));
  }
  return averages;
}

StatusOr<double> AgmsSketch::EstimateJoinSize(const AgmsSketch& f,
                                              const AgmsSketch& g) {
  if (!f.CompatibleWith(g)) {
    return InvalidArgumentError(
        "AGMS join estimation requires sketches with equal configuration and "
        "seed (shared ξ families)");
  }
  return Median(PerMedianAverages(f, g));
}

StatusOr<EstimateReport> AgmsSketch::EstimateJoinSizeWithReport(
    const AgmsSketch& f, const AgmsSketch& g) {
  if (!f.CompatibleWith(g)) {
    return InvalidArgumentError(
        "AGMS join estimation requires sketches with equal configuration and "
        "seed (shared ξ families)");
  }
  EstimateReport report;
  report.method = "agms";
  report.copy_estimates = PerMedianAverages(f, g);
  report.estimate = Median(report.copy_estimates);
  // Theorem 1's variance term: |estimate - true| <= 4·sqrt(F2(F)·F2(G)/s1)
  // w.h.p.; evaluated with the sketches' own (clamped) self-join estimates.
  const double f2_f = std::max(f.EstimateSelfJoinSize(), 0.0);
  const double f2_g = std::max(g.EstimateSelfJoinSize(), 0.0);
  report.apriori_bound =
      4.0 * std::sqrt(f2_f * f2_g / static_cast<double>(f.config_.num_means));
  FinishReportFromCopies(&report);
  return report;
}

double AgmsSketch::EstimateSelfJoinSize() const {
  StatusOr<double> result = EstimateJoinSize(*this, *this);
  SKIMJOIN_CHECK(result.ok());
  return *result;
}

EstimateReport AgmsSketch::EstimateSelfJoinSizeWithReport() const {
  StatusOr<EstimateReport> report = EstimateJoinSizeWithReport(*this, *this);
  SKIMJOIN_CHECK(report.ok());
  report->method = "agms-selfjoin";
  return *std::move(report);
}

Status AgmsSketch::SerializeTo(std::ostream& out) const {
  out << "skimjoin.agms_sketch v2\n"
      << config_.num_means << ' ' << config_.num_medians << ' ' << seed_
      << '\n';
  for (size_t i = 0; i < counters_.size(); ++i) {
    out << counters_[i] << (i + 1 == counters_.size() ? '\n' : ' ');
  }
  out << "end\n";
  if (!out) return IoError("AGMS-sketch serialization failed");
  return OkStatus();
}

StatusOr<AgmsSketch> AgmsSketch::DeserializeFrom(std::istream& in) {
  std::string tag, version;
  if (!(in >> tag >> version) || tag != "skimjoin.agms_sketch" ||
      version != "v2") {
    return InvalidArgumentError("not a skimjoin AGMS-sketch v2 record");
  }
  AgmsConfig config;
  uint64_t seed = 0;
  if (!(in >> config.num_means >> config.num_medians >> seed)) {
    return InvalidArgumentError("malformed AGMS-sketch header");
  }
  SKIMJOIN_RETURN_IF_ERROR(CheckDeserializeDims(
      config.num_means, config.num_medians, "AGMS-sketch"));
  StatusOr<AgmsSketch> sketch = AgmsSketch::Create(config, seed);
  SKIMJOIN_RETURN_IF_ERROR(sketch.status());
  for (int64_t& counter : sketch->counters_) {
    if (!(in >> counter)) {
      return InvalidArgumentError("truncated AGMS-sketch counter block");
    }
  }
  std::string sentinel;
  if (!(in >> sentinel) || sentinel != "end") {
    return InvalidArgumentError("AGMS-sketch record missing its end sentinel");
  }
  return sketch;
}

int64_t AgmsSketch::counter(uint64_t mean_index, uint64_t median_index) const {
  SKIMJOIN_CHECK_LT(mean_index, config_.num_means);
  SKIMJOIN_CHECK_LT(median_index, config_.num_medians);
  return counters_[CellIndex(mean_index, median_index)];
}

uint64_t AgmsSketch::MemoryBytes() const {
  uint64_t total = sizeof(*this) + counters_.capacity() * sizeof(int64_t);
  for (const hashing::SignHash& h : signs_) total += h.MemoryBytes();
  return total;
}

SynopsisHealth AgmsSketch::HealthProbe() const {
  SynopsisHealth health = ProbeCounters(counters_, config_.num_medians);
  health.kind = "agms";
  // Every update touches every cell; occupancy-derived collision pressure
  // carries no sizing signal here.
  health.collision_pressure = std::numeric_limits<double>::quiet_NaN();
  return health;
}

}  // namespace sketch
}  // namespace skimjoin
