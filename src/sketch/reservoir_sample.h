// Reservoir sampling [Vitter '85], included as the classical sampling
// baseline the paper argues against (§1, §2.2):
//   * joins of uniform samples estimate the join size very poorly on skewed
//     data,
//   * a sequence of deletions can deplete the sample — deletions of sampled
//     values are honored, but deletions of non-sampled values silently lose
//     information, so the sample is only statistically valid for insert-only
//     streams.

#ifndef SKIMJOIN_SKETCH_RESERVOIR_SAMPLE_H_
#define SKIMJOIN_SKETCH_RESERVOIR_SAMPLE_H_

#include <cstdint>
#include <vector>

#include "stream/stream_element.h"
#include "util/random.h"
#include "util/status.h"

namespace skimjoin {
namespace sketch {

/// Uniform-without-replacement reservoir over the inserts of one stream.
class ReservoirSample {
 public:
  /// Pre-condition at Create: capacity >= 1.
  static StatusOr<ReservoirSample> Create(uint64_t capacity, uint64_t seed);

  /// Processes one arrival. Inserts run Vitter's Algorithm R; a delete
  /// removes one sampled copy of the value if present (and always decrements
  /// the insert count), which degrades the sample — this limitation is
  /// intrinsic to sampling and is measured in the ablation bench.
  void Update(uint64_t value, int64_t weight);

  void Update(const stream::StreamElement& element) {
    Update(element.value, element.weight);
  }

  /// Scaled sample-join estimate of COUNT(F ⋈ G):
  /// (n_F / |S_F|) · (n_G / |S_G|) · Σ_v s_F(v)·s_G(v). Returns 0 when
  /// either sample is empty.
  static double EstimateJoinSize(const ReservoirSample& f,
                                 const ReservoirSample& g);

  /// Net number of stream elements seen (inserts minus deletes).
  int64_t stream_size() const { return stream_size_; }

  const std::vector<uint64_t>& sample() const { return sample_; }
  uint64_t capacity() const { return capacity_; }

  /// Total footprint in bytes (object plus sample storage). Feeds the
  /// per-synopsis memory gauges.
  uint64_t MemoryBytes() const {
    return sizeof(*this) + sample_.capacity() * sizeof(uint64_t);
  }

 private:
  ReservoirSample(uint64_t capacity, uint64_t seed);

  uint64_t capacity_;
  Rng rng_;
  std::vector<uint64_t> sample_;
  int64_t stream_size_ = 0;   // net n
  int64_t insert_count_ = 0;  // inserts observed, drives Algorithm R
};

}  // namespace sketch
}  // namespace skimjoin

#endif  // SKIMJOIN_SKETCH_RESERVOIR_SAMPLE_H_
