#include "sketch/slim_view.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "sketch/sketch_seed.h"
#include "util/logging.h"
#include "util/stats.h"

namespace skimjoin {
namespace sketch {

SlimView::SlimView(const HashSketch& fat)
    : kind_(Kind::kHashSketch),
      num_tables_(fat.config().num_tables),
      num_buckets_(fat.config().num_buckets),
      seed_(fat.seed()) {
  // Rebuild the families from (seed, tag, index) exactly as the fat
  // sketch's constructor does — identical coefficients by construction, no
  // runtime coupling to the fat object.
  bucket_hashes_.reserve(num_tables_);
  sign_hashes_.reserve(num_tables_);
  for (uint64_t table = 0; table < num_tables_; ++table) {
    Rng bucket_rng = FamilyRng(seed_, FamilyTag::kHashSketchBucket, table);
    bucket_hashes_.emplace_back(num_buckets_, &bucket_rng);
    Rng sign_rng = FamilyRng(seed_, FamilyTag::kHashSketchSign, table);
    sign_hashes_.emplace_back(&sign_rng);
  }
  PackCounters(fat.CounterArray());
  refreshed_epoch_ = fat.update_epoch();
  refresh_count_ = 1;
}

SlimView::SlimView(const CountMinSketch& fat)
    : kind_(Kind::kCountMin),
      num_tables_(fat.config().num_tables),
      num_buckets_(fat.config().num_buckets),
      seed_(fat.seed()) {
  bucket_hashes_.reserve(num_tables_);
  for (uint64_t table = 0; table < num_tables_; ++table) {
    Rng bucket_rng = FamilyRng(seed_, FamilyTag::kCountMinBucket, table);
    bucket_hashes_.emplace_back(num_buckets_, &bucket_rng);
  }
  PackCounters(fat.CounterArray());
  refreshed_epoch_ = fat.update_epoch();
  refresh_count_ = 1;
}

void SlimView::PackCounters(std::span<const int64_t> fat_counters) {
  use32_ = std::all_of(fat_counters.begin(), fat_counters.end(),
                       [](int64_t c) {
                         return c >= std::numeric_limits<int32_t>::min() &&
                                c <= std::numeric_limits<int32_t>::max();
                       });
  if (use32_) {
    counters64_.clear();
    counters64_.shrink_to_fit();
    counters32_.assign(fat_counters.begin(), fat_counters.end());
  } else {
    counters32_.clear();
    counters32_.shrink_to_fit();
    counters64_.assign(fat_counters.begin(), fat_counters.end());
  }
}

bool SlimView::Refresh(const HashSketch& fat) {
  SKIMJOIN_CHECK(kind_ == Kind::kHashSketch &&
                 fat.config().num_tables == num_tables_ &&
                 fat.config().num_buckets == num_buckets_ &&
                 fat.seed() == seed_)
      << "refreshing a slim view from a different synopsis";
  if (fat.update_epoch() == refreshed_epoch_) return false;
  PackCounters(fat.CounterArray());
  refreshed_epoch_ = fat.update_epoch();
  ++refresh_count_;
  return true;
}

bool SlimView::Refresh(const CountMinSketch& fat) {
  SKIMJOIN_CHECK(kind_ == Kind::kCountMin &&
                 fat.config().num_tables == num_tables_ &&
                 fat.config().num_buckets == num_buckets_ &&
                 fat.seed() == seed_)
      << "refreshing a slim view from a different synopsis";
  if (fat.update_epoch() == refreshed_epoch_) return false;
  PackCounters(fat.CounterArray());
  refreshed_epoch_ = fat.update_epoch();
  ++refresh_count_;
  return true;
}

int64_t SlimView::PointEstimate(uint64_t value) const {
  if (kind_ == Kind::kCountMin) {
    int64_t best = std::numeric_limits<int64_t>::max();
    for (uint64_t table = 0; table < num_tables_; ++table) {
      best = std::min(best, CounterAt(table, bucket_hashes_[table](value)));
    }
    return best;
  }
  std::vector<int64_t> estimates;
  estimates.reserve(num_tables_);
  for (uint64_t table = 0; table < num_tables_; ++table) {
    estimates.push_back(sign_hashes_[table](value) *
                        CounterAt(table, bucket_hashes_[table](value)));
  }
  return MedianInt64(std::move(estimates));
}

bool SlimView::CompatibleWith(const SlimView& other) const {
  return kind_ == other.kind_ && num_tables_ == other.num_tables_ &&
         num_buckets_ == other.num_buckets_ && seed_ == other.seed_;
}

StatusOr<double> SlimView::EstimateJoinSize(const SlimView& f,
                                            const SlimView& g) {
  if (!f.CompatibleWith(g)) {
    return InvalidArgumentError(
        "slim-view join estimation requires views over synopses with equal "
        "type, configuration and seed");
  }
  // Same per-table accumulation order as the fat estimators, so the doubles
  // come out bit-identical; only the counter load width differs.
  std::vector<double> per_table;
  per_table.reserve(f.num_tables_);
  for (uint64_t table = 0; table < f.num_tables_; ++table) {
    double sum = 0.0;
    for (uint64_t k = 0; k < f.num_buckets_; ++k) {
      sum += static_cast<double>(f.CounterAt(table, k)) *
             static_cast<double>(g.CounterAt(table, k));
    }
    per_table.push_back(sum);
  }
  if (f.kind_ == Kind::kCountMin) {
    // CountMinSketch::MinOverTables reduction, replicated bit-for-bit.
    double best = 0.0;
    bool first = true;
    for (double sum : per_table) {
      if (first || sum < best) {
        best = sum;
        first = false;
      }
    }
    return best;
  }
  return Median(std::move(per_table));
}

uint64_t SlimView::MemoryBytes() const {
  uint64_t total = sizeof(*this) +
                   counters32_.capacity() * sizeof(int32_t) +
                   counters64_.capacity() * sizeof(int64_t);
  for (const hashing::BucketHash& h : bucket_hashes_) total += h.MemoryBytes();
  for (const hashing::SignHash& h : sign_hashes_) total += h.MemoryBytes();
  return total;
}

}  // namespace sketch
}  // namespace skimjoin
