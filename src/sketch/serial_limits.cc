#include "sketch/serial_limits.h"

#include <atomic>
#include <string>

namespace skimjoin {
namespace sketch {

namespace {

std::atomic<uint64_t>& CapStorage() {
  static std::atomic<uint64_t> cap{kDefaultMaxDeserializeCounters};
  return cap;
}

}  // namespace

uint64_t MaxDeserializeCounters() {
  return CapStorage().load(std::memory_order_relaxed);
}

void SetMaxDeserializeCounters(uint64_t cap) {
  CapStorage().store(cap == 0 ? kDefaultMaxDeserializeCounters : cap,
                     std::memory_order_relaxed);
}

Status CheckDeserializeDims(uint64_t rows, uint64_t cols, const char* what) {
  if (rows < 1 || cols < 1) {
    return InvalidArgumentError(std::string(what) +
                                " record header has a zero dimension");
  }
  const uint64_t cap = MaxDeserializeCounters();
  // rows * cols could wrap; divide instead of multiplying.
  if (rows > cap / cols) {
    return InvalidArgumentError(
        std::string(what) + " record header claims " + std::to_string(rows) +
        " x " + std::to_string(cols) +
        " counters, above the deserialization cap of " + std::to_string(cap));
  }
  return OkStatus();
}

}  // namespace sketch
}  // namespace skimjoin
