// Deterministic derivation of hash-family randomness.
//
// Join-size estimation requires the two streams' synopses to share hash
// families (the atomic sketch pair for F and G uses the SAME ξ family;
// §2.2 of the paper). We get sharing by construction: every family inside a
// synopsis is a pure function of (seed, component tag, index), so two
// synopses built with equal configuration and equal seed are "compatible" —
// they hold identical families without any runtime coupling between the two
// objects (they can even live in different processes).

#ifndef SKIMJOIN_SKETCH_SKETCH_SEED_H_
#define SKIMJOIN_SKETCH_SKETCH_SEED_H_

#include <cstdint>

#include "util/random.h"

namespace skimjoin {
namespace sketch {

/// Component tags namespace the per-structure random streams so that, e.g.,
/// a bucket hash and a sign hash with the same index never share coefficients.
enum class FamilyTag : uint64_t {
  kAgmsSign = 1,
  kHashSketchBucket = 2,
  kHashSketchSign = 3,
  kCountMinBucket = 4,
  kDyadicLevel = 5,
  kReservoir = 6,
  kMultiJoinSign = 7,
  kFmSketch = 8,
};

/// A generator for drawing the coefficients of family number `index` of
/// component `tag` under master seed `seed`. Same arguments → same stream.
Rng FamilyRng(uint64_t seed, FamilyTag tag, uint64_t index);

}  // namespace sketch
}  // namespace skimjoin

#endif  // SKIMJOIN_SKETCH_SKETCH_SEED_H_
