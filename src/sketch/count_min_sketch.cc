#include "sketch/count_min_sketch.h"

#include <algorithm>
#include <string>

#include "sketch/serial_limits.h"
#include "sketch/sketch_seed.h"
#include "util/logging.h"

namespace skimjoin {
namespace sketch {

CountMinSketch::CountMinSketch(const CountMinConfig& config, uint64_t seed)
    : config_(config), seed_(seed) {
  bucket_hashes_.reserve(config.num_tables);
  for (uint64_t table = 0; table < config.num_tables; ++table) {
    Rng rng = FamilyRng(seed, FamilyTag::kCountMinBucket, table);
    bucket_hashes_.emplace_back(config.num_buckets, &rng);
  }
  counters_.assign(config.TotalCounters(), 0);
}

StatusOr<CountMinSketch> CountMinSketch::Create(const CountMinConfig& config,
                                                uint64_t seed) {
  if (config.num_tables < 1) {
    return InvalidArgumentError("CountMinConfig.num_tables must be >= 1");
  }
  if (config.num_buckets < 1) {
    return InvalidArgumentError("CountMinConfig.num_buckets must be >= 1");
  }
  return CountMinSketch(config, seed);
}

void CountMinSketch::Update(uint64_t value, int64_t weight) {
  for (uint64_t table = 0; table < config_.num_tables; ++table) {
    counters_[table * config_.num_buckets + bucket_hashes_[table](value)] +=
        weight;
  }
}

void CountMinSketch::UpdateBatch(
    std::span<const stream::StreamElement> elements) {
  for (uint64_t table = 0; table < config_.num_tables; ++table) {
    const hashing::BucketHash& bucket = bucket_hashes_[table];
    int64_t* row = &counters_[table * config_.num_buckets];
    for (const stream::StreamElement& element : elements) {
      row[bucket(element.value)] += element.weight;
    }
  }
}

void CountMinSketch::Reset() { counters_.assign(counters_.size(), 0); }

void CountMinSketch::Absorb(const stream::FrequencyVector& frequencies) {
  const auto& counts = frequencies.counts();
  for (uint64_t value = 0; value < counts.size(); ++value) {
    if (counts[value] != 0) Update(value, counts[value]);
  }
}

int64_t CountMinSketch::PointEstimate(uint64_t value) const {
  int64_t best = INT64_MAX;
  for (uint64_t table = 0; table < config_.num_tables; ++table) {
    best = std::min(
        best,
        counters_[table * config_.num_buckets + bucket_hashes_[table](value)]);
  }
  return best;
}

bool CountMinSketch::CompatibleWith(const CountMinSketch& other) const {
  return config_.num_tables == other.config_.num_tables &&
         config_.num_buckets == other.config_.num_buckets &&
         seed_ == other.seed_;
}

Status CountMinSketch::SerializeTo(std::ostream& out) const {
  out << "skimjoin.count_min v1\n"
      << config_.num_tables << ' ' << config_.num_buckets << ' ' << seed_
      << '\n';
  for (size_t i = 0; i < counters_.size(); ++i) {
    out << counters_[i] << (i + 1 == counters_.size() ? '\n' : ' ');
  }
  out << "end\n";
  if (!out) return IoError("Count-Min serialization failed");
  return OkStatus();
}

StatusOr<CountMinSketch> CountMinSketch::DeserializeFrom(std::istream& in) {
  std::string tag, version;
  if (!(in >> tag >> version) || tag != "skimjoin.count_min" ||
      version != "v1") {
    return InvalidArgumentError("not a skimjoin count-min v1 record");
  }
  CountMinConfig config;
  uint64_t seed = 0;
  if (!(in >> config.num_tables >> config.num_buckets >> seed)) {
    return InvalidArgumentError("malformed count-min header");
  }
  SKIMJOIN_RETURN_IF_ERROR(CheckDeserializeDims(
      config.num_tables, config.num_buckets, "count-min"));
  StatusOr<CountMinSketch> sketch = CountMinSketch::Create(config, seed);
  SKIMJOIN_RETURN_IF_ERROR(sketch.status());
  for (int64_t& counter : sketch->counters_) {
    if (!(in >> counter)) {
      return InvalidArgumentError("truncated count-min counter block");
    }
  }
  std::string sentinel;
  if (!(in >> sentinel) || sentinel != "end") {
    return InvalidArgumentError("count-min record missing its end sentinel");
  }
  return sketch;
}

StatusOr<double> CountMinSketch::EstimateJoinSize(const CountMinSketch& f,
                                                  const CountMinSketch& g) {
  if (!f.CompatibleWith(g)) {
    return InvalidArgumentError(
        "Count-Min join estimation requires sketches with equal configuration "
        "and seed");
  }
  return MinOverTables(PerTableProducts(f, g));
}

std::vector<double> CountMinSketch::PerTableProducts(const CountMinSketch& f,
                                                     const CountMinSketch& g) {
  std::vector<double> per_table;
  per_table.reserve(f.config_.num_tables);
  for (uint64_t table = 0; table < f.config_.num_tables; ++table) {
    const int64_t* fc = &f.counters_[table * f.config_.num_buckets];
    const int64_t* gc = &g.counters_[table * g.config_.num_buckets];
    double sum = 0.0;
    for (uint64_t k = 0; k < f.config_.num_buckets; ++k) {
      sum += static_cast<double>(fc[k]) * static_cast<double>(gc[k]);
    }
    per_table.push_back(sum);
  }
  return per_table;
}

double CountMinSketch::MinOverTables(const std::vector<double>& per_table) {
  double best = 0.0;
  bool first = true;
  for (double sum : per_table) {
    if (first || sum < best) {
      best = sum;
      first = false;
    }
  }
  return best;
}

StatusOr<EstimateReport> CountMinSketch::EstimateJoinSizeWithReport(
    const CountMinSketch& f, const CountMinSketch& g) {
  if (!f.CompatibleWith(g)) {
    return InvalidArgumentError(
        "Count-Min join estimation requires sketches with equal configuration "
        "and seed");
  }
  EstimateReport report;
  report.method = "count-min";
  report.copy_estimates = PerTableProducts(f, g);
  report.estimate = MinOverTables(report.copy_estimates);
  // Expected one-table excess over the true inner product is bounded by
  // F1(F)·F1(G)/b for insert-only streams; F1 is recovered exactly as any
  // one table's counter sum. This is a one-sided envelope: truth lies in
  // [estimate - bound, estimate] w.h.p.
  report.apriori_bound = f.TotalWeight() * g.TotalWeight() /
                         static_cast<double>(f.config_.num_buckets);
  FinishReportFromCopies(&report);
  return report;
}

double CountMinSketch::TotalWeight() const {
  double sum = 0.0;
  for (uint64_t k = 0; k < config_.num_buckets; ++k) {
    sum += static_cast<double>(counters_[k]);
  }
  return sum;
}

uint64_t CountMinSketch::MemoryBytes() const {
  uint64_t total = sizeof(*this) + counters_.capacity() * sizeof(int64_t);
  for (const hashing::BucketHash& h : bucket_hashes_) total += h.MemoryBytes();
  return total;
}

}  // namespace sketch
}  // namespace skimjoin
