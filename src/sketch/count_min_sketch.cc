#include "sketch/count_min_sketch.h"

#include <algorithm>
#include <string>

#include "sketch/serial_limits.h"
#include "sketch/sketch_seed.h"
#include "util/logging.h"

namespace skimjoin {
namespace sketch {

CountMinSketch::CountMinSketch(const CountMinConfig& config, uint64_t seed)
    : config_(config), seed_(seed) {
  bucket_hashes_.reserve(config.num_tables);
  for (uint64_t table = 0; table < config.num_tables; ++table) {
    Rng rng = FamilyRng(seed, FamilyTag::kCountMinBucket, table);
    bucket_hashes_.emplace_back(config.num_buckets, &rng);
  }
  counters_.assign(config.TotalCounters(), 0);
  SetKernelOptions(KernelOptions{});
}

void CountMinSketch::SetKernelOptions(const KernelOptions& options) {
  kernel_options_ = options;
  for (hashing::BucketHash& hash : bucket_hashes_) {
    hash.set_use_fastmod(options.use_fastmod);
  }
  // Plan words are 32-bit; a bucket count beyond 2^32 cannot be stored, so
  // the cache quietly stands down (results are identical either way).
  if (options.use_plan_cache && config_.num_buckets <= (uint64_t{1} << 32)) {
    plan_cache_.emplace(options.plan_cache_slots, config_.num_tables);
  } else {
    plan_cache_.reset();
  }
}

const uint32_t* CountMinSketch::ComputePlan(uint64_t value) {
  bool hit = false;
  uint32_t* plan = plan_cache_->Probe(value, &hit);
  if (!hit) FillPlan(value, plan);
  return plan;
}

void CountMinSketch::FillPlan(uint64_t value, uint32_t* plan) const {
  for (uint64_t table = 0; table < config_.num_tables; ++table) {
    plan[table] = static_cast<uint32_t>(bucket_hashes_[table](value));
  }
}

void CountMinSketch::FillPlansBlock(const uint64_t* values, size_t n,
                                    uint32_t* plans,
                                    hashing::SimdLevel level) const {
  // Per-table scratch for the raw field residues; thread_local for the
  // same reasons as the blocked kernel's plan scratch.
  static thread_local std::vector<uint64_t> bucket_scratch;
  bucket_scratch.resize(n);
  const uint64_t tables = config_.num_tables;
  for (uint64_t table = 0; table < tables; ++table) {
    const hashing::BucketHash& bucket = bucket_hashes_[table];
    hashing::PolyEvalBlock(bucket.poly().coefficients(), values, n,
                           bucket_scratch.data(), level);
    for (size_t i = 0; i < n; ++i) {
      plans[i * tables + table] =
          static_cast<uint32_t>(bucket.ModReduce(bucket_scratch[i]));
    }
  }
}

void CountMinSketch::ApplyPlan(const uint32_t* plan, int64_t weight) {
  int64_t* row = counters_.data();
  for (uint64_t table = 0; table < config_.num_tables; ++table) {
    row[plan[table]] += weight;
    row += config_.num_buckets;
  }
}

StatusOr<CountMinSketch> CountMinSketch::Create(const CountMinConfig& config,
                                                uint64_t seed) {
  if (config.num_tables < 1) {
    return InvalidArgumentError("CountMinConfig.num_tables must be >= 1");
  }
  if (config.num_buckets < 1) {
    return InvalidArgumentError("CountMinConfig.num_buckets must be >= 1");
  }
  return CountMinSketch(config, seed);
}

void CountMinSketch::Update(uint64_t value, int64_t weight) {
  ++update_epoch_;
  if (plan_cache_) {
    ApplyPlan(ComputePlan(value), weight);
    return;
  }
  for (uint64_t table = 0; table < config_.num_tables; ++table) {
    counters_[table * config_.num_buckets + bucket_hashes_[table](value)] +=
        weight;
  }
}

void CountMinSketch::UpdateBatch(
    std::span<const stream::StreamElement> elements) {
  ++update_epoch_;
  // The blocked kernel stores 32-bit plan words; beyond 2^32 buckets it
  // cannot, so such shapes take the legacy kernels below.
  if (kernel_options_.use_blocked_batch &&
      config_.num_buckets <= (uint64_t{1} << 32)) {
    UpdateBatchBlocked(elements);
    return;
  }
  if (plan_cache_) {
    // Element-major so each element's plan is probed once, not per table.
    for (const stream::StreamElement& element : elements) {
      Update(element.value, element.weight);
    }
    return;
  }
  // Legacy table-major reference kernel.
  for (uint64_t table = 0; table < config_.num_tables; ++table) {
    const hashing::BucketHash& bucket = bucket_hashes_[table];
    int64_t* row = &counters_[table * config_.num_buckets];
    for (const stream::StreamElement& element : elements) {
      row[bucket(element.value)] += element.weight;
    }
  }
}

void CountMinSketch::UpdateBatchBlocked(
    std::span<const stream::StreamElement> elements) {
  const uint64_t tables = config_.num_tables;
  const size_t block = static_cast<size_t>(
      kernel_options_.batch_block_size < 1 ? 1
                                           : kernel_options_.batch_block_size);
  // Thread-local scratch; see HashSketch::UpdateBatchBlocked.
  static thread_local std::vector<uint32_t> plan_scratch;
  static thread_local std::vector<int64_t> weight_scratch;
  plan_scratch.resize(block * tables);
  weight_scratch.resize(block);
  constexpr size_t kPrefetchDistance = 8;
  // Shape-adaptive staging; see HashSketch::UpdateBatchBlocked.
  constexpr uint64_t kScatterStageBytes = uint64_t{1} << 21;
  const bool stage = counters_.size() * sizeof(int64_t) > kScatterStageBytes;
  const hashing::SimdLevel simd = kernel_options_.use_simd
                                      ? hashing::DetectSimdLevel()
                                      : hashing::SimdLevel::kScalar;
  static thread_local std::vector<uint64_t> value_scratch;
  if (simd != hashing::SimdLevel::kScalar) value_scratch.resize(block);
  for (size_t begin = 0; begin < elements.size(); begin += block) {
    const size_t n = std::min(block, elements.size() - begin);
    // Cache hits apply on the spot; only misses stage through scratch for
    // the table-major scatter (see HashSketch::UpdateBatchBlocked — integer
    // adds commute, so the split is bit-identical).
    size_t pending = 0;
    if (simd != hashing::SimdLevel::kScalar) {
      // SIMD phase 1: non-claiming Lookup, then one block evaluation for
      // the misses — see HashSketch::UpdateBatchBlocked for why Probe
      // cannot be combined with a deferred fill.
      for (size_t i = 0; i < n; ++i) {
        const stream::StreamElement& element = elements[begin + i];
        if (plan_cache_) {
          const uint32_t* plan = plan_cache_->Lookup(element.value);
          if (plan != nullptr) {
            ApplyPlan(plan, element.weight);
            continue;
          }
        }
        value_scratch[pending] = element.value;
        weight_scratch[pending] = element.weight;
        ++pending;
      }
      FillPlansBlock(value_scratch.data(), pending, plan_scratch.data(), simd);
      if (plan_cache_) {
        for (size_t i = 0; i < pending; ++i) {
          std::copy_n(&plan_scratch[i * tables], tables,
                      plan_cache_->Insert(value_scratch[i]));
        }
      }
      if (!stage) {
        for (size_t i = 0; i < pending; ++i) {
          ApplyPlan(&plan_scratch[i * tables], weight_scratch[i]);
        }
        pending = 0;
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const stream::StreamElement& element = elements[begin + i];
        if (plan_cache_) {
          bool hit = false;
          uint32_t* plan = plan_cache_->Probe(element.value, &hit);
          if (hit) {
            ApplyPlan(plan, element.weight);
            continue;
          }
          FillPlan(element.value, plan);
          if (!stage) {
            ApplyPlan(plan, element.weight);
            continue;
          }
          std::copy_n(plan, tables, &plan_scratch[pending * tables]);
        } else {
          uint32_t* plan = &plan_scratch[pending * tables];
          FillPlan(element.value, plan);
          if (!stage) {
            ApplyPlan(plan, element.weight);
            continue;
          }
        }
        weight_scratch[pending] = element.weight;
        ++pending;
      }
    }
    for (uint64_t table = 0; table < tables; ++table) {
      int64_t* row = &counters_[table * config_.num_buckets];
      for (size_t i = 0; i < pending; ++i) {
        if (i + kPrefetchDistance < pending) {
          __builtin_prefetch(
              &row[plan_scratch[(i + kPrefetchDistance) * tables + table]], 1);
        }
        row[plan_scratch[i * tables + table]] += weight_scratch[i];
      }
    }
  }
}

void CountMinSketch::Reset() {
  ++update_epoch_;
  counters_.assign(counters_.size(), 0);
}

void CountMinSketch::Absorb(const stream::FrequencyVector& frequencies) {
  ++update_epoch_;
  const auto& counts = frequencies.counts();
  for (uint64_t value = 0; value < counts.size(); ++value) {
    if (counts[value] != 0) Update(value, counts[value]);
  }
}

int64_t CountMinSketch::PointEstimate(uint64_t value) const {
  int64_t best = INT64_MAX;
  for (uint64_t table = 0; table < config_.num_tables; ++table) {
    best = std::min(
        best,
        counters_[table * config_.num_buckets + bucket_hashes_[table](value)]);
  }
  return best;
}

bool CountMinSketch::CompatibleWith(const CountMinSketch& other) const {
  return config_.num_tables == other.config_.num_tables &&
         config_.num_buckets == other.config_.num_buckets &&
         seed_ == other.seed_;
}

void CountMinSketch::Merge(const CountMinSketch& other) {
  SKIMJOIN_CHECK(CompatibleWith(other)) << "merging incompatible count-min sketches";
  ++update_epoch_;
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

Status CountMinSketch::SerializeTo(std::ostream& out) const {
  out << "skimjoin.count_min v1\n"
      << config_.num_tables << ' ' << config_.num_buckets << ' ' << seed_
      << '\n';
  for (size_t i = 0; i < counters_.size(); ++i) {
    out << counters_[i] << (i + 1 == counters_.size() ? '\n' : ' ');
  }
  out << "end\n";
  if (!out) return IoError("Count-Min serialization failed");
  return OkStatus();
}

StatusOr<CountMinSketch> CountMinSketch::DeserializeFrom(std::istream& in) {
  std::string tag, version;
  if (!(in >> tag >> version) || tag != "skimjoin.count_min" ||
      version != "v1") {
    return InvalidArgumentError("not a skimjoin count-min v1 record");
  }
  CountMinConfig config;
  uint64_t seed = 0;
  if (!(in >> config.num_tables >> config.num_buckets >> seed)) {
    return InvalidArgumentError("malformed count-min header");
  }
  SKIMJOIN_RETURN_IF_ERROR(CheckDeserializeDims(
      config.num_tables, config.num_buckets, "count-min"));
  StatusOr<CountMinSketch> sketch = CountMinSketch::Create(config, seed);
  SKIMJOIN_RETURN_IF_ERROR(sketch.status());
  for (int64_t& counter : sketch->counters_) {
    if (!(in >> counter)) {
      return InvalidArgumentError("truncated count-min counter block");
    }
  }
  std::string sentinel;
  if (!(in >> sentinel) || sentinel != "end") {
    return InvalidArgumentError("count-min record missing its end sentinel");
  }
  return sketch;
}

StatusOr<double> CountMinSketch::EstimateJoinSize(const CountMinSketch& f,
                                                  const CountMinSketch& g) {
  if (!f.CompatibleWith(g)) {
    return InvalidArgumentError(
        "Count-Min join estimation requires sketches with equal configuration "
        "and seed");
  }
  return MinOverTables(PerTableProducts(f, g));
}

std::vector<double> CountMinSketch::PerTableProducts(const CountMinSketch& f,
                                                     const CountMinSketch& g) {
  std::vector<double> per_table;
  per_table.reserve(f.config_.num_tables);
  for (uint64_t table = 0; table < f.config_.num_tables; ++table) {
    const int64_t* fc = &f.counters_[table * f.config_.num_buckets];
    const int64_t* gc = &g.counters_[table * g.config_.num_buckets];
    double sum = 0.0;
    for (uint64_t k = 0; k < f.config_.num_buckets; ++k) {
      sum += static_cast<double>(fc[k]) * static_cast<double>(gc[k]);
    }
    per_table.push_back(sum);
  }
  return per_table;
}

double CountMinSketch::MinOverTables(const std::vector<double>& per_table) {
  double best = 0.0;
  bool first = true;
  for (double sum : per_table) {
    if (first || sum < best) {
      best = sum;
      first = false;
    }
  }
  return best;
}

StatusOr<EstimateReport> CountMinSketch::EstimateJoinSizeWithReport(
    const CountMinSketch& f, const CountMinSketch& g) {
  if (!f.CompatibleWith(g)) {
    return InvalidArgumentError(
        "Count-Min join estimation requires sketches with equal configuration "
        "and seed");
  }
  EstimateReport report;
  report.method = "count-min";
  report.copy_estimates = PerTableProducts(f, g);
  report.estimate = MinOverTables(report.copy_estimates);
  // Expected one-table excess over the true inner product is bounded by
  // F1(F)·F1(G)/b for insert-only streams; F1 is recovered exactly as any
  // one table's counter sum. This is a one-sided envelope: truth lies in
  // [estimate - bound, estimate] w.h.p.
  report.apriori_bound = f.TotalWeight() * g.TotalWeight() /
                         static_cast<double>(f.config_.num_buckets);
  FinishReportFromCopies(&report);
  return report;
}

double CountMinSketch::TotalWeight() const {
  double sum = 0.0;
  for (uint64_t k = 0; k < config_.num_buckets; ++k) {
    sum += static_cast<double>(counters_[k]);
  }
  return sum;
}

uint64_t CountMinSketch::MemoryBytes() const {
  uint64_t total = sizeof(*this) + counters_.capacity() * sizeof(int64_t);
  for (const hashing::BucketHash& h : bucket_hashes_) total += h.MemoryBytes();
  if (plan_cache_) total += plan_cache_->MemoryBytes();
  return total;
}

SynopsisHealth CountMinSketch::HealthProbe() const {
  SynopsisHealth health = ProbeCounters(counters_, config_.num_tables);
  health.kind = "count-min";
  return health;
}

}  // namespace sketch
}  // namespace skimjoin
