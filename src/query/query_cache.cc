#include "query/query_cache.h"

namespace skimjoin {
namespace query {

std::optional<double> QueryCache::LookupJoin(uint64_t query_id,
                                             const Epochs& epochs,
                                             Outcome* outcome) {
  auto it = joins_.find(query_id);
  if (it == joins_.end()) {
    *outcome = Outcome::kMiss;
    return std::nullopt;
  }
  if (it->second.epochs != epochs) {
    *outcome = Outcome::kInvalidated;
    return std::nullopt;
  }
  *outcome = Outcome::kHit;
  return it->second.answer;
}

void QueryCache::StoreJoin(uint64_t query_id, const Epochs& epochs,
                           double answer) {
  joins_[query_id] = Entry<double>{epochs, answer};
}

std::optional<int64_t> QueryCache::LookupPoint(uint64_t query_id,
                                               uint64_t value,
                                               const Epochs& epochs,
                                               Outcome* outcome) {
  auto it = points_.find(PointKey{query_id, value});
  if (it == points_.end()) {
    *outcome = Outcome::kMiss;
    return std::nullopt;
  }
  if (it->second.epochs != epochs) {
    *outcome = Outcome::kInvalidated;
    return std::nullopt;
  }
  *outcome = Outcome::kHit;
  return it->second.answer;
}

void QueryCache::StorePoint(uint64_t query_id, uint64_t value,
                            const Epochs& epochs, int64_t answer) {
  points_[PointKey{query_id, value}] = Entry<int64_t>{epochs, answer};
}

void QueryCache::DropAll() {
  joins_.clear();
  points_.clear();
}

void QueryCache::DropQuery(uint64_t query_id) {
  joins_.erase(query_id);
  for (auto it = points_.begin(); it != points_.end();) {
    it = (it->first.query_id == query_id) ? points_.erase(it) : ++it;
  }
}

}  // namespace query
}  // namespace skimjoin
