// Multi-join COUNT aggregates over more than two streams (the extension the
// paper points to in §1/§6, following the construction of Dobra–Garofalakis–
// Gehrke–Rastogi, SIGMOD '02).
//
// For an acyclic join query COUNT(R1 ⋈_{A1} R2 ⋈_{A2} R3 ⋈ ...) each join
// attribute A_k gets its own independent four-wise ±1 family ξ^k, shared by
// the (exactly two) relations it joins. The atomic sketch of relation r
// with join attributes (a, b) is X^r = Σ_{(u,v)} f_r(u, v)·ξ^a(u)·ξ^b(v),
// maintained in one pass. E[Π_r X^r] equals the join size because each
// attribute's signs pair up across exactly two relations; the familiar
// median-of-means grid boosts accuracy and confidence.

#ifndef SKIMJOIN_QUERY_MULTI_JOIN_H_
#define SKIMJOIN_QUERY_MULTI_JOIN_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "hashing/sign_hash.h"
#include "util/estimate_report.h"
#include "util/status.h"

namespace skimjoin {
namespace query {

/// Shape of a multi-join estimator.
struct MultiJoinConfig {
  /// Median-of-means grid, as in AgmsConfig.
  uint64_t num_means = 64;
  uint64_t num_medians = 5;

  /// relation_attributes[r] lists the join-attribute ids (0-based, dense)
  /// that relation r carries, in the order Update() will pass values.
  /// Every attribute id must appear in exactly two relations (acyclic
  /// chain/star joins) — the condition under which the estimator is
  /// unbiased.
  std::vector<std::vector<uint64_t>> relation_attributes;
};

/// Streaming estimator for one multi-join COUNT query.
class MultiJoinEstimator {
 public:
  /// Validates the config (grid >= 1×1, >= 2 relations, every attribute in
  /// exactly two relations, every relation with >= 1 attribute).
  static StatusOr<MultiJoinEstimator> Create(const MultiJoinConfig& config,
                                             uint64_t seed);

  /// Applies one arrival of relation `relation`: `attribute_values[i]` is
  /// the value of the relation's i-th join attribute (the order declared in
  /// relation_attributes). O(num_means·num_medians·#attributes).
  /// Returns INVALID_ARGUMENT on a bad relation index or arity mismatch.
  Status Update(uint64_t relation,
                const std::vector<uint64_t>& attribute_values,
                int64_t weight);

  /// Median over the grid columns of the mean over rows of Π_r X^r_ij.
  double Estimate() const;

  /// Estimate with provenance: per-median copy estimates, their spread and
  /// an empirical CI. No closed-form a-priori envelope is reported (the
  /// multi-join variance involves cross-moments of all relations); the
  /// field stays NaN. `estimate` is bit-identical to Estimate().
  EstimateReport EstimateWithReport() const;

  const MultiJoinConfig& config() const { return config_; }
  uint64_t num_relations() const {
    return config_.relation_attributes.size();
  }

  /// Total footprint in bytes (sign families and per-relation counter
  /// grids). Feeds the per-query memory gauges.
  uint64_t MemoryBytes() const;

  /// Writes the estimator as a self-describing text record (config, seed,
  /// counter grids). The sign families rebuild from (config, seed) on
  /// read, so the record carries only the linear state.
  Status SerializeTo(std::ostream& out) const;

  /// Reads a record written by SerializeTo. INVALID_ARGUMENT on a
  /// malformed or truncated record; dimensions are validated before any
  /// counter allocation.
  static StatusOr<MultiJoinEstimator> DeserializeFrom(std::istream& in);

  /// Adds `other`'s counters into this estimator. The atomic sketches are
  /// linear in the tuple weights, so merging shard-partial estimators is
  /// exact — the merged state equals one estimator that saw every tuple.
  /// INVALID_ARGUMENT unless config and seed match (different hash
  /// families are not summable).
  Status MergeFrom(const MultiJoinEstimator& other);

  uint64_t seed() const { return seed_; }

 private:
  MultiJoinEstimator(const MultiJoinConfig& config, uint64_t seed);

  uint64_t CellIndex(uint64_t mean, uint64_t median) const {
    return median * config_.num_means + mean;
  }

  /// The per-median copy estimates both estimation entry points median.
  std::vector<double> PerMedianAverages() const;

  MultiJoinConfig config_;
  uint64_t seed_ = 0;
  // signs_[attribute][cell]: the ξ^attribute family of grid cell (i, j).
  std::vector<std::vector<hashing::SignHash>> signs_;
  // counters_[relation][cell]: atomic sketch X^relation_ij.
  std::vector<std::vector<int64_t>> counters_;
};

}  // namespace query
}  // namespace skimjoin

#endif  // SKIMJOIN_QUERY_MULTI_JOIN_H_
