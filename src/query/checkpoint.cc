// Engine::SaveCheckpoint / Engine::RestoreCheckpoint / Engine::Clear — the
// crash-safe persistence layer described in query/checkpoint.h.
//
// Checkpoint layout (sections of a util::DurableFileWriter file):
//   "manifest"    text manifest, format below
//   "meta:<key>"  caller metadata values, one section per key
//   "query:<id>"  serialized synopsis of each SUPPORTED query, id ascending
//
// Manifest text format (whitespace-separated; names percent-encoded so they
// survive the tokenizer; doubles at max_digits10 so they round-trip exactly):
//   skimjoin.checkpoint v2
//   shards <ingest_shards>
//   nextid <next_query_id>
//   streams <count>
//     <name> <domain> <element_count> <absorbed> <batches> <dropped>
//       <merges> <absorb_nanos> <merge_nanos>
//   relations <count>
//     <name> <arity> <domain> <tuple_count>
//   queries <count>
//     <id> <kind> <seed> <supported> <kind-specific spec fields...>
//   metrics <count>                        (v2 only)
//     <name> <value>
//   end
// The metrics block snapshots every COUNTER in the engine's registry
// (names percent-encoded) so a restored engine keeps its cumulative
// counts; gauges and histograms are derived/monitoring state and are
// rebuilt live. v1 manifests (no metrics block) still restore.
// Query ids are strictly ascending. `supported` is 0 for kinds whose
// synopses cannot be serialized (sampling / partitioned-AGMS join
// estimators, chain joins); those queries get no "query:<id>" section but
// are always present in the manifest — a restore must account for every
// one of them, never silently drop one.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "query/engine.h"
#include "util/durable_file.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace skimjoin {
namespace query {
namespace {

// --- name encoding ---------------------------------------------------------

// Stream/relation names are arbitrary bytes but the manifest is tokenized on
// whitespace, so encode anything outside the printable-ASCII range (plus '%'
// itself) as %XX.
std::string PercentEncode(std::string_view raw) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    const auto byte = static_cast<unsigned char>(c);
    if (byte <= 0x20 || byte >= 0x7f || byte == '%') {
      out.push_back('%');
      out.push_back(kHex[byte >> 4]);
      out.push_back(kHex[byte & 0xf]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

StatusOr<std::string> PercentDecode(const std::string& encoded) {
  std::string out;
  out.reserve(encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    if (encoded[i] != '%') {
      out.push_back(encoded[i]);
      continue;
    }
    if (i + 2 >= encoded.size()) {
      return InvalidArgumentError("truncated percent escape in manifest name");
    }
    const int hi = HexValue(encoded[i + 1]);
    const int lo = HexValue(encoded[i + 2]);
    if (hi < 0 || lo < 0) {
      return InvalidArgumentError("bad percent escape in manifest name");
    }
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return out;
}

// --- enum tokens -----------------------------------------------------------

const char* EstimatorKindToken(core::EstimatorKind kind) {
  switch (kind) {
    case core::EstimatorKind::kAgms:
      return "agms";
    case core::EstimatorKind::kHashSketch:
      return "hashsketch";
    case core::EstimatorKind::kSkimmedSketch:
      return "skimmed";
    case core::EstimatorKind::kCountMin:
      return "countmin";
    case core::EstimatorKind::kSampling:
      return "sampling";
    case core::EstimatorKind::kPartitionedAgms:
      return "partitionedagms";
  }
  SKIMJOIN_CHECK(false) << "unhandled estimator kind";
  return "";
}

StatusOr<core::EstimatorKind> EstimatorKindFromToken(const std::string& token) {
  if (token == "agms") return core::EstimatorKind::kAgms;
  if (token == "hashsketch") return core::EstimatorKind::kHashSketch;
  if (token == "skimmed") return core::EstimatorKind::kSkimmedSketch;
  if (token == "countmin") return core::EstimatorKind::kCountMin;
  if (token == "sampling") return core::EstimatorKind::kSampling;
  if (token == "partitionedagms") return core::EstimatorKind::kPartitionedAgms;
  return InvalidArgumentError("unknown estimator kind in manifest: " + token);
}

// --- predicates ------------------------------------------------------------

void WritePredicate(std::ostream& out,
                    const std::optional<RangePredicate>& predicate) {
  if (predicate.has_value()) {
    out << "pred " << predicate->lo << ' ' << predicate->hi;
  } else {
    out << "nopred";
  }
}

StatusOr<std::optional<RangePredicate>> ReadPredicate(std::istream& in) {
  std::string token;
  if (!(in >> token)) {
    return InvalidArgumentError("manifest query line missing its predicate");
  }
  if (token == "nopred") return std::optional<RangePredicate>{};
  if (token != "pred") {
    return InvalidArgumentError("bad predicate token in manifest: " + token);
  }
  RangePredicate predicate;
  if (!(in >> predicate.lo >> predicate.hi)) {
    return InvalidArgumentError("malformed predicate bounds in manifest");
  }
  if (predicate.lo > predicate.hi) {
    return InvalidArgumentError("manifest predicate has lo > hi");
  }
  return std::optional<RangePredicate>{predicate};
}

// --- parsed manifest -------------------------------------------------------

struct ManifestStream {
  std::string name;
  uint64_t domain_size = 0;
  int64_t element_count = 0;
  ingest::IngestStats stats;
};

struct ManifestRelation {
  std::string name;
  uint64_t arity = 0;
  uint64_t domain_size = 0;
  int64_t tuple_count = 0;
};

// One manifest query line. `kind` selects which spec member is meaningful.
struct ManifestQuery {
  QueryId id = 0;
  std::string kind;
  uint64_t seed = 0;
  bool supported = false;
  JoinQuerySpec join;
  FrequencyQuerySpec frequency;
  DistinctCountQuerySpec distinct;
  TopKQuerySpec topk;
  QuantileQuerySpec quantile;
  RangeSumQuerySpec range_sum;
  ChainJoinQuerySpec chain;
};

struct Manifest {
  uint64_t shards = 1;
  QueryId next_query_id = 1;
  std::vector<ManifestStream> streams;
  std::vector<ManifestRelation> relations;
  std::vector<ManifestQuery> queries;
  // Registry counter snapshot (v2 manifests; empty for v1).
  std::vector<std::pair<std::string, uint64_t>> counters;
};

// Caps the count headers so a corrupt (but CRC-colliding) manifest cannot
// drive a huge allocation loop.
constexpr uint64_t kMaxManifestEntries = uint64_t{1} << 24;

StatusOr<std::string> ReadName(std::istream& in, const char* what) {
  std::string encoded;
  if (!(in >> encoded)) {
    return InvalidArgumentError(std::string("manifest truncated in ") + what);
  }
  return PercentDecode(encoded);
}

Status ExpectKeyword(std::istream& in, const char* keyword) {
  std::string token;
  if (!(in >> token) || token != keyword) {
    return InvalidArgumentError(std::string("manifest missing '") + keyword +
                                "' block");
  }
  return OkStatus();
}

StatusOr<ManifestQuery> ParseManifestQuery(std::istream& in) {
  ManifestQuery q;
  int supported = 0;
  if (!(in >> q.id >> q.kind >> q.seed >> supported)) {
    return InvalidArgumentError("malformed manifest query line");
  }
  if (q.id < 1) return InvalidArgumentError("manifest query id must be >= 1");
  if (supported != 0 && supported != 1) {
    return InvalidArgumentError("manifest query supported flag must be 0/1");
  }
  q.supported = supported == 1;

  if (q.kind == "join") {
    SKIMJOIN_ASSIGN_OR_RETURN(q.join.left_stream,
                              ReadName(in, "join query streams"));
    SKIMJOIN_ASSIGN_OR_RETURN(q.join.right_stream,
                              ReadName(in, "join query streams"));
    std::string estimator_token;
    int left_input = 0;
    int right_input = 0;
    int use_dyadic = 0;
    core::EstimatorSpec& est = q.join.estimator;
    if (!(in >> estimator_token >> est.space_counters >> est.agms_num_medians >>
          est.num_tables >> est.threshold_scale >> est.recurse_slack >>
          est.skim_margin >> use_dyadic >> left_input >> right_input)) {
      return InvalidArgumentError("malformed join query fields in manifest");
    }
    SKIMJOIN_ASSIGN_OR_RETURN(est.kind,
                              EstimatorKindFromToken(estimator_token));
    est.skimmed_use_dyadic = use_dyadic != 0;
    q.join.left_input = left_input == 0 ? AggregateInput::kCount
                                        : AggregateInput::kMeasure;
    q.join.right_input = right_input == 0 ? AggregateInput::kCount
                                          : AggregateInput::kMeasure;
    SKIMJOIN_ASSIGN_OR_RETURN(q.join.left_predicate, ReadPredicate(in));
    SKIMJOIN_ASSIGN_OR_RETURN(q.join.right_predicate, ReadPredicate(in));
  } else if (q.kind == "frequency") {
    int use_dyadic = 0;
    SKIMJOIN_ASSIGN_OR_RETURN(q.frequency.stream,
                              ReadName(in, "frequency query stream"));
    if (!(in >> q.frequency.space_counters >> q.frequency.num_tables >>
          use_dyadic)) {
      return InvalidArgumentError("malformed frequency query in manifest");
    }
    q.frequency.use_dyadic = use_dyadic != 0;
    SKIMJOIN_ASSIGN_OR_RETURN(q.frequency.predicate, ReadPredicate(in));
  } else if (q.kind == "distinct") {
    SKIMJOIN_ASSIGN_OR_RETURN(q.distinct.stream,
                              ReadName(in, "distinct query stream"));
    if (!(in >> q.distinct.num_maps)) {
      return InvalidArgumentError("malformed distinct query in manifest");
    }
    SKIMJOIN_ASSIGN_OR_RETURN(q.distinct.predicate, ReadPredicate(in));
  } else if (q.kind == "topk") {
    SKIMJOIN_ASSIGN_OR_RETURN(q.topk.stream,
                              ReadName(in, "top-k query stream"));
    if (!(in >> q.topk.k >> q.topk.space_counters >> q.topk.num_tables)) {
      return InvalidArgumentError("malformed top-k query in manifest");
    }
    SKIMJOIN_ASSIGN_OR_RETURN(q.topk.predicate, ReadPredicate(in));
  } else if (q.kind == "quantile") {
    SKIMJOIN_ASSIGN_OR_RETURN(q.quantile.stream,
                              ReadName(in, "quantile query stream"));
    if (!(in >> q.quantile.epsilon)) {
      return InvalidArgumentError("malformed quantile query in manifest");
    }
    SKIMJOIN_ASSIGN_OR_RETURN(q.quantile.predicate, ReadPredicate(in));
  } else if (q.kind == "rangesum") {
    SKIMJOIN_ASSIGN_OR_RETURN(q.range_sum.stream,
                              ReadName(in, "range-sum query stream"));
    if (!(in >> q.range_sum.coefficient_budget)) {
      return InvalidArgumentError("malformed range-sum query in manifest");
    }
    SKIMJOIN_ASSIGN_OR_RETURN(q.range_sum.predicate, ReadPredicate(in));
  } else if (q.kind == "chain") {
    uint64_t relation_count = 0;
    if (!(in >> relation_count) || relation_count < 2 ||
        relation_count > kMaxManifestEntries) {
      return InvalidArgumentError("bad chain relation count in manifest");
    }
    q.chain.relations.reserve(relation_count);
    for (uint64_t r = 0; r < relation_count; ++r) {
      SKIMJOIN_ASSIGN_OR_RETURN(std::string name,
                                ReadName(in, "chain query relations"));
      q.chain.relations.push_back(std::move(name));
    }
    std::string method;
    if (!(in >> method >> q.chain.num_means >> q.chain.num_medians >>
          q.chain.num_tables >> q.chain.num_buckets)) {
      return InvalidArgumentError("malformed chain query in manifest");
    }
    if (method == "agmsgrid") {
      q.chain.method = ChainJoinQuerySpec::Method::kAgmsGrid;
    } else if (method == "hashsketch") {
      q.chain.method = ChainJoinQuerySpec::Method::kHashSketch;
    } else {
      return InvalidArgumentError("unknown chain method in manifest: " +
                                  method);
    }
  } else {
    return InvalidArgumentError("unknown query kind in manifest: " + q.kind);
  }
  return q;
}

StatusOr<Manifest> ParseManifest(const std::string& payload) {
  std::istringstream in(payload);
  std::string magic, version;
  if (!(in >> magic >> version) || magic != "skimjoin.checkpoint" ||
      (version != "v1" && version != "v2")) {
    return InvalidArgumentError("not a skimjoin checkpoint v1/v2 manifest");
  }
  Manifest manifest;
  SKIMJOIN_RETURN_IF_ERROR(ExpectKeyword(in, "shards"));
  if (!(in >> manifest.shards) || manifest.shards < 1) {
    return InvalidArgumentError("bad shard count in manifest");
  }
  SKIMJOIN_RETURN_IF_ERROR(ExpectKeyword(in, "nextid"));
  if (!(in >> manifest.next_query_id) || manifest.next_query_id < 1) {
    return InvalidArgumentError("bad next query id in manifest");
  }

  SKIMJOIN_RETURN_IF_ERROR(ExpectKeyword(in, "streams"));
  uint64_t stream_count = 0;
  if (!(in >> stream_count) || stream_count > kMaxManifestEntries) {
    return InvalidArgumentError("bad stream count in manifest");
  }
  manifest.streams.reserve(stream_count);
  for (uint64_t i = 0; i < stream_count; ++i) {
    ManifestStream s;
    SKIMJOIN_ASSIGN_OR_RETURN(s.name, ReadName(in, "stream table"));
    ingest::IngestStats& st = s.stats;
    if (!(in >> s.domain_size >> s.element_count >> st.elements_absorbed >>
          st.batches >> st.elements_dropped >> st.merges >> st.absorb_nanos >>
          st.merge_nanos)) {
      return InvalidArgumentError("malformed stream line in manifest");
    }
    manifest.streams.push_back(std::move(s));
  }

  SKIMJOIN_RETURN_IF_ERROR(ExpectKeyword(in, "relations"));
  uint64_t relation_count = 0;
  if (!(in >> relation_count) || relation_count > kMaxManifestEntries) {
    return InvalidArgumentError("bad relation count in manifest");
  }
  manifest.relations.reserve(relation_count);
  for (uint64_t i = 0; i < relation_count; ++i) {
    ManifestRelation r;
    SKIMJOIN_ASSIGN_OR_RETURN(r.name, ReadName(in, "relation table"));
    if (!(in >> r.arity >> r.domain_size >> r.tuple_count)) {
      return InvalidArgumentError("malformed relation line in manifest");
    }
    manifest.relations.push_back(std::move(r));
  }

  SKIMJOIN_RETURN_IF_ERROR(ExpectKeyword(in, "queries"));
  uint64_t query_count = 0;
  if (!(in >> query_count) || query_count > kMaxManifestEntries) {
    return InvalidArgumentError("bad query count in manifest");
  }
  manifest.queries.reserve(query_count);
  QueryId previous_id = 0;
  for (uint64_t i = 0; i < query_count; ++i) {
    SKIMJOIN_ASSIGN_OR_RETURN(ManifestQuery q, ParseManifestQuery(in));
    if (q.id <= previous_id) {
      return InvalidArgumentError("manifest query ids are not ascending");
    }
    if (q.id >= manifest.next_query_id) {
      return InvalidArgumentError(
          "manifest query id exceeds the recorded next query id");
    }
    previous_id = q.id;
    manifest.queries.push_back(std::move(q));
  }

  if (version == "v2") {
    SKIMJOIN_RETURN_IF_ERROR(ExpectKeyword(in, "metrics"));
    uint64_t counter_count = 0;
    if (!(in >> counter_count) || counter_count > kMaxManifestEntries) {
      return InvalidArgumentError("bad metrics count in manifest");
    }
    manifest.counters.reserve(counter_count);
    for (uint64_t i = 0; i < counter_count; ++i) {
      SKIMJOIN_ASSIGN_OR_RETURN(std::string name,
                                ReadName(in, "metrics table"));
      uint64_t value = 0;
      if (!(in >> value)) {
        return InvalidArgumentError("malformed metrics line in manifest");
      }
      manifest.counters.emplace_back(std::move(name), value);
    }
  }

  std::string sentinel;
  if (!(in >> sentinel) || sentinel != "end") {
    return InvalidArgumentError("manifest missing its end sentinel");
  }
  return manifest;
}

constexpr char kMetaPrefix[] = "meta:";
constexpr char kQueryPrefix[] = "query:";

bool IsSerializableJoinKind(core::EstimatorKind kind) {
  return kind != core::EstimatorKind::kSampling &&
         kind != core::EstimatorKind::kPartitionedAgms;
}

}  // namespace

// --- SaveCheckpoint --------------------------------------------------------

Status Engine::SaveCheckpoint(
    const std::string& path,
    const std::map<std::string, std::string>& metadata) const {
  metrics::TraceSpan span("checkpoint_save", "checkpoint");
  // A checkpoint must capture an exact state: linearize any in-flight
  // concurrent ingestion before serializing synopses (writer-thread only,
  // so the const_cast is the same convention as SerializeQuerySynopsis).
  const_cast<Engine*>(this)->FlushIngest();
  // The manifest (and the per-query sections) walk every query ascending by
  // id, so the file layout is deterministic for a given engine state.
  enum class Kind { kJoin, kFrequency, kDistinct, kTopK, kQuantile,
                    kRangeSum, kChain };
  std::vector<std::pair<QueryId, Kind>> order;
  order.reserve(num_queries());
  for (const auto& entry : join_queries_) {
    order.emplace_back(entry.first, Kind::kJoin);
  }
  for (const auto& entry : frequency_queries_) {
    order.emplace_back(entry.first, Kind::kFrequency);
  }
  for (const auto& entry : distinct_queries_) {
    order.emplace_back(entry.first, Kind::kDistinct);
  }
  for (const auto& entry : topk_queries_) {
    order.emplace_back(entry.first, Kind::kTopK);
  }
  for (const auto& entry : quantile_queries_) {
    order.emplace_back(entry.first, Kind::kQuantile);
  }
  for (const auto& entry : range_sum_queries_) {
    order.emplace_back(entry.first, Kind::kRangeSum);
  }
  for (const auto& entry : chain_queries_) {
    order.emplace_back(entry.first, Kind::kChain);
  }
  std::sort(order.begin(), order.end());

  std::ostringstream manifest;
  manifest.precision(std::numeric_limits<double>::max_digits10);
  manifest << "skimjoin.checkpoint v2\n"
           << "shards " << ingest_options_.shards << '\n'
           << "nextid " << next_query_id_ << '\n';
  manifest << "streams " << streams_.size() << '\n';
  for (const StreamState& s : streams_) {
    const ingest::IngestStats st = IngestStatsFor(s);
    manifest << PercentEncode(s.spec.name) << ' ' << s.spec.domain_size << ' '
             << s.element_count << ' ' << st.elements_absorbed << ' '
             << st.batches << ' ' << st.elements_dropped << ' ' << st.merges
             << ' ' << st.absorb_nanos << ' ' << st.merge_nanos << '\n';
  }
  manifest << "relations " << relations_.size() << '\n';
  for (const RelationState& r : relations_) {
    manifest << PercentEncode(r.spec.name) << ' ' << r.spec.arity << ' '
             << r.spec.domain_size << ' ' << r.tuple_count << '\n';
  }
  manifest << "queries " << order.size() << '\n';
  std::vector<std::pair<QueryId, bool>> supported_flags;
  supported_flags.reserve(order.size());
  for (const auto& [id, kind] : order) {
    bool supported = true;
    switch (kind) {
      case Kind::kJoin: {
        const JoinQueryState& q = join_queries_.at(id);
        supported = IsSerializableJoinKind(q.spec.estimator.kind);
        const core::EstimatorSpec& est = q.spec.estimator;
        manifest << id << " join " << q.seed << ' ' << (supported ? 1 : 0)
                 << ' ' << PercentEncode(q.spec.left_stream) << ' '
                 << PercentEncode(q.spec.right_stream) << ' '
                 << EstimatorKindToken(est.kind) << ' ' << est.space_counters
                 << ' ' << est.agms_num_medians << ' ' << est.num_tables << ' '
                 << est.threshold_scale << ' ' << est.recurse_slack << ' '
                 << est.skim_margin << ' ' << (est.skimmed_use_dyadic ? 1 : 0)
                 << ' '
                 << (q.spec.left_input == AggregateInput::kCount ? 0 : 1)
                 << ' '
                 << (q.spec.right_input == AggregateInput::kCount ? 0 : 1)
                 << ' ';
        WritePredicate(manifest, q.spec.left_predicate);
        manifest << ' ';
        WritePredicate(manifest, q.spec.right_predicate);
        manifest << '\n';
        break;
      }
      case Kind::kFrequency: {
        const FrequencyQueryState& q = frequency_queries_.at(id);
        manifest << id << " frequency " << q.seed << " 1 "
                 << PercentEncode(q.spec.stream) << ' '
                 << q.spec.space_counters << ' ' << q.spec.num_tables << ' '
                 << (q.spec.use_dyadic ? 1 : 0) << ' ';
        WritePredicate(manifest, q.spec.predicate);
        manifest << '\n';
        break;
      }
      case Kind::kDistinct: {
        const DistinctQueryState& q = distinct_queries_.at(id);
        manifest << id << " distinct " << q.seed << " 1 "
                 << PercentEncode(q.spec.stream) << ' ' << q.spec.num_maps
                 << ' ';
        WritePredicate(manifest, q.spec.predicate);
        manifest << '\n';
        break;
      }
      case Kind::kTopK: {
        const TopKQueryState& q = topk_queries_.at(id);
        manifest << id << " topk " << q.seed << " 1 "
                 << PercentEncode(q.spec.stream) << ' ' << q.spec.k << ' '
                 << q.spec.space_counters << ' ' << q.spec.num_tables << ' ';
        WritePredicate(manifest, q.spec.predicate);
        manifest << '\n';
        break;
      }
      case Kind::kQuantile: {
        const QuantileQueryState& q = quantile_queries_.at(id);
        manifest << id << " quantile 0 1 " << PercentEncode(q.spec.stream)
                 << ' ' << q.spec.epsilon << ' ';
        WritePredicate(manifest, q.spec.predicate);
        manifest << '\n';
        break;
      }
      case Kind::kRangeSum: {
        const RangeSumQueryState& q = range_sum_queries_.at(id);
        manifest << id << " rangesum 0 1 " << PercentEncode(q.spec.stream)
                 << ' ' << q.spec.coefficient_budget << ' ';
        WritePredicate(manifest, q.spec.predicate);
        manifest << '\n';
        break;
      }
      case Kind::kChain: {
        const ChainJoinQueryState& q = chain_queries_.at(id);
        supported = false;  // neither chain estimator is serializable yet
        manifest << id << " chain " << q.seed << " 0 "
                 << q.spec.relations.size();
        for (const std::string& name : q.spec.relations) {
          manifest << ' ' << PercentEncode(name);
        }
        manifest << ' '
                 << (q.spec.method == ChainJoinQuerySpec::Method::kAgmsGrid
                         ? "agmsgrid"
                         : "hashsketch")
                 << ' ' << q.spec.num_means << ' ' << q.spec.num_medians << ' '
                 << q.spec.num_tables << ' ' << q.spec.num_buckets << '\n';
        break;
      }
    }
    supported_flags.emplace_back(id, supported);
  }
  // Counters only: they carry cumulative history a restored engine cannot
  // recompute. Gauges and histograms are monitoring views rebuilt live.
  const metrics::Snapshot metrics_snapshot = metrics_.TakeSnapshot();
  manifest << "metrics " << metrics_snapshot.counters.size() << '\n';
  for (const auto& [name, value] : metrics_snapshot.counters) {
    manifest << PercentEncode(name) << ' ' << value << '\n';
  }
  manifest << "end\n";

  SKIMJOIN_ASSIGN_OR_RETURN(util::DurableFileWriter writer,
                            util::DurableFileWriter::Create(path));
  SKIMJOIN_RETURN_IF_ERROR(writer.AppendSection("manifest", manifest.str()));
  {
    const Status injected = failpoint::Check("checkpoint:after-header");
    if (!injected.ok()) {
      if (failpoint::IsSimulatedCrash(injected)) writer.Abandon();
      return injected;
    }
  }
  for (const auto& [key, value] : metadata) {
    SKIMJOIN_RETURN_IF_ERROR(writer.AppendSection(kMetaPrefix + key, value));
  }

  auto flags_it = supported_flags.begin();
  for (const auto& [id, kind] : order) {
    const bool supported = flags_it->second;
    ++flags_it;
    if (!supported) continue;
    std::ostringstream payload;
    switch (kind) {
      case Kind::kJoin:
        SKIMJOIN_RETURN_IF_ERROR(
            join_queries_.at(id).estimator->SerializeTo(payload));
        break;
      case Kind::kFrequency:
        SKIMJOIN_RETURN_IF_ERROR(
            frequency_queries_.at(id).sketch.SerializeTo(payload));
        break;
      case Kind::kDistinct:
        SKIMJOIN_RETURN_IF_ERROR(
            distinct_queries_.at(id).sketch.SerializeTo(payload));
        break;
      case Kind::kTopK:
        SKIMJOIN_RETURN_IF_ERROR(
            topk_queries_.at(id).tracker.SerializeTo(payload));
        break;
      case Kind::kQuantile:
        SKIMJOIN_RETURN_IF_ERROR(
            quantile_queries_.at(id).summary.SerializeTo(payload));
        break;
      case Kind::kRangeSum:
        SKIMJOIN_RETURN_IF_ERROR(
            range_sum_queries_.at(id).synopsis.SerializeTo(payload));
        break;
      case Kind::kChain:
        SKIMJOIN_CHECK(false) << "chain queries are never serialized";
        break;
    }
    SKIMJOIN_RETURN_IF_ERROR(writer.AppendSection(
        kQueryPrefix + std::to_string(id), payload.str()));
  }
  return writer.Commit();
}

// --- RestoreCheckpoint -----------------------------------------------------

StatusOr<RestoreReport> Engine::RestoreCheckpoint(const std::string& path,
                                                  const RestoreOptions& options) {
  metrics::TraceSpan span("checkpoint_restore", "checkpoint");
  if (num_streams() != 0 || num_relations() != 0 || num_queries() != 0) {
    return FailedPreconditionError(
        "RestoreCheckpoint requires an empty engine (call Clear() first)");
  }
  // An empty engine holds no queries, so the read-path cache must already
  // be empty — but drop defensively: restored query ids restart from 1 and
  // the restored epoch counters are re-seeded below, so an entry surviving
  // from a previous life could collide with a fresh (id, epochs) pair.
  query_cache_.DropAll();

  // Read every intact section. On the first read error: strict mode fails
  // outright; partial mode keeps what was read (sections are CRC-verified
  // individually, so everything before the error is trustworthy).
  SKIMJOIN_ASSIGN_OR_RETURN(util::DurableFileReader reader,
                            util::DurableFileReader::Open(path));
  std::vector<util::DurableSection> sections;
  Status read_error = OkStatus();
  for (;;) {
    StatusOr<std::optional<util::DurableSection>> next = reader.Next();
    if (!next.ok()) {
      read_error = next.status();
      break;
    }
    if (!next->has_value()) break;
    sections.push_back(*std::move(*next));
  }
  if (!read_error.ok() && !options.allow_partial) return read_error;

  // The manifest is mandatory even for a partial restore: without it there
  // is no record of what the checkpoint held, so "recover what's intact"
  // has no meaning.
  if (sections.empty() || sections.front().name != "manifest") {
    if (!read_error.ok()) return read_error;
    return InvalidArgumentError("checkpoint has no manifest section");
  }
  SKIMJOIN_ASSIGN_OR_RETURN(Manifest manifest,
                            ParseManifest(sections.front().payload));

  RestoreReport report;
  std::map<QueryId, const std::string*> query_payloads;
  for (size_t i = 1; i < sections.size(); ++i) {
    const util::DurableSection& section = sections[i];
    if (section.name.rfind(kMetaPrefix, 0) == 0) {
      report.metadata[section.name.substr(sizeof(kMetaPrefix) - 1)] =
          section.payload;
      continue;
    }
    if (section.name.rfind(kQueryPrefix, 0) == 0) {
      QueryId id = 0;
      std::istringstream id_in(section.name.substr(sizeof(kQueryPrefix) - 1));
      if (!(id_in >> id) || !id_in.eof()) {
        if (options.allow_partial) continue;
        Clear();
        return InvalidArgumentError("bad query section name: " + section.name);
      }
      query_payloads[id] = &section.payload;
      continue;
    }
    if (!options.allow_partial) {
      Clear();
      return InvalidArgumentError("unknown checkpoint section: " +
                                  section.name);
    }
  }

  // `fail` wraps every fatal exit so the engine is never left half-built.
  auto fail = [this](Status status) {
    Clear();
    return status;
  };

  for (size_t i = 0; i < manifest.streams.size(); ++i) {
    const ManifestStream& s = manifest.streams[i];
    StatusOr<StreamId> id =
        RegisterStream(StreamSpec{s.name, s.domain_size});
    if (!id.ok()) return fail(id.status());
    if (*id != i) {
      return fail(InternalError("stream ids drifted during restore"));
    }
    streams_[i].element_count = s.element_count;
    StreamState& state = streams_[i];
    state.absorbed->Reset(s.stats.elements_absorbed);
    state.batches->Reset(s.stats.batches);
    state.dropped->Reset(s.stats.elements_dropped);
    state.merges->Reset(s.stats.merges);
    state.absorb_nanos->Reset(s.stats.absorb_nanos);
    state.merge_nanos->Reset(s.stats.merge_nanos);
  }
  for (size_t i = 0; i < manifest.relations.size(); ++i) {
    const ManifestRelation& r = manifest.relations[i];
    StatusOr<StreamId> id =
        RegisterRelation(RelationSpec{r.name, r.arity, r.domain_size});
    if (!id.ok()) return fail(id.status());
    if (*id != i) {
      return fail(InternalError("relation ids drifted during restore"));
    }
    relations_[i].tuple_count = r.tuple_count;
  }

  for (const ManifestQuery& q : manifest.queries) {
    // Queries must come back under their original ids; steer the id counter
    // to the recorded value before each registration.
    next_query_id_ = q.id;

    // Unsupported kinds first: the manifest listed them so the restore must
    // account for them — strict mode refuses, partial mode re-registers
    // what it can (empty) and reports the loss.
    if (!q.supported) {
      if (!options.allow_partial) {
        return fail(UnimplementedError(
            "checkpoint query " + std::to_string(q.id) + " (" + q.kind +
            ") has no serializable synopsis; restore with allow_partial to "
            "recover the rest"));
      }
      if (q.kind == "chain") {
        StatusOr<QueryId> created = AddChainJoinQuery(q.chain, q.seed);
        if (!created.ok()) return fail(created.status());
        if (*created != q.id) {
          return fail(InternalError("query ids drifted during restore"));
        }
        report.lost.push_back(
            {q.id, q.kind,
             "chain-join synopsis state is not serializable; "
             "re-registered empty"});
      } else if (q.kind == "join" &&
                 q.join.estimator.kind == core::EstimatorKind::kSampling) {
        StatusOr<QueryId> created = AddJoinQuery(q.join, q.seed);
        if (!created.ok()) return fail(created.status());
        if (*created != q.id) {
          return fail(InternalError("query ids drifted during restore"));
        }
        report.lost.push_back(
            {q.id, q.kind,
             "sampling join synopsis state is not serializable; "
             "re-registered empty"});
      } else {
        // Partitioned-AGMS joins need a partition plan the manifest cannot
        // carry, so the query cannot even be re-registered.
        report.lost.push_back(
            {q.id, q.kind,
             "dropped entirely: the estimator requires state (e.g. a "
             "partition plan) a checkpoint cannot carry"});
      }
      continue;
    }

    // Supported query: re-register from the spec, then splice the saved
    // synopsis in. A synopsis failure is fatal in strict mode; in partial
    // mode the query survives with an empty synopsis and a reported loss.
    StatusOr<QueryId> created = [&]() -> StatusOr<QueryId> {
      if (q.kind == "join") return AddJoinQuery(q.join, q.seed);
      if (q.kind == "frequency") return AddFrequencyQuery(q.frequency, q.seed);
      if (q.kind == "distinct") {
        return AddDistinctCountQuery(q.distinct, q.seed);
      }
      if (q.kind == "topk") return AddTopKQuery(q.topk, q.seed);
      if (q.kind == "quantile") return AddQuantileQuery(q.quantile);
      if (q.kind == "rangesum") return AddRangeSumQuery(q.range_sum);
      return InvalidArgumentError(
          "manifest marks unserializable kind as supported: " + q.kind);
    }();
    if (!created.ok()) return fail(created.status());
    if (*created != q.id) {
      return fail(InternalError("query ids drifted during restore"));
    }

    const auto payload_it = query_payloads.find(q.id);
    Status synopsis_status = OkStatus();
    if (payload_it == query_payloads.end()) {
      synopsis_status = IoError("synopsis section for query " +
                                std::to_string(q.id) + " is missing");
    } else {
      std::istringstream in(*payload_it->second);
      if (q.kind == "join") {
        synopsis_status = join_queries_.at(q.id).estimator->RestoreFrom(in);
      } else if (q.kind == "frequency") {
        StatusOr<core::SkimmedSketch> sketch =
            core::SkimmedSketch::DeserializeFrom(in);
        synopsis_status = sketch.status();
        if (sketch.ok()) {
          FrequencyQueryState& state = frequency_queries_.at(q.id);
          if (!sketch->CompatibleWith(state.sketch)) {
            synopsis_status = InvalidArgumentError(
                "restored frequency sketch disagrees with its spec");
          } else {
            state.sketch = *std::move(sketch);
            // Deserialized sketches carry default kernel options; re-apply
            // the engine's selection and restart the cache-delta bookkeeping.
            state.sketch.SetKernelOptions(kernel_options_);
            state.cache_hits_seen = 0;
            state.cache_misses_seen = 0;
            state.ingestor.reset();
          }
        }
      } else if (q.kind == "distinct") {
        StatusOr<sketch::FmSketch> sketch = sketch::FmSketch::DeserializeFrom(in);
        synopsis_status = sketch.status();
        if (sketch.ok()) {
          DistinctQueryState& state = distinct_queries_.at(q.id);
          if (!sketch->CompatibleWith(state.sketch)) {
            synopsis_status = InvalidArgumentError(
                "restored FM sketch disagrees with its spec");
          } else {
            state.sketch = *std::move(sketch);
          }
        }
      } else if (q.kind == "topk") {
        StatusOr<core::TopKTracker> tracker =
            core::TopKTracker::DeserializeFrom(in);
        synopsis_status = tracker.status();
        if (tracker.ok()) {
          TopKQueryState& state = topk_queries_.at(q.id);
          if (tracker->k() != state.tracker.k()) {
            synopsis_status = InvalidArgumentError(
                "restored top-k tracker disagrees with its spec");
          } else {
            state.tracker = *std::move(tracker);
          }
        }
      } else if (q.kind == "quantile") {
        StatusOr<stream::GkQuantileSummary> summary =
            stream::GkQuantileSummary::DeserializeFrom(in);
        synopsis_status = summary.status();
        if (summary.ok()) {
          QuantileQueryState& state = quantile_queries_.at(q.id);
          if (summary->epsilon() != state.summary.epsilon()) {
            synopsis_status = InvalidArgumentError(
                "restored quantile summary disagrees with its spec");
          } else {
            state.summary = *std::move(summary);
          }
        }
      } else {  // rangesum
        StatusOr<stream::WaveletSynopsis> synopsis =
            stream::WaveletSynopsis::DeserializeFrom(in);
        synopsis_status = synopsis.status();
        if (synopsis.ok()) {
          RangeSumQueryState& state = range_sum_queries_.at(q.id);
          if (synopsis->domain_size() != state.synopsis.domain_size()) {
            synopsis_status = InvalidArgumentError(
                "restored wavelet synopsis disagrees with its stream domain");
          } else {
            state.synopsis = *std::move(synopsis);
          }
        }
      }
    }
    if (!synopsis_status.ok()) {
      if (!options.allow_partial) return fail(synopsis_status);
      report.lost.push_back({q.id, q.kind,
                             "synopsis not recovered (" +
                                 synopsis_status.ToString() +
                                 "); re-registered empty"});
    }
  }

  next_query_id_ = manifest.next_query_id;
  {
    const Status shards = SetIngestShards(manifest.shards);
    if (!shards.ok()) return fail(shards);
  }

  // Counters last, so the saved cumulative values override anything the
  // re-registration steps above may have touched. Stream ingest counters
  // appear both in the stream lines and here; the two sources were written
  // from the same snapshot, so the overwrite is a no-op for them.
  for (const auto& [name, value] : manifest.counters) {
    metrics_.GetCounter(name)->Reset(value);
  }
  return report;
}

}  // namespace query
}  // namespace skimjoin
