// Hash-sketch (bucketized) estimation for CHAIN multi-join COUNT queries
//   COUNT(R0 ⋈_{A0} R1 ⋈_{A1} R2 ⋈ ... ⋈_{A(k-1)} Rk),
// the low-update-cost counterpart of query/multi_join.h, extending the
// paper's hash-sketch idea to more than two streams (in the spirit of
// Cormode–Garofalakis' sketching of multi-joins).
//
// Per hash table j, every join attribute A_i carries a bucket hash h_j^i
// and a ±1 family ξ_j^i. End relations keep a vector of b counters over
// their single attribute; middle relations keep a b×b counter matrix over
// their (incoming, outgoing) attribute pair. An arrival touches exactly
// one counter per table — O(num_tables) per element, independent of b.
// The per-table estimate is the vector·matrix·...·vector chain product,
// boosted by the median across tables.

#ifndef SKIMJOIN_QUERY_MULTI_JOIN_HASH_H_
#define SKIMJOIN_QUERY_MULTI_JOIN_HASH_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "hashing/kwise_hash.h"
#include "hashing/sign_hash.h"
#include "util/estimate_report.h"
#include "util/status.h"

namespace skimjoin {
namespace query {

/// Shape of a chain multi-join hash estimator.
struct MultiJoinHashConfig {
  /// Relations in the chain (>= 2). Relation r joins relation r+1 on
  /// attribute A_r; end relations have one attribute, middle ones two.
  uint64_t num_relations = 3;
  /// Hash tables (median boosting; odd recommended).
  uint64_t num_tables = 5;
  /// Buckets per attribute. A middle relation holds num_buckets² counters
  /// per table.
  uint64_t num_buckets = 64;
};

/// Streaming chain-join estimator. Copyable.
class MultiJoinHashEstimator {
 public:
  /// Validates `config` (all dimensions >= 1, >= 2 relations); families
  /// derive from `seed`.
  static StatusOr<MultiJoinHashEstimator> Create(
      const MultiJoinHashConfig& config, uint64_t seed);

  /// Arrival for an END relation (0 or num_relations-1) with its single
  /// join-attribute value. INVALID_ARGUMENT for middle relations.
  Status UpdateEnd(uint64_t relation, uint64_t value, int64_t weight);

  /// Arrival for a MIDDLE relation with its (left-attribute,
  /// right-attribute) values. INVALID_ARGUMENT for end relations.
  Status UpdateMiddle(uint64_t relation, uint64_t left_value,
                      uint64_t right_value, int64_t weight);

  /// Median over tables of the chain product estimate.
  double Estimate() const;

  /// Estimate with provenance: per-table chain products as copy estimates,
  /// their spread and an empirical CI (no closed-form a-priori envelope;
  /// the field stays NaN). `estimate` is bit-identical to Estimate().
  EstimateReport EstimateWithReport() const;

  const MultiJoinHashConfig& config() const { return config_; }

  /// Space accounting: total counters held.
  uint64_t TotalCounters() const;

  /// Total footprint in bytes (hash families and per-relation counter
  /// tables). Feeds the per-query memory gauges.
  uint64_t MemoryBytes() const;

  /// Writes the estimator as a self-describing text record (config, seed,
  /// counter tables); the hash families rebuild from (config, seed).
  Status SerializeTo(std::ostream& out) const;

  /// Reads a record written by SerializeTo. INVALID_ARGUMENT on a
  /// malformed or truncated record; dimensions are validated before any
  /// counter allocation.
  static StatusOr<MultiJoinHashEstimator> DeserializeFrom(std::istream& in);

  /// Adds `other`'s counters into this estimator — exact for
  /// shard-partitioned tuple streams (the counters are linear in the
  /// weights). INVALID_ARGUMENT unless config and seed match.
  Status MergeFrom(const MultiJoinHashEstimator& other);

  uint64_t seed() const { return seed_; }

 private:
  MultiJoinHashEstimator(const MultiJoinHashConfig& config, uint64_t seed);

  uint64_t num_attributes() const { return config_.num_relations - 1; }

  /// The per-table copy estimates both estimation entry points median.
  std::vector<double> PerTableChainProducts() const;

  MultiJoinHashConfig config_;
  uint64_t seed_ = 0;
  // bucket_hashes_[attribute][table], sign_hashes_[attribute][table].
  std::vector<std::vector<hashing::BucketHash>> bucket_hashes_;
  std::vector<std::vector<hashing::SignHash>> sign_hashes_;
  // counters_[relation][table]: b counters for end relations, b·b (row =
  // left attribute bucket) for middle relations.
  std::vector<std::vector<std::vector<int64_t>>> counters_;
};

}  // namespace query
}  // namespace skimjoin

#endif  // SKIMJOIN_QUERY_MULTI_JOIN_HASH_H_
