// The engine-shaped face of a distributed deployment, as the shell and CLI
// see it. An attached DistBackend routes registrations, ingest, and
// answers to a fleet of worker shards instead of the local engine; the
// concrete implementation (dist::Coordinator) lives in src/dist/ — this
// interface is what keeps query/ free of any dependency on the wire layer.
//
// The contract mirrors query::Engine where the operations overlap, with
// two distributed additions: answers may be PARTIAL (EstimateReport.partial
// plus per-shard contributions tell the caller exactly which shards were
// stale or missing), and the fleet's health is inspectable per shard.

#ifndef SKIMJOIN_QUERY_DIST_BACKEND_H_
#define SKIMJOIN_QUERY_DIST_BACKEND_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "query/engine.h"
#include "query/query.h"
#include "util/estimate_report.h"
#include "util/metrics.h"
#include "util/status.h"

namespace skimjoin {
namespace query {

/// One worker shard's condition as last observed by the backend.
struct DistShardStatus {
  std::string shard;
  /// "healthy" | "recovering" | "down".
  std::string health;
  /// Worker incarnation from the last handshake (0 = never reached).
  uint64_t incarnation = 0;
  /// Last update epoch the worker acknowledged.
  uint64_t last_acked_epoch = 0;
  /// Cumulative RPC retries / hard failures against this shard.
  uint64_t rpc_retries = 0;
  uint64_t rpc_failures = 0;
};

class DistBackend {
 public:
  virtual ~DistBackend() = default;

  virtual Status RegisterStream(const StreamSpec& spec) = 0;
  virtual StatusOr<QueryId> AddJoinQuery(const JoinQuerySpec& spec,
                                         uint64_t seed) = 0;
  virtual StatusOr<QueryId> AddSelfJoinQuery(const SelfJoinQuerySpec& spec,
                                             uint64_t seed) = 0;
  virtual StatusOr<QueryId> AddFrequencyQuery(const FrequencyQuerySpec& spec,
                                              uint64_t seed) = 0;

  virtual Status Update(const std::string& stream,
                        const StreamUpdate& update) = 0;
  virtual Status UpdateBatch(const std::string& stream,
                             std::span<const StreamUpdate> updates) = 0;

  virtual StatusOr<double> AnswerJoin(QueryId query) = 0;
  virtual StatusOr<EstimateReport> AnswerJoinWithReport(QueryId query) = 0;
  virtual StatusOr<int64_t> AnswerPointFrequency(QueryId query,
                                                 uint64_t value) = 0;

  // --- Chain joins over relations (default: not supported) ---------------

  virtual Status RegisterRelation(const RelationSpec& spec) {
    (void)spec;
    return UnimplementedError("backend does not support relations");
  }
  virtual StatusOr<QueryId> AddChainJoinQuery(const ChainJoinQuerySpec& spec,
                                              uint64_t seed) {
    (void)spec;
    (void)seed;
    return UnimplementedError("backend does not support chain joins");
  }
  virtual Status UpdateRelation(const std::string& relation,
                                const std::vector<uint64_t>& attributes,
                                int64_t weight) {
    (void)relation;
    (void)attributes;
    (void)weight;
    return UnimplementedError("backend does not support relations");
  }
  virtual StatusOr<double> AnswerChainJoin(QueryId query) {
    (void)query;
    return UnimplementedError("backend does not support chain joins");
  }
  virtual StatusOr<EstimateReport> AnswerChainJoinWithReport(QueryId query) {
    (void)query;
    return UnimplementedError("backend does not support chain joins");
  }

  // --- Fleet telemetry (default: not supported) ---------------------------

  /// The backend's own snapshot merged with every reachable shard's,
  /// shard series renamed `base{shard="<index>"}` (metrics::LabeledName).
  virtual StatusOr<metrics::Snapshot> FleetMetricsSnapshot() {
    return UnimplementedError("backend does not support fleet telemetry");
  }

  /// Pulls every shard's new event-log entries and re-emits them into this
  /// process's EventLog::Global(), tagged with an `origin_shard` field.
  /// Incremental: already-scraped sequences are skipped per shard.
  virtual Status ScrapeFleetEvents() {
    return UnimplementedError("backend does not support fleet telemetry");
  }

  /// Enables/disables trace recording on this process AND every shard.
  virtual Status SetFleetTracing(bool enable) {
    (void)enable;
    return UnimplementedError("backend does not support fleet tracing");
  }

  /// Drains this process's and every shard's trace buffers into one merged
  /// Chrome trace JSON document (per-process tracks, clock-aligned).
  virtual StatusOr<std::string> DumpFleetTrace() {
    return UnimplementedError("backend does not support fleet tracing");
  }

  /// Every reachable shard's health findings merged into one report, each
  /// finding labeled with its origin shard index (HealthFinding::shard);
  /// unreachable shards contribute an "unreachable" finding instead of
  /// silence. The fleet report carries findings only — per-stream profiles
  /// and per-synopsis probes stay on the workers.
  virtual StatusOr<HealthReport> FleetHealthReport() {
    return UnimplementedError("backend does not support fleet telemetry");
  }

  /// Asks every shard to checkpoint its engine state now.
  virtual Status CheckpointShards() = 0;

  /// One single-attempt ping per shard, refreshing health states. Always
  /// OK — the result is the refreshed ShardStatuses().
  virtual Status ProbeHealth() = 0;

  virtual std::vector<DistShardStatus> ShardStatuses() = 0;
  virtual uint64_t NumShards() const = 0;

  /// The backend's own metrics registry (the per-shard `dist.<shard>.*`
  /// instruments), or nullptr when the backend exposes none. The shell's
  /// `metrics` command renders this registry while a backend is attached.
  virtual metrics::Registry* MetricsRegistry() { return nullptr; }
};

}  // namespace query
}  // namespace skimjoin

#endif  // SKIMJOIN_QUERY_DIST_BACKEND_H_
