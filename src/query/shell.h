// A line-oriented command shell around query::Engine, powering the
// `skimjoin_cli` tool (tools/skimjoin_cli.cc) and scriptable experiments.
//
// Commands (one per line; '#' starts a comment):
//   stream <name> <domain>                    register a stream
//   join <q> <left> <right> <method> <space>  standing join query
//                                             (method: agms | hash-sketch |
//                                              skimmed | count-min | sampling)
//   selfjoin <q> <stream> <method> <space>    standing self-join query
//   freq <q> <stream> <space>                 point/heavy-hitter tracking
//   distinct <q> <stream> <maps>              COUNT DISTINCT tracking
//   topk <q> <stream> <k> <space>             continuous top-k tracking
//   top <q>                                   current top-k answer
//   quantile <q> <stream> <epsilon>           deterministic GK quantiles
//   phi <q> <phi>                             current quantile answer
//   update <stream> <value> [count] [measure] feed one element
//   load <stream> <trace-path>                replay a trace file (§ trace_io)
//   answer <q>                                current join/self-join estimate
//   point <q> <value>                         point-frequency estimate
//   heavy <q> <threshold>                     heavy hitters above threshold
//   count <stream>                            net elements seen
//   seed <n>                                  seed for subsequent queries
//   checkpoint <path>                         save engine + query names
//   restore <path> [partial]                  restore a checkpoint into an
//                                             empty shell (`partial` keeps
//                                             whatever sections are intact)
//   streams                                   per-stream ingest stats (incl.
//                                             absorb/merge timing)
//   stats                                     engine-wide totals
//   metrics [fleet] [json|prom]               metrics snapshot; `json` (the
//                                             default) answers on one line,
//                                             `prom` emits the multi-line
//                                             Prometheus text format. With a
//                                             distributed backend, both forms
//                                             merge every shard's snapshot in
//                                             (series labeled shard="<k>");
//                                             a backend without the fleet
//                                             path answers coordinator-local
//                                             metrics plus a banner line
//                                             saying so
//   explain <q>                               join/self-join estimate with
//                                             full provenance (per-copy
//                                             estimates, CI, a-priori bound,
//                                             skim diagnostics)
//   logs [n] [debug|info|warn|error]          last n (default 10) structured
//        [--shard <k>]                        events at or above the given
//                                             level as JSON lines; --shard
//                                             keeps only events scraped from
//                                             worker k (origin_shard field)
//   workers                                   per-shard health/incarnation/
//                                             epoch (distributed backend)
//   shards                                    shard fan-out and routing
//                                             (distributed backend)
//   fleet                                     probe every shard, scrape its
//                                             events into the local log, and
//                                             render the fleet table
//                                             (distributed backend)
//   trace start|stop|dump <file>              toggle trace recording / write
//                                             the Chrome trace; with a
//                                             distributed backend the toggle
//                                             fans out to every worker and
//                                             dump merges every process's
//                                             spans on one clock-aligned
//                                             timeline
//   alerts <rel_error> <ci_width>             warn-event thresholds for
//                                             accuracy drift and CI blow-up
//                                             (`inf` disables one)
//   cache <on|off>                            toggle the epoch-invalidated
//                                             query cache (read path)
//   cache slim <on|off>                       toggle slim-view point reads
//   cache status <q>                          cache hit/miss/invalidation
//                                             counters for one query
//   help                                      print this list
//
// Every command answers on one line: "ok[ <payload>]" or "error: <reason>".
// Exceptions: `metrics prom`, `explain`, `logs`, `workers`, `fleet`, and
// `help` answer "ok" and then inherently multi-line text (Prometheus
// exposition, the provenance table, JSON event lines, the fleet table, the
// command list).
// Unknown queries/streams are reported, never fatal; the shell only stops
// at end of input (or the `quit` command).
//
// The command registry (Shell::CommandHelp) is the single source of truth
// for `help`; tests cross-check that every dispatched command is listed.

#ifndef SKIMJOIN_QUERY_SHELL_H_
#define SKIMJOIN_QUERY_SHELL_H_

#include <functional>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "query/engine.h"

namespace skimjoin {
namespace query {

class DistBackend;

/// Executes shell commands against an owned Engine — or, when a
/// DistBackend is attached, against a fleet of worker shards (the engine-
/// shaped commands route to the backend; engine-local ones report an
/// error).
class Shell {
 public:
  Shell() = default;

  /// Executes one command line; writes exactly one response line to `out`.
  /// Blank lines and comments produce no output. Returns false when the
  /// command was `quit` (callers should stop feeding lines).
  bool ExecuteLine(const std::string& line, std::ostream& out);

  /// Reads commands from `in` until EOF or `quit`. Returns the number of
  /// commands that reported an error (0 for a fully clean script).
  int Run(std::istream& in, std::ostream& out);

  /// Invoked on the shell thread after every line Run executes. The CLI
  /// uses this to refresh the engine's metrics gauges between commands so
  /// a background PeriodicSnapshotWriter only ever touches the registry
  /// (engine().metrics_registry().TakeSnapshot()) — the engine itself is
  /// single-writer and must not be walked concurrently. Pass nullptr to
  /// remove.
  void set_post_command_hook(std::function<void()> hook) {
    post_command_hook_ = std::move(hook);
  }

  /// When enabled (CLI --explain), every `answer` on a join/self-join query
  /// also renders the full EstimateReport table after the one-line answer,
  /// exactly as `explain <q>` would.
  void set_always_explain(bool enabled) { always_explain_ = enabled; }

  /// Attaches a distributed backend (not owned; must outlive the shell).
  /// While attached, stream/join/selfjoin/freq/update/answer/explain/point,
  /// checkpoint, and metrics route to the backend, and the `workers` /
  /// `shards` commands come alive. Pass nullptr to detach.
  void set_dist_backend(DistBackend* backend) { dist_ = backend; }

  /// The command registry behind `help`: every dispatched command name with
  /// its one-line synopsis, in help order. Static so tests can cross-check
  /// the `help` output (and the dispatcher) against it.
  static const std::vector<std::pair<std::string, std::string>>&
  CommandHelp();

  const Engine& engine() const { return engine_; }

 private:
  Engine engine_;
  DistBackend* dist_ = nullptr;
  std::function<void()> post_command_hook_;
  bool always_explain_ = false;
  std::unordered_map<std::string, QueryId> join_query_names_;
  std::unordered_map<std::string, QueryId> frequency_query_names_;
  std::unordered_map<std::string, QueryId> distinct_query_names_;
  std::unordered_map<std::string, QueryId> topk_query_names_;
  std::unordered_map<std::string, QueryId> quantile_query_names_;
  uint64_t next_seed_ = 1;
};

}  // namespace query
}  // namespace skimjoin

#endif  // SKIMJOIN_QUERY_SHELL_H_
