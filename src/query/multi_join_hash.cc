#include "query/multi_join_hash.h"

#include <istream>
#include <ostream>
#include <string>
#include <utility>

#include "sketch/serial_limits.h"
#include "sketch/sketch_seed.h"
#include "util/logging.h"
#include "util/stats.h"

namespace skimjoin {
namespace query {

MultiJoinHashEstimator::MultiJoinHashEstimator(
    const MultiJoinHashConfig& config, uint64_t seed)
    : config_(config), seed_(seed) {
  const uint64_t attributes = num_attributes();
  bucket_hashes_.resize(attributes);
  sign_hashes_.resize(attributes);
  for (uint64_t a = 0; a < attributes; ++a) {
    bucket_hashes_[a].reserve(config.num_tables);
    sign_hashes_[a].reserve(config.num_tables);
    for (uint64_t t = 0; t < config.num_tables; ++t) {
      Rng bucket_rng = sketch::FamilyRng(
          seed, sketch::FamilyTag::kHashSketchBucket,
          0xC4A1000ull + a * config.num_tables + t);
      bucket_hashes_[a].emplace_back(config.num_buckets, &bucket_rng);
      Rng sign_rng = sketch::FamilyRng(
          seed, sketch::FamilyTag::kHashSketchSign,
          0xC4A1000ull + a * config.num_tables + t);
      sign_hashes_[a].emplace_back(&sign_rng);
    }
  }
  counters_.resize(config.num_relations);
  for (uint64_t r = 0; r < config.num_relations; ++r) {
    const bool is_end = (r == 0 || r + 1 == config.num_relations);
    const uint64_t size = is_end ? config.num_buckets
                                 : config.num_buckets * config.num_buckets;
    counters_[r].assign(config.num_tables, std::vector<int64_t>(size, 0));
  }
}

StatusOr<MultiJoinHashEstimator> MultiJoinHashEstimator::Create(
    const MultiJoinHashConfig& config, uint64_t seed) {
  if (config.num_relations < 2) {
    return InvalidArgumentError("chain multi-join needs >= 2 relations");
  }
  if (config.num_tables < 1 || config.num_buckets < 1) {
    return InvalidArgumentError(
        "MultiJoinHashConfig requires num_tables >= 1 and num_buckets >= 1");
  }
  return MultiJoinHashEstimator(config, seed);
}

Status MultiJoinHashEstimator::UpdateEnd(uint64_t relation, uint64_t value,
                                         int64_t weight) {
  if (relation >= config_.num_relations) {
    return InvalidArgumentError("unknown relation index");
  }
  if (relation != 0 && relation + 1 != config_.num_relations) {
    return InvalidArgumentError(
        "UpdateEnd is only for the first/last relation of the chain");
  }
  const uint64_t attribute = (relation == 0) ? 0 : num_attributes() - 1;
  for (uint64_t t = 0; t < config_.num_tables; ++t) {
    const uint64_t bucket = bucket_hashes_[attribute][t](value);
    counters_[relation][t][bucket] +=
        sign_hashes_[attribute][t](value) * weight;
  }
  return OkStatus();
}

Status MultiJoinHashEstimator::UpdateMiddle(uint64_t relation,
                                            uint64_t left_value,
                                            uint64_t right_value,
                                            int64_t weight) {
  if (relation >= config_.num_relations) {
    return InvalidArgumentError("unknown relation index");
  }
  if (relation == 0 || relation + 1 == config_.num_relations) {
    return InvalidArgumentError(
        "UpdateMiddle is only for interior relations of the chain");
  }
  const uint64_t left_attribute = relation - 1;
  const uint64_t right_attribute = relation;
  for (uint64_t t = 0; t < config_.num_tables; ++t) {
    const uint64_t row = bucket_hashes_[left_attribute][t](left_value);
    const uint64_t col = bucket_hashes_[right_attribute][t](right_value);
    counters_[relation][t][row * config_.num_buckets + col] +=
        sign_hashes_[left_attribute][t](left_value) *
        sign_hashes_[right_attribute][t](right_value) * weight;
  }
  return OkStatus();
}

std::vector<double> MultiJoinHashEstimator::PerTableChainProducts() const {
  const uint64_t b = config_.num_buckets;
  std::vector<double> per_table;
  per_table.reserve(config_.num_tables);
  for (uint64_t t = 0; t < config_.num_tables; ++t) {
    // Chain product: start with relation 0's vector, multiply through each
    // middle relation's matrix, finish with the last relation's vector.
    std::vector<double> vec(b);
    for (uint64_t i = 0; i < b; ++i) {
      vec[i] = static_cast<double>(counters_[0][t][i]);
    }
    for (uint64_t r = 1; r + 1 < config_.num_relations; ++r) {
      std::vector<double> next(b, 0.0);
      const std::vector<int64_t>& matrix = counters_[r][t];
      for (uint64_t i = 0; i < b; ++i) {
        if (vec[i] == 0.0) continue;
        const int64_t* row = &matrix[i * b];
        for (uint64_t j = 0; j < b; ++j) {
          next[j] += vec[i] * static_cast<double>(row[j]);
        }
      }
      vec.swap(next);
    }
    double sum = 0.0;
    const std::vector<int64_t>& last = counters_[config_.num_relations - 1][t];
    for (uint64_t j = 0; j < b; ++j) {
      sum += vec[j] * static_cast<double>(last[j]);
    }
    per_table.push_back(sum);
  }
  return per_table;
}

double MultiJoinHashEstimator::Estimate() const {
  return Median(PerTableChainProducts());
}

EstimateReport MultiJoinHashEstimator::EstimateWithReport() const {
  EstimateReport report;
  report.method = "multi-join-hash";
  report.copy_estimates = PerTableChainProducts();
  report.estimate = Median(report.copy_estimates);
  FinishReportFromCopies(&report);
  return report;
}

uint64_t MultiJoinHashEstimator::TotalCounters() const {
  uint64_t total = 0;
  for (const auto& relation : counters_) {
    for (const auto& table : relation) total += table.size();
  }
  return total;
}

Status MultiJoinHashEstimator::SerializeTo(std::ostream& out) const {
  out << "skimjoin.multi_join_hash v1\n"
      << config_.num_relations << ' ' << config_.num_tables << ' '
      << config_.num_buckets << ' ' << seed_ << '\n';
  for (const std::vector<std::vector<int64_t>>& relation : counters_) {
    for (const std::vector<int64_t>& table : relation) {
      for (size_t i = 0; i < table.size(); ++i) {
        out << table[i] << (i + 1 == table.size() ? '\n' : ' ');
      }
    }
  }
  out << "end\n";
  if (!out) return IoError("multi-join-hash serialization failed");
  return OkStatus();
}

StatusOr<MultiJoinHashEstimator> MultiJoinHashEstimator::DeserializeFrom(
    std::istream& in) {
  std::string tag, version;
  if (!(in >> tag >> version) || tag != "skimjoin.multi_join_hash" ||
      version != "v1") {
    return InvalidArgumentError("not a skimjoin multi-join-hash v1 record");
  }
  MultiJoinHashConfig config;
  uint64_t seed = 0;
  if (!(in >> config.num_relations >> config.num_tables >>
        config.num_buckets >> seed)) {
    return InvalidArgumentError("malformed multi-join-hash header");
  }
  // A middle relation holds buckets² counters per table — validate that
  // worst-case product before Create allocates it.
  SKIMJOIN_RETURN_IF_ERROR(sketch::CheckDeserializeDims(
      config.num_buckets, config.num_buckets, "multi-join-hash"));
  SKIMJOIN_RETURN_IF_ERROR(sketch::CheckDeserializeDims(
      config.num_tables, config.num_relations, "multi-join-hash"));
  SKIMJOIN_RETURN_IF_ERROR(sketch::CheckDeserializeDims(
      config.num_buckets * config.num_buckets,
      config.num_tables * config.num_relations, "multi-join-hash"));
  StatusOr<MultiJoinHashEstimator> estimator =
      MultiJoinHashEstimator::Create(config, seed);
  SKIMJOIN_RETURN_IF_ERROR(estimator.status());
  for (std::vector<std::vector<int64_t>>& relation : estimator->counters_) {
    for (std::vector<int64_t>& table : relation) {
      for (int64_t& counter : table) {
        if (!(in >> counter)) {
          return InvalidArgumentError(
              "truncated multi-join-hash counter block");
        }
      }
    }
  }
  std::string sentinel;
  if (!(in >> sentinel) || sentinel != "end") {
    return InvalidArgumentError(
        "multi-join-hash record missing its end sentinel");
  }
  return estimator;
}

Status MultiJoinHashEstimator::MergeFrom(const MultiJoinHashEstimator& other) {
  if (seed_ != other.seed_ ||
      config_.num_relations != other.config_.num_relations ||
      config_.num_tables != other.config_.num_tables ||
      config_.num_buckets != other.config_.num_buckets) {
    return InvalidArgumentError(
        "multi-join-hash merge requires identical config and seed");
  }
  for (size_t r = 0; r < counters_.size(); ++r) {
    for (size_t t = 0; t < counters_[r].size(); ++t) {
      for (size_t i = 0; i < counters_[r][t].size(); ++i) {
        counters_[r][t][i] += other.counters_[r][t][i];
      }
    }
  }
  return OkStatus();
}

uint64_t MultiJoinHashEstimator::MemoryBytes() const {
  uint64_t total = sizeof(*this);
  for (const std::vector<hashing::BucketHash>& family : bucket_hashes_) {
    total += sizeof(family);
    for (const hashing::BucketHash& hash : family) total += hash.MemoryBytes();
  }
  for (const std::vector<hashing::SignHash>& family : sign_hashes_) {
    total += sizeof(family);
    for (const hashing::SignHash& sign : family) total += sign.MemoryBytes();
  }
  for (const std::vector<std::vector<int64_t>>& relation : counters_) {
    total += sizeof(relation);
    for (const std::vector<int64_t>& table : relation) {
      total += sizeof(table) + table.capacity() * sizeof(int64_t);
    }
  }
  return total;
}

}  // namespace query
}  // namespace skimjoin
