#include "query/multi_join.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <unordered_map>
#include <utility>

#include "sketch/serial_limits.h"
#include "sketch/sketch_seed.h"
#include "util/logging.h"
#include "util/stats.h"

namespace skimjoin {
namespace query {

MultiJoinEstimator::MultiJoinEstimator(const MultiJoinConfig& config,
                                       uint64_t seed)
    : config_(config), seed_(seed) {
  uint64_t num_attributes = 0;
  for (const auto& attrs : config.relation_attributes) {
    for (uint64_t a : attrs) num_attributes = std::max(num_attributes, a + 1);
  }
  const uint64_t cells = config.num_means * config.num_medians;
  signs_.resize(num_attributes);
  for (uint64_t attribute = 0; attribute < num_attributes; ++attribute) {
    signs_[attribute].reserve(cells);
    for (uint64_t cell = 0; cell < cells; ++cell) {
      Rng rng = sketch::FamilyRng(seed, sketch::FamilyTag::kMultiJoinSign,
                                  attribute * cells + cell);
      signs_[attribute].emplace_back(&rng);
    }
  }
  counters_.assign(config.relation_attributes.size(),
                   std::vector<int64_t>(cells, 0));
}

StatusOr<MultiJoinEstimator> MultiJoinEstimator::Create(
    const MultiJoinConfig& config, uint64_t seed) {
  if (config.num_means < 1 || config.num_medians < 1) {
    return InvalidArgumentError("multi-join grid must be at least 1x1");
  }
  if (config.relation_attributes.size() < 2) {
    return InvalidArgumentError("multi-join needs at least two relations");
  }
  std::unordered_map<uint64_t, int> attribute_uses;
  for (const auto& attrs : config.relation_attributes) {
    if (attrs.empty()) {
      return InvalidArgumentError(
          "every relation must carry at least one join attribute");
    }
    for (uint64_t a : attrs) ++attribute_uses[a];
  }
  for (const auto& [attribute, uses] : attribute_uses) {
    if (uses != 2) {
      return InvalidArgumentError(
          "join attribute " + std::to_string(attribute) +
          " must appear in exactly two relations (acyclic join), found " +
          std::to_string(uses));
    }
  }
  return MultiJoinEstimator(config, seed);
}

Status MultiJoinEstimator::Update(
    uint64_t relation, const std::vector<uint64_t>& attribute_values,
    int64_t weight) {
  if (relation >= config_.relation_attributes.size()) {
    return InvalidArgumentError("unknown relation index");
  }
  const std::vector<uint64_t>& attrs = config_.relation_attributes[relation];
  if (attribute_values.size() != attrs.size()) {
    return InvalidArgumentError(
        "arity mismatch: relation expects " + std::to_string(attrs.size()) +
        " join-attribute values, got " +
        std::to_string(attribute_values.size()));
  }
  std::vector<int64_t>& counters = counters_[relation];
  const uint64_t cells = config_.num_means * config_.num_medians;
  for (uint64_t cell = 0; cell < cells; ++cell) {
    int64_t sign = 1;
    for (size_t i = 0; i < attrs.size(); ++i) {
      sign *= signs_[attrs[i]][cell](attribute_values[i]);
    }
    counters[cell] += sign * weight;
  }
  return OkStatus();
}

std::vector<double> MultiJoinEstimator::PerMedianAverages() const {
  std::vector<double> averages;
  averages.reserve(config_.num_medians);
  for (uint64_t j = 0; j < config_.num_medians; ++j) {
    double sum = 0.0;
    for (uint64_t i = 0; i < config_.num_means; ++i) {
      const uint64_t cell = CellIndex(i, j);
      double product = 1.0;
      for (const auto& counters : counters_) {
        product *= static_cast<double>(counters[cell]);
      }
      sum += product;
    }
    averages.push_back(sum / static_cast<double>(config_.num_means));
  }
  return averages;
}

double MultiJoinEstimator::Estimate() const {
  return Median(PerMedianAverages());
}

EstimateReport MultiJoinEstimator::EstimateWithReport() const {
  EstimateReport report;
  report.method = "multi-join-grid";
  report.copy_estimates = PerMedianAverages();
  report.estimate = Median(report.copy_estimates);
  FinishReportFromCopies(&report);
  return report;
}

Status MultiJoinEstimator::SerializeTo(std::ostream& out) const {
  out << "skimjoin.multi_join v1\n"
      << config_.num_means << ' ' << config_.num_medians << ' ' << seed_
      << ' ' << config_.relation_attributes.size() << '\n';
  for (const std::vector<uint64_t>& attrs : config_.relation_attributes) {
    out << attrs.size();
    for (const uint64_t a : attrs) out << ' ' << a;
    out << '\n';
  }
  for (const std::vector<int64_t>& grid : counters_) {
    for (size_t i = 0; i < grid.size(); ++i) {
      out << grid[i] << (i + 1 == grid.size() ? '\n' : ' ');
    }
  }
  out << "end\n";
  if (!out) return IoError("multi-join serialization failed");
  return OkStatus();
}

StatusOr<MultiJoinEstimator> MultiJoinEstimator::DeserializeFrom(
    std::istream& in) {
  std::string tag, version;
  if (!(in >> tag >> version) || tag != "skimjoin.multi_join" ||
      version != "v1") {
    return InvalidArgumentError("not a skimjoin multi-join v1 record");
  }
  MultiJoinConfig config;
  uint64_t seed = 0, num_relations = 0;
  if (!(in >> config.num_means >> config.num_medians >> seed >>
        num_relations)) {
    return InvalidArgumentError("malformed multi-join header");
  }
  SKIMJOIN_RETURN_IF_ERROR(sketch::CheckDeserializeDims(
      config.num_means, config.num_medians, "multi-join"));
  SKIMJOIN_RETURN_IF_ERROR(sketch::CheckDeserializeDims(
      config.num_means * config.num_medians, num_relations, "multi-join"));
  config.relation_attributes.resize(num_relations);
  for (std::vector<uint64_t>& attrs : config.relation_attributes) {
    uint64_t arity = 0;
    // The declared arity bounds the grid just like a counter dimension;
    // a relation never carries more than a handful of attributes.
    if (!(in >> arity) || arity < 1 || arity > 64) {
      return InvalidArgumentError("malformed multi-join attribute list");
    }
    attrs.resize(arity);
    for (uint64_t& a : attrs) {
      if (!(in >> a)) {
        return InvalidArgumentError("malformed multi-join attribute list");
      }
    }
  }
  StatusOr<MultiJoinEstimator> estimator =
      MultiJoinEstimator::Create(config, seed);
  SKIMJOIN_RETURN_IF_ERROR(estimator.status());
  for (std::vector<int64_t>& grid : estimator->counters_) {
    for (int64_t& counter : grid) {
      if (!(in >> counter)) {
        return InvalidArgumentError("truncated multi-join counter block");
      }
    }
  }
  std::string sentinel;
  if (!(in >> sentinel) || sentinel != "end") {
    return InvalidArgumentError("multi-join record missing its end sentinel");
  }
  return estimator;
}

Status MultiJoinEstimator::MergeFrom(const MultiJoinEstimator& other) {
  if (seed_ != other.seed_ || config_.num_means != other.config_.num_means ||
      config_.num_medians != other.config_.num_medians ||
      config_.relation_attributes != other.config_.relation_attributes) {
    return InvalidArgumentError(
        "multi-join merge requires identical config and seed");
  }
  for (size_t r = 0; r < counters_.size(); ++r) {
    for (size_t cell = 0; cell < counters_[r].size(); ++cell) {
      counters_[r][cell] += other.counters_[r][cell];
    }
  }
  return OkStatus();
}

uint64_t MultiJoinEstimator::MemoryBytes() const {
  uint64_t total = sizeof(*this);
  for (const std::vector<uint64_t>& attrs : config_.relation_attributes) {
    total += sizeof(attrs) + attrs.capacity() * sizeof(uint64_t);
  }
  for (const std::vector<hashing::SignHash>& family : signs_) {
    total += sizeof(family);
    for (const hashing::SignHash& sign : family) total += sign.MemoryBytes();
  }
  for (const std::vector<int64_t>& grid : counters_) {
    total += sizeof(grid) + grid.capacity() * sizeof(int64_t);
  }
  return total;
}

}  // namespace query
}  // namespace skimjoin
