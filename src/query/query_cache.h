// Epoch-invalidated answer cache for standing queries (DESIGN.md §11).
//
// Sketch linearity buys exact invalidation for free: an answer derived
// from a set of synopses can only change when one of the participating
// streams absorbs an element, and the engine already counts every absorbed
// element per stream (`ingest.<stream>.elements_absorbed`). A cache entry
// therefore stores the answer together with the epoch vector — the
// absorbed-counter value of every participating stream at computation
// time — and a lookup succeeds only when the current epoch vector matches
// entry-for-entry. No TTLs, no heuristics: a hit is provably the same
// answer a recomputation would produce (the answer paths are
// deterministic), and any answer-changing update bumps at least one epoch.
//
// A lookup that finds an entry whose epochs no longer match counts as an
// invalidation (the entry is replaced on the following Store); one that
// finds nothing is a plain miss. The distinction feeds the
// `query.<id>.cache_{hits,misses,invalidations}` metrics.
//
// The cache lives inside the engine's single-writer domain (the one thread
// that drives ingest and reads), so it needs no synchronization.

#ifndef SKIMJOIN_QUERY_QUERY_CACHE_H_
#define SKIMJOIN_QUERY_QUERY_CACHE_H_

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>

namespace skimjoin {
namespace query {

/// Answer cache keyed on (query id, argument) and guarded by per-stream
/// update epochs. Join answers are doubles, point answers int64 — stored in
/// separate maps so each returns exactly the type (and bits) the original
/// computation produced.
class QueryCache {
 public:
  /// The participating streams' epoch values, in a fixed per-query order.
  /// Fixed-size (two slots cover every cached query shape: joins have two
  /// participants, point queries one with the spare slot zero) so building
  /// and comparing an epoch vector never allocates — the hit path is meant
  /// to be a map lookup and nothing else.
  using Epochs = std::array<uint64_t, 2>;

  /// Outcome of one lookup, for the caller's metrics.
  enum class Outcome { kHit, kMiss, kInvalidated };

  /// Join / self-join answers, keyed by query id alone.
  std::optional<double> LookupJoin(uint64_t query_id, const Epochs& epochs,
                                   Outcome* outcome);
  void StoreJoin(uint64_t query_id, const Epochs& epochs, double answer);

  /// Point-frequency answers, keyed by (query id, value).
  std::optional<int64_t> LookupPoint(uint64_t query_id, uint64_t value,
                                     const Epochs& epochs, Outcome* outcome);
  void StorePoint(uint64_t query_id, uint64_t value, const Epochs& epochs,
                  int64_t answer);

  /// Drops every entry. Called on Engine::Clear and on checkpoint restore
  /// (restored epochs are re-seeded; entries from the previous life must
  /// not be consulted against them).
  void DropAll();

  /// Drops entries belonging to one query (query removal/replacement).
  void DropQuery(uint64_t query_id);

  /// Entries currently held (both kinds).
  uint64_t EntryCount() const {
    return joins_.size() + points_.size();
  }

 private:
  template <typename Value>
  struct Entry {
    Epochs epochs;
    Value answer;
  };

  struct PointKey {
    uint64_t query_id;
    uint64_t value;
    bool operator==(const PointKey&) const = default;
  };
  struct PointKeyHash {
    size_t operator()(const PointKey& key) const {
      // Fibonacci mix; the two words are engine-controlled, not adversarial.
      uint64_t h = key.query_id * 0x9e3779b97f4a7c15ull;
      h ^= key.value + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  std::unordered_map<uint64_t, Entry<double>> joins_;
  std::unordered_map<PointKey, Entry<int64_t>, PointKeyHash> points_;
};

}  // namespace query
}  // namespace skimjoin

#endif  // SKIMJOIN_QUERY_QUERY_CACHE_H_
