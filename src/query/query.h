// Query descriptors for the stream query-processing engine (Fig. 1 of the
// paper): binary-join COUNT/SUM aggregates, self-joins, point-frequency and
// heavy-hitter lookups, each with optional selection predicates that filter
// elements before they reach the synopses (§2.1).

#ifndef SKIMJOIN_QUERY_QUERY_H_
#define SKIMJOIN_QUERY_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/join_estimators.h"

namespace skimjoin {
namespace query {

/// Opaque handles returned by the engine.
using StreamId = uint64_t;
using QueryId = uint64_t;

/// A registered stream: a name and its value domain.
struct StreamSpec {
  std::string name;
  uint64_t domain_size = 1u << 16;
};

/// Inclusive value-range selection predicate, applied to an element before
/// it updates a query's synopsis ("we simply drop from the streams elements
/// that do not satisfy the predicates", §2.1).
struct RangePredicate {
  uint64_t lo = 0;
  uint64_t hi = UINT64_MAX;

  bool Matches(uint64_t value) const { return value >= lo && value <= hi; }
};

/// Which per-element weight a synopsis consumes. kCount yields COUNT
/// aggregates; kMeasure turns the same machinery into SUM over the
/// element's measure attribute (SUM = COUNT with elements repeated
/// measure-many times, §2.1).
enum class AggregateInput {
  kCount,
  kMeasure,
};

/// AGG(F ⋈ G): a binary-join aggregate between two registered streams.
struct JoinQuerySpec {
  std::string left_stream;
  std::string right_stream;

  /// Estimation method and space budget. The spec's domain_size is filled
  /// in by the engine from the registered streams.
  core::EstimatorSpec estimator;

  AggregateInput left_input = AggregateInput::kCount;
  AggregateInput right_input = AggregateInput::kCount;

  std::optional<RangePredicate> left_predicate;
  std::optional<RangePredicate> right_predicate;
};

/// AGG(F ⋈ F): self-join (second moment) over one stream.
struct SelfJoinQuerySpec {
  std::string stream;
  core::EstimatorSpec estimator;
  AggregateInput input = AggregateInput::kCount;
  std::optional<RangePredicate> predicate;
};

/// Point-frequency / heavy-hitter tracking over one stream, answered from a
/// skimmed sketch.
struct FrequencyQuerySpec {
  std::string stream;
  /// Counters for the level-0 sketch.
  uint64_t space_counters = 4096;
  uint64_t num_tables = 7;
  /// Maintain dyadic levels so heavy-hitter answers need no domain scan.
  bool use_dyadic = true;
  std::optional<RangePredicate> predicate;
};

/// COUNT DISTINCT over one stream (Flajolet–Martin synopsis).
struct DistinctCountQuerySpec {
  std::string stream;
  /// Bit maps in the FM synopsis (standard error ≈ 0.78/sqrt(num_maps)).
  uint64_t num_maps = 64;
  std::optional<RangePredicate> predicate;
};

/// Approximate range-sum tracking over one stream via a Haar wavelet
/// synopsis (stream/wavelet.h), periodically compressed to
/// `coefficient_budget` terms.
struct RangeSumQuerySpec {
  std::string stream;
  /// Retained wavelet coefficients (the B-term synopsis size).
  uint64_t coefficient_budget = 256;
  std::optional<RangePredicate> predicate;
};

/// Deterministic ε-approximate quantiles over one stream's values
/// (stream/gk_quantiles.h). Insert-only: delete updates are ignored by
/// this query type (the GK summary is not a linear synopsis).
struct QuantileQuerySpec {
  std::string stream;
  double epsilon = 0.01;
  std::optional<RangePredicate> predicate;
};

/// Continuous top-k frequent values over one stream (core/top_k.h).
struct TopKQuerySpec {
  std::string stream;
  uint64_t k = 10;
  /// Counters for the tracking hash sketch.
  uint64_t space_counters = 4096;
  uint64_t num_tables = 7;
  std::optional<RangePredicate> predicate;
};

/// A multi-attribute relation stream (for chain multi-join queries). The
/// relation's tuples carry `arity` join-attribute values, all over the same
/// domain.
struct RelationSpec {
  std::string name;
  uint64_t arity = 1;
  uint64_t domain_size = 1u << 16;
};

/// COUNT(R0 ⋈ R1 ⋈ ... ⋈ Rk) over registered relations forming a chain:
/// end relations must have arity 1, interior relations arity 2 (first
/// attribute joins the left neighbor, second the right).
struct ChainJoinQuerySpec {
  std::vector<std::string> relations;

  /// Estimation structure: the AGMS median-of-means grid (O(grid) per
  /// tuple) or the bucketized hash-sketch chain (O(num_tables) per tuple,
  /// num_buckets² counters per interior relation).
  enum class Method { kAgmsGrid, kHashSketch };
  Method method = Method::kHashSketch;

  /// kAgmsGrid shape.
  uint64_t num_means = 64;
  uint64_t num_medians = 5;

  /// kHashSketch shape.
  uint64_t num_tables = 5;
  uint64_t num_buckets = 64;
};

}  // namespace query
}  // namespace skimjoin

#endif  // SKIMJOIN_QUERY_QUERY_H_
