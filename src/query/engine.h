// The stream query-processing engine of Fig. 1: registered streams, a set
// of standing approximate queries, and single-pass synopsis maintenance.
//
// Usage:
//   Engine engine;
//   auto f = engine.RegisterStream({"packets.src", 1u << 16});
//   auto q = engine.AddJoinQuery({.left_stream = "packets.src", ...});
//   engine.Update("packets.src", {.value = 443, .count = 1});
//   auto size = engine.AnswerJoin(*q);
//
// Every registered query owns its own synopses; an arriving element fans
// out to every synopsis subscribed to its stream (after per-query selection
// predicates). Synopses see each element exactly once, in arrival order —
// the single-pass constraint of §2.1.

#ifndef SKIMJOIN_QUERY_ENGINE_H_
#define SKIMJOIN_QUERY_ENGINE_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/join_estimators.h"
#include "core/skimmed_sketch.h"
#include "core/top_k.h"
#include "ingest/concurrent_ingestor.h"
#include "ingest/ingest_stats.h"
#include "ingest/parallel_ingestor.h"
#include "query/checkpoint.h"
#include "query/multi_join.h"
#include "query/multi_join_hash.h"
#include "query/query.h"
#include "query/query_cache.h"
#include "sketch/fm_sketch.h"
#include "sketch/kernel_options.h"
#include "sketch/slim_view.h"
#include "stream/frequency_vector.h"
#include "stream/gk_quantiles.h"
#include "stream/wavelet.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/stream_profiler.h"

namespace skimjoin {
namespace query {

/// One rule-based finding from Engine::HealthReport(): something an
/// operator should act on, with the subject it concerns and the rule that
/// fired. The shell's `doctor` command and the fleet health report render
/// lists of these.
struct HealthFinding {
  enum class Severity { kInfo, kWarn, kCritical };
  Severity severity = Severity::kInfo;
  /// What the finding concerns: "stream <name>" or "query <id>".
  std::string subject;
  /// Stable rule identifier, e.g. "counter-saturation",
  /// "collision-pressure", "skew-cache-mismatch", "skim-drift",
  /// "delete-heavy", "domain-drops".
  std::string rule;
  /// Human-readable explanation carrying the numbers that fired the rule.
  std::string message;
  /// Shard index (as text) when the finding was aggregated by the fleet
  /// health report; empty for a local engine's own findings.
  std::string shard;
};

/// "info" / "warn" / "critical".
const char* HealthSeverityName(HealthFinding::Severity severity);

/// One stream's workload health: the live profiler snapshot plus
/// ingest-derived rates read off the stream's registry counters.
struct StreamHealth {
  std::string stream;
  std::optional<util::StreamProfiler::Snapshot> profile;
  /// hits / (hits + misses) of the stream's hash-plan caches; NaN before
  /// any batch has exercised them.
  double hash_cache_hit_rate = 0.0;
  uint64_t elements_absorbed = 0;
  uint64_t elements_dropped = 0;
};

/// One query's synopsis health: the probes of every synopsis it owns.
struct QueryHealth {
  QueryId id = 0;
  /// "join" or "frequency" (the probe-capable query kinds).
  std::string kind;
  /// Estimation method ("skimmed", "agms", ...).
  std::string method;
  /// The participating stream name(s), e.g. "f⋈g" or "f".
  std::string streams;
  std::vector<SynopsisHealth> synopses;
};

/// The full engine health picture: every stream's workload profile, every
/// probe-capable query's synopsis probes, and the rule-based findings
/// derived from both. Built by Engine::HealthReport().
struct HealthReport {
  std::vector<StreamHealth> streams;
  std::vector<QueryHealth> queries;
  std::vector<HealthFinding> findings;
};

/// Renders the full report — stream table, per-query probe rows, findings —
/// as aligned text (the shell's `health` command).
std::string RenderHealthReport(const HealthReport& report);

/// Renders just the findings, one `[severity] subject rule: message` line
/// each, with `{shard="k"}` labels when present (the `doctor` command and
/// the fleet health artifact). "no findings" when the list is empty.
std::string RenderHealthFindings(const std::vector<HealthFinding>& findings);

/// One stream arrival as seen by the engine: the join-attribute value, the
/// count delta (+1 insert / -1 delete), and an optional measure value for
/// SUM aggregates.
struct StreamUpdate {
  uint64_t value = 0;
  int64_t count = 1;
  int64_t measure = 0;
};

/// The engine. Single-writer: ONE thread drives registration and ingestion
/// (Update / UpdateBatch) at a time. UpdateBatch may internally fan a batch
/// out across shard worker threads (see SetIngestShards), but those workers
/// live only inside the call — externally the engine remains a single-writer
/// structure, per the single-pass stream model and DESIGN.md's "Threading &
/// ingestion model". With IngestOptions.concurrent on (DESIGN.md §13) the
/// workers are persistent and outlive UpdateBatch; registration and
/// ingestion stay single-writer, while point-frequency and heavy-hitter
/// ANSWERS may run on the writer thread concurrently with in-flight
/// ingestion and observe bounded-staleness snapshots until FlushIngest().
class Engine {
 public:
  Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers a stream. ALREADY_EXISTS if the name is taken;
  /// INVALID_ARGUMENT for an empty name or domain < 2.
  StatusOr<StreamId> RegisterStream(const StreamSpec& spec);

  /// Registers AGG(left ⋈ right). Both streams must already be registered
  /// with equal domains (NOT_FOUND / INVALID_ARGUMENT otherwise). All query
  /// randomness derives from `seed`.
  StatusOr<QueryId> AddJoinQuery(const JoinQuerySpec& spec, uint64_t seed);

  /// Registers AGG(stream ⋈ stream).
  StatusOr<QueryId> AddSelfJoinQuery(const SelfJoinQuerySpec& spec,
                                     uint64_t seed);

  /// Registers point-frequency / heavy-hitter tracking over one stream.
  StatusOr<QueryId> AddFrequencyQuery(const FrequencyQuerySpec& spec,
                                      uint64_t seed);

  /// Registers a COUNT DISTINCT query over one stream (Flajolet–Martin
  /// synopsis with `num_maps` bit maps).
  StatusOr<QueryId> AddDistinctCountQuery(const DistinctCountQuerySpec& spec,
                                          uint64_t seed);

  /// Registers a continuous top-k frequent-values query over one stream.
  StatusOr<QueryId> AddTopKQuery(const TopKQuerySpec& spec, uint64_t seed);

  /// Registers a deterministic quantile query (GK summary; insert-only —
  /// deletes on the stream are ignored by this query).
  StatusOr<QueryId> AddQuantileQuery(const QuantileQuerySpec& spec);

  /// Registers wavelet-backed range-sum tracking over one stream. The
  /// stream's domain must be a power of two.
  StatusOr<QueryId> AddRangeSumQuery(const RangeSumQuerySpec& spec);

  /// Registers a multi-attribute relation stream for chain-join queries.
  /// ALREADY_EXISTS if the name collides with a stream or relation.
  StatusOr<StreamId> RegisterRelation(const RelationSpec& spec);

  /// Registers COUNT over a chain of >= 2 registered relations. End
  /// relations must have arity 1 and interior relations arity 2.
  StatusOr<QueryId> AddChainJoinQuery(const ChainJoinQuerySpec& spec,
                                      uint64_t seed);

  /// Feeds one tuple into a registered relation: `attributes` carries its
  /// join-attribute values in schema order. NOT_FOUND / INVALID_ARGUMENT /
  /// OUT_OF_RANGE for unknown relations, arity mismatches, or out-of-domain
  /// values.
  Status UpdateRelation(const std::string& relation,
                        const std::vector<uint64_t>& attributes,
                        int64_t weight);

  /// Feeds one element into every subscribed synopsis. NOT_FOUND for an
  /// unknown stream; OUT_OF_RANGE if update.value is outside the stream's
  /// domain (the element is dropped and counted, never fed to a synopsis).
  Status Update(const std::string& stream, const StreamUpdate& update);
  Status Update(StreamId stream, const StreamUpdate& update);

  /// Feeds a whole batch of elements — the ingest fast path. Stream lookup
  /// and domain validation are hoisted out of the per-element loop;
  /// out-of-domain elements are dropped and counted in the stream's ingest
  /// stats (the rest of the batch is still absorbed, and the call stays
  /// OK). Frequency-query synopses take the batch through
  /// SkimmedSketch::UpdateBatch — sharded across SetIngestShards() worker
  /// threads for large batches — with results identical to element-by-
  /// element Update. NOT_FOUND for an unknown stream.
  Status UpdateBatch(const std::string& stream,
                     std::span<const StreamUpdate> updates);
  Status UpdateBatch(StreamId stream, std::span<const StreamUpdate> updates);

  /// Worker threads UpdateBatch may fan a large batch out to (per
  /// frequency-query synopsis, via ingest::ParallelIngestor). 1 — the
  /// default — keeps ingestion fully inline. INVALID_ARGUMENT for 0.
  /// Equivalent to SetIngestOptions with only `shards` changed.
  Status SetIngestShards(uint64_t num_shards);

  /// Full ingestion-concurrency configuration (DESIGN.md §13).
  struct IngestOptions {
    /// Worker threads per frequency-query synopsis. With `concurrent` off
    /// this is the ParallelIngestor shard count (join-then-merge inside
    /// each UpdateBatch); with it on, the ConcurrentIngestor worker count.
    uint64_t shards = 1;
    /// Relaxed-consistency concurrent ingestion: UpdateBatch hands chunks
    /// to persistent workers and returns WITHOUT waiting; workers fold
    /// into private replicas and propagate into the query synopsis on
    /// epoch boundaries. Point-frequency / heavy-hitter answers then read
    /// a bounded-staleness (but always internally consistent) snapshot
    /// until FlushIngest() linearizes. Exactness everywhere else is
    /// preserved: serialization, checkpoints, and health reports flush
    /// first.
    bool concurrent = false;
    /// Propagation cadence and hard staleness bound, forwarded to
    /// ingest::ConcurrentIngestOptions (ignored unless `concurrent`).
    uint64_t propagation_interval_elements = 1 << 16;
    uint64_t max_lag_elements = 1 << 20;
    /// Pin ingest workers to CPUs (NUMA first-touch replica locality).
    bool pin_threads = false;
  };

  /// Reconfigures ingestion. Flushes and drops existing concurrent
  /// ingestors first, so switching modes never loses elements.
  /// INVALID_ARGUMENT for shards == 0 or a zero propagation interval.
  Status SetIngestOptions(const IngestOptions& options);

  const IngestOptions& ingest_options() const { return ingest_options_; }

  /// Linearization point for concurrent ingestion: blocks until every
  /// element accepted by UpdateBatch is folded into its query synopsis.
  /// Afterwards answers are exact (identical to sequential ingestion) and
  /// every `ingest.<stream>.epoch_lag` gauge reads 0. No-op when
  /// concurrent mode is off or nothing is pending.
  void FlushIngest();

  /// Selects the sketch update fast paths (DESIGN.md §10) for every
  /// frequency-query synopsis, current and future — including synopses
  /// replaced by RestoreCheckpoint. Bit-identical under any setting (pure
  /// ablation/measurement knob). Rebuilds plan caches and sharded-ingest
  /// replicas, so `ingest.<stream>.hash_cache_*` tallies restart.
  void SetKernelOptions(const sketch::KernelOptions& options);

  const sketch::KernelOptions& kernel_options() const {
    return kernel_options_;
  }

  /// The two-stage read path (DESIGN.md §11). Both stages answer
  /// bit-identically to the classic read path; both default OFF so existing
  /// embedders see no behavior change until they opt in.
  struct ReadPathOptions {
    /// Epoch-invalidated answer cache over AnswerJoin /
    /// AnswerPointFrequency (query/query_cache.h): an answer is recomputed
    /// only when a participating stream's absorbed-element epoch advanced.
    bool use_query_cache = false;
    /// Serve point frequencies from an epoch-gated sketch::SlimView of
    /// each frequency query's level-0 sketch instead of the fat sketch.
    bool use_slim_views = false;
  };

  /// Selects the read path. Turning the cache off drops every cached
  /// entry; turning slim views off drops the views (both rebuild from the
  /// fat synopses on the next enable, so toggling is always safe).
  void SetReadPathOptions(const ReadPathOptions& options);

  const ReadPathOptions& read_path_options() const { return read_path_; }

  /// Cache observability for one join or frequency query, mirroring its
  /// `query.<id>.cache_*` counters (docs/OBSERVABILITY.md).
  struct QueryCacheStats {
    bool enabled = false;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
  };

  /// NOT_FOUND when `query` is not a join/self-join or frequency query
  /// (other query kinds have no cached read path).
  StatusOr<QueryCacheStats> QueryCacheStatsFor(QueryId query) const;

  /// Ingestion observability for one stream: elements absorbed and
  /// dropped, batches, and time spent in parallel absorb/merge. Assembled
  /// from the engine's registry counters (`ingest.<stream>.*`).
  StatusOr<ingest::IngestStats> StreamIngestStats(
      const std::string& stream) const;

  /// The engine's private metrics registry. Every stream owns
  /// `ingest.<name>.*` counters and every query `query.<id>.*` instruments
  /// (see docs/OBSERVABILITY.md for the full naming scheme). Exposed so
  /// embedders (shell, CLI) can register their own instruments beside the
  /// engine's; those ride along in MetricsSnapshot and checkpoints.
  /// Registry::TakeSnapshot is the one engine read that IS safe from a
  /// background thread (exporters) while the writer thread mutates the
  /// engine — instruments are atomics behind the registry's own mutex.
  metrics::Registry& metrics_registry() const { return metrics_; }

  /// Refreshes the per-query `query.<id>.memory_bytes` gauges and the
  /// engine-level gauges (`engine.num_streams`, `engine.num_queries`,
  /// `engine.ingest_shards`) by walking every query's synopsis. Like all
  /// engine reads this must run on the single writer thread — it iterates
  /// the query containers, which registration/ingestion mutate. The gauge
  /// VALUES it publishes are atomics, so a concurrent
  /// metrics_registry().TakeSnapshot() on another thread is safe.
  void RefreshMetricsGauges() const;

  /// RefreshMetricsGauges() + metrics_registry().TakeSnapshot(): a merged
  /// view of every instrument with gauges freshly refreshed. Writer-thread
  /// only (see RefreshMetricsGauges); background exporters must instead
  /// call metrics_registry().TakeSnapshot() and let the writer thread
  /// refresh gauges between commands — tools/skimjoin_cli.cc shows the
  /// split.
  metrics::Snapshot MetricsSnapshot() const;

  /// Runtime toggle for the per-stream workload profiler (default on).
  /// While off, ingestion skips the profiler entirely; already-collected
  /// profile state is kept and resumes accumulating on re-enable. Under the
  /// SKIMJOIN_DISABLE_PROFILER compile flag the ingest-path calls are
  /// compiled out and this toggle has no effect.
  void SetProfilerEnabled(bool enabled) { profiler_enabled_ = enabled; }
  bool profiler_enabled() const { return profiler_enabled_; }

  /// The live profile of one stream: heavy hitters, fitted skew, distinct
  /// estimate, delete ratio (util/stream_profiler.h). Writer-thread only
  /// (snapshotting walks the heavy-hitter structure). NOT_FOUND for an
  /// unknown stream.
  StatusOr<util::StreamProfiler::Snapshot> StreamProfile(
      const std::string& stream) const;

  /// Assembles the full health picture: every stream's profile, a health
  /// probe of every join/frequency query's synopses, and the rule-based
  /// findings derived from both. Also publishes the `query.<id>.health.*`
  /// gauges. Estimate-priced (skimmed probes run SKIMDENSE on copies) and
  /// read-only — answers before and after are bit-identical. Writer-thread
  /// only. (Return type qualified: the member name hides the struct inside
  /// the class scope.)
  query::HealthReport HealthReport() const;

  /// Attaches an exact frequency reference for accuracy-drift monitoring
  /// of `stream` (pass nullptr to detach). The caller keeps ownership and
  /// must keep `reference` alive and up to date; whenever a query over the
  /// stream answers, the engine computes the exact answer from the
  /// reference and records the relative error into the query's
  /// `query.<id>.rel_error` histogram. Covered answers: point frequency,
  /// distinct count, and join size (the latter only when both streams have
  /// references, both inputs are COUNT, and no predicates apply — the
  /// reference holds raw frequencies, so filtered or measure-weighted
  /// queries have no exact counterpart to compare against). NOT_FOUND for
  /// an unknown stream; INVALID_ARGUMENT when the reference's domain does
  /// not match the stream's (a smaller reference would abort on Get()).
  Status AttachAccuracyReference(const std::string& stream,
                                 const stream::FrequencyVector* reference);

  /// Current estimate of a join or self-join query.
  StatusOr<double> AnswerJoin(QueryId query) const;

  /// AnswerJoin with full provenance (per-copy estimates, empirical CI,
  /// a-priori bound, skim diagnostics where the method is skimmed). The
  /// report's `estimate` is bit-identical to AnswerJoin's answer. Records
  /// the report-derived instruments (`query.<id>.ci_rel_width`, and
  /// `query.<id>.skim_residual_ratio` for skimmed methods) and emits a
  /// `ci_blowup` warn event when the CI's relative width crosses
  /// SetCiWarnRelWidth. Reports are built here, at estimate time — never
  /// on the ingest path.
  StatusOr<EstimateReport> AnswerJoinWithReport(QueryId query) const;

  /// AnswerChainJoin with provenance (per-copy estimates and empirical CI;
  /// chain joins have no closed-form a-priori envelope).
  StatusOr<EstimateReport> AnswerChainJoinWithReport(QueryId query) const;

  /// Accuracy-drift alerting: when a query's observed rel_error (see
  /// AttachAccuracyReference) exceeds `threshold`, the engine emits an
  /// `accuracy_drift` warn event to EventLog::Global() alongside the
  /// histogram record. +infinity (the default) disables emission; the
  /// histograms record either way.
  void SetAccuracyDriftWarnThreshold(double threshold) {
    drift_warn_threshold_ = threshold;
  }

  /// CI blow-up alerting for *WithReport answers: when a report's relative
  /// CI width exceeds `threshold`, the engine emits a `ci_blowup` warn
  /// event. +infinity (the default) disables emission.
  void SetCiWarnRelWidth(double threshold) { ci_warn_rel_width_ = threshold; }

  /// Current point-frequency estimate from a frequency query.
  StatusOr<int64_t> AnswerPointFrequency(QueryId query, uint64_t value) const;

  /// Values currently estimated at |frequency| >= threshold.
  StatusOr<core::DenseFrequencies> AnswerHeavyHitters(QueryId query,
                                                      int64_t threshold) const;

  /// Current COUNT DISTINCT estimate from a distinct-count query.
  StatusOr<double> AnswerDistinctCount(QueryId query) const;

  /// Current top-k values with estimated frequencies, best first.
  StatusOr<std::vector<std::pair<uint64_t, int64_t>>> AnswerTopK(
      QueryId query) const;

  /// Current φ-quantile of a quantile query's insert stream.
  StatusOr<uint64_t> AnswerQuantile(QueryId query, double phi) const;

  /// Current estimated sum of frequencies over [lo, hi] from a range-sum
  /// query's compressed wavelet synopsis.
  StatusOr<double> AnswerRangeSum(QueryId query, uint64_t lo,
                                  uint64_t hi) const;

  /// Current chain-join COUNT estimate.
  StatusOr<double> AnswerChainJoin(QueryId query) const;

  /// Net element count (inserts minus deletes) seen on a stream.
  StatusOr<int64_t> StreamElementCount(const std::string& stream) const;

  /// Names of every registered stream, in registration order.
  std::vector<std::string> StreamNames() const;

  /// Writes the engine's complete state — streams, relations, every query's
  /// spec + seed, and each supported query's synopsis — to `path` as one
  /// per-section-checksummed durable file, committed atomically (a crash
  /// mid-save never clobbers an existing checkpoint at `path`). Queries
  /// whose synopses cannot be serialized are recorded in the manifest as
  /// unsupported. `metadata` is an arbitrary caller-owned map round-tripped
  /// through RestoreCheckpoint. Defined in checkpoint.cc.
  Status SaveCheckpoint(
      const std::string& path,
      const std::map<std::string, std::string>& metadata = {}) const;

  /// Rebuilds this engine from a checkpoint written by SaveCheckpoint, so
  /// that continued ingestion and every Answer* agree exactly with an
  /// engine that never stopped. FAILED_PRECONDITION unless the engine is
  /// empty. On failure the engine is left empty — never half-restored. See
  /// RestoreOptions for strict vs. allow_partial semantics. Defined in
  /// checkpoint.cc.
  StatusOr<RestoreReport> RestoreCheckpoint(const std::string& path,
                                            const RestoreOptions& options = {});

  /// Writes one query's synopsis as its family's self-describing text
  /// record (the same serializers checkpoints use): a join/self-join
  /// query's estimator-pair record, a frequency query's skimmed-sketch
  /// record, or a chain-join query's multi-join estimator record. This is the payload of a distributed worker's delta pull — a
  /// compatible synopsis on the coordinator can Merge/RestoreFrom it.
  /// NOT_FOUND for an unknown id or a query kind without a serializable
  /// synopsis; UNIMPLEMENTED for non-serializable estimator methods.
  Status SerializeQuerySynopsis(QueryId query, std::string* out) const;

  /// Drops every stream, relation, and query, returning the engine to its
  /// freshly constructed state (ingest shards included).
  void Clear();

  uint64_t num_streams() const { return streams_.size(); }
  uint64_t num_relations() const { return relations_.size(); }
  uint64_t num_queries() const {
    return join_queries_.size() + frequency_queries_.size() +
           distinct_queries_.size() + topk_queries_.size() +
           quantile_queries_.size() + range_sum_queries_.size() +
           chain_queries_.size();
  }

 private:
  struct StreamState {
    StreamSpec spec;
    int64_t element_count = 0;
    // Registry-backed ingest counters (`ingest.<name>.*`); the pointees are
    // owned by metrics_ and stay valid until Clear().
    metrics::Counter* absorbed = nullptr;
    metrics::Counter* batches = nullptr;
    metrics::Counter* dropped = nullptr;
    metrics::Counter* merges = nullptr;
    metrics::Counter* absorb_nanos = nullptr;
    metrics::Counter* merge_nanos = nullptr;
    // Plan-cache hit/miss totals over this stream's frequency-query
    // synopses, accumulated on the inline batch path (sharded replicas keep
    // their caches worker-local; see docs/OBSERVABILITY.md).
    metrics::Counter* hash_cache_hits = nullptr;
    metrics::Counter* hash_cache_misses = nullptr;
    // Elements accepted by concurrent-mode UpdateBatch but not yet visible
    // to readers (`ingest.<name>.epoch_lag`); 0 outside concurrent mode.
    metrics::Gauge* epoch_lag = nullptr;
    // Exact frequencies for accuracy-drift monitoring; caller-owned, null
    // when no reference is attached.
    const stream::FrequencyVector* reference = nullptr;
    // Live workload profiler, fed from the ingest paths while the runtime
    // toggle is on. unique_ptr: the profiler's atomic tallies make it
    // immovable, and StreamStates live in a reallocating vector.
    std::unique_ptr<util::StreamProfiler> profiler;
  };

  /// Cached `query.<id>.*` instrument pointers, created at registration.
  struct QueryMetrics {
    metrics::Counter* estimate_calls = nullptr;
    metrics::ShardedHistogram* estimate_ns = nullptr;
    metrics::Gauge* memory_bytes = nullptr;
    metrics::ShardedHistogram* rel_error = nullptr;
    // Report-derived instruments, recorded only by *WithReport answers.
    metrics::ShardedHistogram* ci_rel_width = nullptr;
    metrics::ShardedHistogram* skim_residual_ratio = nullptr;
    // Read-path cache outcome counters (`query.<id>.cache_*`), bumped only
    // while ReadPathOptions.use_query_cache is on.
    metrics::Counter* cache_hits = nullptr;
    metrics::Counter* cache_misses = nullptr;
    metrics::Counter* cache_invalidations = nullptr;
  };

  /// A join (or self-join) query: the estimator pair plus the routing data
  /// needed to feed it. Every query state also keeps the registration spec
  /// and seed so SaveCheckpoint can record how to re-create the query.
  struct JoinQueryState {
    std::unique_ptr<core::JoinEstimatorPair> estimator;
    StreamId left;
    StreamId right;
    AggregateInput left_input;
    AggregateInput right_input;
    std::optional<RangePredicate> left_predicate;
    std::optional<RangePredicate> right_predicate;
    JoinQuerySpec spec;
    uint64_t seed = 0;
    QueryMetrics metrics;
  };

  struct FrequencyQueryState {
    core::SkimmedSketch sketch;
    StreamId stream;
    std::optional<RangePredicate> predicate;
    /// Lazily built sharded pipeline for this query's sketch; rebuilt when
    /// the engine's shard count changes.
    std::optional<ingest::ParallelIngestor<core::SkimmedSketch>> ingestor;
    FrequencyQuerySpec spec;
    uint64_t seed = 0;
    QueryMetrics metrics;
    /// Sketch-side plan-cache tallies already exported to the stream's
    /// hash_cache_* counters; the batch path and the (const, writer-thread)
    /// pull-style RefreshMetricsGauges publish deltas against these.
    mutable uint64_t cache_hits_seen = 0;
    mutable uint64_t cache_misses_seen = 0;
    /// Epoch-gated slim view over the sketch's level-0, built lazily while
    /// ReadPathOptions.use_slim_views is on. Mutable: reads are const but
    /// refresh the view when the fat epoch advanced.
    mutable std::optional<sketch::SlimView> slim;
    /// Relaxed-consistency ingestor over `sketch` while
    /// IngestOptions.concurrent is on (null otherwise). Built lazily on the
    /// first concurrent batch — by then the state is map-resident, so the
    /// &sketch it captures is stable. Declared after `sketch` so its
    /// destructor (which flushes pending work into the sketch and joins
    /// the workers) runs while the sketch is still alive.
    std::unique_ptr<ingest::ConcurrentIngestor<core::SkimmedSketch>>
        concurrent;
  };

  struct DistinctQueryState {
    sketch::FmSketch sketch;
    StreamId stream;
    std::optional<RangePredicate> predicate;
    DistinctCountQuerySpec spec;
    uint64_t seed = 0;
    QueryMetrics metrics;
  };

  struct TopKQueryState {
    core::TopKTracker tracker;
    StreamId stream;
    std::optional<RangePredicate> predicate;
    TopKQuerySpec spec;
    uint64_t seed = 0;
    QueryMetrics metrics;
  };

  struct QuantileQueryState {
    stream::GkQuantileSummary summary;
    StreamId stream;
    std::optional<RangePredicate> predicate;
    QuantileQuerySpec spec;
    QueryMetrics metrics;
  };

  struct RangeSumQueryState {
    stream::WaveletSynopsis synopsis;
    StreamId stream;
    uint64_t coefficient_budget;
    std::optional<RangePredicate> predicate;
    RangeSumQuerySpec spec;
    QueryMetrics metrics;
  };

  struct RelationState {
    RelationSpec spec;
    int64_t tuple_count = 0;
  };

  /// A chain-join query: one of the two estimator structures plus the
  /// relation ids in chain order (a relation may appear once per query).
  struct ChainJoinQueryState {
    std::optional<MultiJoinEstimator> grid;
    std::optional<MultiJoinHashEstimator> hashed;
    std::vector<StreamId> chain;  // relation ids, chain order
    ChainJoinQuerySpec spec;
    uint64_t seed = 0;
    QueryMetrics metrics;
  };

  StatusOr<StreamId> FindStream(const std::string& name) const;

  static int64_t WeightFor(AggregateInput input, const StreamUpdate& update) {
    return input == AggregateInput::kCount ? update.count : update.measure;
  }

  /// Fans one validated in-domain element out to the subscribed synopses.
  /// Frequency queries are skipped when `include_frequency_queries` is
  /// false (UpdateBatch feeds them through the batch path instead).
  void ApplyToQueries(StreamId stream, const StreamUpdate& update,
                      bool include_frequency_queries);

  StatusOr<StreamId> FindRelation(const std::string& name) const;

  /// Publishes `q`'s plan-cache activity to its stream's hash_cache_*
  /// counters as deltas against the last export (so SetKernelOptions
  /// rebuilds, which restart the sketch-side tallies, publish cleanly).
  /// Called from the inline batch path and, pull-style, from
  /// RefreshMetricsGauges so scalar-only sessions stay current too.
  /// Writer-thread only; the sharded path's replicas keep their caches
  /// worker-local, so the counters reflect the inline path only.
  void PublishHashCacheDeltas(const FrequencyQueryState& q) const;

  /// Creates the `ingest.<name>.*` counters for a freshly registered
  /// stream and caches their pointers in `*state`.
  void InitStreamMetrics(StreamState* state);

  /// Registers the `query.<id>.*` instruments for a new query.
  QueryMetrics MakeQueryMetrics(QueryId id);

  /// Assembles the public IngestStats struct from a stream's counters.
  ingest::IngestStats IngestStatsFor(const StreamState& state) const;

  /// Records |estimate - exact| / max(1, |exact|) into `histogram` and,
  /// when the relative error crosses the drift-warn threshold, emits an
  /// `accuracy_drift` warn event naming `query`.
  void RecordRelError(QueryId query, metrics::ShardedHistogram* histogram,
                      double estimate, double exact) const;

  /// Records join-estimate drift when both sides have references attached
  /// and the query compares exactly (COUNT inputs, no predicates).
  void MaybeRecordJoinDrift(QueryId query, const JoinQueryState& q,
                            double estimate) const;

  /// Records a *WithReport answer's derived instruments (CI relative
  /// width; skim residual ratios when present) and emits a `ci_blowup`
  /// warn event past the CI-warn threshold.
  void RecordReportMetrics(QueryId query, const QueryMetrics& metrics,
                           const EstimateReport& report) const;

  /// The participating streams' absorbed-element epochs, in a fixed
  /// per-query order — the QueryCache guard vector.
  QueryCache::Epochs EpochsFor(const JoinQueryState& q) const;
  QueryCache::Epochs EpochsFor(const FrequencyQueryState& q) const;

  /// Bumps the matching `query.<id>.cache_*` counter for one lookup.
  static void CountCacheOutcome(const QueryMetrics& metrics,
                                QueryCache::Outcome outcome);

  /// Reader lock over a frequency query's sketch when a concurrent
  /// ingestor is live; a no-op (lockless) guard otherwise. Answer paths
  /// hold one across every sketch read so they observe whole-epoch
  /// snapshots, never a mid-propagation state.
  using FrequencyReadLock =
      ingest::ConcurrentIngestor<core::SkimmedSketch>::ReadLock;
  FrequencyReadLock ReadLockFor(const FrequencyQueryState& q) const {
    return q.concurrent ? q.concurrent->ReaderLock() : FrequencyReadLock();
  }

  // Declared first so every cached instrument pointer in the states below
  // is destroyed before the registry that owns the pointees. Mutable:
  // const paths (MetricsSnapshot, SaveCheckpoint) register engine-level
  // gauges on first use — instruments are observability, not engine state.
  mutable metrics::Registry metrics_;
  std::vector<StreamState> streams_;
  std::unordered_map<std::string, StreamId> stream_ids_;
  std::vector<RelationState> relations_;
  std::unordered_map<std::string, StreamId> relation_ids_;
  std::unordered_map<QueryId, JoinQueryState> join_queries_;
  std::unordered_map<QueryId, FrequencyQueryState> frequency_queries_;
  std::unordered_map<QueryId, DistinctQueryState> distinct_queries_;
  std::unordered_map<QueryId, TopKQueryState> topk_queries_;
  std::unordered_map<QueryId, QuantileQueryState> quantile_queries_;
  std::unordered_map<QueryId, RangeSumQueryState> range_sum_queries_;
  std::unordered_map<QueryId, ChainJoinQueryState> chain_queries_;
  QueryId next_query_id_ = 1;
  // Ingestion concurrency configuration (shards + concurrent mode knobs).
  IngestOptions ingest_options_;
  // Fast-path kernel selection applied to every frequency-query synopsis
  // (defaults all-on; see sketch/kernel_options.h).
  sketch::KernelOptions kernel_options_;
  // Two-stage read path selection (defaults all-off). Like kernel_options_,
  // survives Clear(): it is a session-level setting, not engine state.
  ReadPathOptions read_path_;
  // Answer cache for the read path. Mutable: Answer* methods are const but
  // consult and populate entries (precedent: metrics_). Dropped on Clear.
  mutable QueryCache query_cache_;
  // Anomaly-event thresholds; +infinity disables emission (the default).
  double drift_warn_threshold_ = std::numeric_limits<double>::infinity();
  double ci_warn_rel_width_ = std::numeric_limits<double>::infinity();
  // Runtime profiler toggle (see SetProfilerEnabled). Like kernel_options_,
  // a session-level setting that survives Clear().
  bool profiler_enabled_ = true;
};

}  // namespace query
}  // namespace skimjoin

#endif  // SKIMJOIN_QUERY_ENGINE_H_
