#include "query/shell.h"

#include <cstdlib>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "query/dist_backend.h"
#include "stream/trace_io.h"
#include "util/durable_file.h"
#include "util/estimate_report.h"
#include "util/event_log.h"
#include "util/metrics.h"

namespace skimjoin {
namespace query {

namespace {

/// The one-line synopsis registry `help` renders. Kept next to the
/// dispatcher below; shell_test cross-checks both directions (every entry
/// dispatches, every observed command is listed).
const std::vector<std::pair<std::string, std::string>>& CommandRegistry() {
  static const auto* commands =
      new std::vector<std::pair<std::string, std::string>>{
          {"stream", "stream <name> <domain> — register a stream"},
          {"join",
           "join <q> <left> <right> <method> <space> — standing join query "
           "(agms | hash-sketch | skimmed | count-min | sampling)"},
          {"selfjoin",
           "selfjoin <q> <stream> <method> <space> — standing self-join "
           "query"},
          {"freq",
           "freq <q> <stream> <space> — point/heavy-hitter tracking"},
          {"distinct", "distinct <q> <stream> <maps> — COUNT DISTINCT"},
          {"topk", "topk <q> <stream> <k> <space> — continuous top-k"},
          {"top", "top <q> — current top-k answer"},
          {"quantile",
           "quantile <q> <stream> <epsilon> — deterministic GK quantiles"},
          {"phi", "phi <q> <phi> — current quantile answer"},
          {"update",
           "update <stream> <value> [count] [measure] — feed one element"},
          {"load", "load <stream> <trace-path> — replay a trace file"},
          {"answer", "answer <q> — current join/self-join/distinct estimate"},
          {"explain",
           "explain <q> — join estimate with provenance (copies, CI, "
           "a-priori bound, skim diagnostics)"},
          {"point", "point <q> <value> — point-frequency estimate"},
          {"heavy", "heavy <q> <threshold> — heavy hitters above threshold"},
          {"count", "count <stream> — net elements seen"},
          {"seed", "seed <n> — seed for subsequent queries"},
          {"checkpoint", "checkpoint <path> — save engine + query names"},
          {"restore",
           "restore <path> [partial] — restore a checkpoint into an empty "
           "shell"},
          {"streams", "streams — per-stream ingest stats"},
          {"stats", "stats — engine-wide totals"},
          {"metrics",
           "metrics [fleet] [json|prom] — metrics snapshot (fleet: merged "
           "per-shard series, shard=\"<k>\" labels; prom is multi-line)"},
          {"logs",
           "logs [n] [debug|info|warn|error] [--shard <k>] — last n "
           "(default 10) events at or above the level as JSON lines; "
           "--shard keeps only events scraped from worker k"},
          {"workers",
           "workers — per-shard health/incarnation/epoch (distributed "
           "backend)"},
          {"shards",
           "shards — shard fan-out and routing (distributed backend)"},
          {"fleet",
           "fleet — probe every shard, scrape its events, and render the "
           "fleet table (distributed backend)"},
          {"trace",
           "trace start|stop|dump <file> — toggle trace recording / write "
           "the Chrome trace (fleet-wide with a distributed backend)"},
          {"health",
           "health [<q>|<stream>] — stream profiles, synopsis probes, and "
           "findings (fleet findings with a distributed backend); the "
           "optional argument narrows to one query or stream"},
          {"doctor",
           "doctor — just the rule-based findings, one line each (fleet-wide "
           "with a distributed backend)"},
          {"alerts",
           "alerts <rel_error> <ci_width> — warn-event thresholds for "
           "accuracy drift / CI blow-up (inf disables)"},
          {"cache",
           "cache <on|off> | cache slim <on|off> | cache status <q> — "
           "two-stage read path: epoch-invalidated query cache and slim "
           "views"},
          {"help", "help — print this list"},
          {"quit", "quit — stop reading commands"},
      };
  return *commands;
}

bool ParseEstimatorKind(const std::string& name, core::EstimatorKind* kind) {
  for (core::EstimatorKind candidate :
       {core::EstimatorKind::kAgms, core::EstimatorKind::kHashSketch,
        core::EstimatorKind::kSkimmedSketch, core::EstimatorKind::kCountMin,
        core::EstimatorKind::kSampling}) {
    if (name == core::EstimatorKindName(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

void Ok(std::ostream& out) { out << "ok\n"; }

template <typename T>
void OkValue(std::ostream& out, const T& value) {
  out << "ok " << value << "\n";
}

void Error(std::ostream& out, const std::string& reason) {
  out << "error: " << reason << "\n";
}

void Error(std::ostream& out, const Status& status) {
  Error(out, status.ToString());
}

// strtod-based so "inf" parses portably (istream num_get rejects it on
// some standard libraries).
bool ParseDouble(const std::string& token, double* value) {
  char* end = nullptr;
  *value = std::strtod(token.c_str(), &end);
  return end != token.c_str() && *end == '\0';
}

bool ParseLogLevelName(const std::string& token, LogLevel* level) {
  for (LogLevel candidate : {LogLevel::kDebug, LogLevel::kInfo,
                             LogLevel::kWarn, LogLevel::kError}) {
    if (token == LogLevelName(candidate)) {
      *level = candidate;
      return true;
    }
  }
  return false;
}

/// Commands that only make sense against the local engine: with a
/// distributed backend attached they would silently act on the shell's
/// empty engine, so they error instead.
bool IsLocalOnlyCommand(const std::string& command) {
  static const auto* names = new std::vector<std::string>{
      "distinct", "topk", "top",     "quantile", "phi",   "load",
      "restore",  "heavy", "count",  "streams",  "stats", "cache",
      "alerts",
  };
  for (const std::string& name : *names) {
    if (command == name) return true;
  }
  return false;
}

}  // namespace

const std::vector<std::pair<std::string, std::string>>& Shell::CommandHelp() {
  return CommandRegistry();
}

bool Shell::ExecuteLine(const std::string& line, std::ostream& out) {
  std::istringstream fields(line);
  std::string command;
  if (!(fields >> command) || command[0] == '#') return true;

  if (command == "quit") {
    Ok(out);
    return false;
  }
  if (command == "help") {
    // Multi-line by design (like `metrics prom`): one synopsis per command,
    // rendered straight from the registry so the list can never go stale.
    out << "ok\n";
    for (const auto& [name, synopsis] : CommandRegistry()) {
      out << "  " << synopsis << "\n";
    }
    return true;
  }
  if (dist_ != nullptr && IsLocalOnlyCommand(command)) {
    Error(out, "`" + command +
                   "` is not supported with a distributed backend attached");
    return true;
  }
  if ((command == "workers" || command == "shards" || command == "fleet") &&
      dist_ == nullptr) {
    Error(out, "no distributed backend attached");
    return true;
  }
  if (command == "workers") {
    // Refresh health with one single-attempt probe per shard, then render
    // the fleet table. Multi-line by design, like `streams`.
    (void)dist_->ProbeHealth();
    const std::vector<DistShardStatus> statuses = dist_->ShardStatuses();
    out << "ok " << statuses.size() << "\n";
    for (const DistShardStatus& status : statuses) {
      out << "  " << status.shard << " health=" << status.health
          << " incarnation=" << status.incarnation
          << " epoch=" << status.last_acked_epoch
          << " retries=" << status.rpc_retries
          << " failures=" << status.rpc_failures << "\n";
    }
    return true;
  }
  if (command == "shards") {
    const std::vector<DistShardStatus> statuses = dist_->ShardStatuses();
    out << "ok " << dist_->NumShards() << " routing=value%"
        << dist_->NumShards();
    for (const DistShardStatus& status : statuses) {
      out << ' ' << status.shard;
    }
    out << "\n";
    return true;
  }
  if (command == "fleet") {
    // The one-stop operator view: refresh health, pull each worker's new
    // events into the local log (so a following `logs --shard <k>` is
    // fresh), and render the fleet table. Multi-line like `workers`.
    (void)dist_->ProbeHealth();
    const Status scraped = dist_->ScrapeFleetEvents();
    const std::vector<DistShardStatus> statuses = dist_->ShardStatuses();
    out << "ok " << statuses.size() << " shards";
    if (!scraped.ok() && scraped.code() != StatusCode::kUnimplemented) {
      out << " (event scrape incomplete)";
    }
    out << "\n";
    for (const DistShardStatus& status : statuses) {
      out << "  " << status.shard << " health=" << status.health
          << " incarnation=" << status.incarnation
          << " epoch=" << status.last_acked_epoch
          << " retries=" << status.rpc_retries
          << " failures=" << status.rpc_failures << "\n";
    }
    return true;
  }
  if (command == "trace") {
    std::string action;
    if (!(fields >> action)) {
      Error(out, "usage: trace start|stop|dump <file>");
      return true;
    }
    if (action == "start" || action == "stop") {
      const bool enable = (action == "start");
      if (dist_ != nullptr) {
        const Status status = dist_->SetFleetTracing(enable);
        if (!status.ok()) {
          Error(out, status);
          return true;
        }
      } else if (enable) {
        metrics::TraceRecorder::Global().Enable();
      } else {
        metrics::TraceRecorder::Global().Disable();
      }
      Ok(out);
      return true;
    }
    if (action == "dump") {
      std::string path;
      if (!(fields >> path)) {
        Error(out, "usage: trace dump <file>");
        return true;
      }
      std::string trace_json;
      if (dist_ != nullptr) {
        StatusOr<std::string> merged = dist_->DumpFleetTrace();
        if (!merged.ok()) {
          Error(out, merged.status());
          return true;
        }
        trace_json = std::move(*merged);
      } else {
        trace_json = metrics::TraceRecorder::Global().DrainAsChromeTrace();
      }
      const Status written = util::AtomicWriteFile(path, trace_json);
      if (!written.ok()) {
        Error(out, written);
        return true;
      }
      out << "ok " << trace_json.size() << " bytes\n";
      return true;
    }
    Error(out, "usage: trace start|stop|dump <file>");
    return true;
  }
  if (command == "seed") {
    uint64_t seed = 0;
    if (!(fields >> seed)) {
      Error(out, "usage: seed <n>");
      return true;
    }
    next_seed_ = seed;
    Ok(out);
    return true;
  }
  if (command == "stream") {
    StreamSpec spec;
    if (!(fields >> spec.name >> spec.domain_size)) {
      Error(out, "usage: stream <name> <domain>");
      return true;
    }
    if (dist_ != nullptr) {
      const Status status = dist_->RegisterStream(spec);
      if (!status.ok()) {
        Error(out, status);
        return true;
      }
      Ok(out);
      return true;
    }
    StatusOr<StreamId> id = engine_.RegisterStream(spec);
    if (!id.ok()) {
      Error(out, id.status());
      return true;
    }
    Ok(out);
    return true;
  }
  if (command == "join" || command == "selfjoin") {
    std::string name, left, right, method;
    uint64_t space = 0;
    const bool self = (command == "selfjoin");
    if (self) {
      if (!(fields >> name >> left >> method >> space)) {
        Error(out, "usage: selfjoin <q> <stream> <method> <space>");
        return true;
      }
      right = left;
    } else if (!(fields >> name >> left >> right >> method >> space)) {
      Error(out, "usage: join <q> <left> <right> <method> <space>");
      return true;
    }
    if (join_query_names_.contains(name) ||
        frequency_query_names_.contains(name) ||
        distinct_query_names_.contains(name)) {
      Error(out, "query name already in use: " + name);
      return true;
    }
    JoinQuerySpec spec;
    spec.left_stream = left;
    spec.right_stream = right;
    spec.estimator.space_counters = space;
    if (!ParseEstimatorKind(method, &spec.estimator.kind)) {
      Error(out, "unknown method: " + method +
                     " (agms | hash-sketch | skimmed | count-min | sampling)");
      return true;
    }
    StatusOr<QueryId> id = dist_ != nullptr
                               ? dist_->AddJoinQuery(spec, next_seed_++)
                               : engine_.AddJoinQuery(spec, next_seed_++);
    if (!id.ok()) {
      Error(out, id.status());
      return true;
    }
    join_query_names_.emplace(name, *id);
    Ok(out);
    return true;
  }
  if (command == "freq") {
    std::string name;
    FrequencyQuerySpec spec;
    if (!(fields >> name >> spec.stream >> spec.space_counters)) {
      Error(out, "usage: freq <q> <stream> <space>");
      return true;
    }
    if (frequency_query_names_.contains(name) ||
        join_query_names_.contains(name)) {
      Error(out, "query name already in use: " + name);
      return true;
    }
    StatusOr<QueryId> id = dist_ != nullptr
                               ? dist_->AddFrequencyQuery(spec, next_seed_++)
                               : engine_.AddFrequencyQuery(spec, next_seed_++);
    if (!id.ok()) {
      Error(out, id.status());
      return true;
    }
    frequency_query_names_.emplace(name, *id);
    Ok(out);
    return true;
  }
  if (command == "distinct") {
    std::string name;
    DistinctCountQuerySpec spec;
    if (!(fields >> name >> spec.stream >> spec.num_maps)) {
      Error(out, "usage: distinct <q> <stream> <maps>");
      return true;
    }
    if (distinct_query_names_.contains(name) ||
        join_query_names_.contains(name)) {
      Error(out, "query name already in use: " + name);
      return true;
    }
    StatusOr<QueryId> id = engine_.AddDistinctCountQuery(spec, next_seed_++);
    if (!id.ok()) {
      Error(out, id.status());
      return true;
    }
    distinct_query_names_.emplace(name, *id);
    Ok(out);
    return true;
  }
  if (command == "topk") {
    std::string name;
    TopKQuerySpec spec;
    if (!(fields >> name >> spec.stream >> spec.k >> spec.space_counters)) {
      Error(out, "usage: topk <q> <stream> <k> <space>");
      return true;
    }
    if (topk_query_names_.contains(name) || join_query_names_.contains(name)) {
      Error(out, "query name already in use: " + name);
      return true;
    }
    StatusOr<QueryId> id = engine_.AddTopKQuery(spec, next_seed_++);
    if (!id.ok()) {
      Error(out, id.status());
      return true;
    }
    topk_query_names_.emplace(name, *id);
    Ok(out);
    return true;
  }
  if (command == "top") {
    std::string name;
    if (!(fields >> name)) {
      Error(out, "usage: top <q>");
      return true;
    }
    const auto it = topk_query_names_.find(name);
    if (it == topk_query_names_.end()) {
      Error(out, "unknown top-k query: " + name);
      return true;
    }
    StatusOr<std::vector<std::pair<uint64_t, int64_t>>> answer =
        engine_.AnswerTopK(it->second);
    if (!answer.ok()) {
      Error(out, answer.status());
      return true;
    }
    out << "ok";
    for (const auto& [value, frequency] : *answer) {
      out << ' ' << value << ':' << frequency;
    }
    out << "\n";
    return true;
  }
  if (command == "quantile") {
    std::string name;
    QuantileQuerySpec spec;
    if (!(fields >> name >> spec.stream >> spec.epsilon)) {
      Error(out, "usage: quantile <q> <stream> <epsilon>");
      return true;
    }
    if (quantile_query_names_.contains(name) ||
        join_query_names_.contains(name)) {
      Error(out, "query name already in use: " + name);
      return true;
    }
    StatusOr<QueryId> id = engine_.AddQuantileQuery(spec);
    if (!id.ok()) {
      Error(out, id.status());
      return true;
    }
    quantile_query_names_.emplace(name, *id);
    Ok(out);
    return true;
  }
  if (command == "phi") {
    std::string name;
    double phi = 0.0;
    if (!(fields >> name >> phi)) {
      Error(out, "usage: phi <q> <phi>");
      return true;
    }
    const auto it = quantile_query_names_.find(name);
    if (it == quantile_query_names_.end()) {
      Error(out, "unknown quantile query: " + name);
      return true;
    }
    StatusOr<uint64_t> answer = engine_.AnswerQuantile(it->second, phi);
    if (!answer.ok()) {
      Error(out, answer.status());
      return true;
    }
    OkValue(out, *answer);
    return true;
  }
  if (command == "update") {
    std::string stream;
    StreamUpdate update;
    if (!(fields >> stream >> update.value)) {
      Error(out, "usage: update <stream> <value> [count] [measure]");
      return true;
    }
    fields >> update.count >> update.measure;  // optional, default 1 / 0
    const Status status = dist_ != nullptr ? dist_->Update(stream, update)
                                           : engine_.Update(stream, update);
    if (!status.ok()) {
      Error(out, status);
      return true;
    }
    Ok(out);
    return true;
  }
  if (command == "load") {
    std::string stream, path;
    if (!(fields >> stream >> path)) {
      Error(out, "usage: load <stream> <trace-path>");
      return true;
    }
    StatusOr<std::vector<stream::StreamElement>> elements =
        stream::ReadTrace(path);
    if (!elements.ok()) {
      Error(out, elements.status());
      return true;
    }
    for (const stream::StreamElement& e : *elements) {
      const Status status =
          engine_.Update(stream, StreamUpdate{e.value, e.weight, 0});
      if (!status.ok()) {
        Error(out, status);
        return true;
      }
    }
    OkValue(out, elements->size());
    return true;
  }
  if (command == "answer") {
    std::string name;
    if (!(fields >> name)) {
      Error(out, "usage: answer <q>");
      return true;
    }
    if (const auto it = join_query_names_.find(name);
        it != join_query_names_.end()) {
      if (always_explain_) {
        // --explain mode: same answer (the report's estimate is
        // bit-identical to AnswerJoin), plus the provenance table.
        StatusOr<EstimateReport> report =
            dist_ != nullptr ? dist_->AnswerJoinWithReport(it->second)
                             : engine_.AnswerJoinWithReport(it->second);
        if (!report.ok()) {
          Error(out, report.status());
          return true;
        }
        OkValue(out, report->estimate);
        out << RenderEstimateReport(*report);
        if (dist_ == nullptr) {
          if (StatusOr<Engine::QueryCacheStats> cache =
                  engine_.QueryCacheStatsFor(it->second);
              cache.ok()) {
            out << "  cache: " << (cache->enabled ? "enabled" : "disabled")
                << " hits=" << cache->hits << " misses=" << cache->misses
                << " invalidations=" << cache->invalidations << "\n";
          }
        }
        return true;
      }
      StatusOr<double> answer = dist_ != nullptr
                                    ? dist_->AnswerJoin(it->second)
                                    : engine_.AnswerJoin(it->second);
      if (!answer.ok()) {
        Error(out, answer.status());
        return true;
      }
      OkValue(out, *answer);
      return true;
    }
    if (const auto it = distinct_query_names_.find(name);
        it != distinct_query_names_.end()) {
      StatusOr<double> answer = engine_.AnswerDistinctCount(it->second);
      if (!answer.ok()) {
        Error(out, answer.status());
        return true;
      }
      OkValue(out, *answer);
      return true;
    }
    Error(out, "unknown join/distinct query: " + name);
    return true;
  }
  if (command == "explain") {
    std::string name;
    if (!(fields >> name)) {
      Error(out, "usage: explain <q>");
      return true;
    }
    const auto it = join_query_names_.find(name);
    if (it == join_query_names_.end()) {
      Error(out, "unknown join query: " + name);
      return true;
    }
    StatusOr<EstimateReport> report =
        dist_ != nullptr ? dist_->AnswerJoinWithReport(it->second)
                         : engine_.AnswerJoinWithReport(it->second);
    if (!report.ok()) {
      Error(out, report.status());
      return true;
    }
    // Multi-line by design: "ok" then the provenance table. The report
    // always recomputes (provenance needs the full estimator path), so the
    // appended cache line reflects prior `answer` traffic, not this call.
    out << "ok\n" << RenderEstimateReport(*report);
    if (dist_ == nullptr) {
      if (StatusOr<Engine::QueryCacheStats> cache =
              engine_.QueryCacheStatsFor(it->second);
          cache.ok()) {
        out << "  cache: " << (cache->enabled ? "enabled" : "disabled")
            << " hits=" << cache->hits << " misses=" << cache->misses
            << " invalidations=" << cache->invalidations << "\n";
      }
    }
    return true;
  }
  if (command == "logs") {
    size_t n = 10;
    bool saw_count = false;
    LogLevel min_level = LogLevel::kDebug;
    bool saw_level = false;
    bool saw_shard = false;
    uint64_t shard_filter = 0;
    std::string token;
    while (fields >> token) {
      if (token == "--shard") {
        if (saw_shard || !(fields >> shard_filter)) {
          Error(out, "usage: logs [n] [debug|info|warn|error] [--shard <k>]");
          return true;
        }
        saw_shard = true;
        continue;
      }
      if (LogLevel level; !saw_level && ParseLogLevelName(token, &level)) {
        min_level = level;
        saw_level = true;
        continue;
      }
      std::istringstream count_in(token);
      if (!saw_count && (count_in >> n) && count_in.peek() == EOF) {
        saw_count = true;
        continue;
      }
      Error(out, "usage: logs [n] [debug|info|warn|error] [--shard <k>]");
      return true;
    }
    if (saw_shard && dist_ != nullptr) {
      // Pull the workers' newest events first so `logs --shard` reflects
      // the fleet as of NOW, not the last explicit scrape.
      (void)dist_->ScrapeFleetEvents();
    }
    // Filter the whole retained ring by level FIRST, then keep the last n,
    // so `logs 5 warn` means "the 5 most recent warn-or-worse events", not
    // "the warn events among the last 5".
    std::vector<LogEvent> events =
        EventLog::Global().Tail(std::numeric_limits<size_t>::max());
    if (saw_level) {
      std::vector<LogEvent> kept;
      for (LogEvent& event : events) {
        if (event.level >= min_level) kept.push_back(std::move(event));
      }
      events = std::move(kept);
    }
    if (saw_shard) {
      // Keep only events scraped from worker `shard_filter` — they carry
      // the origin_shard field the coordinator re-emits them with.
      const std::string want = std::to_string(shard_filter);
      std::vector<LogEvent> kept;
      for (LogEvent& event : events) {
        for (const auto& [key, value] : event.fields) {
          if (key == "origin_shard" && value == want) {
            kept.push_back(std::move(event));
            break;
          }
        }
      }
      events = std::move(kept);
    }
    if (events.size() > n) {
      events.erase(events.begin(),
                   events.end() - static_cast<ptrdiff_t>(n));
    }
    // Multi-line by design: "ok <count>" then one JSON line per event,
    // oldest first (the frozen schema of util/event_log.h).
    out << "ok " << events.size() << "\n";
    for (const LogEvent& event : events) out << ToJsonLine(event) << "\n";
    return true;
  }
  if (command == "health" || command == "doctor") {
    if (dist_ != nullptr) {
      // Fleet mode: the coordinator merges every shard's findings, each
      // labeled with its origin shard; profiles and probes stay worker-side.
      std::string extra;
      if (command == "health" && (fields >> extra)) {
        Error(out,
              "health narrowing is not supported with a distributed backend");
        return true;
      }
      StatusOr<HealthReport> fleet = dist_->FleetHealthReport();
      if (!fleet.ok()) {
        Error(out, fleet.status());
        return true;
      }
      out << "ok " << fleet->findings.size() << "\n"
          << RenderHealthFindings(fleet->findings);
      return true;
    }
    HealthReport report = engine_.HealthReport();
    if (command == "doctor") {
      out << "ok " << report.findings.size() << "\n"
          << RenderHealthFindings(report.findings);
      return true;
    }
    if (std::string target; fields >> target) {
      // Narrow to one query (by shell name) or one stream.
      std::optional<QueryId> id;
      if (const auto it = join_query_names_.find(target);
          it != join_query_names_.end()) {
        id = it->second;
      } else if (const auto it = frequency_query_names_.find(target);
                 it != frequency_query_names_.end()) {
        id = it->second;
      }
      if (id.has_value()) {
        const std::string subject = "query " + std::to_string(*id);
        std::erase_if(report.queries, [&](const QueryHealth& query) {
          return query.id != *id;
        });
        report.streams.clear();
        std::erase_if(report.findings, [&](const HealthFinding& finding) {
          return finding.subject != subject;
        });
      } else {
        bool known_stream = false;
        for (const std::string& name : engine_.StreamNames()) {
          if (name == target) known_stream = true;
        }
        if (!known_stream) {
          Error(out, "unknown join/frequency query or stream: " + target);
          return true;
        }
        const std::string subject = "stream " + target;
        std::erase_if(report.streams, [&](const StreamHealth& stream) {
          return stream.stream != target;
        });
        report.queries.clear();
        std::erase_if(report.findings, [&](const HealthFinding& finding) {
          return finding.subject != subject;
        });
      }
    }
    // Multi-line by design, like `explain`: "ok" then the health tables
    // and findings.
    out << "ok\n" << RenderHealthReport(report);
    return true;
  }
  if (command == "alerts") {
    std::string rel_error_token, ci_width_token;
    double rel_error = 0.0, ci_width = 0.0;
    if (!(fields >> rel_error_token >> ci_width_token) ||
        !ParseDouble(rel_error_token, &rel_error) ||
        !ParseDouble(ci_width_token, &ci_width)) {
      Error(out, "usage: alerts <rel_error> <ci_width> (inf disables)");
      return true;
    }
    engine_.SetAccuracyDriftWarnThreshold(rel_error);
    engine_.SetCiWarnRelWidth(ci_width);
    Ok(out);
    return true;
  }
  if (command == "cache") {
    std::string sub;
    if (!(fields >> sub)) {
      Error(out, "usage: cache <on|off> | cache slim <on|off> | "
                 "cache status <q>");
      return true;
    }
    if (sub == "on" || sub == "off") {
      Engine::ReadPathOptions options = engine_.read_path_options();
      options.use_query_cache = (sub == "on");
      engine_.SetReadPathOptions(options);
      Ok(out);
      return true;
    }
    if (sub == "slim") {
      std::string mode;
      if (!(fields >> mode) || (mode != "on" && mode != "off")) {
        Error(out, "usage: cache slim <on|off>");
        return true;
      }
      Engine::ReadPathOptions options = engine_.read_path_options();
      options.use_slim_views = (mode == "on");
      engine_.SetReadPathOptions(options);
      Ok(out);
      return true;
    }
    if (sub == "status") {
      std::string name;
      if (!(fields >> name)) {
        Error(out, "usage: cache status <q>");
        return true;
      }
      QueryId id = 0;
      if (const auto it = join_query_names_.find(name);
          it != join_query_names_.end()) {
        id = it->second;
      } else if (const auto it = frequency_query_names_.find(name);
                 it != frequency_query_names_.end()) {
        id = it->second;
      } else {
        Error(out, "unknown join/frequency query: " + name);
        return true;
      }
      StatusOr<Engine::QueryCacheStats> stats = engine_.QueryCacheStatsFor(id);
      if (!stats.ok()) {
        Error(out, stats.status());
        return true;
      }
      out << "ok cache=" << (stats->enabled ? "on" : "off")
          << " slim=" << (engine_.read_path_options().use_slim_views ? "on"
                                                                     : "off")
          << " hits=" << stats->hits << " misses=" << stats->misses
          << " invalidations=" << stats->invalidations << "\n";
      return true;
    }
    Error(out, "usage: cache <on|off> | cache slim <on|off> | "
               "cache status <q>");
    return true;
  }
  if (command == "point") {
    std::string name;
    uint64_t value = 0;
    if (!(fields >> name >> value)) {
      Error(out, "usage: point <q> <value>");
      return true;
    }
    const auto it = frequency_query_names_.find(name);
    if (it == frequency_query_names_.end()) {
      Error(out, "unknown frequency query: " + name);
      return true;
    }
    StatusOr<int64_t> answer =
        dist_ != nullptr ? dist_->AnswerPointFrequency(it->second, value)
                         : engine_.AnswerPointFrequency(it->second, value);
    if (!answer.ok()) {
      Error(out, answer.status());
      return true;
    }
    OkValue(out, *answer);
    return true;
  }
  if (command == "heavy") {
    std::string name;
    int64_t threshold = 0;
    if (!(fields >> name >> threshold)) {
      Error(out, "usage: heavy <q> <threshold>");
      return true;
    }
    const auto it = frequency_query_names_.find(name);
    if (it == frequency_query_names_.end()) {
      Error(out, "unknown frequency query: " + name);
      return true;
    }
    StatusOr<core::DenseFrequencies> answer =
        engine_.AnswerHeavyHitters(it->second, threshold);
    if (!answer.ok()) {
      Error(out, answer.status());
      return true;
    }
    out << "ok";
    for (const auto& [value, frequency] : *answer) {
      out << ' ' << value << ':' << frequency;
    }
    out << "\n";
    return true;
  }
  if (command == "checkpoint") {
    if (dist_ != nullptr) {
      // Distributed mode: each worker checkpoints to its own configured
      // path; the shell just triggers the fleet-wide sweep.
      const Status status = dist_->CheckpointShards();
      if (!status.ok()) {
        Error(out, status);
        return true;
      }
      Ok(out);
      return true;
    }
    std::string path;
    if (!(fields >> path)) {
      Error(out, "usage: checkpoint <path>");
      return true;
    }
    // The engine checkpoint carries arbitrary metadata; stash the shell's
    // query-name maps there so names survive a save/restore round trip.
    std::map<std::string, std::string> metadata;
    const auto save_names =
        [&metadata](const std::string& kind,
                    const std::unordered_map<std::string, QueryId>& names) {
          for (const auto& [name, id] : names) {
            metadata["shell." + kind + "." + name] = std::to_string(id);
          }
        };
    save_names("join", join_query_names_);
    save_names("freq", frequency_query_names_);
    save_names("distinct", distinct_query_names_);
    save_names("topk", topk_query_names_);
    save_names("quantile", quantile_query_names_);
    const Status status = engine_.SaveCheckpoint(path, metadata);
    if (!status.ok()) {
      Error(out, status);
      return true;
    }
    Ok(out);
    return true;
  }
  if (command == "restore") {
    std::string path, mode;
    if (!(fields >> path)) {
      Error(out, "usage: restore <path> [partial]");
      return true;
    }
    RestoreOptions options;
    if (fields >> mode) {
      if (mode != "partial") {
        Error(out, "usage: restore <path> [partial]");
        return true;
      }
      options.allow_partial = true;
    }
    StatusOr<RestoreReport> report = engine_.RestoreCheckpoint(path, options);
    if (!report.ok()) {
      Error(out, report.status());
      return true;
    }
    join_query_names_.clear();
    frequency_query_names_.clear();
    distinct_query_names_.clear();
    topk_query_names_.clear();
    quantile_query_names_.clear();
    for (const auto& [key, value] : report->metadata) {
      if (key.rfind("shell.", 0) != 0) continue;
      const size_t kind_end = key.find('.', 6);
      if (kind_end == std::string::npos) continue;
      const std::string kind = key.substr(6, kind_end - 6);
      const std::string name = key.substr(kind_end + 1);
      QueryId id = 0;
      std::istringstream id_in(value);
      if (name.empty() || !(id_in >> id)) continue;
      if (kind == "join") {
        join_query_names_.emplace(name, id);
      } else if (kind == "freq") {
        frequency_query_names_.emplace(name, id);
      } else if (kind == "distinct") {
        distinct_query_names_.emplace(name, id);
      } else if (kind == "topk") {
        topk_query_names_.emplace(name, id);
      } else if (kind == "quantile") {
        quantile_query_names_.emplace(name, id);
      }
    }
    if (report->lost.empty()) {
      Ok(out);
    } else {
      OkValue(out, "lost " + std::to_string(report->lost.size()));
    }
    return true;
  }
  if (command == "count") {
    std::string stream;
    if (!(fields >> stream)) {
      Error(out, "usage: count <stream>");
      return true;
    }
    StatusOr<int64_t> answer = engine_.StreamElementCount(stream);
    if (!answer.ok()) {
      Error(out, answer.status());
      return true;
    }
    OkValue(out, *answer);
    return true;
  }
  if (command == "streams") {
    out << "ok";
    for (const std::string& name : engine_.StreamNames()) {
      StatusOr<ingest::IngestStats> stats = engine_.StreamIngestStats(name);
      StatusOr<int64_t> count = engine_.StreamElementCount(name);
      if (!stats.ok() || !count.ok()) continue;  // unreachable: name is live
      out << ' ' << name << ":count=" << *count
          << ",absorbed=" << stats->elements_absorbed
          << ",dropped=" << stats->elements_dropped
          << ",batches=" << stats->batches << ",merges=" << stats->merges
          << ",absorb_nanos=" << stats->absorb_nanos
          << ",merge_nanos=" << stats->merge_nanos;
    }
    out << "\n";
    return true;
  }
  if (command == "stats") {
    uint64_t absorbed = 0, dropped = 0, batches = 0, merges = 0;
    for (const std::string& name : engine_.StreamNames()) {
      StatusOr<ingest::IngestStats> stats = engine_.StreamIngestStats(name);
      if (!stats.ok()) continue;  // unreachable: name is live
      absorbed += stats->elements_absorbed;
      dropped += stats->elements_dropped;
      batches += stats->batches;
      merges += stats->merges;
    }
    out << "ok streams=" << engine_.num_streams()
        << " relations=" << engine_.num_relations()
        << " queries=" << engine_.num_queries() << " absorbed=" << absorbed
        << " dropped=" << dropped << " batches=" << batches
        << " merges=" << merges << "\n";
    return true;
  }
  if (command == "metrics") {
    bool want_fleet = false;
    std::string format;
    fields >> format;  // optional "fleet", then optional format
    if (format == "fleet") {
      want_fleet = true;
      format.clear();
      fields >> format;
    }
    if (want_fleet && dist_ == nullptr) {
      Error(out, "no distributed backend attached");
      return true;
    }
    metrics::Snapshot snapshot;
    std::string banner;
    if (dist_ != nullptr) {
      // Distributed mode routes to the fleet path whether or not the
      // caller said `fleet`: a merged snapshot (coordinator series plus
      // every shard's, labeled shard="<k>") is what an operator means by
      // "the metrics". A backend without the fleet path falls back to the
      // coordinator-local registry, flagged by a banner line so nobody
      // mistakes it for fleet coverage.
      StatusOr<metrics::Snapshot> fleet = dist_->FleetMetricsSnapshot();
      if (fleet.ok()) {
        snapshot = std::move(*fleet);
      } else if (want_fleet) {
        Error(out, fleet.status());
        return true;
      } else {
        metrics::Registry* registry = dist_->MetricsRegistry();
        if (registry == nullptr) {
          Error(out, "the attached distributed backend exposes no metrics");
          return true;
        }
        snapshot = registry->TakeSnapshot();
        banner = "(coordinator-local; use 'metrics fleet')";
      }
    } else {
      snapshot = engine_.MetricsSnapshot();
    }
    if (format.empty() || format == "json") {
      OkValue(out, metrics::ToJson(snapshot));
      if (!banner.empty()) out << banner << "\n";
    } else if (format == "prom") {
      // The documented exception to the one-line contract: the Prometheus
      // text exposition format is inherently multi-line.
      out << "ok\n";
      if (!banner.empty()) out << "# " << banner << "\n";
      out << metrics::ToPrometheusText(snapshot);
    } else {
      Error(out, "usage: metrics [fleet] [json|prom]");
    }
    return true;
  }
  Error(out, "unknown command: " + command + " (try `help`)");
  return true;
}

int Shell::Run(std::istream& in, std::ostream& out) {
  int errors = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::ostringstream response;
    const bool keep_going = ExecuteLine(line, response);
    const std::string text = response.str();
    out << text;
    if (text.rfind("error:", 0) == 0) ++errors;
    if (post_command_hook_) post_command_hook_();
    if (!keep_going) break;
  }
  return errors;
}

}  // namespace query
}  // namespace skimjoin
