// Options and report types for engine checkpoint/restore (the
// implementation lives in checkpoint.cc as Engine member functions; the
// entry points are Engine::SaveCheckpoint / Engine::RestoreCheckpoint in
// engine.h).
//
// A checkpoint is a durable file (util/durable_file.h) holding:
//   section "manifest"     — versioned text manifest: streams, relations,
//                            ingest stats, every query's spec + seed (with
//                            a supported/unsupported flag), engine counters
//   section "meta:<key>"   — one per caller-provided metadata entry
//   section "query:<id>"   — the serialized synopsis of each supported
//                            query, ascending by id
// Every section rides the durable file's CRC + end-marker framing, and the
// whole file is committed atomically (temp → fsync → rename), so a crash
// during save can never clobber the previous checkpoint.
//
// Query kinds whose synopses cannot be serialized (sampling and
// partitioned-AGMS join estimators, chain joins) are LISTED in the
// manifest as unsupported — never silently skipped. A strict restore of a
// checkpoint containing one fails with UNIMPLEMENTED; with
// RestoreOptions{.allow_partial = true} the restore instead recovers every
// intact synopsis, re-registers what it can as empty, and reports each
// loss in RestoreReport::lost.

#ifndef SKIMJOIN_QUERY_CHECKPOINT_H_
#define SKIMJOIN_QUERY_CHECKPOINT_H_

#include <map>
#include <string>
#include <vector>

#include "query/query.h"

namespace skimjoin {
namespace query {

/// How Engine::RestoreCheckpoint treats queries it cannot fully recover.
struct RestoreOptions {
  /// false (default): any unrecoverable query — an unsupported kind in the
  /// manifest, or a missing/corrupt synopsis section — fails the whole
  /// restore and leaves the engine empty. true: recover every intact
  /// synopsis, re-register lossy queries with empty synopses where
  /// possible, and report each loss.
  bool allow_partial = false;
};

/// One query the restore could not fully recover.
struct RestoreLoss {
  QueryId query = 0;
  /// Manifest kind ("join", "chain", ...).
  std::string kind;
  /// Human-readable explanation (what was lost, and whether the query was
  /// re-registered empty or dropped entirely).
  std::string reason;
};

/// What Engine::RestoreCheckpoint recovered.
struct RestoreReport {
  /// Queries restored without their synopsis state (or not at all) —
  /// empty on a full-fidelity restore.
  std::vector<RestoreLoss> lost;
  /// The metadata map passed to SaveCheckpoint, round-tripped.
  std::map<std::string, std::string> metadata;
};

}  // namespace query
}  // namespace skimjoin

#endif  // SKIMJOIN_QUERY_CHECKPOINT_H_
