#include "query/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "hashing/simd_hash.h"
#include "util/event_log.h"
#include "util/logging.h"
#include "util/table_printer.h"

namespace skimjoin {
namespace query {
namespace {

// Compact numeric rendering for event-log payloads (events carry string
// fields; %g keeps magnitudes readable without fixed-point noise).
std::string FormatForEvent(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

/// Times one Answer* call: bumps the call counter on entry, records the
/// elapsed nanoseconds on exit. The clock reads stay in even when histogram
/// recording is compiled out — answer paths are cold, and keeping the
/// object unconditional keeps the call sites branch-free.
class ScopedEstimate {
 public:
  ScopedEstimate(metrics::Counter* calls, metrics::ShardedHistogram* nanos)
      : nanos_(nanos), start_(std::chrono::steady_clock::now()) {
    if (calls != nullptr) calls->Increment();
  }
  ~ScopedEstimate() {
    if (nanos_ == nullptr) return;
    nanos_->Record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }

  ScopedEstimate(const ScopedEstimate&) = delete;
  ScopedEstimate& operator=(const ScopedEstimate&) = delete;

 private:
  metrics::ShardedHistogram* nanos_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

const char* HealthSeverityName(HealthFinding::Severity severity) {
  switch (severity) {
    case HealthFinding::Severity::kInfo:
      return "info";
    case HealthFinding::Severity::kWarn:
      return "warn";
    case HealthFinding::Severity::kCritical:
      return "critical";
  }
  return "unknown";
}

std::string RenderHealthFindings(const std::vector<HealthFinding>& findings) {
  if (findings.empty()) return "no findings\n";
  std::ostringstream out;
  for (const HealthFinding& finding : findings) {
    out << '[' << HealthSeverityName(finding.severity) << "] "
        << finding.subject;
    if (!finding.shard.empty()) out << "{shard=\"" << finding.shard << "\"}";
    out << ' ' << finding.rule << ": " << finding.message << '\n';
  }
  return out.str();
}

std::string RenderHealthReport(const HealthReport& report) {
  std::ostringstream out;
  TablePrinter streams("stream health",
                      {"stream", "absorbed", "dropped", "skew", "distinct",
                       "delete_ratio", "heavy_mass", "hash_cache_hit"});
  for (const StreamHealth& stream : report.streams) {
    std::string skew = "n/a";
    std::string distinct = "n/a";
    std::string delete_ratio = "n/a";
    std::string heavy_mass = "n/a";
    if (stream.profile.has_value()) {
      if (!std::isnan(stream.profile->skew)) {
        skew = TablePrinter::FormatDouble(stream.profile->skew, 2);
      }
      distinct = TablePrinter::FormatDouble(stream.profile->distinct_estimate, 0);
      delete_ratio = TablePrinter::FormatDouble(stream.profile->delete_ratio, 2);
      heavy_mass =
          TablePrinter::FormatDouble(stream.profile->heavy_mass_fraction, 2);
    }
    streams.AddRow(
        {stream.stream, std::to_string(stream.elements_absorbed),
         std::to_string(stream.elements_dropped), skew, distinct, delete_ratio,
         heavy_mass,
         std::isnan(stream.hash_cache_hit_rate)
             ? "n/a"
             : TablePrinter::FormatDouble(stream.hash_cache_hit_rate, 2)});
  }
  streams.Print(out);

  if (!report.queries.empty()) {
    out << '\n';
    TablePrinter queries("synopsis health",
                         {"query", "method", "streams", "synopsis", "probe"});
    for (const QueryHealth& query : report.queries) {
      for (const SynopsisHealth& health : query.synopses) {
        const std::string synopsis =
            health.role.empty() ? health.kind
                                : health.kind + "." + health.role;
        queries.AddRow({std::to_string(query.id), query.method, query.streams,
                        synopsis, DescribeSynopsisHealth(health)});
      }
    }
    queries.Print(out);
  }

  out << '\n' << RenderHealthFindings(report.findings);
  return out.str();
}

void Engine::InitStreamMetrics(StreamState* state) {
  const std::string prefix = "ingest." + state->spec.name + ".";
  state->absorbed = metrics_.GetCounter(prefix + "elements_absorbed");
  state->batches = metrics_.GetCounter(prefix + "batches");
  state->dropped = metrics_.GetCounter(prefix + "elements_dropped");
  state->merges = metrics_.GetCounter(prefix + "merges");
  state->absorb_nanos = metrics_.GetCounter(prefix + "absorb_nanos");
  state->merge_nanos = metrics_.GetCounter(prefix + "merge_nanos");
  state->hash_cache_hits = metrics_.GetCounter(prefix + "hash_cache_hits");
  state->hash_cache_misses = metrics_.GetCounter(prefix + "hash_cache_misses");
  state->epoch_lag = metrics_.GetGauge(prefix + "epoch_lag");

  metrics_.SetHelp(prefix + "elements_absorbed",
                   "In-domain stream elements fed to this stream's synopses.");
  metrics_.SetHelp(prefix + "batches", "UpdateBatch calls on this stream.");
  metrics_.SetHelp(prefix + "elements_dropped",
                   "Out-of-domain elements dropped before any synopsis.");
  metrics_.SetHelp(prefix + "merges",
                   "Sharded-ingest merge rounds (SetIngestShards > 1).");
  metrics_.SetHelp(prefix + "absorb_nanos",
                   "Nanoseconds worker shards spent absorbing batches.");
  metrics_.SetHelp(prefix + "merge_nanos",
                   "Nanoseconds spent merging shard replicas back.");
  metrics_.SetHelp(prefix + "hash_cache_hits",
                   "Hash-plan cache hits across this stream's frequency-query "
                   "synopses (inline batch path).");
  metrics_.SetHelp(prefix + "hash_cache_misses",
                   "Hash-plan cache misses across this stream's "
                   "frequency-query synopses (inline batch path).");
  metrics_.SetHelp(prefix + "epoch_lag",
                   "Elements accepted by concurrent-mode UpdateBatch but "
                   "not yet visible to readers; 0 after FlushIngest.");

  const std::string profile = prefix + "profile.";
  metrics_.SetHelp(profile + "observations",
                   "Stream elements seen by the workload profiler.");
  metrics_.SetHelp(profile + "delete_ratio",
                   "Delete mass over total mass observed by the profiler.");
  metrics_.SetHelp(profile + "distinct_estimate",
                   "Profiler HLL estimate of distinct values seen.");
  metrics_.SetHelp(profile + "distinct_rate",
                   "Distinct estimate over observations (1.0 = every element "
                   "new).");
  metrics_.SetHelp(profile + "skew",
                   "Fitted Zipf exponent of the stream's frequency "
                   "distribution (NaN until stable heavy hitters exist).");
  metrics_.SetHelp(profile + "heavy_mass_fraction",
                   "Fraction of insert mass covered by the profiler's "
                   "monitored heavy hitters.");
  metrics_.SetHelp(profile + "net_mass",
                   "Net mass (inserts minus deletes) observed by the "
                   "profiler.");
}

Engine::QueryMetrics Engine::MakeQueryMetrics(QueryId id) {
  const std::string prefix = "query." + std::to_string(id) + ".";
  QueryMetrics metrics;
  metrics.estimate_calls = metrics_.GetCounter(prefix + "estimate_calls");
  metrics.estimate_ns = metrics_.GetHistogram(prefix + "estimate_ns");
  metrics.memory_bytes = metrics_.GetGauge(prefix + "memory_bytes");
  metrics.rel_error = metrics_.GetHistogram(prefix + "rel_error");
  metrics.ci_rel_width = metrics_.GetHistogram(prefix + "ci_rel_width");
  metrics.skim_residual_ratio =
      metrics_.GetHistogram(prefix + "skim_residual_ratio");
  metrics.cache_hits = metrics_.GetCounter(prefix + "cache_hits");
  metrics.cache_misses = metrics_.GetCounter(prefix + "cache_misses");
  metrics.cache_invalidations =
      metrics_.GetCounter(prefix + "cache_invalidations");

  metrics_.SetHelp(prefix + "estimate_calls",
                   "Answer* calls against this query.");
  metrics_.SetHelp(prefix + "estimate_ns",
                   "Nanoseconds per actual estimator execution (cache hits "
                   "excluded).");
  metrics_.SetHelp(prefix + "memory_bytes",
                   "Current synopsis footprint in bytes (refreshed "
                   "pull-style).");
  metrics_.SetHelp(prefix + "rel_error",
                   "Observed relative error against an attached exact "
                   "reference.");
  metrics_.SetHelp(prefix + "ci_rel_width",
                   "Relative width of the empirical CI from *WithReport "
                   "answers.");
  metrics_.SetHelp(prefix + "skim_residual_ratio",
                   "Residual-to-original L2 ratio per stream from skimmed "
                   "join reports.");
  metrics_.SetHelp(prefix + "cache_hits", "Query-cache hits (read path).");
  metrics_.SetHelp(prefix + "cache_misses",
                   "Query-cache misses, including invalidated entries.");
  metrics_.SetHelp(prefix + "cache_invalidations",
                   "Cached answers discarded because a participating "
                   "stream's epoch advanced.");
  metrics_.SetHelp(prefix + "health.occupancy",
                   "Max nonzero-counter fraction across this query's "
                   "synopses (last HealthReport).");
  metrics_.SetHelp(prefix + "health.int32_saturation",
                   "Max p99 |counter| over int32 range across this query's "
                   "synopses (last HealthReport).");
  metrics_.SetHelp(prefix + "health.collision_pressure",
                   "Max estimated distinct values per bucket across this "
                   "query's synopses (last HealthReport).");
  return metrics;
}

QueryCache::Epochs Engine::EpochsFor(const JoinQueryState& q) const {
  // Self-joins register left == right; the duplicate entry is harmless
  // (both slots move together) and keeps the shape uniform.
  return {streams_[q.left].absorbed->Value(),
          streams_[q.right].absorbed->Value()};
}

QueryCache::Epochs Engine::EpochsFor(const FrequencyQueryState& q) const {
  return {streams_[q.stream].absorbed->Value()};
}

void Engine::CountCacheOutcome(const QueryMetrics& metrics,
                               QueryCache::Outcome outcome) {
  switch (outcome) {
    case QueryCache::Outcome::kHit:
      metrics.cache_hits->Increment();
      break;
    case QueryCache::Outcome::kMiss:
      metrics.cache_misses->Increment();
      break;
    case QueryCache::Outcome::kInvalidated:
      // An invalidated entry still forces a recompute, so it is both an
      // invalidation and a miss — dashboards can read hit rates off
      // hits / (hits + misses) without special-casing.
      metrics.cache_invalidations->Increment();
      metrics.cache_misses->Increment();
      break;
  }
}

void Engine::SetReadPathOptions(const ReadPathOptions& options) {
  if (!options.use_query_cache) query_cache_.DropAll();
  if (!options.use_slim_views) {
    for (auto& [id, q] : frequency_queries_) q.slim.reset();
  }
  read_path_ = options;
}

StatusOr<Engine::QueryCacheStats> Engine::QueryCacheStatsFor(
    QueryId query) const {
  const QueryMetrics* metrics = nullptr;
  if (const auto it = join_queries_.find(query); it != join_queries_.end()) {
    metrics = &it->second.metrics;
  } else if (const auto fit = frequency_queries_.find(query);
             fit != frequency_queries_.end()) {
    metrics = &fit->second.metrics;
  }
  if (metrics == nullptr) {
    return NotFoundError("query " + std::to_string(query) +
                         " has no cached read path (not a join or "
                         "frequency query)");
  }
  QueryCacheStats stats;
  stats.enabled = read_path_.use_query_cache;
  stats.hits = metrics->cache_hits->Value();
  stats.misses = metrics->cache_misses->Value();
  stats.invalidations = metrics->cache_invalidations->Value();
  return stats;
}

ingest::IngestStats Engine::IngestStatsFor(const StreamState& state) const {
  ingest::IngestStats stats;
  stats.elements_absorbed = state.absorbed->Value();
  stats.batches = state.batches->Value();
  stats.elements_dropped = state.dropped->Value();
  stats.merges = state.merges->Value();
  stats.absorb_nanos = state.absorb_nanos->Value();
  stats.merge_nanos = state.merge_nanos->Value();
  stats.hash_cache_hits = state.hash_cache_hits->Value();
  stats.hash_cache_misses = state.hash_cache_misses->Value();
  return stats;
}

void Engine::RecordRelError(QueryId query, metrics::ShardedHistogram* histogram,
                            double estimate, double exact) const {
  const double rel_error =
      std::abs(estimate - exact) / std::max(1.0, std::abs(exact));
  if (histogram != nullptr) histogram->Record(rel_error);
  if (rel_error > drift_warn_threshold_) {
    EventLog::Global().Emit(LogLevel::kWarn, "accuracy_drift",
                            {{"query", std::to_string(query)},
                             {"estimate", FormatForEvent(estimate)},
                             {"exact", FormatForEvent(exact)},
                             {"rel_error", FormatForEvent(rel_error)},
                             {"threshold",
                              FormatForEvent(drift_warn_threshold_)}});
  }
}

void Engine::RecordReportMetrics(QueryId query, const QueryMetrics& metrics,
                                 const EstimateReport& report) const {
  const double rel_width = report.CiRelWidth();
  if (metrics.ci_rel_width != nullptr) metrics.ci_rel_width->Record(rel_width);
  if (report.skim.has_value() && metrics.skim_residual_ratio != nullptr) {
    metrics.skim_residual_ratio->Record(report.skim->ResidualRatioF());
    metrics.skim_residual_ratio->Record(report.skim->ResidualRatioG());
  }
  if (rel_width > ci_warn_rel_width_) {
    EventLog::Global().Emit(
        LogLevel::kWarn, "ci_blowup",
        {{"query", std::to_string(query)},
         {"method", report.method},
         {"estimate", FormatForEvent(report.estimate)},
         {"ci_lower", FormatForEvent(report.ci.lower)},
         {"ci_upper", FormatForEvent(report.ci.upper)},
         {"ci_rel_width", FormatForEvent(rel_width)},
         {"threshold", FormatForEvent(ci_warn_rel_width_)}});
  }
}

StatusOr<StreamId> Engine::RegisterStream(const StreamSpec& spec) {
  if (spec.name.empty()) {
    return InvalidArgumentError("stream name must be non-empty");
  }
  if (spec.domain_size < 2) {
    return InvalidArgumentError("stream domain_size must be >= 2");
  }
  if (stream_ids_.contains(spec.name)) {
    return AlreadyExistsError("stream already registered: " + spec.name);
  }
  const StreamId id = streams_.size();
  StreamState state;
  state.spec = spec;
  InitStreamMetrics(&state);
  state.profiler = std::make_unique<util::StreamProfiler>();
  streams_.push_back(std::move(state));
  stream_ids_.emplace(spec.name, id);
  return id;
}

StatusOr<StreamId> Engine::FindStream(const std::string& name) const {
  const auto it = stream_ids_.find(name);
  if (it == stream_ids_.end()) {
    return NotFoundError("unknown stream: " + name);
  }
  return it->second;
}

StatusOr<QueryId> Engine::AddJoinQuery(const JoinQuerySpec& spec,
                                       uint64_t seed) {
  SKIMJOIN_ASSIGN_OR_RETURN(const StreamId left, FindStream(spec.left_stream));
  SKIMJOIN_ASSIGN_OR_RETURN(const StreamId right,
                            FindStream(spec.right_stream));
  const StreamState& left_state = streams_[left];
  const StreamState& right_state = streams_[right];
  if (left_state.spec.domain_size != right_state.spec.domain_size) {
    return InvalidArgumentError(
        "join streams must share a domain: " + spec.left_stream + " vs " +
        spec.right_stream);
  }

  core::EstimatorSpec estimator_spec = spec.estimator;
  estimator_spec.domain_size = left_state.spec.domain_size;
  SKIMJOIN_ASSIGN_OR_RETURN(std::unique_ptr<core::JoinEstimatorPair> pair,
                            core::CreateJoinEstimatorPair(estimator_spec,
                                                          seed));

  const QueryId id = next_query_id_++;
  join_queries_.emplace(
      id, JoinQueryState{std::move(pair), left, right, spec.left_input,
                         spec.right_input, spec.left_predicate,
                         spec.right_predicate, spec, seed,
                         MakeQueryMetrics(id)});
  return id;
}

StatusOr<QueryId> Engine::AddSelfJoinQuery(const SelfJoinQuerySpec& spec,
                                           uint64_t seed) {
  JoinQuerySpec join_spec;
  join_spec.left_stream = spec.stream;
  join_spec.right_stream = spec.stream;
  join_spec.estimator = spec.estimator;
  join_spec.left_input = spec.input;
  join_spec.right_input = spec.input;
  join_spec.left_predicate = spec.predicate;
  join_spec.right_predicate = spec.predicate;
  return AddJoinQuery(join_spec, seed);
}

StatusOr<QueryId> Engine::AddFrequencyQuery(const FrequencyQuerySpec& spec,
                                            uint64_t seed) {
  SKIMJOIN_ASSIGN_OR_RETURN(const StreamId stream, FindStream(spec.stream));
  if (spec.num_tables < 1 || spec.space_counters < spec.num_tables) {
    return InvalidArgumentError(
        "frequency query needs 1 <= num_tables <= space_counters");
  }

  core::SkimmedSketchConfig config;
  config.domain_size = streams_[stream].spec.domain_size;
  config.num_tables = spec.num_tables;
  config.use_dyadic_skim = spec.use_dyadic;
  if (spec.use_dyadic) {
    config.num_buckets = std::max<uint64_t>(
        1, spec.space_counters / (2 * spec.num_tables));
    uint64_t levels = 0;
    while ((uint64_t{1} << levels) < config.domain_size) ++levels;
    config.dyadic_num_buckets = std::max<uint64_t>(
        1, spec.space_counters / (2 * spec.num_tables * levels));
  } else {
    config.num_buckets =
        std::max<uint64_t>(1, spec.space_counters / spec.num_tables);
  }
  SKIMJOIN_ASSIGN_OR_RETURN(core::SkimmedSketch sketch,
                            core::SkimmedSketch::Create(config, seed));
  sketch.SetKernelOptions(kernel_options_);

  const QueryId id = next_query_id_++;
  frequency_queries_.emplace(
      id, FrequencyQueryState{std::move(sketch), stream, spec.predicate,
                              std::nullopt, spec, seed, MakeQueryMetrics(id),
                              /*cache_hits_seen=*/0, /*cache_misses_seen=*/0,
                              /*slim=*/std::nullopt,
                              /*concurrent=*/nullptr});
  return id;
}

StatusOr<QueryId> Engine::AddDistinctCountQuery(
    const DistinctCountQuerySpec& spec, uint64_t seed) {
  SKIMJOIN_ASSIGN_OR_RETURN(const StreamId stream, FindStream(spec.stream));
  SKIMJOIN_ASSIGN_OR_RETURN(sketch::FmSketch sketch,
                            sketch::FmSketch::Create(spec.num_maps, seed));
  const QueryId id = next_query_id_++;
  distinct_queries_.emplace(
      id, DistinctQueryState{std::move(sketch), stream, spec.predicate, spec,
                             seed, MakeQueryMetrics(id)});
  return id;
}

StatusOr<QueryId> Engine::AddTopKQuery(const TopKQuerySpec& spec,
                                       uint64_t seed) {
  SKIMJOIN_ASSIGN_OR_RETURN(const StreamId stream, FindStream(spec.stream));
  if (spec.num_tables < 1 || spec.space_counters < spec.num_tables) {
    return InvalidArgumentError(
        "top-k query needs 1 <= num_tables <= space_counters");
  }
  sketch::HashSketchConfig config;
  config.num_tables = spec.num_tables;
  config.num_buckets =
      std::max<uint64_t>(1, spec.space_counters / spec.num_tables);
  SKIMJOIN_ASSIGN_OR_RETURN(core::TopKTracker tracker,
                            core::TopKTracker::Create(spec.k, config, seed));
  const QueryId id = next_query_id_++;
  topk_queries_.emplace(
      id, TopKQueryState{std::move(tracker), stream, spec.predicate, spec,
                         seed, MakeQueryMetrics(id)});
  return id;
}

StatusOr<QueryId> Engine::AddQuantileQuery(const QuantileQuerySpec& spec) {
  SKIMJOIN_ASSIGN_OR_RETURN(const StreamId stream, FindStream(spec.stream));
  SKIMJOIN_ASSIGN_OR_RETURN(stream::GkQuantileSummary summary,
                            stream::GkQuantileSummary::Create(spec.epsilon));
  const QueryId id = next_query_id_++;
  quantile_queries_.emplace(
      id, QuantileQueryState{std::move(summary), stream, spec.predicate, spec,
                             MakeQueryMetrics(id)});
  return id;
}

StatusOr<QueryId> Engine::AddRangeSumQuery(const RangeSumQuerySpec& spec) {
  SKIMJOIN_ASSIGN_OR_RETURN(const StreamId stream, FindStream(spec.stream));
  if (spec.coefficient_budget < 1) {
    return InvalidArgumentError("coefficient_budget must be >= 1");
  }
  SKIMJOIN_ASSIGN_OR_RETURN(
      stream::WaveletSynopsis synopsis,
      stream::WaveletSynopsis::Create(streams_[stream].spec.domain_size));
  const QueryId id = next_query_id_++;
  range_sum_queries_.emplace(
      id, RangeSumQueryState{std::move(synopsis), stream,
                             spec.coefficient_budget, spec.predicate, spec,
                             MakeQueryMetrics(id)});
  return id;
}

StatusOr<StreamId> Engine::RegisterRelation(const RelationSpec& spec) {
  if (spec.name.empty()) {
    return InvalidArgumentError("relation name must be non-empty");
  }
  if (spec.arity < 1 || spec.arity > 2) {
    return InvalidArgumentError(
        "chain-join relations carry 1 (end) or 2 (interior) join attributes");
  }
  if (spec.domain_size < 2) {
    return InvalidArgumentError("relation domain_size must be >= 2");
  }
  if (relation_ids_.contains(spec.name) || stream_ids_.contains(spec.name)) {
    return AlreadyExistsError("name already registered: " + spec.name);
  }
  const StreamId id = relations_.size();
  relations_.push_back(RelationState{spec, 0});
  relation_ids_.emplace(spec.name, id);
  return id;
}

StatusOr<StreamId> Engine::FindRelation(const std::string& name) const {
  const auto it = relation_ids_.find(name);
  if (it == relation_ids_.end()) {
    return NotFoundError("unknown relation: " + name);
  }
  return it->second;
}

StatusOr<QueryId> Engine::AddChainJoinQuery(const ChainJoinQuerySpec& spec,
                                            uint64_t seed) {
  if (spec.relations.size() < 2) {
    return InvalidArgumentError("a chain join needs >= 2 relations");
  }
  std::vector<StreamId> chain;
  chain.reserve(spec.relations.size());
  for (size_t position = 0; position < spec.relations.size(); ++position) {
    SKIMJOIN_ASSIGN_OR_RETURN(const StreamId id,
                              FindRelation(spec.relations[position]));
    const bool is_end =
        (position == 0 || position + 1 == spec.relations.size());
    const uint64_t expected_arity = is_end ? 1 : 2;
    if (relations_[id].spec.arity != expected_arity) {
      return InvalidArgumentError(
          "relation " + spec.relations[position] + " has arity " +
          std::to_string(relations_[id].spec.arity) + " but chain position " +
          std::to_string(position) + " requires arity " +
          std::to_string(expected_arity));
    }
    chain.push_back(id);
  }

  ChainJoinQueryState state;
  state.chain = std::move(chain);
  state.spec = spec;
  state.seed = seed;
  if (spec.method == ChainJoinQuerySpec::Method::kAgmsGrid) {
    MultiJoinConfig config;
    config.num_means = spec.num_means;
    config.num_medians = spec.num_medians;
    config.relation_attributes.push_back({0});
    for (size_t r = 1; r + 1 < spec.relations.size(); ++r) {
      config.relation_attributes.push_back({r - 1, r});
    }
    config.relation_attributes.push_back({spec.relations.size() - 2});
    SKIMJOIN_ASSIGN_OR_RETURN(MultiJoinEstimator grid,
                              MultiJoinEstimator::Create(config, seed));
    state.grid = std::move(grid);
  } else {
    MultiJoinHashConfig config;
    config.num_relations = spec.relations.size();
    config.num_tables = spec.num_tables;
    config.num_buckets = spec.num_buckets;
    SKIMJOIN_ASSIGN_OR_RETURN(MultiJoinHashEstimator hashed,
                              MultiJoinHashEstimator::Create(config, seed));
    state.hashed = std::move(hashed);
  }
  const QueryId id = next_query_id_++;
  state.metrics = MakeQueryMetrics(id);
  chain_queries_.emplace(id, std::move(state));
  return id;
}

Status Engine::UpdateRelation(const std::string& relation,
                              const std::vector<uint64_t>& attributes,
                              int64_t weight) {
  StatusOr<StreamId> id = FindRelation(relation);
  SKIMJOIN_RETURN_IF_ERROR(id.status());
  RelationState& state = relations_[*id];
  if (attributes.size() != state.spec.arity) {
    return InvalidArgumentError(
        "relation " + relation + " expects " +
        std::to_string(state.spec.arity) + " attribute values, got " +
        std::to_string(attributes.size()));
  }
  for (uint64_t value : attributes) {
    if (value >= state.spec.domain_size) {
      return OutOfRangeError("attribute value outside the domain of " +
                             relation);
    }
  }
  state.tuple_count += weight;

  for (auto& [query_id, q] : chain_queries_) {
    for (size_t position = 0; position < q.chain.size(); ++position) {
      if (q.chain[position] != *id) continue;
      if (q.grid.has_value()) {
        SKIMJOIN_RETURN_IF_ERROR(q.grid->Update(position, attributes, weight));
      } else {
        const bool is_end =
            (position == 0 || position + 1 == q.chain.size());
        if (is_end) {
          SKIMJOIN_RETURN_IF_ERROR(
              q.hashed->UpdateEnd(position, attributes[0], weight));
        } else {
          SKIMJOIN_RETURN_IF_ERROR(q.hashed->UpdateMiddle(
              position, attributes[0], attributes[1], weight));
        }
      }
    }
  }
  return OkStatus();
}

Status Engine::Update(const std::string& stream, const StreamUpdate& update) {
  StatusOr<StreamId> id = FindStream(stream);
  SKIMJOIN_RETURN_IF_ERROR(id.status());
  return Update(*id, update);
}

Status Engine::Update(StreamId stream, const StreamUpdate& update) {
  if (stream >= streams_.size()) {
    return NotFoundError("unknown stream id");
  }
  StreamState& state = streams_[stream];
  if (update.value >= state.spec.domain_size) {
    state.dropped->Increment();
    return OutOfRangeError("value outside the domain of stream " +
                           state.spec.name);
  }
  state.element_count += update.count;
  state.absorbed->Increment();
#ifndef SKIMJOIN_DISABLE_PROFILER
  if (profiler_enabled_) state.profiler->Observe(update.value, update.count);
#endif
  ApplyToQueries(stream, update, /*include_frequency_queries=*/true);
  return OkStatus();
}

void Engine::ApplyToQueries(StreamId stream, const StreamUpdate& update,
                            bool include_frequency_queries) {
  for (auto& [id, q] : join_queries_) {
    if (q.left == stream &&
        (!q.left_predicate || q.left_predicate->Matches(update.value))) {
      const int64_t weight = WeightFor(q.left_input, update);
      if (weight != 0) q.estimator->UpdateF(update.value, weight);
    }
    if (q.right == stream &&
        (!q.right_predicate || q.right_predicate->Matches(update.value))) {
      const int64_t weight = WeightFor(q.right_input, update);
      if (weight != 0) q.estimator->UpdateG(update.value, weight);
    }
  }
  if (include_frequency_queries) {
    for (auto& [id, q] : frequency_queries_) {
      if (q.stream == stream &&
          (!q.predicate || q.predicate->Matches(update.value))) {
        if (update.count != 0) {
          if (q.concurrent != nullptr) {
            // A live concurrent ingestor means workers may be propagating
            // into this sketch right now; the scalar path joins the same
            // writer lock instead of racing it.
            auto lock = q.concurrent->WriterLock();
            q.sketch.Update(update.value, update.count);
          } else {
            q.sketch.Update(update.value, update.count);
          }
        }
      }
    }
  }
  for (auto& [id, q] : distinct_queries_) {
    if (q.stream == stream &&
        (!q.predicate || q.predicate->Matches(update.value))) {
      if (update.count != 0) q.sketch.Update(update.value, update.count);
    }
  }
  for (auto& [id, q] : topk_queries_) {
    if (q.stream == stream &&
        (!q.predicate || q.predicate->Matches(update.value))) {
      if (update.count != 0) q.tracker.Update(update.value, update.count);
    }
  }
  for (auto& [id, q] : quantile_queries_) {
    if (q.stream == stream &&
        (!q.predicate || q.predicate->Matches(update.value))) {
      // GK summaries are insert-only; deletes are documented as ignored.
      for (int64_t i = 0; i < update.count; ++i) q.summary.Insert(update.value);
    }
  }
  for (auto& [id, q] : range_sum_queries_) {
    if (q.stream == stream &&
        (!q.predicate || q.predicate->Matches(update.value))) {
      if (update.count != 0) {
        q.synopsis.Update(update.value, update.count);
        // Keep the synopsis a B-term summary (with slack so compression is
        // amortized, not per-update).
        if (q.synopsis.CoefficientCount() > 2 * q.coefficient_budget) {
          q.synopsis.CompressTo(q.coefficient_budget);
        }
      }
    }
  }
}

Status Engine::UpdateBatch(const std::string& stream,
                           std::span<const StreamUpdate> updates) {
  StatusOr<StreamId> id = FindStream(stream);
  SKIMJOIN_RETURN_IF_ERROR(id.status());
  return UpdateBatch(*id, updates);
}

Status Engine::UpdateBatch(StreamId stream,
                           std::span<const StreamUpdate> updates) {
  if (stream >= streams_.size()) {
    return NotFoundError("unknown stream id");
  }
  StreamState& state = streams_[stream];
  metrics::TraceSpan batch_span("ingest_batch", "ingest");
  state.batches->Increment();

  // One validation pass, hoisted out of every synopsis loop: bad elements
  // are dropped and counted here so no synopsis ever sees one. Counter
  // deltas accumulate in locals — one atomic add per batch, not per
  // element, keeps the instrumented fast path within the 1% overhead
  // budget.
  uint64_t absorbed = 0;
  uint64_t dropped = 0;
#ifndef SKIMJOIN_DISABLE_PROFILER
  util::StreamProfiler* profiler =
      profiler_enabled_ ? state.profiler.get() : nullptr;
#else
  util::StreamProfiler* profiler = nullptr;
#endif
  // The profiler's scalar tallies fold in once per batch: the net mass is
  // the element_count delta the loop maintains anyway, and the insert mass
  // is net + deletes — so the per-element profiler cost beyond ObserveValue
  // is one (rarely taken) delete branch.
  const int64_t count_before_batch = state.element_count;
  uint64_t profiled_deletes = 0;
  for (size_t i = 0; i < updates.size(); ++i) {
    const StreamUpdate& update = updates[i];
    if (update.value >= state.spec.domain_size) {
      ++dropped;
      continue;
    }
    state.element_count += update.count;
    ++absorbed;
    if (profiler != nullptr) {
      profiler->ObserveValue(update.value, update.count);
      if (update.count < 0) {
        profiled_deletes += static_cast<uint64_t>(-update.count);
      }
    }
    ApplyToQueries(stream, update, /*include_frequency_queries=*/false);
  }
  if (profiler != nullptr && absorbed != 0) {
    const int64_t profiled_net = state.element_count - count_before_batch;
    profiler->AddTallies(
        absorbed,
        static_cast<uint64_t>(profiled_net +
                              static_cast<int64_t>(profiled_deletes)),
        profiled_deletes, profiled_net);
  }
  if (absorbed != 0) state.absorbed->Increment(absorbed);
  if (dropped != 0) state.dropped->Increment(dropped);

  // Frequency queries take the batch path: per query, project the batch to
  // in-domain, predicate-matching stream elements and fold them in at once
  // (sharded across worker threads when the batch is large enough).
  std::vector<stream::StreamElement> elements;
  for (auto& [id, q] : frequency_queries_) {
    if (q.stream != stream) continue;
    elements.clear();
    elements.reserve(updates.size());
    for (const StreamUpdate& update : updates) {
      if (update.value >= state.spec.domain_size) continue;
      if (q.predicate && !q.predicate->Matches(update.value)) continue;
      if (update.count != 0) elements.push_back({update.value, update.count});
    }
    if (elements.empty()) continue;
    if (ingest_options_.concurrent) {
      // Relaxed-consistency path: hand chunks to the persistent workers
      // and return without waiting. Staleness is bounded by the ingestor's
      // propagation policy; FlushIngest() is the linearization point.
      if (q.concurrent == nullptr) {
        ingest::ConcurrentIngestOptions options;
        options.num_workers = ingest_options_.shards;
        options.propagation_interval_elements =
            ingest_options_.propagation_interval_elements;
        options.max_lag_elements = ingest_options_.max_lag_elements;
        options.pin_threads = ingest_options_.pin_threads;
        StatusOr<std::unique_ptr<ingest::ConcurrentIngestor<
            core::SkimmedSketch>>>
            created = ingest::ConcurrentIngestor<core::SkimmedSketch>::Create(
                &q.sketch, options);
        SKIMJOIN_RETURN_IF_ERROR(created.status());
        q.concurrent = *std::move(created);
      }
      q.concurrent->AbsorbBatch(elements);
      state.epoch_lag->Set(static_cast<double>(q.concurrent->epoch_lag()));
    } else if (ingest_options_.shards > 1) {
      if (!q.ingestor.has_value() ||
          q.ingestor->num_shards() != ingest_options_.shards) {
        StatusOr<ingest::ParallelIngestor<core::SkimmedSketch>> ingestor =
            ingest::ParallelIngestor<core::SkimmedSketch>::Create(
                q.sketch, ingest_options_.shards);
        SKIMJOIN_RETURN_IF_ERROR(ingestor.status());
        q.ingestor = *std::move(ingestor);
      }
      const uint64_t absorb_before = q.ingestor->stats().absorb_nanos;
      const uint64_t merge_before = q.ingestor->stats().merge_nanos;
      q.ingestor->IngestInto(&q.sketch, elements);
      state.merges->Increment();
      state.absorb_nanos->Increment(q.ingestor->stats().absorb_nanos -
                                    absorb_before);
      state.merge_nanos->Increment(q.ingestor->stats().merge_nanos -
                                   merge_before);
    } else {
      q.sketch.UpdateBatch(elements);
      PublishHashCacheDeltas(q);
    }
  }
  return OkStatus();
}

Status Engine::SetIngestShards(uint64_t num_shards) {
  IngestOptions options = ingest_options_;
  options.shards = num_shards;
  return SetIngestOptions(options);
}

Status Engine::SetIngestOptions(const IngestOptions& options) {
  if (options.shards < 1) {
    return InvalidArgumentError("ingest shard count must be >= 1");
  }
  if (options.propagation_interval_elements < 1) {
    return InvalidArgumentError("propagation interval must be >= 1");
  }
  // Existing concurrent ingestors were built under the old configuration;
  // linearize them out so no accepted element is lost, then let the next
  // batch rebuild under the new knobs.
  FlushIngest();
  for (auto& [id, q] : frequency_queries_) {
    q.concurrent.reset();
    // Parallel replicas are also per-shard-count; drop stale ones eagerly
    // (the shards>1 path would rebuild anyway, this just frees memory).
    if (q.ingestor.has_value() &&
        q.ingestor->num_shards() != options.shards) {
      q.ingestor.reset();
    }
  }
  ingest_options_ = options;
  return OkStatus();
}

void Engine::FlushIngest() {
  for (auto& [id, q] : frequency_queries_) {
    if (q.concurrent == nullptr) continue;
    q.concurrent->Flush();
    StreamState& state = streams_[q.stream];
    state.merges->Increment();
    state.epoch_lag->Set(0.0);
  }
}

void Engine::SetKernelOptions(const sketch::KernelOptions& options) {
  kernel_options_ = options;
  // Concurrent replicas were copied under the old kernels; linearize them
  // out before the rebuild so no accepted element is lost.
  FlushIngest();
  for (auto& [id, q] : frequency_queries_) {
    q.concurrent.reset();
    q.sketch.SetKernelOptions(options);
    // Replicas were copied from the sketch under the old options; drop them
    // so the next sharded batch rebuilds with the new kernels.
    q.ingestor.reset();
    // The sketch's tallies restarted with its rebuilt caches.
    q.cache_hits_seen = 0;
    q.cache_misses_seen = 0;
  }
}

StatusOr<ingest::IngestStats> Engine::StreamIngestStats(
    const std::string& stream) const {
  StatusOr<StreamId> id = FindStream(stream);
  SKIMJOIN_RETURN_IF_ERROR(id.status());
  return IngestStatsFor(streams_[*id]);
}

Status Engine::AttachAccuracyReference(
    const std::string& stream, const stream::FrequencyVector* reference) {
  StatusOr<StreamId> id = FindStream(stream);
  SKIMJOIN_RETURN_IF_ERROR(id.status());
  // FrequencyVector::Get aborts on out-of-domain indices, so a reference
  // narrower than the stream would turn a valid point query into a crash.
  if (reference != nullptr &&
      reference->domain_size() != streams_[*id].spec.domain_size) {
    return InvalidArgumentError(
        "accuracy reference domain (" +
        std::to_string(reference->domain_size()) +
        ") does not match the domain of stream " + stream + " (" +
        std::to_string(streams_[*id].spec.domain_size) + ")");
  }
  streams_[*id].reference = reference;
  return OkStatus();
}

void Engine::MaybeRecordJoinDrift(QueryId query, const JoinQueryState& q,
                                  double estimate) const {
  const stream::FrequencyVector* left = streams_[q.left].reference;
  const stream::FrequencyVector* right = streams_[q.right].reference;
  if (left == nullptr || right == nullptr) return;
  // The reference holds raw frequencies: only an unfiltered COUNT join has
  // an exact counterpart to compare against.
  if (q.left_predicate.has_value() || q.right_predicate.has_value()) return;
  if (q.left_input != AggregateInput::kCount ||
      q.right_input != AggregateInput::kCount) {
    return;
  }
  if (left->domain_size() != right->domain_size()) return;
  RecordRelError(query, q.metrics.rel_error, estimate,
                 static_cast<double>(stream::JoinSize(*left, *right)));
}

StatusOr<double> Engine::AnswerJoin(QueryId query) const {
  const auto it = join_queries_.find(query);
  if (it == join_queries_.end()) {
    return NotFoundError("unknown join query id");
  }
  const JoinQueryState& q = it->second;
  if (read_path_.use_query_cache) {
    const QueryCache::Epochs epochs = EpochsFor(q);
    QueryCache::Outcome outcome;
    const std::optional<double> cached =
        query_cache_.LookupJoin(query, epochs, &outcome);
    CountCacheOutcome(q.metrics, outcome);
    if (cached.has_value()) {
      // Hit path stays O(lookup): count the call but take no trace span
      // and no latency sample — estimate_ns measures actual estimator
      // executions. The answer is bit-identical to a recompute (the
      // estimator is deterministic and no participating stream advanced),
      // so the drift record stays meaningful too.
      q.metrics.estimate_calls->Increment();
      MaybeRecordJoinDrift(query, q, *cached);
      return *cached;
    }
    metrics::TraceSpan span("estimate", "query");
    ScopedEstimate timer(q.metrics.estimate_calls, q.metrics.estimate_ns);
    StatusOr<double> estimate = q.estimator->Estimate();
    if (estimate.ok()) {
      query_cache_.StoreJoin(query, epochs, *estimate);
      MaybeRecordJoinDrift(query, q, *estimate);
    }
    return estimate;
  }
  metrics::TraceSpan span("estimate", "query");
  ScopedEstimate timer(q.metrics.estimate_calls, q.metrics.estimate_ns);
  StatusOr<double> estimate = q.estimator->Estimate();
  if (estimate.ok()) MaybeRecordJoinDrift(query, q, *estimate);
  return estimate;
}

StatusOr<EstimateReport> Engine::AnswerJoinWithReport(QueryId query) const {
  const auto it = join_queries_.find(query);
  if (it == join_queries_.end()) {
    return NotFoundError("unknown join query id");
  }
  const JoinQueryState& q = it->second;
  metrics::TraceSpan span("estimate", "query");
  ScopedEstimate timer(q.metrics.estimate_calls, q.metrics.estimate_ns);
  StatusOr<EstimateReport> report = q.estimator->EstimateWithReport();
  if (report.ok()) {
    // Probe AFTER the estimate so skimmed probes compare against the
    // baselines this very answer just recorded. Probes are read-only;
    // the estimate is still bit-identical to AnswerJoin.
    report->health = q.estimator->HealthProbe();
    MaybeRecordJoinDrift(query, q, report->estimate);
    RecordReportMetrics(query, q.metrics, *report);
  }
  return report;
}

StatusOr<int64_t> Engine::AnswerPointFrequency(QueryId query,
                                               uint64_t value) const {
  const auto it = frequency_queries_.find(query);
  if (it == frequency_queries_.end()) {
    return NotFoundError("unknown frequency query id");
  }
  const FrequencyQueryState& q = it->second;
  const StreamState& state = streams_[q.stream];
  if (value >= state.spec.domain_size) {
    return OutOfRangeError("value outside the domain of stream " +
                           state.spec.name);
  }
  QueryCache::Epochs epochs{};
  if (read_path_.use_query_cache) {
    epochs = EpochsFor(q);
    QueryCache::Outcome outcome;
    const std::optional<int64_t> cached =
        query_cache_.LookupPoint(query, value, epochs, &outcome);
    CountCacheOutcome(q.metrics, outcome);
    if (cached.has_value()) {
      // Hit path stays O(lookup): count the call but take no trace span
      // and no latency sample — estimate_ns measures actual estimator
      // executions.
      q.metrics.estimate_calls->Increment();
      if (state.reference != nullptr && !q.predicate.has_value()) {
        RecordRelError(query, q.metrics.rel_error,
                       static_cast<double>(*cached),
                       static_cast<double>(state.reference->Get(value)));
      }
      return *cached;
    }
  }
  metrics::TraceSpan span("estimate", "query");
  ScopedEstimate timer(q.metrics.estimate_calls, q.metrics.estimate_ns);
  // Under concurrent ingestion: a whole-epoch (bounded-staleness) snapshot
  // of the sketch, taken without blocking in-flight absorbs.
  const FrequencyReadLock read_lock = ReadLockFor(q);
  int64_t estimate;
  if (read_path_.use_slim_views) {
    // Two-stage read: refresh the slim view iff the fat epoch advanced,
    // then answer from the packed counters — bit-identical to the fat
    // sketch's COUNTSKETCH median.
    if (!q.slim.has_value()) {
      q.slim.emplace(q.sketch.level0());
    } else {
      q.slim->Refresh(q.sketch.level0());
    }
    estimate = q.slim->PointEstimate(value);
  } else {
    estimate = q.sketch.EstimatePointFrequency(value);
  }
  if (read_path_.use_query_cache) {
    query_cache_.StorePoint(query, value, epochs, estimate);
  }
  if (state.reference != nullptr && !q.predicate.has_value()) {
    RecordRelError(query, q.metrics.rel_error, static_cast<double>(estimate),
                   static_cast<double>(state.reference->Get(value)));
  }
  return estimate;
}

StatusOr<core::DenseFrequencies> Engine::AnswerHeavyHitters(
    QueryId query, int64_t threshold) const {
  const auto it = frequency_queries_.find(query);
  if (it == frequency_queries_.end()) {
    return NotFoundError("unknown frequency query id");
  }
  if (threshold < 1) {
    return InvalidArgumentError("heavy-hitter threshold must be >= 1");
  }
  const FrequencyQueryState& q = it->second;
  metrics::TraceSpan span("estimate", "query");
  ScopedEstimate timer(q.metrics.estimate_calls, q.metrics.estimate_ns);
  const FrequencyReadLock read_lock = ReadLockFor(q);
  return q.sketch.HeavyHitters(threshold);
}

StatusOr<double> Engine::AnswerDistinctCount(QueryId query) const {
  const auto it = distinct_queries_.find(query);
  if (it == distinct_queries_.end()) {
    return NotFoundError("unknown distinct-count query id");
  }
  const DistinctQueryState& q = it->second;
  metrics::TraceSpan span("estimate", "query");
  ScopedEstimate timer(q.metrics.estimate_calls, q.metrics.estimate_ns);
  const double estimate = q.sketch.EstimateDistinctCount();
  const StreamState& state = streams_[q.stream];
  if (state.reference != nullptr && !q.predicate.has_value()) {
    RecordRelError(query, q.metrics.rel_error, estimate,
                   static_cast<double>(state.reference->SupportSize()));
  }
  return estimate;
}

StatusOr<std::vector<std::pair<uint64_t, int64_t>>> Engine::AnswerTopK(
    QueryId query) const {
  const auto it = topk_queries_.find(query);
  if (it == topk_queries_.end()) {
    return NotFoundError("unknown top-k query id");
  }
  const TopKQueryState& q = it->second;
  metrics::TraceSpan span("estimate", "query");
  ScopedEstimate timer(q.metrics.estimate_calls, q.metrics.estimate_ns);
  return q.tracker.TopK();
}

StatusOr<uint64_t> Engine::AnswerQuantile(QueryId query, double phi) const {
  const auto it = quantile_queries_.find(query);
  if (it == quantile_queries_.end()) {
    return NotFoundError("unknown quantile query id");
  }
  const QuantileQueryState& q = it->second;
  metrics::TraceSpan span("estimate", "query");
  ScopedEstimate timer(q.metrics.estimate_calls, q.metrics.estimate_ns);
  return q.summary.Quantile(phi);
}

StatusOr<double> Engine::AnswerRangeSum(QueryId query, uint64_t lo,
                                        uint64_t hi) const {
  const auto it = range_sum_queries_.find(query);
  if (it == range_sum_queries_.end()) {
    return NotFoundError("unknown range-sum query id");
  }
  const RangeSumQueryState& q = it->second;
  metrics::TraceSpan span("estimate", "query");
  ScopedEstimate timer(q.metrics.estimate_calls, q.metrics.estimate_ns);
  return q.synopsis.RangeSum(lo, hi);
}

StatusOr<double> Engine::AnswerChainJoin(QueryId query) const {
  const auto it = chain_queries_.find(query);
  if (it == chain_queries_.end()) {
    return NotFoundError("unknown chain-join query id");
  }
  const ChainJoinQueryState& state = it->second;
  metrics::TraceSpan span("estimate", "query");
  ScopedEstimate timer(state.metrics.estimate_calls,
                       state.metrics.estimate_ns);
  return state.grid.has_value() ? state.grid->Estimate()
                                : state.hashed->Estimate();
}

StatusOr<EstimateReport> Engine::AnswerChainJoinWithReport(
    QueryId query) const {
  const auto it = chain_queries_.find(query);
  if (it == chain_queries_.end()) {
    return NotFoundError("unknown chain-join query id");
  }
  const ChainJoinQueryState& state = it->second;
  metrics::TraceSpan span("estimate", "query");
  ScopedEstimate timer(state.metrics.estimate_calls,
                       state.metrics.estimate_ns);
  EstimateReport report = state.grid.has_value()
                              ? state.grid->EstimateWithReport()
                              : state.hashed->EstimateWithReport();
  RecordReportMetrics(query, state.metrics, report);
  return report;
}

Status Engine::SerializeQuerySynopsis(QueryId query, std::string* out) const {
  // Serialized synopses feed distributed delta pulls and must be exact;
  // linearize any in-flight concurrent ingestion first. Writer-thread only
  // (like every engine read), so the const_cast mutates nothing reentrant.
  const_cast<Engine*>(this)->FlushIngest();
  std::ostringstream record;
  if (const auto it = join_queries_.find(query); it != join_queries_.end()) {
    SKIMJOIN_RETURN_IF_ERROR(it->second.estimator->SerializeTo(record));
  } else if (const auto fit = frequency_queries_.find(query);
             fit != frequency_queries_.end()) {
    SKIMJOIN_RETURN_IF_ERROR(fit->second.sketch.SerializeTo(record));
  } else if (const auto cit = chain_queries_.find(query);
             cit != chain_queries_.end()) {
    if (cit->second.grid.has_value()) {
      SKIMJOIN_RETURN_IF_ERROR(cit->second.grid->SerializeTo(record));
    } else {
      SKIMJOIN_RETURN_IF_ERROR(cit->second.hashed->SerializeTo(record));
    }
  } else {
    return NotFoundError(
        "no serializable synopsis for query id " + std::to_string(query) +
        " (only join/self-join, frequency, and chain-join queries have one)");
  }
  *out = std::move(record).str();
  return OkStatus();
}

StatusOr<int64_t> Engine::StreamElementCount(const std::string& stream) const {
  StatusOr<StreamId> id = FindStream(stream);
  SKIMJOIN_RETURN_IF_ERROR(id.status());
  return streams_[*id].element_count;
}

std::vector<std::string> Engine::StreamNames() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const StreamState& state : streams_) names.push_back(state.spec.name);
  return names;
}

void Engine::PublishHashCacheDeltas(const FrequencyQueryState& q) const {
  if (q.stream >= streams_.size()) return;
  const StreamState& state = streams_[q.stream];
  const uint64_t hits = q.sketch.hash_cache_hits();
  const uint64_t misses = q.sketch.hash_cache_misses();
  if (hits > q.cache_hits_seen) {
    state.hash_cache_hits->Increment(hits - q.cache_hits_seen);
  }
  if (misses > q.cache_misses_seen) {
    state.hash_cache_misses->Increment(misses - q.cache_misses_seen);
  }
  q.cache_hits_seen = hits;
  q.cache_misses_seen = misses;
}

void Engine::RefreshMetricsGauges() const {
  // Gauges are refreshed pull-style: footprints change on every update, so
  // pushing them from the hot path would cost more than anyone reading
  // them. Runs on the writer thread only — it walks the query containers.
  for (const auto& [id, q] : join_queries_) {
    q.metrics.memory_bytes->Set(
        static_cast<double>(q.estimator->MemoryBytes()));
  }
  for (const auto& [id, q] : frequency_queries_) {
    q.metrics.memory_bytes->Set(static_cast<double>(q.sketch.MemoryBytes()));
    // Scalar updates bump the sketch-side tallies without passing through
    // the batch path's export; pull the deltas here so snapshots stay
    // current for scalar-only sessions.
    PublishHashCacheDeltas(q);
  }
  for (const auto& [id, q] : distinct_queries_) {
    q.metrics.memory_bytes->Set(static_cast<double>(q.sketch.MemoryBytes()));
  }
  for (const auto& [id, q] : topk_queries_) {
    q.metrics.memory_bytes->Set(static_cast<double>(q.tracker.MemoryBytes()));
  }
  for (const auto& [id, q] : quantile_queries_) {
    q.metrics.memory_bytes->Set(static_cast<double>(q.summary.MemoryBytes()));
  }
  for (const auto& [id, q] : range_sum_queries_) {
    q.metrics.memory_bytes->Set(
        static_cast<double>(q.synopsis.MemoryBytes()));
  }
  for (const auto& [id, q] : chain_queries_) {
    q.metrics.memory_bytes->Set(static_cast<double>(
        q.grid.has_value() ? q.grid->MemoryBytes() : q.hashed->MemoryBytes()));
  }
#ifndef SKIMJOIN_DISABLE_PROFILER
  for (const StreamState& state : streams_) {
    if (state.profiler == nullptr) continue;
    const util::StreamProfiler::Snapshot profile =
        state.profiler->TakeSnapshot();
    const std::string prefix = "ingest." + state.spec.name + ".profile.";
    metrics_.GetGauge(prefix + "observations")
        ->Set(static_cast<double>(profile.observations));
    metrics_.GetGauge(prefix + "delete_ratio")->Set(profile.delete_ratio);
    metrics_.GetGauge(prefix + "distinct_estimate")
        ->Set(profile.distinct_estimate);
    metrics_.GetGauge(prefix + "distinct_rate")->Set(profile.distinct_rate);
    if (!std::isnan(profile.skew)) {
      metrics_.GetGauge(prefix + "skew")->Set(profile.skew);
    }
    metrics_.GetGauge(prefix + "heavy_mass_fraction")
        ->Set(profile.heavy_mass_fraction);
    metrics_.GetGauge(prefix + "net_mass")
        ->Set(static_cast<double>(profile.net_mass));
  }
#endif
  metrics_.SetHelp("engine.num_streams", "Registered streams.");
  metrics_.SetHelp("engine.num_queries", "Registered standing queries.");
  metrics_.SetHelp("engine.ingest_shards",
                   "Worker threads UpdateBatch may fan a batch out to.");
  metrics_.SetHelp("engine.ingest_concurrent",
                   "1 while relaxed-consistency concurrent ingestion is on.");
  metrics_.SetHelp("engine.simd_level",
                   "SIMD dispatch the sketch kernels selected on this "
                   "machine: 0 scalar, 1 AVX2, 2 AVX-512.");
  metrics_.GetGauge("engine.num_streams")
      ->Set(static_cast<double>(num_streams()));
  metrics_.GetGauge("engine.num_queries")
      ->Set(static_cast<double>(num_queries()));
  metrics_.GetGauge("engine.ingest_shards")
      ->Set(static_cast<double>(ingest_options_.shards));
  metrics_.GetGauge("engine.ingest_concurrent")
      ->Set(ingest_options_.concurrent ? 1.0 : 0.0);
  metrics_.GetGauge("engine.simd_level")
      ->Set(static_cast<double>(hashing::DetectSimdLevel()));
}

StatusOr<util::StreamProfiler::Snapshot> Engine::StreamProfile(
    const std::string& stream) const {
  StatusOr<StreamId> id = FindStream(stream);
  SKIMJOIN_RETURN_IF_ERROR(id.status());
  return streams_[*id].profiler->TakeSnapshot();
}

HealthReport Engine::HealthReport() const {
  // Probes copy synopses; linearize concurrent ingestion first so the
  // report describes a state every future answer will agree with
  // (writer-thread only, see SerializeQuerySynopsis).
  const_cast<Engine*>(this)->FlushIngest();
  query::HealthReport report;

  for (const StreamState& state : streams_) {
    StreamHealth health;
    health.stream = state.spec.name;
    health.elements_absorbed = state.absorbed->Value();
    health.elements_dropped = state.dropped->Value();
    const uint64_t hits = state.hash_cache_hits->Value();
    const uint64_t misses = state.hash_cache_misses->Value();
    health.hash_cache_hit_rate =
        hits + misses == 0
            ? std::numeric_limits<double>::quiet_NaN()
            : static_cast<double>(hits) / static_cast<double>(hits + misses);
#ifndef SKIMJOIN_DISABLE_PROFILER
    if (state.profiler != nullptr) {
      health.profile = state.profiler->TakeSnapshot();
    }
#endif
    report.streams.push_back(std::move(health));
  }

  for (const auto& [id, q] : join_queries_) {
    QueryHealth health;
    health.id = id;
    health.kind = "join";
    health.method = q.estimator->Name();
    health.streams =
        streams_[q.left].spec.name + "⋈" + streams_[q.right].spec.name;
    health.synopses = q.estimator->HealthProbe();
    // Methods without probe support (e.g. sampling) return no probes and
    // contribute nothing to the health picture.
    if (!health.synopses.empty()) report.queries.push_back(std::move(health));
  }
  for (const auto& [id, q] : frequency_queries_) {
    QueryHealth health;
    health.id = id;
    health.kind = "frequency";
    health.method = "skimmed";
    health.streams = streams_[q.stream].spec.name;
    health.synopses.push_back(q.sketch.HealthProbe());
    if (std::optional<SynopsisHealth> dyadic = q.sketch.DyadicHealthProbe()) {
      health.synopses.push_back(*std::move(dyadic));
    }
    report.queries.push_back(std::move(health));
  }
  std::sort(report.queries.begin(), report.queries.end(),
            [](const QueryHealth& a, const QueryHealth& b) {
              return a.id < b.id;
            });

  // Publish the per-query health gauges (max across the query's synopses)
  // so scrapes between HealthReport calls still see the last probe.
  for (const QueryHealth& query : report.queries) {
    const std::string prefix =
        "query." + std::to_string(query.id) + ".health.";
    double occupancy = 0.0, saturation = 0.0, pressure = 0.0;
    bool any_pressure = false;
    for (const SynopsisHealth& health : query.synopses) {
      occupancy = std::max(occupancy, health.occupancy);
      saturation = std::max(saturation, health.int32_saturation);
      if (!std::isnan(health.collision_pressure)) {
        pressure = std::max(pressure, health.collision_pressure);
        any_pressure = true;
      }
    }
    metrics_.GetGauge(prefix + "occupancy")->Set(occupancy);
    metrics_.GetGauge(prefix + "int32_saturation")->Set(saturation);
    if (any_pressure) {
      metrics_.GetGauge(prefix + "collision_pressure")->Set(pressure);
    }
  }

  // Rule pass. Stream-level rules first, then per-synopsis rules, so the
  // findings list reads workload -> synopsis.
  for (const StreamHealth& stream : report.streams) {
    const std::string subject = "stream " + stream.stream;
    if (stream.profile.has_value() && !std::isnan(stream.profile->skew) &&
        stream.profile->skew >= 1.2 &&
        !std::isnan(stream.hash_cache_hit_rate) &&
        stream.hash_cache_hit_rate < 0.5) {
      report.findings.push_back(
          {HealthFinding::Severity::kInfo, subject, "skew-cache-mismatch",
           "stream skew " + TablePrinter::FormatDouble(stream.profile->skew, 2) +
               " but hash-plan-cache hit rate " +
               TablePrinter::FormatDouble(stream.hash_cache_hit_rate, 2) +
               " — a skewed stream should reuse cached plans; raise the "
               "cache slots",
           ""});
    }
    if (stream.profile.has_value() && stream.profile->delete_ratio > 0.25) {
      report.findings.push_back(
          {HealthFinding::Severity::kInfo, subject, "delete-heavy",
           "delete ratio " +
               TablePrinter::FormatDouble(stream.profile->delete_ratio, 2) +
               " — insert-only synopses (quantiles) undercover this stream",
           ""});
    }
    if (stream.elements_dropped > 0) {
      report.findings.push_back(
          {HealthFinding::Severity::kInfo, subject, "domain-drops",
           std::to_string(stream.elements_dropped) +
               " elements dropped outside the registered domain",
           ""});
    }
  }
  for (const QueryHealth& query : report.queries) {
    const std::string subject = "query " + std::to_string(query.id);
    for (const SynopsisHealth& health : query.synopses) {
      const std::string synopsis =
          health.role.empty() ? health.kind : health.kind + "." + health.role;
      if (health.int64_saturation >= 0.5) {
        report.findings.push_back(
            {HealthFinding::Severity::kCritical, subject, "counter-saturation",
             synopsis + " max |counter| at " +
                 TablePrinter::FormatDouble(100.0 * health.int64_saturation,
                                            1) +
                 "% of int64 — counters are about to overflow",
             ""});
      } else if (health.int32_saturation >= 0.5) {
        report.findings.push_back(
            {HealthFinding::Severity::kWarn, subject, "counter-saturation",
             synopsis + " counter p99 at " +
                 TablePrinter::FormatDouble(100.0 * health.int32_saturation,
                                            1) +
                 "% of int32 — slim views will fall back to int64",
             ""});
      }
      if ((!std::isnan(health.collision_pressure) &&
           health.collision_pressure >= 4.0) ||
          health.occupancy >= 0.95) {
        std::string message = synopsis + " occupancy " +
                              TablePrinter::FormatDouble(health.occupancy, 2);
        if (!std::isnan(health.collision_pressure)) {
          message += ", ~" +
                     TablePrinter::FormatDouble(health.collision_pressure, 1) +
                     " values/bucket";
        }
        message += " over " + query.streams +
                   " — the sketch is undersized for this stream";
        report.findings.push_back({HealthFinding::Severity::kWarn, subject,
                                   "collision-pressure", std::move(message),
                                   ""});
      }
      if (!std::isnan(health.residual_ratio) &&
          !std::isnan(health.residual_ratio_at_estimate) &&
          std::fabs(health.residual_ratio -
                    health.residual_ratio_at_estimate) > 0.25) {
        report.findings.push_back(
            {HealthFinding::Severity::kWarn, subject, "skim-drift",
             synopsis + " residual ratio " +
                 TablePrinter::FormatDouble(health.residual_ratio, 2) +
                 " vs " +
                 TablePrinter::FormatDouble(health.residual_ratio_at_estimate,
                                            2) +
                 " at the last estimate — the dense-value picture has gone "
                 "stale; re-answer with a report to refresh",
             ""});
      }
    }
  }
  return report;
}

metrics::Snapshot Engine::MetricsSnapshot() const {
  RefreshMetricsGauges();
  return metrics_.TakeSnapshot();
}

void Engine::Clear() {
  streams_.clear();
  stream_ids_.clear();
  relations_.clear();
  relation_ids_.clear();
  join_queries_.clear();
  frequency_queries_.clear();
  distinct_queries_.clear();
  topk_queries_.clear();
  quantile_queries_.clear();
  range_sum_queries_.clear();
  chain_queries_.clear();
  next_query_id_ = 1;
  ingest_options_ = IngestOptions{};
  // Entries guard on per-stream epochs that are about to reset with the
  // registry; a future same-id query must never see an old life's answer.
  query_cache_.DropAll();
  // Last: every cached instrument pointer above is gone, so dropping the
  // instruments themselves is safe.
  metrics_.Clear();
}

}  // namespace query
}  // namespace skimjoin
