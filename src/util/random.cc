#include "util/random.h"

#include "util/logging.h"

namespace skimjoin {

namespace {

inline uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t s = seed;
  for (uint64_t& word : state_) {
    s += 0x9E3779B97F4A7C15ull;
    word = Mix64(s);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64Below(uint64_t bound) {
  SKIMJOIN_CHECK_GT(bound, 0u);
  // Lemire's method: multiply into a 128-bit product, reject the small
  // biased fringe.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 high bits → [0, 1) with full double precision.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

Rng Rng::Fork(uint64_t index) const {
  return Rng(Mix64(seed_ ^ Mix64(index + 0x632BE59BD9B4E019ull)));
}

}  // namespace skimjoin
