#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace skimjoin {

int Histogram::BucketIndexOf(double value) {
  // Non-finite inputs must not reach std::log2 / the int cast below:
  // NaN fails every comparison (so `value < 1.0` is false) and casting a
  // non-finite double to int is undefined behaviour. +inf maps to the
  // open-ended last bucket; NaN and -inf clamp to bucket 0 like negatives.
  if (!std::isfinite(value)) {
    return value > 0.0 ? kBuckets - 1 : 0;
  }
  if (value < 1.0) return 0;
  const int bucket = 1 + static_cast<int>(std::floor(std::log2(value)));
  return std::min(bucket, kBuckets - 1);
}

double Histogram::BucketLowerEdge(int index) {
  if (index == 0) return 0.0;
  return std::pow(2.0, index - 1);
}

void Histogram::Add(double value) {
  // Drop non-finite measurements instead of folding them into the exact
  // moments: one NaN would otherwise poison min/max/sum/sum-of-squares
  // forever, and +-inf would saturate them. The drop is still observable
  // via DroppedCount() so callers can alert on a producer emitting garbage.
  if (!std::isfinite(value)) {
    ++dropped_count_;
    return;
  }
  ++counts_[BucketIndexOf(value)];
  if (total_count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++total_count_;
  sum_ += value;
  sum_squares_ += value * value;
}

double Histogram::Min() const {
  return total_count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double Histogram::Max() const {
  return total_count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

double Histogram::StdDev() const {
  if (total_count_ == 0) return 0.0;
  const double n = static_cast<double>(total_count_);
  const double mean = sum_ / n;
  // Population variance via E[x^2] - mean^2; clamp tiny negative rounding.
  return std::sqrt(std::max(0.0, sum_squares_ / n - mean * mean));
}

double Histogram::ApproximateQuantile(double q) const {
  SKIMJOIN_CHECK(q >= 0.0 && q <= 1.0);
  if (total_count_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_count_);
  double cumulative = 0.0;
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    const double next = cumulative + static_cast<double>(counts_[bucket]);
    if (next >= target && counts_[bucket] > 0) {
      const double lo = BucketLowerEdge(bucket);
      // Interpolate only up to the largest observed sample: the bucket's
      // nominal upper edge can sit far above max_ (e.g. samples clustered
      // just past a power of two), and a quantile must never exceed Max().
      const double hi =
          std::min((bucket + 1 < kBuckets) ? BucketLowerEdge(bucket + 1)
                                           : max_,
                   max_);
      const double within =
          (target - cumulative) / static_cast<double>(counts_[bucket]);
      return lo + within * (std::max(hi, lo) - lo);
    }
    cumulative = next;
  }
  return max_;
}

void Histogram::Print(std::ostream& os) const {
  os << "count=" << total_count_ << " mean=" << Mean() << " min=" << Min()
     << " max=" << Max() << "\n";
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    if (counts_[bucket] == 0) continue;
    const double lo = BucketLowerEdge(bucket);
    // Print shows the nominal bucket bounds (unlike ApproximateQuantile,
    // which clamps to the observed max): labels identify the bucket, not
    // the samples in it.
    const double hi =
        (bucket + 1 < kBuckets) ? BucketLowerEdge(bucket + 1) : max_;
    os << "  [" << lo << ", " << hi << "): " << counts_[bucket] << "\n";
  }
}

}  // namespace skimjoin
