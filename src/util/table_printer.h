// Fixed-width text tables for the benchmark harness output. Each bench
// binary prints the rows/series of the paper figure it regenerates through
// this printer so that results are easy to diff across runs.

#ifndef SKIMJOIN_UTIL_TABLE_PRINTER_H_
#define SKIMJOIN_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace skimjoin {

/// Collects rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  /// `title` is printed above the table; `columns` define the header row.
  TablePrinter(std::string title, std::vector<std::string> columns);

  /// Appends a data row. Pre-condition: row.size() == number of columns.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string FormatDouble(double value, int precision = 4);

  /// Renders the title, header, separator, and all rows to `os`.
  void Print(std::ostream& os) const;

  /// Renders the same table as CSV (header row + data rows; cells
  /// containing commas or quotes are quoted) for plotting pipelines. The
  /// title is emitted as a leading "# title" comment line.
  void PrintCsv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace skimjoin

#endif  // SKIMJOIN_UTIL_TABLE_PRINTER_H_
