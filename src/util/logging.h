// Minimal logging and invariant-checking facilities.
//
// SKIMJOIN_CHECK(cond) aborts with a source location when `cond` is false.
// It is used for programming errors (violated invariants, misuse of
// preconditions documented on an API); recoverable failures use Status.

#ifndef SKIMJOIN_UTIL_LOGGING_H_
#define SKIMJOIN_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace skimjoin {
namespace internal_logging {

/// Terminates the process after printing `message` (with file/line context)
/// to stderr. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line,
                              const std::string& message);

/// Stream-collecting helper so check macros can accept `<<` payloads.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition);

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder();

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace skimjoin

/// Aborts the program when `condition` is false. Additional context can be
/// streamed: SKIMJOIN_CHECK(x > 0) << "x=" << x;
#define SKIMJOIN_CHECK(condition)                                      \
  if (condition) {                                                     \
  } else /* NOLINT */                                                  \
    ::skimjoin::internal_logging::CheckMessageBuilder(__FILE__, __LINE__, \
                                                      #condition)

#define SKIMJOIN_CHECK_EQ(a, b) SKIMJOIN_CHECK((a) == (b))
#define SKIMJOIN_CHECK_NE(a, b) SKIMJOIN_CHECK((a) != (b))
#define SKIMJOIN_CHECK_LT(a, b) SKIMJOIN_CHECK((a) < (b))
#define SKIMJOIN_CHECK_LE(a, b) SKIMJOIN_CHECK((a) <= (b))
#define SKIMJOIN_CHECK_GT(a, b) SKIMJOIN_CHECK((a) > (b))
#define SKIMJOIN_CHECK_GE(a, b) SKIMJOIN_CHECK((a) >= (b))

/// Aborts if a Status-returning expression fails. For use in tests, examples
/// and benchmarks where an error is unrecoverable.
#define SKIMJOIN_CHECK_OK(expr)                           \
  do {                                                    \
    const ::skimjoin::Status _s = (expr);                 \
    SKIMJOIN_CHECK(_s.ok()) << _s.ToString();             \
  } while (false)

#endif  // SKIMJOIN_UTIL_LOGGING_H_
