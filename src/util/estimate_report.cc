#include "util/estimate_report.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/stats.h"
#include "util/table_printer.h"

namespace skimjoin {

SynopsisHealth ProbeCounters(std::span<const int64_t> counters,
                             uint64_t num_tables) {
  SynopsisHealth health;
  health.total_counters = counters.size();
  if (counters.empty()) return health;
  if (num_tables == 0 || counters.size() % num_tables != 0) num_tables = 1;
  const uint64_t buckets = counters.size() / num_tables;

  std::vector<double> magnitudes;
  magnitudes.reserve(counters.size());
  uint64_t nonzero = 0;
  double occupancy_min = 1.0, occupancy_max = 0.0;
  for (uint64_t table = 0; table < num_tables; ++table) {
    uint64_t table_nonzero = 0;
    for (uint64_t bucket = 0; bucket < buckets; ++bucket) {
      const int64_t counter = counters[table * buckets + bucket];
      if (counter == 0) continue;
      ++table_nonzero;
      magnitudes.push_back(std::fabs(static_cast<double>(counter)));
    }
    const double table_occupancy =
        static_cast<double>(table_nonzero) / static_cast<double>(buckets);
    occupancy_min = std::min(occupancy_min, table_occupancy);
    occupancy_max = std::max(occupancy_max, table_occupancy);
    nonzero += table_nonzero;
  }
  health.occupancy =
      static_cast<double>(nonzero) / static_cast<double>(counters.size());
  health.occupancy_min_table = nonzero == 0 ? 0.0 : occupancy_min;
  health.occupancy_max_table = occupancy_max;
  if (!magnitudes.empty()) {
    std::sort(magnitudes.begin(), magnitudes.end());
    health.counter_p50 = Percentile(magnitudes, 0.50);
    health.counter_p99 = Percentile(magnitudes, 0.99);
    health.counter_max = magnitudes.back();
  }
  health.int32_saturation =
      health.counter_p99 /
      static_cast<double>(std::numeric_limits<int32_t>::max());
  health.int64_saturation =
      health.counter_max /
      static_cast<double>(std::numeric_limits<int64_t>::max());

  // Invert mean occupancy into an estimated distinct count per table
  // (balls-into-bins: occ = 1 - (1 - 1/b)^n), then normalize per bucket.
  // Full tables pin occ just below 1 so the estimate stays finite.
  if (buckets > 1) {
    const double b = static_cast<double>(buckets);
    const double occ =
        std::min(health.occupancy, 1.0 - 1.0 / (2.0 * b));
    const double estimated_distinct =
        occ > 0.0 ? std::log(1.0 - occ) / std::log(1.0 - 1.0 / b) : 0.0;
    health.collision_pressure = estimated_distinct / b;
  }
  return health;
}

std::string DescribeSynopsisHealth(const SynopsisHealth& health) {
  std::string value =
      "occ " + TablePrinter::FormatDouble(health.occupancy, 2) + ", p99 " +
      TablePrinter::FormatDouble(health.counter_p99) + " (" +
      TablePrinter::FormatDouble(100.0 * health.int32_saturation, 1) +
      "% of int32)";
  if (!std::isnan(health.collision_pressure)) {
    value += ", " + TablePrinter::FormatDouble(health.collision_pressure, 2) +
             " values/bucket";
  }
  if (!std::isnan(health.residual_ratio)) {
    value +=
        ", residual " + TablePrinter::FormatDouble(health.residual_ratio, 2);
    if (!std::isnan(health.residual_ratio_at_estimate)) {
      value +=
          " (vs " +
          TablePrinter::FormatDouble(health.residual_ratio_at_estimate, 2) +
          " at estimate)";
    }
  }
  return value;
}

double EstimateReport::CiRelWidth() const {
  const double scale = std::max(1.0, std::fabs(estimate));
  return ci.Width() / scale;
}

void FinishReportFromCopies(EstimateReport* report, double level) {
  report->ci.level = level;
  if (report->copy_estimates.empty()) {
    report->copy_spread = 0.0;
    report->ci.lower = report->estimate;
    report->ci.upper = report->estimate;
    return;
  }
  report->copy_spread = StdDev(report->copy_estimates);
  const double tail = (1.0 - level) / 2.0;
  report->ci.lower =
      std::min(report->estimate, Percentile(report->copy_estimates, tail));
  report->ci.upper = std::max(report->estimate,
                              Percentile(report->copy_estimates, 1.0 - tail));
}

std::string RenderEstimateReport(const EstimateReport& report) {
  TablePrinter table("estimate report [" + report.method + "]",
                     {"field", "value"});
  table.AddRow({"estimate", TablePrinter::FormatDouble(report.estimate)});
  table.AddRow({"copies", std::to_string(report.copy_estimates.size())});
  table.AddRow({"copy_spread", TablePrinter::FormatDouble(report.copy_spread)});
  table.AddRow({"ci_level", TablePrinter::FormatDouble(report.ci.level, 2)});
  table.AddRow({"ci_lower", TablePrinter::FormatDouble(report.ci.lower)});
  table.AddRow({"ci_upper", TablePrinter::FormatDouble(report.ci.upper)});
  table.AddRow(
      {"ci_rel_width", TablePrinter::FormatDouble(report.CiRelWidth())});
  table.AddRow({"apriori_bound",
                std::isnan(report.apriori_bound)
                    ? "n/a"
                    : TablePrinter::FormatDouble(report.apriori_bound)});
  if (report.skim.has_value()) {
    const SkimDiagnostics& skim = *report.skim;
    table.AddRow({"skim.threshold_f", std::to_string(skim.threshold_f)});
    table.AddRow({"skim.threshold_g", std::to_string(skim.threshold_g)});
    table.AddRow({"skim.dense_count_f", std::to_string(skim.dense_count_f)});
    table.AddRow({"skim.dense_count_g", std::to_string(skim.dense_count_g)});
    table.AddRow({"skim.residual_l2_f",
                  TablePrinter::FormatDouble(skim.residual_l2_before_f) +
                      " -> " +
                      TablePrinter::FormatDouble(skim.residual_l2_after_f)});
    table.AddRow({"skim.residual_l2_g",
                  TablePrinter::FormatDouble(skim.residual_l2_before_g) +
                      " -> " +
                      TablePrinter::FormatDouble(skim.residual_l2_after_g)});
    table.AddRow({"skim.residual_ratio_f",
                  TablePrinter::FormatDouble(skim.ResidualRatioF())});
    table.AddRow({"skim.residual_ratio_g",
                  TablePrinter::FormatDouble(skim.ResidualRatioG())});
    table.AddRow(
        {"skim.dense_dense", TablePrinter::FormatDouble(skim.dense_dense)});
    table.AddRow(
        {"skim.dense_sparse", TablePrinter::FormatDouble(skim.dense_sparse)});
    table.AddRow(
        {"skim.sparse_dense", TablePrinter::FormatDouble(skim.sparse_dense)});
    table.AddRow(
        {"skim.sparse_sparse", TablePrinter::FormatDouble(skim.sparse_sparse)});
  }
  for (const SynopsisHealth& health : report.health) {
    const std::string prefix =
        "health." + (health.role.empty() ? health.kind
                                         : health.kind + "." + health.role);
    table.AddRow({prefix, DescribeSynopsisHealth(health)});
  }
  if (!report.shards.empty()) {
    table.AddRow({"partial", report.partial ? "yes" : "no"});
    for (const ShardContribution& shard : report.shards) {
      std::string value = shard.health;
      value += shard.fresh ? ", fresh" : ", stale";
      value += ", epoch " + std::to_string(shard.epoch);
      if (shard.epochs_behind > 0) {
        value += " (" + std::to_string(shard.epochs_behind) + " behind)";
      }
      table.AddRow({"shard." + shard.shard, std::move(value)});
    }
  }
  std::ostringstream out;
  table.Print(out);
  return out.str();
}

}  // namespace skimjoin
