#include "util/estimate_report.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/stats.h"
#include "util/table_printer.h"

namespace skimjoin {

double EstimateReport::CiRelWidth() const {
  const double scale = std::max(1.0, std::fabs(estimate));
  return ci.Width() / scale;
}

void FinishReportFromCopies(EstimateReport* report, double level) {
  report->ci.level = level;
  if (report->copy_estimates.empty()) {
    report->copy_spread = 0.0;
    report->ci.lower = report->estimate;
    report->ci.upper = report->estimate;
    return;
  }
  report->copy_spread = StdDev(report->copy_estimates);
  const double tail = (1.0 - level) / 2.0;
  report->ci.lower =
      std::min(report->estimate, Percentile(report->copy_estimates, tail));
  report->ci.upper = std::max(report->estimate,
                              Percentile(report->copy_estimates, 1.0 - tail));
}

std::string RenderEstimateReport(const EstimateReport& report) {
  TablePrinter table("estimate report [" + report.method + "]",
                     {"field", "value"});
  table.AddRow({"estimate", TablePrinter::FormatDouble(report.estimate)});
  table.AddRow({"copies", std::to_string(report.copy_estimates.size())});
  table.AddRow({"copy_spread", TablePrinter::FormatDouble(report.copy_spread)});
  table.AddRow({"ci_level", TablePrinter::FormatDouble(report.ci.level, 2)});
  table.AddRow({"ci_lower", TablePrinter::FormatDouble(report.ci.lower)});
  table.AddRow({"ci_upper", TablePrinter::FormatDouble(report.ci.upper)});
  table.AddRow(
      {"ci_rel_width", TablePrinter::FormatDouble(report.CiRelWidth())});
  table.AddRow({"apriori_bound",
                std::isnan(report.apriori_bound)
                    ? "n/a"
                    : TablePrinter::FormatDouble(report.apriori_bound)});
  if (report.skim.has_value()) {
    const SkimDiagnostics& skim = *report.skim;
    table.AddRow({"skim.threshold_f", std::to_string(skim.threshold_f)});
    table.AddRow({"skim.threshold_g", std::to_string(skim.threshold_g)});
    table.AddRow({"skim.dense_count_f", std::to_string(skim.dense_count_f)});
    table.AddRow({"skim.dense_count_g", std::to_string(skim.dense_count_g)});
    table.AddRow({"skim.residual_l2_f",
                  TablePrinter::FormatDouble(skim.residual_l2_before_f) +
                      " -> " +
                      TablePrinter::FormatDouble(skim.residual_l2_after_f)});
    table.AddRow({"skim.residual_l2_g",
                  TablePrinter::FormatDouble(skim.residual_l2_before_g) +
                      " -> " +
                      TablePrinter::FormatDouble(skim.residual_l2_after_g)});
    table.AddRow({"skim.residual_ratio_f",
                  TablePrinter::FormatDouble(skim.ResidualRatioF())});
    table.AddRow({"skim.residual_ratio_g",
                  TablePrinter::FormatDouble(skim.ResidualRatioG())});
    table.AddRow(
        {"skim.dense_dense", TablePrinter::FormatDouble(skim.dense_dense)});
    table.AddRow(
        {"skim.dense_sparse", TablePrinter::FormatDouble(skim.dense_sparse)});
    table.AddRow(
        {"skim.sparse_dense", TablePrinter::FormatDouble(skim.sparse_dense)});
    table.AddRow(
        {"skim.sparse_sparse", TablePrinter::FormatDouble(skim.sparse_sparse)});
  }
  if (!report.shards.empty()) {
    table.AddRow({"partial", report.partial ? "yes" : "no"});
    for (const ShardContribution& shard : report.shards) {
      std::string value = shard.health;
      value += shard.fresh ? ", fresh" : ", stale";
      value += ", epoch " + std::to_string(shard.epoch);
      if (shard.epochs_behind > 0) {
        value += " (" + std::to_string(shard.epochs_behind) + " behind)";
      }
      table.AddRow({"shard." + shard.shard, std::move(value)});
    }
  }
  std::ostringstream out;
  table.Print(out);
  return out.str();
}

}  // namespace skimjoin
