// Live workload profiler: per-stream frequent-item tracking and shape
// statistics maintained in O(1) per stream element, in the spirit of the
// disaggregated-subset-sum frequent-item sketches (PAPERS.md). One
// StreamProfiler rides next to each registered stream and answers "what
// does this stream look like?" — the workload half of the sketch-health
// question (the synopsis half is SynopsisHealth / HealthProbe):
//
//   * SpaceSaving-style top-k heavy hitters (Metwally et al.) behind an
//     admission filter (after Homem & Carvalho's filtered space-saving): a
//     fixed budget of monitored (value, count, error) entries plus counter
//     cells embedded in the index table's free slots. An unmonitored
//     arrival accumulates in the cell where its probe ends and is only
//     admitted — evicting the minimum-count entry, inheriting the cell's
//     mass with the cell as its error term — once the cell beats that
//     minimum. Tail arrivals therefore cost one increment on a cache line
//     the probe already touched; the evict-reindex-resift cycle runs only
//     when a value has proven it belongs. Entries live in a flat array
//     indexed by an open-addressed table and ordered by a binary min-heap,
//     so Observe is O(log capacity) worst case with no per-element
//     allocation — and O(1) on the dominant paths (a hit at a heap leaf,
//     a filtered tail arrival).
//   * An FM/HLL-style distinct estimate: 64 max-trailing-zero registers
//     over a mixed hash of the value — 64 bytes, one shift/compare per
//     element (util/ sits below sketch/, so the estimator is inlined here
//     rather than reusing sketch/fm_sketch).
//   * Insert/delete mass tallies (delete ratio) and an observation count.
//   * A fitted Zipf exponent ("skew"), computed at snapshot time by
//     matching the stable heavy hitters' mass fraction against a Zipf
//     model over the estimated distinct count — robust across skews where
//     a log-log rank regression degrades (flat streams churn the tail of
//     the monitored set, but the aggregate mass of the stable entries
//     stays informative).
//
// Threading follows the engine discipline: Observe and TakeSnapshot run on
// the single writer thread (Engine::UpdateBatch's validation loop). The
// scalar tallies are relaxed atomics so a concurrent reader tearing a
// snapshot of the exported gauges sees monitoring-grade values, never UB.
// Hot-path cost is a handful of arithmetic ops plus one open-addressed
// probe; the engine additionally gates every call behind a runtime toggle
// and the SKIMJOIN_DISABLE_PROFILER compile-time kill switch.

#ifndef SKIMJOIN_UTIL_STREAM_PROFILER_H_
#define SKIMJOIN_UTIL_STREAM_PROFILER_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

namespace skimjoin {
namespace util {

class StreamProfiler {
 public:
  /// Monitored heavy-hitter slots. 128 keeps the whole structure (entries,
  /// index table with embedded filter cells, heap) around 12 KB — resident
  /// next to the ingest path without displacing sketch counters from
  /// cache, which is where a larger profiler actually costs ingest
  /// throughput. Top-128 is ample for workload-shape introspection (the
  /// skew fit uses only the stable head, and SpaceSaving deployments
  /// commonly run k~100).
  static constexpr size_t kDefaultCapacity = 128;

  explicit StreamProfiler(size_t capacity = kDefaultCapacity);

  /// Feeds one stream arrival (value, signed count). O(log capacity)
  /// worst case, no allocation. Single-writer (the engine's writer
  /// thread).
  /// Defined inline below: the fast paths (monitored hit, filtered tail
  /// arrival) compile into the caller's ingest loop; only admission and
  /// eviction call out of line.
  void Observe(uint64_t value, int64_t count);

  /// Batch-ingest split of Observe: ObserveValue feeds the heavy-hitter
  /// and distinct structures for one element WITHOUT the scalar tallies;
  /// the caller accumulates those in register-resident locals across its
  /// batch and folds them in with one AddTallies call, shaving the
  /// per-element counter read-modify-writes off the ingest loop.
  void ObserveValue(uint64_t value, int64_t count);

  void AddTallies(uint64_t observations, uint64_t insert_mass,
                  uint64_t delete_mass, int64_t net_mass) {
    observations_.store(
        observations_.load(std::memory_order_relaxed) + observations,
        std::memory_order_relaxed);
    insert_mass_.store(
        insert_mass_.load(std::memory_order_relaxed) + insert_mass,
        std::memory_order_relaxed);
    delete_mass_.store(
        delete_mass_.load(std::memory_order_relaxed) + delete_mass,
        std::memory_order_relaxed);
    net_mass_.store(net_mass_.load(std::memory_order_relaxed) + net_mass,
                    std::memory_order_relaxed);
  }

  struct HeavyHitter {
    uint64_t value = 0;
    /// Estimated count; may overcount by at most `error` (colliding mass
    /// inherited from the admission filter cell).
    int64_t count = 0;
    /// Overcount bound inherited at (re-)admission; count - error is a
    /// guaranteed lower bound on the true count.
    int64_t error = 0;
  };

  struct Snapshot {
    /// Observe calls (stream elements seen).
    uint64_t observations = 0;
    /// Sum of positive / |negative| counts, and their sum's net.
    uint64_t insert_mass = 0;
    uint64_t delete_mass = 0;
    int64_t net_mass = 0;
    /// delete_mass / (insert_mass + delete_mass); 0 on an empty stream.
    double delete_ratio = 0.0;
    /// HLL-style distinct-value estimate (64 registers, ±~13%).
    double distinct_estimate = 0.0;
    /// distinct_estimate / observations; the "every element is new" end of
    /// the scale is 1.0.
    double distinct_rate = 0.0;
    /// Fitted Zipf exponent; NaN until at least one stable heavy hitter
    /// exists (see class comment for the fitting method).
    double skew = 0.0;
    /// Estimated fraction of the insert mass covered by the monitored
    /// heavy hitters (guaranteed counts over insert mass).
    double heavy_mass_fraction = 0.0;
    /// Monitored entries, descending by estimated count.
    std::vector<HeavyHitter> heavy_hitters;
  };

  /// Builds a snapshot from the current state. Writer-thread only (it
  /// walks the heavy-hitter structure); the engine calls it from the same
  /// thread that calls Observe.
  Snapshot TakeSnapshot() const;

  /// Returns the profiler to its freshly constructed state.
  void Reset();

  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    uint64_t value = 0;
    int64_t count = 0;
    int64_t error = 0;
    uint32_t heap_pos = 0;
  };

  /// Open-addressed index slot: maps a value to its entry (or marks the
  /// slot free). Linear probing with backshift deletion, so eviction churn
  /// never accumulates tombstones. Free slots double as admission-filter
  /// cells: filter_mass occupies what would otherwise be struct padding,
  /// so an unmonitored arrival's whole bookkeeping happens on the cache
  /// line(s) its index probe already touched.
  struct IndexSlot {
    uint64_t value = 0;
    uint32_t entry = kFreeSlot;
    /// Unmonitored mass accumulated by values whose probe ends at this
    /// free slot, saturating at UINT32_MAX. Drained into the entry on
    /// admission; refilled with the displaced count on eviction.
    uint32_t filter_mass = 0;
  };
  static constexpr uint32_t kFreeSlot = UINT32_MAX;

  /// splitmix64 finalizer: the shared mixer for the index probe and the
  /// distinct registers.
  static uint64_t Mix(uint64_t value) {
    value += 0x9e3779b97f4a7c15ULL;
    value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ULL;
    value = (value ^ (value >> 27)) * 0x94d049bb133111ebULL;
    return value ^ (value >> 31);
  }

  /// Index of `value` in entries_, or kFreeSlot. `hash` must be
  /// Mix(value). On a miss, `*slot` receives the index of the free slot
  /// that terminated the probe — the arrival's admission-filter cell.
  uint32_t FindEntry(uint64_t value, uint64_t hash, uint64_t* slot) const {
    uint64_t i = hash & index_mask_;
    while (index_[i].entry != kFreeSlot) {
      if (index_[i].value == value) return index_[i].entry;
      i = (i + 1) & index_mask_;
    }
    *slot = i;
    return kFreeSlot;
  }
  void IndexInsert(uint64_t value, uint32_t entry);
  void IndexErase(uint64_t value);

  /// Cold half of Observe: admits `value` into a fresh slot (below
  /// capacity) or over the minimum entry (at capacity, once its filter
  /// cell won admission). `cell` is the arrival's filter cell.
  void AdmitFresh(uint64_t value, int64_t count);
  void ReplaceMin(uint64_t value, int64_t candidate, uint32_t& cell);

  /// Restores the min-heap after entries_[entry].count changed.
  void SiftDown(uint32_t heap_pos);
  void SiftUp(uint32_t heap_pos);
  bool HeapLess(uint32_t entry_a, uint32_t entry_b) const;
  void HeapSwap(uint32_t pos_a, uint32_t pos_b);

  size_t capacity_;
  uint64_t index_mask_;           // index table size - 1 (power of two)
  /// Cached entries_[heap_[0]].count — the filtered-admission bar. Kept in
  /// sync by the paths that can change the root (admission, eviction, a
  /// hit on the root, any decrement); the tail fast path reads this one
  /// scalar instead of chasing heap_[0] into entries_.
  int64_t min_count_ = 0;
  /// Cached entries_.size() (== heap_.size()): the per-element paths test
  /// it against capacity_ and the heap leaf boundary without reloading
  /// the vectors' begin/end pointers.
  uint32_t live_ = 0;
  std::vector<Entry> entries_;    // fixed slots, size <= capacity_
  std::vector<IndexSlot> index_;  // open-addressed value -> entry
  std::vector<uint32_t> heap_;    // min-heap of entry indices by count

  // Relaxed-atomic tallies: written by the single Observe thread, safely
  // readable by any snapshotting thread.
  std::atomic<uint64_t> observations_{0};
  std::atomic<uint64_t> insert_mass_{0};
  std::atomic<uint64_t> delete_mass_{0};
  std::atomic<int64_t> net_mass_{0};

  /// HLL registers: register r holds the max trailing-zero rank seen among
  /// hashes routed to r by their top 6 bits.
  static constexpr size_t kDistinctRegisters = 64;
  uint8_t distinct_registers_[kDistinctRegisters] = {};
};

inline void StreamProfiler::Observe(uint64_t value, int64_t count) {
  // Single-writer tallies: load+store instead of fetch_add keeps the
  // counters atomic for concurrent gauge readers without paying a locked
  // read-modify-write per stream element on the ingest hot path.
  AddTallies(1, count >= 0 ? static_cast<uint64_t>(count) : 0,
             count >= 0 ? 0 : static_cast<uint64_t>(-count), count);
  ObserveValue(value, count);
}

inline void StreamProfiler::ObserveValue(uint64_t value, int64_t count) {
  const uint64_t hash = Mix(value);
  uint64_t free_slot = 0;
  const uint32_t entry = FindEntry(value, hash, &free_slot);
  if (entry != kFreeSlot) {
    Entry& hit = entries_[entry];
    hit.count += count;
    const uint32_t pos = hit.heap_pos;
    if (count >= 0) {
      // Heavy entries live at the heap's leaves, so most monitored hits
      // need no reordering — test for a child before paying the call.
      if (2 * pos + 1 < live_) SiftDown(pos);
      if (pos == 0) min_count_ = entries_[heap_[0]].count;
    } else {
      SiftUp(pos);
      min_count_ = entries_[heap_[0]].count;
    }
    return;
  }
  // The distinct registers are max-registers, so only a value's first
  // arrival can change them — and a first arrival is always an index miss
  // (monitored entries were admitted through this path). Updating here
  // keeps the hit path free of the register work at identical estimates.
  const size_t reg = hash >> 58;
  const uint8_t rho = static_cast<uint8_t>(
      std::countr_zero(hash | (uint64_t{1} << 58)) + 1);
  if (rho > distinct_registers_[reg]) distinct_registers_[reg] = rho;
  // A delete of an unmonitored value carries no admission signal.
  if (count <= 0) return;
  if (live_ < capacity_) {
    AdmitFresh(value, count);
    return;
  }
  // Filtered admission (after Homem & Carvalho's filtered space-saving):
  // an unmonitored arrival first accumulates in its filter cell, and only
  // claims a monitored slot once the cell's mass beats the current minimum
  // entry. The tail of a skewed stream thus costs one increment on a cache
  // line the index probe already touched instead of an evict-reindex-
  // resift cycle — the difference between ~15ns and ~55ns per Observe on
  // a Zipf(1.1) workload — while a genuine heavy hitter still crosses the
  // bar within O(min/rate) arrivals.
  uint32_t& cell = index_[free_slot].filter_mass;
  const int64_t min_count = min_count_;
  const int64_t candidate = static_cast<int64_t>(cell) + count;
  if (candidate <= min_count) {
    cell = candidate > static_cast<int64_t>(UINT32_MAX)
               ? UINT32_MAX
               : static_cast<uint32_t>(candidate);
    return;
  }
  ReplaceMin(value, candidate, cell);
}

/// Estimates the Zipf exponent z such that the top `stable_count` ranks of
/// a Zipf(z) distribution over `distinct` values cover `mass_fraction` of
/// the total mass. Bisection on z in [0, 5]; NaN when the inputs cannot
/// pin an exponent (no stable entries, distinct <= stable_count, or a mass
/// fraction outside (0, 1]). Exposed for the profiler accuracy tests.
double FitZipfExponentFromHeavyMass(uint64_t stable_count, double distinct,
                                    double mass_fraction);

}  // namespace util
}  // namespace skimjoin

#endif  // SKIMJOIN_UTIL_STREAM_PROFILER_H_
