#include "util/durable_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "util/failpoint.h"

namespace skimjoin {
namespace util {

namespace {

constexpr char kMagic[] = "skimjoin.durable v1\n";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;
constexpr char kEndSectionName[] = "__end__";
constexpr size_t kFrameHeaderLen = 12;  // name_len, payload_len, crc

// ---- CRC32C, slice-by-8 ------------------------------------------------
//
// Castagnoli polynomial, reflected form 0x82F63B78. Table 0 is the classic
// byte-at-a-time table; table t folds a byte that sits t positions deeper
// in the message, so eight table lookups advance the CRC by eight bytes.

struct Crc32cTables {
  uint32_t t[8][256];

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (int table = 1; table < 8; ++table) {
      for (uint32_t i = 0; i < 256; ++i) {
        t[table][i] = (t[table - 1][i] >> 8) ^ t[0][t[table - 1][i] & 0xFF];
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables* tables = new Crc32cTables;
  return *tables;
}

inline uint32_t LoadLe32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

void AppendLe32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

// Directory part of `path` ("." when the path has no slash), for the
// post-rename directory fsync.
std::string DirOf(const std::string& path) {
  const size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncDir(const std::string& dir) {
  SKIMJOIN_RETURN_IF_ERROR(failpoint::Check("durable:dir-fsync"));
  const int fd = RetryingOpen(dir.c_str(), O_RDONLY, 0);
  if (fd < 0) {
    return IoError("cannot open directory for fsync: " + dir + ": " +
                   std::strerror(errno));
  }
  const int rc = RetryingFsync(fd);
  ::close(fd);
  if (rc != 0) {
    return IoError("directory fsync failed: " + dir + ": " +
                   std::strerror(errno));
  }
  return OkStatus();
}

// True when the "durable:eintr" failpoint injects a simulated interrupt —
// the wrappers below treat a firing exactly like errno == EINTR.
bool SimulatedEintr() { return !failpoint::Check("durable:eintr").ok(); }

}  // namespace

// ---- EINTR-safe syscall wrappers --------------------------------------

int RetryingOpen(const char* path, int flags, unsigned mode) {
  while (true) {
    if (SimulatedEintr()) continue;
    const int fd = ::open(path, flags, static_cast<mode_t>(mode));
    if (fd < 0 && errno == EINTR) continue;
    return fd;
  }
}

long RetryingWrite(int fd, const void* data, size_t size) {
  while (true) {
    if (SimulatedEintr()) continue;
    const ssize_t written = ::write(fd, data, size);
    if (written < 0 && errno == EINTR) continue;
    return written;
  }
}

long RetryingRead(int fd, void* data, size_t size) {
  while (true) {
    if (SimulatedEintr()) continue;
    const ssize_t bytes = ::read(fd, data, size);
    if (bytes < 0 && errno == EINTR) continue;
    return bytes;
  }
}

int RetryingFsync(int fd) {
  while (true) {
    if (SimulatedEintr()) continue;
    const int rc = ::fsync(fd);
    if (rc != 0 && errno == EINTR) continue;
    return rc;
  }
}

uint32_t Crc32c(std::string_view data, uint32_t crc) {
  const Crc32cTables& tables = Tables();
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  crc = ~crc;
  while (n >= 8) {
    const uint32_t low = crc ^ LoadLe32(p);
    const uint32_t high = LoadLe32(p + 4);
    crc = tables.t[7][low & 0xFF] ^ tables.t[6][(low >> 8) & 0xFF] ^
          tables.t[5][(low >> 16) & 0xFF] ^ tables.t[4][low >> 24] ^
          tables.t[3][high & 0xFF] ^ tables.t[2][(high >> 8) & 0xFF] ^
          tables.t[1][(high >> 16) & 0xFF] ^ tables.t[0][high >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tables.t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

// ---- DurableFileWriter -------------------------------------------------

DurableFileWriter::DurableFileWriter(std::string path, std::string temp_path,
                                     int fd)
    : path_(std::move(path)), temp_path_(std::move(temp_path)), fd_(fd) {}

DurableFileWriter::DurableFileWriter(DurableFileWriter&& other) noexcept
    : path_(std::move(other.path_)),
      temp_path_(std::move(other.temp_path_)),
      fd_(other.fd_),
      section_count_(other.section_count_),
      committed_(other.committed_),
      abandoned_(other.abandoned_),
      failed_(std::move(other.failed_)) {
  other.fd_ = -1;
  other.committed_ = true;  // moved-from shell must not clean up
}

DurableFileWriter& DurableFileWriter::operator=(
    DurableFileWriter&& other) noexcept {
  if (this != &other) {
    CloseFd();
    if (!committed_ && !abandoned_ && !temp_path_.empty()) {
      std::remove(temp_path_.c_str());
    }
    path_ = std::move(other.path_);
    temp_path_ = std::move(other.temp_path_);
    fd_ = other.fd_;
    section_count_ = other.section_count_;
    committed_ = other.committed_;
    abandoned_ = other.abandoned_;
    failed_ = std::move(other.failed_);
    other.fd_ = -1;
    other.committed_ = true;
  }
  return *this;
}

DurableFileWriter::~DurableFileWriter() {
  CloseFd();
  // A simulated crash (Abandon) leaves the temp file exactly as the crash
  // left it; a plain failure or an unfinished writer cleans up.
  if (!committed_ && !abandoned_ && !temp_path_.empty()) {
    std::remove(temp_path_.c_str());
  }
}

void DurableFileWriter::CloseFd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<DurableFileWriter> DurableFileWriter::Create(
    const std::string& path) {
  if (path.empty()) {
    return InvalidArgumentError("durable file path must be non-empty");
  }
  SKIMJOIN_RETURN_IF_ERROR(failpoint::Check("durable:open-temp"));
  std::string temp_path = path + ".tmp";
  const int fd =
      RetryingOpen(temp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return IoError("cannot open temp file for writing: " + temp_path + ": " +
                   std::strerror(errno));
  }
  DurableFileWriter writer(path, std::move(temp_path), fd);
  SKIMJOIN_RETURN_IF_ERROR(
      writer.WriteRaw(std::string_view(kMagic, kMagicLen)));
  return writer;
}

Status DurableFileWriter::WriteRaw(std::string_view bytes) {
  if (!failed_.ok()) return failed_;
  const failpoint::internal::WriteOutcome outcome =
      failpoint::CheckWrite("durable:append", bytes.size());
  const char* p = bytes.data();
  size_t remaining = outcome.allowed_bytes;
  while (remaining > 0) {
    const long written = RetryingWrite(fd_, p, remaining);
    if (written < 0) {
      failed_ = IoError("write failed for " + temp_path_ + ": " +
                        std::strerror(errno));
      return failed_;
    }
    p += written;
    remaining -= static_cast<size_t>(written);
  }
  if (!outcome.status.ok()) {
    failed_ = outcome.status;
    if (failpoint::IsSimulatedCrash(outcome.status)) Abandon();
    return failed_;
  }
  return OkStatus();
}

Status DurableFileWriter::AppendSection(std::string_view name,
                                        std::string_view payload) {
  if (!failed_.ok()) return failed_;
  if (committed_) {
    return FailedPreconditionError("durable file already committed");
  }
  if (name.empty() || name.size() > kMaxNameLen) {
    return InvalidArgumentError(
        "durable section name must be 1.." + std::to_string(kMaxNameLen) +
        " bytes");
  }
  if (name == kEndSectionName) {
    return InvalidArgumentError("durable section name __end__ is reserved");
  }
  if (payload.size() > kMaxPayloadLen) {
    return InvalidArgumentError("durable section payload too large");
  }
  std::string frame;
  frame.reserve(kFrameHeaderLen + name.size() + payload.size());
  AppendLe32(&frame, static_cast<uint32_t>(name.size()));
  AppendLe32(&frame, static_cast<uint32_t>(payload.size()));
  AppendLe32(&frame, Crc32c(payload, Crc32c(name)));
  frame.append(name);
  frame.append(payload);
  SKIMJOIN_RETURN_IF_ERROR(WriteRaw(frame));
  ++section_count_;
  return OkStatus();
}

Status DurableFileWriter::Commit() {
  if (!failed_.ok()) return failed_;
  if (committed_) {
    return FailedPreconditionError("durable file already committed");
  }
  // End marker: section count as the payload, framed and checksummed like
  // every other section, so the reader can tell a complete file from any
  // truncation — including one that ends exactly at a frame boundary.
  const std::string count = std::to_string(section_count_);
  std::string frame;
  AppendLe32(&frame, static_cast<uint32_t>(sizeof(kEndSectionName) - 1));
  AppendLe32(&frame, static_cast<uint32_t>(count.size()));
  AppendLe32(&frame, Crc32c(count, Crc32c(kEndSectionName)));
  frame.append(kEndSectionName);
  frame.append(count);
  SKIMJOIN_RETURN_IF_ERROR(WriteRaw(frame));

  Status fp = failpoint::Check("durable:fsync");
  if (!fp.ok()) {
    failed_ = fp;
    if (failpoint::IsSimulatedCrash(fp)) Abandon();
    return failed_;
  }
  if (RetryingFsync(fd_) != 0) {
    failed_ = IoError("fsync failed for " + temp_path_ + ": " +
                      std::strerror(errno));
    return failed_;
  }
  CloseFd();

  fp = failpoint::Check("durable:rename");
  if (!fp.ok()) {
    failed_ = fp;
    if (failpoint::IsSimulatedCrash(fp)) Abandon();
    return failed_;
  }
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    failed_ = IoError("rename failed: " + temp_path_ + " -> " + path_ + ": " +
                      std::strerror(errno));
    return failed_;
  }
  committed_ = true;  // the data is in place even if the dir fsync fails
  return FsyncDir(DirOf(path_));
}

void DurableFileWriter::Abandon() {
  abandoned_ = true;
  CloseFd();
}

// ---- DurableFileReader -------------------------------------------------

DurableFileReader::DurableFileReader(std::ifstream in) : in_(std::move(in)) {}

StatusOr<DurableFileReader> DurableFileReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return IoError("cannot open durable file for reading: " + path);
  }
  char magic[kMagicLen];
  if (!in.read(magic, kMagicLen) ||
      std::string_view(magic, kMagicLen) != std::string_view(kMagic)) {
    return InvalidArgumentError("not a skimjoin durable file: " + path);
  }
  return DurableFileReader(std::move(in));
}

StatusOr<std::optional<DurableSection>> DurableFileReader::Next() {
  if (end_seen_) return std::optional<DurableSection>();

  unsigned char header[kFrameHeaderLen];
  in_.read(reinterpret_cast<char*>(header), kFrameHeaderLen);
  if (in_.gcount() == 0 && in_.eof()) {
    return IoError(
        "truncated durable file: end marker missing (file cut at a frame "
        "boundary)");
  }
  if (static_cast<size_t>(in_.gcount()) != kFrameHeaderLen) {
    return IoError("truncated durable file: partial frame header");
  }
  const uint32_t name_len = LoadLe32(header);
  const uint32_t payload_len = LoadLe32(header + 4);
  const uint32_t stored_crc = LoadLe32(header + 8);
  if (name_len == 0 || name_len > DurableFileWriter::kMaxNameLen) {
    return InvalidArgumentError("corrupt durable frame: bad name length");
  }
  if (payload_len > DurableFileWriter::kMaxPayloadLen) {
    return InvalidArgumentError("corrupt durable frame: bad payload length");
  }
  DurableSection section;
  section.name.resize(name_len);
  if (!in_.read(section.name.data(), name_len)) {
    return IoError("truncated durable file: partial section name");
  }
  section.payload.resize(payload_len);
  if (payload_len > 0 && !in_.read(section.payload.data(), payload_len)) {
    return IoError("truncated durable file: partial section payload");
  }
  const uint32_t computed = Crc32c(section.payload, Crc32c(section.name));
  if (computed != stored_crc) {
    return InvalidArgumentError("corrupt durable frame: CRC mismatch in '" +
                                section.name + "'");
  }
  if (section.name == kEndSectionName) {
    uint64_t declared = 0;
    for (const char c : section.payload) {
      if (c < '0' || c > '9') {
        return InvalidArgumentError("corrupt durable end marker");
      }
      declared = declared * 10 + static_cast<uint64_t>(c - '0');
    }
    if (section.payload.empty() || declared != sections_read_) {
      return InvalidArgumentError(
          "durable end marker declares " + section.payload + " sections, " +
          std::to_string(sections_read_) + " were read");
    }
    if (in_.peek() != std::ifstream::traits_type::eof()) {
      return InvalidArgumentError("durable file has bytes after end marker");
    }
    end_seen_ = true;
    return std::optional<DurableSection>();
  }
  ++sections_read_;
  return std::optional<DurableSection>(std::move(section));
}

// ---- AtomicWriteFile ---------------------------------------------------

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  if (path.empty()) {
    return InvalidArgumentError("atomic write path must be non-empty");
  }
  SKIMJOIN_RETURN_IF_ERROR(failpoint::Check("durable:open-temp"));
  const std::string temp_path = path + ".tmp";
  const int fd =
      RetryingOpen(temp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return IoError("cannot open temp file for writing: " + temp_path + ": " +
                   std::strerror(errno));
  }

  // On failure, clean the temp up — unless the failure simulates a crash,
  // which leaves it behind exactly as a dead process would.
  const auto fail = [&](Status status) {
    ::close(fd);
    if (!failpoint::IsSimulatedCrash(status)) std::remove(temp_path.c_str());
    return status;
  };

  const failpoint::internal::WriteOutcome outcome =
      failpoint::CheckWrite("durable:append", contents.size());
  const char* p = contents.data();
  size_t remaining = outcome.allowed_bytes;
  while (remaining > 0) {
    const long written = RetryingWrite(fd, p, remaining);
    if (written < 0) {
      return fail(IoError("write failed for " + temp_path + ": " +
                          std::strerror(errno)));
    }
    p += written;
    remaining -= static_cast<size_t>(written);
  }
  if (!outcome.status.ok()) return fail(outcome.status);

  Status fp = failpoint::Check("durable:fsync");
  if (!fp.ok()) return fail(std::move(fp));
  if (RetryingFsync(fd) != 0) {
    return fail(IoError("fsync failed for " + temp_path + ": " +
                        std::strerror(errno)));
  }
  ::close(fd);

  fp = failpoint::Check("durable:rename");
  if (!fp.ok()) {
    if (!failpoint::IsSimulatedCrash(fp)) std::remove(temp_path.c_str());
    return fp;
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    const Status status = IoError("rename failed: " + temp_path + " -> " +
                                  path + ": " + std::strerror(errno));
    std::remove(temp_path.c_str());
    return status;
  }
  return FsyncDir(DirOf(path));
}

}  // namespace util
}  // namespace skimjoin
