#include "util/stream_profiler.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace skimjoin {
namespace util {

namespace {

/// Generalized harmonic number H_n(z) = Σ_{r=1..n} r^-z: exact head sum
/// plus a midpoint-continuity integral tail, so snapshot-time evaluation
/// stays cheap for domains in the millions.
double GeneralizedHarmonic(double n, double z) {
  constexpr uint64_t kExactHead = 2048;
  const uint64_t head =
      std::min<uint64_t>(static_cast<uint64_t>(n), kExactHead);
  double sum = 0.0;
  for (uint64_t r = 1; r <= head; ++r) {
    sum += std::pow(static_cast<double>(r), -z);
  }
  if (n > static_cast<double>(head)) {
    const double a = static_cast<double>(head) + 0.5;
    const double b = n + 0.5;
    if (std::fabs(z - 1.0) < 1e-9) {
      sum += std::log(b / a);
    } else {
      sum += (std::pow(b, 1.0 - z) - std::pow(a, 1.0 - z)) / (1.0 - z);
    }
  }
  return sum;
}

/// True iff k lies cyclically in (i, j] — the backshift-deletion test for
/// "the element probing from k may not be moved across the hole at i".
bool CyclicBetween(uint64_t i, uint64_t k, uint64_t j) {
  return i <= j ? (i < k && k <= j) : (i < k || k <= j);
}

}  // namespace

StreamProfiler::StreamProfiler(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  entries_.reserve(capacity_);
  heap_.reserve(capacity_);
  size_t index_size = 8;
  while (index_size < 4 * capacity_) index_size <<= 1;
  index_.assign(index_size, IndexSlot{});
  index_mask_ = index_size - 1;
}

void StreamProfiler::Reset() {
  entries_.clear();
  heap_.clear();
  min_count_ = 0;
  live_ = 0;
  index_.assign(index_.size(), IndexSlot{});
  observations_.store(0, std::memory_order_relaxed);
  insert_mass_.store(0, std::memory_order_relaxed);
  delete_mass_.store(0, std::memory_order_relaxed);
  net_mass_.store(0, std::memory_order_relaxed);
  for (uint8_t& r : distinct_registers_) r = 0;
}

void StreamProfiler::IndexInsert(uint64_t value, uint32_t entry) {
  uint64_t i = Mix(value) & index_mask_;
  while (index_[i].entry != kFreeSlot) i = (i + 1) & index_mask_;
  index_[i].value = value;
  index_[i].entry = entry;
}

void StreamProfiler::IndexErase(uint64_t value) {
  uint64_t i = Mix(value) & index_mask_;
  while (index_[i].entry == kFreeSlot || index_[i].value != value) {
    i = (i + 1) & index_mask_;
  }
  // Backshift deletion: pull probe-chain successors into the hole so no
  // tombstones accumulate under eviction churn.
  uint64_t j = i;
  for (;;) {
    j = (j + 1) & index_mask_;
    if (index_[j].entry == kFreeSlot) {
      index_[i].entry = kFreeSlot;
      return;
    }
    const uint64_t home = Mix(index_[j].value) & index_mask_;
    if (!CyclicBetween(i, home, j)) {
      index_[i] = index_[j];
      i = j;
    }
  }
}

bool StreamProfiler::HeapLess(uint32_t entry_a, uint32_t entry_b) const {
  return entries_[entry_a].count < entries_[entry_b].count;
}

void StreamProfiler::HeapSwap(uint32_t pos_a, uint32_t pos_b) {
  std::swap(heap_[pos_a], heap_[pos_b]);
  entries_[heap_[pos_a]].heap_pos = pos_a;
  entries_[heap_[pos_b]].heap_pos = pos_b;
}

void StreamProfiler::SiftUp(uint32_t heap_pos) {
  while (heap_pos > 0) {
    const uint32_t parent = (heap_pos - 1) / 2;
    if (!HeapLess(heap_[heap_pos], heap_[parent])) return;
    HeapSwap(heap_pos, parent);
    heap_pos = parent;
  }
}

void StreamProfiler::SiftDown(uint32_t heap_pos) {
  const uint32_t size = static_cast<uint32_t>(heap_.size());
  for (;;) {
    uint32_t smallest = heap_pos;
    const uint32_t left = 2 * heap_pos + 1;
    const uint32_t right = 2 * heap_pos + 2;
    if (left < size && HeapLess(heap_[left], heap_[smallest])) {
      smallest = left;
    }
    if (right < size && HeapLess(heap_[right], heap_[smallest])) {
      smallest = right;
    }
    if (smallest == heap_pos) return;
    HeapSwap(heap_pos, smallest);
    heap_pos = smallest;
  }
}

void StreamProfiler::AdmitFresh(uint64_t value, int64_t count) {
  const uint32_t index = static_cast<uint32_t>(entries_.size());
  entries_.push_back(Entry{value, count, 0, index});
  heap_.push_back(index);
  ++live_;
  SiftUp(index);
  IndexInsert(value, index);
  min_count_ = entries_[heap_[0]].count;
}

void StreamProfiler::ReplaceMin(uint64_t value, int64_t candidate,
                                uint32_t& cell) {
  // Eviction: the displaced entry banks its count back into its own filter
  // cell (so it can re-enter at full strength later), and the admitted
  // value inherits its cell's accumulated mass — the cell is the bound on
  // how much of the new count belongs to colliding values, so it becomes
  // the entry's error term. The cell is then drained: its mass now lives
  // in the monitored entry.
  const uint32_t victim = heap_[0];
  Entry& evicted = entries_[victim];
  IndexErase(evicted.value);
  uint64_t evicted_slot = 0;
  (void)FindEntry(evicted.value, Mix(evicted.value), &evicted_slot);
  uint32_t& evicted_cell = index_[evicted_slot].filter_mass;
  const int64_t writeback = evicted.count < 0 ? 0 : evicted.count;
  if (writeback > static_cast<int64_t>(evicted_cell)) {
    evicted_cell = writeback > static_cast<int64_t>(UINT32_MAX)
                       ? UINT32_MAX
                       : static_cast<uint32_t>(writeback);
  }
  evicted.value = value;
  evicted.error = static_cast<int64_t>(cell);
  evicted.count = candidate;
  cell = 0;
  IndexInsert(value, victim);
  SiftDown(evicted.heap_pos);
  min_count_ = entries_[heap_[0]].count;
}

StreamProfiler::Snapshot StreamProfiler::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.observations = observations_.load(std::memory_order_relaxed);
  snapshot.insert_mass = insert_mass_.load(std::memory_order_relaxed);
  snapshot.delete_mass = delete_mass_.load(std::memory_order_relaxed);
  snapshot.net_mass = net_mass_.load(std::memory_order_relaxed);
  const double churn = static_cast<double>(snapshot.insert_mass) +
                       static_cast<double>(snapshot.delete_mass);
  snapshot.delete_ratio =
      churn > 0.0 ? static_cast<double>(snapshot.delete_mass) / churn : 0.0;

  // HLL estimate over the 64 registers, with the standard small-range
  // (linear counting) correction.
  constexpr double kAlpha64 = 0.709;
  constexpr double kRegisters = static_cast<double>(kDistinctRegisters);
  double inverse_sum = 0.0;
  size_t zero_registers = 0;
  for (const uint8_t r : distinct_registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zero_registers;
  }
  double distinct = kAlpha64 * kRegisters * kRegisters / inverse_sum;
  if (distinct <= 2.5 * kRegisters && zero_registers > 0) {
    distinct = kRegisters *
               std::log(kRegisters / static_cast<double>(zero_registers));
  }
  snapshot.distinct_estimate = distinct;
  snapshot.distinct_rate =
      snapshot.observations > 0
          ? distinct / static_cast<double>(snapshot.observations)
          : 0.0;

  snapshot.heavy_hitters.reserve(entries_.size());
  uint64_t stable_count = 0;
  double stable_mass = 0.0;
  double guaranteed_mass = 0.0;
  for (const Entry& entry : entries_) {
    snapshot.heavy_hitters.push_back(
        HeavyHitter{entry.value, entry.count, entry.error});
    if (entry.count > entry.error) {
      guaranteed_mass += static_cast<double>(entry.count - entry.error);
    }
    // "Stable" entries — long-resident, error at most half the count — are
    // the trustworthy top of the distribution the skew fit leans on.
    if (entry.count > 0 && 2 * entry.error <= entry.count) {
      ++stable_count;
      stable_mass += static_cast<double>(entry.count - entry.error);
    }
  }
  std::sort(snapshot.heavy_hitters.begin(), snapshot.heavy_hitters.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              return a.count != b.count ? a.count > b.count
                                        : a.value < b.value;
            });
  snapshot.heavy_mass_fraction =
      snapshot.insert_mass > 0
          ? guaranteed_mass / static_cast<double>(snapshot.insert_mass)
          : 0.0;

  const double stable_fraction =
      snapshot.insert_mass > 0
          ? stable_mass / static_cast<double>(snapshot.insert_mass)
          : 0.0;
  snapshot.skew =
      FitZipfExponentFromHeavyMass(stable_count, distinct, stable_fraction);
  return snapshot;
}

double FitZipfExponentFromHeavyMass(uint64_t stable_count, double distinct,
                                    double mass_fraction) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  if (stable_count == 0 || !(mass_fraction > 0.0)) return kNaN;
  if (!(distinct > static_cast<double>(stable_count) + 0.5)) return kNaN;
  const double target = std::min(mass_fraction, 1.0);
  const double top = static_cast<double>(stable_count);
  // Fraction of a Zipf(z) distribution's mass covered by its top ranks —
  // increasing in z, so a bisection pins the exponent.
  const auto covered = [&](double z) {
    return GeneralizedHarmonic(top, z) / GeneralizedHarmonic(distinct, z);
  };
  double lo = 0.0, hi = 5.0;
  if (target <= covered(lo)) return 0.0;
  if (target >= covered(hi)) return hi;
  for (int iteration = 0; iteration < 64; ++iteration) {
    const double mid = 0.5 * (lo + hi);
    if (covered(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace util
}  // namespace skimjoin
