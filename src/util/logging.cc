#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

#include "util/event_log.h"

namespace skimjoin {
namespace internal_logging {

void CheckFailed(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[skimjoin] CHECK failed at %s:%d: %s\n", file, line,
               message.c_str());
  std::fflush(stderr);
  // Route the failure through the structured event log so attached sinks
  // (files, collectors) record it before the process dies — the stderr line
  // above is all an operator would otherwise get. Guarded against a sink
  // itself CHECK-failing, which must not recurse into the log.
  thread_local bool in_check_failure = false;
  if (!in_check_failure) {
    in_check_failure = true;
    EventLog::Global().Emit(LogLevel::kError, "check_failed",
                            {{"file", file},
                             {"line", std::to_string(line)},
                             {"message", message}});
    in_check_failure = false;
  }
  std::abort();
}

CheckMessageBuilder::CheckMessageBuilder(const char* file, int line,
                                         const char* condition)
    : file_(file), line_(line) {
  stream_ << condition;
}

CheckMessageBuilder::~CheckMessageBuilder() {
  CheckFailed(file_, line_, stream_.str());
}

}  // namespace internal_logging
}  // namespace skimjoin
