#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace skimjoin {
namespace internal_logging {

void CheckFailed(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[skimjoin] CHECK failed at %s:%d: %s\n", file, line,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

CheckMessageBuilder::CheckMessageBuilder(const char* file, int line,
                                         const char* condition)
    : file_(file), line_(line) {
  stream_ << condition;
}

CheckMessageBuilder::~CheckMessageBuilder() {
  CheckFailed(file_, line_, stream_.str());
}

}  // namespace internal_logging
}  // namespace skimjoin
