// Estimate provenance: the self-description every estimator family can
// return next to its point answer. A bare double says nothing about how
// trustworthy it is; an EstimateReport carries the per-copy atomic
// estimates behind the median-of-means boost, their spread, an empirical
// confidence interval read off the copy distribution, the paper's a-priori
// additive-error envelope, and — for skimmed joins — the full skim
// diagnostics (dense items extracted, residual L2 mass before/after
// skimming, the four sub-join contributions of PAPER.md §3.2).
//
// This lives in util (not sketch/ or core/) because it is pure data plus
// order statistics: every layer from the sketches up through the query
// engine fills one in without new inter-layer dependencies. Reports are
// built at ESTIMATE time only — never on the per-element ingest path.

#ifndef SKIMJOIN_UTIL_ESTIMATE_REPORT_H_
#define SKIMJOIN_UTIL_ESTIMATE_REPORT_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace skimjoin {

/// An empirical two-sided interval around an estimate, derived from the
/// copy distribution (see FinishReportFromCopies).
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
  /// Nominal coverage level in (0, 1), e.g. 0.90.
  double level = 0.90;

  double Width() const { return upper - lower; }
};

/// Skim-pipeline internals for one skimmed-sketch join estimate
/// (ESTSKIMJOINSIZE, PAPER.md §3): what was skimmed out of each stream and
/// how the four sub-joins composed into the answer.
struct SkimDiagnostics {
  /// SKIMDENSE extraction thresholds (counts at or above are "dense").
  int64_t threshold_f = 0;
  int64_t threshold_g = 0;
  /// Dense domain values extracted per stream.
  uint64_t dense_count_f = 0;
  uint64_t dense_count_g = 0;
  /// Estimated L2 norm (sqrt of self-join size) of each stream's frequency
  /// vector before skimming and of the residual sketch after the dense
  /// frequencies were subtracted out. The paper's error gain comes from
  /// after << before.
  double residual_l2_before_f = 0.0;
  double residual_l2_after_f = 0.0;
  double residual_l2_before_g = 0.0;
  double residual_l2_after_g = 0.0;
  /// The four sub-join contributions; they sum to the point estimate.
  double dense_dense = 0.0;
  double dense_sparse = 0.0;
  double sparse_dense = 0.0;
  double sparse_sparse = 0.0;

  /// Residual-to-original L2 ratio per stream in [0, ~1]: how much mass
  /// skimming removed (0 = everything was dense, 1 = nothing skimmed).
  /// Zero when the "before" norm is zero (empty stream).
  double ResidualRatioF() const {
    return residual_l2_before_f > 0.0
               ? residual_l2_after_f / residual_l2_before_f
               : 0.0;
  }
  double ResidualRatioG() const {
    return residual_l2_before_g > 0.0
               ? residual_l2_after_g / residual_l2_before_g
               : 0.0;
  }
};

/// A point-in-time health probe of one synopsis: is this sketch sized and
/// behaving right for the stream it has absorbed? Like SkimDiagnostics,
/// this is pure data living in util/ so every synopsis family (sketch/,
/// core/) can fill one in and every consumer (query engine, shell, dist
/// coordinator) can read it without new inter-layer dependencies. Probes
/// are read-only and run at HEALTH time, never on the ingest path.
struct SynopsisHealth {
  /// Synopsis family, e.g. "hash-sketch", "count-min", "agms", "skimmed",
  /// "dyadic".
  std::string kind;
  /// Which side of a pair this probe describes ("f"/"g"), or "" for a
  /// standalone synopsis.
  std::string role;
  /// Counters probed.
  uint64_t total_counters = 0;
  /// Fraction of counters that are nonzero, overall and as the min/max
  /// across tables (bucket-occupancy quantiles: a lopsided table hints at
  /// a weak hash interaction or a pathological value distribution).
  double occupancy = 0.0;
  double occupancy_min_table = 0.0;
  double occupancy_max_table = 0.0;
  /// |counter| order statistics over the NONZERO counters (0 when all
  /// counters are zero).
  double counter_p50 = 0.0;
  double counter_p99 = 0.0;
  double counter_max = 0.0;
  /// Counter-saturation headroom: p99 |counter| as a fraction of int32's
  /// range (the slim-view narrowing threshold) and max |counter| as a
  /// fraction of int64's (true overflow).
  double int32_saturation = 0.0;
  double int64_saturation = 0.0;
  /// Estimated distinct values hashed per bucket, inverted from mean
  /// occupancy (n̂ = ln(1-occ)/ln(1-1/b), pressure = n̂/b). NaN for
  /// synopses where every update touches every counter (AGMS).
  double collision_pressure = std::numeric_limits<double>::quiet_NaN();
  /// Skimmed sketches only; NaN elsewhere. The current skim's dense-value
  /// fraction of the domain and residual-to-original L2 ratio, next to the
  /// values recorded at the last ESTIMATE-path SKIMDENSE — drift between
  /// them means answers are being served from an increasingly stale
  /// picture of which values are dense.
  double dense_fraction = std::numeric_limits<double>::quiet_NaN();
  double residual_ratio = std::numeric_limits<double>::quiet_NaN();
  double dense_fraction_at_estimate =
      std::numeric_limits<double>::quiet_NaN();
  double residual_ratio_at_estimate =
      std::numeric_limits<double>::quiet_NaN();
};

/// Fills the counter-derived fields of a SynopsisHealth (occupancy,
/// |counter| quantiles, saturation, collision pressure) from a row-major
/// counter array of `num_tables` equal tables. The caller sets kind/role
/// and any family-specific fields. `num_tables` == 0 or a size that does
/// not divide evenly degrades to one whole-array "table".
SynopsisHealth ProbeCounters(std::span<const int64_t> counters,
                             uint64_t num_tables);

/// Compact one-line description of a probe, e.g. "occ 0.93, p99 1824
/// (0.0% of int32), 3.1 values/bucket, residual 0.40 (vs 0.38 at
/// estimate)". Shared by RenderEstimateReport and the engine's health
/// renderer so both read the same.
std::string DescribeSynopsisHealth(const SynopsisHealth& health);

/// One shard's contribution to a distributed (coordinator-merged) answer:
/// which worker it came from, how healthy that worker looked at answer
/// time, and whether its delta was refreshed in the answering pull round
/// or served stale from the coordinator's cache.
struct ShardContribution {
  /// Worker shard name, e.g. "shard0".
  std::string shard;
  /// Health at answer time: "healthy", "recovering", or "down".
  std::string health;
  /// True when the delta was pulled fresh in the answering round; false
  /// when the coordinator fell back to its cached (stale) copy.
  bool fresh = true;
  /// Worker ingest epoch (update batches applied) the delta reflects.
  uint64_t epoch = 0;
  /// How many epochs the delta lags the worker's last acknowledged epoch.
  /// Nonzero for a restarted worker that has not finished replay.
  uint64_t epochs_behind = 0;
};

/// The provenance record a *WithReport estimator variant returns. The
/// `estimate` field is always bit-identical to the corresponding legacy
/// double-returning API (both paths share the same per-copy computation).
struct EstimateReport {
  /// Estimator family, e.g. "agms", "hash-sketch", "skimmed", "count-min".
  std::string method;
  /// The point answer (identical to the legacy API's return value).
  double estimate = 0.0;
  /// The independent atomic estimates the point answer was boosted from:
  /// one per median group (AGMS) or per hash table (bucketed sketches).
  /// May be empty for methods without per-copy structure (e.g. sampling).
  std::vector<double> copy_estimates;
  /// Population standard deviation of copy_estimates (0 when < 2 copies):
  /// the observed median-of-means spread.
  double copy_spread = 0.0;
  /// Empirical interval from the copy distribution, widened when necessary
  /// to contain `estimate` (a min- or sum-composed point answer need not
  /// lie between the copy quantiles).
  ConfidenceInterval ci;
  /// The paper's a-priori additive error envelope for this family and
  /// provisioning (§2.2 Theorem 1 variance term for AGMS-style estimators,
  /// §3.2 decomposition for skimmed joins), evaluated with estimated
  /// self-join sizes. NaN when the family has no closed-form envelope.
  double apriori_bound = std::numeric_limits<double>::quiet_NaN();
  /// Present only for skimmed-sketch join estimates.
  std::optional<SkimDiagnostics> skim;
  /// Synopsis health probes taken at answer time (one per synopsis behind
  /// the estimate, e.g. the f and g sketches of a join pair). Optional:
  /// empty when the answering layer did not attach probes. Never affects
  /// `estimate` — probes are read-only observers.
  std::vector<SynopsisHealth> health;
  /// Distributed answers only: true when at least one shard's contribution
  /// was stale or missing — the answer is degraded, not exact-merge.
  bool partial = false;
  /// Distributed answers only: one entry per worker shard the coordinator
  /// merged (or tried to). Empty for single-process answers.
  std::vector<ShardContribution> shards;

  /// CI width relative to the estimate's magnitude (absolute width when the
  /// estimate is smaller than 1 in magnitude) — the blow-up signal the
  /// engine records as query.<id>.ci_rel_width.
  double CiRelWidth() const;
};

/// Fills the derived statistics of `report` from its `estimate` and
/// `copy_estimates`: copy_spread, and the empirical CI as the
/// [(1-level)/2, 1-(1-level)/2] percentiles of the copies, expanded to
/// include the point estimate. With no copies the CI degenerates to the
/// point estimate itself.
void FinishReportFromCopies(EstimateReport* report, double level = 0.90);

/// Renders the report as a fixed-width text table (util/table_printer) for
/// the shell's `explain` command and the CLI's --explain flag.
std::string RenderEstimateReport(const EstimateReport& report);

}  // namespace skimjoin

#endif  // SKIMJOIN_UTIL_ESTIMATE_REPORT_H_
