#include "util/failpoint.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "util/random.h"

namespace skimjoin {
namespace failpoint {

namespace {

// Message prefix that tags a status as a simulated crash. Chosen to be
// specific enough that no production error message collides with it.
constexpr char kCrashPrefix[] = "simulated crash at failpoint ";

constexpr uint64_t kDefaultChaosSeed = 0x736b696d6a6f696eULL;  // "skimjoin"

struct Entry {
  Spec spec;
  uint64_t hits = 0;    // evaluations while active
  uint64_t fired = 0;   // evaluations that injected a failure
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Entry> entries;
  // Hit counts survive deactivation so tests can assert a hook was reached
  // even after DeactivateAll.
  std::unordered_map<std::string, uint64_t> retired_hits;
  // Drives Spec::one_in probabilistic firing; deterministic so a chaos
  // soak replays exactly from its printed seed.
  Rng chaos_rng{kDefaultChaosSeed};
};

Registry& GetRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

Status MakeStatus(const char* name, const Entry& entry) {
  if (entry.spec.mode == Mode::kCrash) {
    std::string message = std::string(kCrashPrefix) + name;
    if (!entry.spec.message.empty()) message += ": " + entry.spec.message;
    return Status(StatusCode::kIoError, std::move(message));
  }
  std::string message = std::string("failpoint ") + name + " fired";
  if (!entry.spec.message.empty()) message += ": " + entry.spec.message;
  const StatusCode code = entry.spec.mode == Mode::kTornWrite
                              ? StatusCode::kIoError
                              : entry.spec.code;
  return Status(code, std::move(message));
}

// Returns nullptr when the failpoint should pass; otherwise the entry to
// build the injected failure from. Caller holds the registry mutex.
Entry* Evaluate(Registry& registry, const char* name) {
  const auto it = registry.entries.find(name);
  if (it == registry.entries.end()) return nullptr;
  Entry& entry = it->second;
  ++entry.hits;
  if (entry.hits <= entry.spec.skip) return nullptr;
  if (entry.fired >= entry.spec.limit) return nullptr;
  if (entry.spec.one_in > 1 &&
      registry.chaos_rng.NextUint64Below(entry.spec.one_in) != 0) {
    return nullptr;
  }
  ++entry.fired;
  return &entry;
}

}  // namespace

namespace internal {

std::atomic<uint64_t> g_active_count{0};

Status CheckSlow(const char* name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  Entry* entry = Evaluate(registry, name);
  if (entry == nullptr) return OkStatus();
  return MakeStatus(name, *entry);
}

WriteOutcome CheckWriteSlow(const char* name, size_t intended_bytes) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  Entry* entry = Evaluate(registry, name);
  if (entry == nullptr) return {intended_bytes, OkStatus()};
  size_t allowed = 0;
  if (entry->spec.mode == Mode::kTornWrite ||
      entry->spec.mode == Mode::kCrash) {
    allowed = std::min<size_t>(entry->spec.torn_bytes, intended_bytes);
  }
  return {allowed, MakeStatus(name, *entry)};
}

}  // namespace internal

void Activate(const std::string& name, Spec spec) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] = registry.entries.insert_or_assign(name, Entry{spec});
  (void)it;
  if (inserted) {
    internal::g_active_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void Deactivate(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  const auto it = registry.entries.find(name);
  if (it == registry.entries.end()) return;
  registry.retired_hits[name] += it->second.hits;
  registry.entries.erase(it);
  internal::g_active_count.fetch_sub(1, std::memory_order_relaxed);
}

void DeactivateAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& [name, entry] : registry.entries) {
    registry.retired_hits[name] += entry.hits;
  }
  internal::g_active_count.fetch_sub(registry.entries.size(),
                                     std::memory_order_relaxed);
  registry.entries.clear();
}

uint64_t HitCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  uint64_t hits = 0;
  if (const auto it = registry.retired_hits.find(name);
      it != registry.retired_hits.end()) {
    hits += it->second;
  }
  if (const auto it = registry.entries.find(name);
      it != registry.entries.end()) {
    hits += it->second.hits;
  }
  return hits;
}

bool IsSimulatedCrash(const Status& status) {
  return !status.ok() &&
         status.message().rfind(kCrashPrefix, 0) == 0;
}

void SeedChaos(uint64_t seed) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.chaos_rng = Rng(seed);
}

}  // namespace failpoint
}  // namespace skimjoin
