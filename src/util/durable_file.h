// Crash-safe file writing: CRC-protected framed sections plus atomic
// commit, the substrate of the engine checkpoint format (query/checkpoint)
// and of atomic whole-file writes (stream::WriteTrace).
//
// Durability contract. A DurableFileWriter streams named sections into a
// temp file (`<path>.tmp`); Commit() appends an end marker, flushes,
// fsync()s, rename()s the temp over `path`, and fsync()s the parent
// directory. POSIX rename is atomic, so at every instant `path` either
// does not exist, holds the complete previous file, or holds the complete
// new file — a crash at ANY point of the write leaves the previous file
// untouched. The reader then detects every torn or corrupted outcome:
//
//   * each section frame carries its payload length and a CRC32C over
//     name + payload, so bit flips and misframed reads fail the checksum;
//   * the file ends with a dedicated end-marker section recording the
//     section count, so truncation — even exactly at a frame boundary —
//     is distinguishable from a clean end of file.
//
// Binary layout (little-endian u32s):
//   "skimjoin.durable v1\n"
//   repeat: [name_len][payload_len][crc32c(name||payload)][name][payload]
//   final section: name = "__end__", payload = decimal section count
//
// Every step is instrumented with failpoints (util/failpoint.h):
//   durable:open-temp   opening the temp file
//   durable:append      each section write (supports torn writes)
//   durable:fsync       the pre-rename fsync
//   durable:rename      the atomic rename
//   durable:dir-fsync   the parent-directory fsync
// A simulated-crash firing abandons the temp file in place (no cleanup),
// exactly as a real crash would.

#ifndef SKIMJOIN_UTIL_DURABLE_FILE_H_
#define SKIMJOIN_UTIL_DURABLE_FILE_H_

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace skimjoin {
namespace util {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected), computed with the
/// slice-by-8 table method — 8 bytes per iteration, no hardware intrinsics.
/// `crc` chains calls: Crc32c(b, Crc32c(a)) == Crc32c(a || b).
uint32_t Crc32c(std::string_view data, uint32_t crc = 0);

/// EINTR-safe syscall wrappers. A signal landing mid-checkpoint used to
/// surface as a spurious IoError from whichever raw syscall it interrupted;
/// these retry until the call completes or fails for a real reason. Each
/// wrapper also consults the "durable:eintr" failpoint — a firing simulates
/// one EINTR interrupt (the wrapper loops), so tests can drive the retry
/// paths deterministically (activate with a `limit`, or the loop never
/// ends — exactly like a signal storm).
int RetryingOpen(const char* path, int flags, unsigned mode);
long RetryingWrite(int fd, const void* data, size_t size);
long RetryingRead(int fd, void* data, size_t size);
int RetryingFsync(int fd);

/// One named section of a durable file.
struct DurableSection {
  std::string name;
  std::string payload;
};

/// Streams checksummed sections into `<path>.tmp` and atomically commits
/// them to `path`. Movable, not copyable. Destroying an uncommitted writer
/// unlinks the temp file — unless a simulated crash fired, in which case
/// the temp file is left exactly as the crash left it.
class DurableFileWriter {
 public:
  /// Opens `<path>.tmp` (truncating any stale temp) and writes the magic.
  static StatusOr<DurableFileWriter> Create(const std::string& path);

  DurableFileWriter(DurableFileWriter&& other) noexcept;
  DurableFileWriter& operator=(DurableFileWriter&& other) noexcept;
  DurableFileWriter(const DurableFileWriter&) = delete;
  DurableFileWriter& operator=(const DurableFileWriter&) = delete;
  ~DurableFileWriter();

  /// Appends one framed section. `name` must be non-empty, at most
  /// kMaxNameLen bytes, and not the reserved end-marker name; `payload` at
  /// most kMaxPayloadLen bytes. After any error the writer is dead: every
  /// further call reports the first failure.
  Status AppendSection(std::string_view name, std::string_view payload);

  /// Appends the end marker, fsync()s, renames the temp file over `path`,
  /// and fsync()s the parent directory. The writer is spent afterwards.
  Status Commit();

  /// Walks away from the temp file without unlinking it — the state a real
  /// crash would leave. Used when a caller-level failpoint simulates a
  /// crash between sections.
  void Abandon();

  /// Sections appended so far (excluding the end marker).
  uint64_t section_count() const { return section_count_; }

  static constexpr size_t kMaxNameLen = 1024;
  static constexpr size_t kMaxPayloadLen = size_t{1} << 30;

 private:
  DurableFileWriter(std::string path, std::string temp_path, int fd);

  /// Writes raw bytes through the torn-write failpoint; records the first
  /// failure in failed_.
  Status WriteRaw(std::string_view bytes);

  void CloseFd();

  std::string path_;
  std::string temp_path_;
  int fd_ = -1;
  uint64_t section_count_ = 0;
  bool committed_ = false;
  bool abandoned_ = false;
  Status failed_;  // first error, sticky
};

/// Reads a file written by DurableFileWriter, validating as it goes.
class DurableFileReader {
 public:
  /// Opens `path` and validates the magic. IoError when the file cannot be
  /// opened; InvalidArgument when it is not a durable file.
  static StatusOr<DurableFileReader> Open(const std::string& path);

  /// Returns the next section, or nullopt after the end marker has been
  /// consumed and verified. IoError on truncation (including truncation
  /// exactly at a frame boundary — the end marker is then missing) and
  /// InvalidArgument on a corrupt frame (bad lengths, CRC mismatch,
  /// section-count mismatch in the end marker, bytes after the end).
  StatusOr<std::optional<DurableSection>> Next();

  /// True once the end marker has been read and verified.
  bool reached_end() const { return end_seen_; }

 private:
  explicit DurableFileReader(std::ifstream in);

  std::ifstream in_;
  uint64_t sections_read_ = 0;
  bool end_seen_ = false;
};

/// Atomically replaces `path` with `contents` (raw bytes, no framing):
/// temp file → flush → fsync → rename → parent-dir fsync. A crash at any
/// point leaves either the old file or the new file, never a torn mix.
/// Threaded through the same durable:* failpoints as DurableFileWriter.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

}  // namespace util
}  // namespace skimjoin

#endif  // SKIMJOIN_UTIL_DURABLE_FILE_H_
