// Power-of-two bucketed histogram for non-negative measurements
// (latencies, errors, counter values). Used by benchmarks to report
// distributions without retaining raw samples.

#ifndef SKIMJOIN_UTIL_HISTOGRAM_H_
#define SKIMJOIN_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <ostream>
#include <vector>

namespace skimjoin {

/// Histogram with buckets [0,1), [1,2), [2,4), [4,8), ... Values record in
/// the bucket whose range contains them; negative values clamp to bucket 0.
class Histogram {
 public:
  Histogram() : counts_(kBuckets, 0) {}

  /// Records one measurement.
  void Add(double value);

  /// Total measurements recorded.
  uint64_t Count() const { return total_count_; }

  /// Sum and mean of the recorded measurements (exact, not bucketed).
  double Sum() const { return sum_; }
  double Mean() const {
    return total_count_ == 0 ? 0.0 : sum_ / static_cast<double>(total_count_);
  }
  double Min() const { return total_count_ == 0 ? 0.0 : min_; }
  double Max() const { return total_count_ == 0 ? 0.0 : max_; }

  /// Approximate q-quantile (q in [0, 1]) by linear interpolation within
  /// the bucket holding the target rank. Returns 0 for an empty histogram.
  double ApproximateQuantile(double q) const;

  /// Renders non-empty buckets as "lo..hi: count" lines.
  void Print(std::ostream& os) const;

 private:
  static constexpr int kBuckets = 64;

  /// Bucket index for `value`.
  static int BucketOf(double value);

  /// Lower edge of bucket `index`.
  static double LowerEdge(int index);

  std::vector<uint64_t> counts_;
  uint64_t total_count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace skimjoin

#endif  // SKIMJOIN_UTIL_HISTOGRAM_H_
