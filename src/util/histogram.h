// Power-of-two bucketed histogram for non-negative measurements
// (latencies, errors, counter values). Used by the bench harness to report
// distributions without retaining raw samples, and shares its bucket scheme
// with the sharded runtime histograms in util/metrics.h.

#ifndef SKIMJOIN_UTIL_HISTOGRAM_H_
#define SKIMJOIN_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <ostream>
#include <vector>

namespace skimjoin {

/// Histogram with buckets [0,1), [1,2), [2,4), [4,8), ... Values record in
/// the bucket whose range contains them; negative values clamp to bucket 0.
class Histogram {
 public:
  /// Number of buckets; the last bucket is open-ended.
  static constexpr int kBuckets = 64;

  Histogram() : counts_(kBuckets, 0) {}

  /// Bucket index whose range contains `value` (negatives clamp to 0).
  /// Shared with metrics::ShardedHistogram so snapshots merge exactly.
  static int BucketIndexOf(double value);

  /// Lower edge of bucket `index`: 0, 1, 2, 4, ..., 2^(index-1).
  static double BucketLowerEdge(int index);

  /// Records one measurement. Non-finite values (NaN, +-inf) are dropped —
  /// they would poison the exact min/max/sum moments — and counted in
  /// DroppedCount() instead.
  void Add(double value);

  /// Total measurements recorded.
  uint64_t Count() const { return total_count_; }

  /// Non-finite measurements rejected by Add.
  uint64_t DroppedCount() const { return dropped_count_; }

  /// Sum and mean of the recorded measurements (exact, not bucketed).
  double Sum() const { return sum_; }
  double Mean() const {
    return total_count_ == 0 ? 0.0 : sum_ / static_cast<double>(total_count_);
  }

  /// Smallest / largest recorded measurement (exact). An EMPTY histogram
  /// returns NaN — 0.0 would be indistinguishable from a real recorded
  /// zero. Callers that want a printable default must check Count() first.
  double Min() const;
  double Max() const;

  /// Population standard deviation of the recorded measurements (exact,
  /// via the sum of squares). 0.0 for an empty histogram.
  double StdDev() const;

  /// Approximate q-quantile (q in [0, 1]) by linear interpolation within
  /// the bucket holding the target rank. Returns 0 for an empty histogram.
  double ApproximateQuantile(double q) const;

  /// Renders non-empty buckets as "lo..hi: count" lines.
  void Print(std::ostream& os) const;

  /// Per-bucket counts (size kBuckets).
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

 private:
  std::vector<uint64_t> counts_;
  uint64_t total_count_ = 0;
  uint64_t dropped_count_ = 0;
  double sum_ = 0.0;
  double sum_squares_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace skimjoin

#endif  // SKIMJOIN_UTIL_HISTOGRAM_H_
