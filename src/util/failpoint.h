// Named failpoints for fault-injection testing of I/O and recovery paths.
//
// A failpoint is a named hook compiled into production code paths
// (checkpoint writing, durable-file commit, trace I/O). Tests activate a
// failpoint by name to inject an error Status, a torn (short) write, or a
// simulated crash at that exact point; when nothing is active the hooks
// cost one relaxed atomic load and no branches taken — they are compiled
// in always, never #ifdef'd, so the tested code IS the shipped code.
//
// Usage (test side):
//   failpoint::Spec spec;
//   spec.mode = failpoint::Mode::kCrash;
//   spec.skip = 2;                       // let two hits pass first
//   failpoint::Activate("durable:rename", spec);
//   ... drive the code under test; the third rename attempt "crashes" ...
//   failpoint::DeactivateAll();
//
// Usage (production side):
//   SKIMJOIN_RETURN_IF_ERROR(failpoint::Check("checkpoint:after-header"));
// or, on a write path that supports torn writes:
//   auto outcome = failpoint::CheckWrite("durable:append", bytes.size());
//   write(fd, bytes.data(), outcome.allowed_bytes);
//   SKIMJOIN_RETURN_IF_ERROR(outcome.status);
//
// A "crash" failpoint does not abort the process (tests must keep
// running); it returns an IoError whose message marks it as a simulated
// crash (IsSimulatedCrash). I/O layers treat that status like a kill -9 at
// that instruction: stop all work, leave any temp files exactly as they
// are (no cleanup), and surface the error — so tests can assert that
// recovery works from the bytes a real crash would have left behind.

#ifndef SKIMJOIN_UTIL_FAILPOINT_H_
#define SKIMJOIN_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace skimjoin {
namespace failpoint {

/// What an activated failpoint injects when it fires.
enum class Mode {
  /// Check/CheckWrite returns an error Status (spec.code / spec.message);
  /// on a write path nothing is written.
  kError,
  /// CheckWrite lets the first `torn_bytes` bytes of the write through and
  /// then fails — a torn write. On non-write Check hooks, same as kError.
  kTornWrite,
  /// Simulated process death at this point: an IoError marked as a crash
  /// (IsSimulatedCrash returns true). On write paths, `torn_bytes` bytes
  /// are let through first, modeling a crash mid-write at that offset.
  kCrash,
};

/// Activation parameters for one named failpoint.
struct Spec {
  Mode mode = Mode::kError;
  /// Code of the injected Status (kError mode only; crashes are kIoError).
  StatusCode code = StatusCode::kIoError;
  /// Extra context appended to the generated error message.
  std::string message;
  /// Evaluations that pass through unharmed before the failpoint starts
  /// firing (e.g. skip = 2 lets the first two sections be written).
  uint64_t skip = 0;
  /// Maximum number of firings; evaluations beyond skip + limit pass again.
  uint64_t limit = UINT64_MAX;
  /// kTornWrite / kCrash on a write path: bytes of the intended write that
  /// reach the file before the failure.
  uint64_t torn_bytes = 0;
  /// Probabilistic firing for randomized chaos soaks: when > 1, an
  /// evaluation past `skip` fires with probability 1/one_in (drawn from the
  /// registry's deterministic chaos RNG; see SeedChaos). 0 or 1 keeps the
  /// classic deterministic behavior (every due evaluation fires). `limit`
  /// still bounds the number of firings either way.
  uint64_t one_in = 0;
};

/// Activates (or re-activates, resetting counters) the named failpoint.
/// Thread-safe.
void Activate(const std::string& name, Spec spec);

/// Deactivates one failpoint. No-op if it is not active.
void Deactivate(const std::string& name);

/// Deactivates every failpoint. Tests call this in TearDown so a failed
/// assertion never leaks activations into the next test.
void DeactivateAll();

/// Times the named failpoint has been evaluated while active (including
/// skipped and exhausted evaluations). 0 when never activated.
uint64_t HitCount(const std::string& name);

/// True when `status` was injected by a kCrash failpoint.
bool IsSimulatedCrash(const Status& status);

/// Reseeds the deterministic RNG behind Spec::one_in, so a chaos soak's
/// random firing schedule is reproducible from a printed seed.
void SeedChaos(uint64_t seed);

/// RAII activation: Activate in the constructor, Deactivate on scope exit.
/// The guard form is what tests should use — a failed ASSERT_* unwinds the
/// scope and still deactivates, so one failing test can never leak an
/// active failpoint into the next (the job manual DeactivateAll() teardown
/// used to do by convention).
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, Spec spec) : name_(std::move(name)) {
    Activate(name_, spec);
  }
  ~ScopedFailpoint() { Deactivate(name_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

namespace internal {
extern std::atomic<uint64_t> g_active_count;
Status CheckSlow(const char* name);
struct WriteOutcome {
  size_t allowed_bytes;
  Status status;
};
WriteOutcome CheckWriteSlow(const char* name, size_t intended_bytes);
}  // namespace internal

/// Production hook: OK unless the named failpoint is active and due to
/// fire. Zero-cost (one relaxed load) while no failpoint is active.
inline Status Check(const char* name) {
  if (internal::g_active_count.load(std::memory_order_relaxed) == 0) {
    return OkStatus();
  }
  return internal::CheckSlow(name);
}

/// Production hook for write paths: how many of `intended_bytes` to
/// actually write, and the status to report afterwards. Full write + OK
/// unless the named failpoint is active and due to fire.
inline internal::WriteOutcome CheckWrite(const char* name,
                                         size_t intended_bytes) {
  if (internal::g_active_count.load(std::memory_order_relaxed) == 0) {
    return {intended_bytes, OkStatus()};
  }
  return internal::CheckWriteSlow(name, intended_bytes);
}

}  // namespace failpoint
}  // namespace skimjoin

#endif  // SKIMJOIN_UTIL_FAILPOINT_H_
