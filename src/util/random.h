// Deterministic pseudo-random number generation.
//
// Every randomized component in the library (hash families, generators,
// sampling) is seeded explicitly so that experiments are reproducible; the
// generator here is a small, fast SplitMix64/xoshiro256** pair that does not
// depend on libstdc++'s unspecified distributions.

#ifndef SKIMJOIN_UTIL_RANDOM_H_
#define SKIMJOIN_UTIL_RANDOM_H_

#include <cstdint>

namespace skimjoin {

/// Stateless 64-bit mixer (SplitMix64 finalizer). Useful for deriving
/// independent seeds from (seed, index) pairs.
uint64_t Mix64(uint64_t x);

/// xoshiro256** pseudo-random generator. Deterministic given the seed;
/// passes BigCrush; suitable for synthetic workloads and hash-family
/// coefficients (the hash families themselves provide the independence
/// guarantees required by the sketch analysis).
class Rng {
 public:
  /// Seeds the four words of state via SplitMix64, as recommended by the
  /// xoshiro authors. Any seed, including 0, is valid.
  explicit Rng(uint64_t seed);

  /// Uniform on [0, 2^64).
  uint64_t NextUint64();

  /// Uniform on [0, bound). Pre-condition: bound > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t NextUint64Below(uint64_t bound);

  /// Uniform on [0, 1).
  double NextDouble();

  /// Derives a fresh, statistically independent generator for subcomponent
  /// `index` without disturbing this generator's stream.
  Rng Fork(uint64_t index) const;

 private:
  uint64_t state_[4];
  uint64_t seed_;  // retained so Fork() is a pure function of (seed, index)
};

}  // namespace skimjoin

#endif  // SKIMJOIN_UTIL_RANDOM_H_
