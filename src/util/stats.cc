#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/logging.h"

namespace skimjoin {

double Median(std::vector<double> values) {
  SKIMJOIN_CHECK(!values.empty());
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  double lower = *std::max_element(values.begin(), values.begin() + mid);
  return (lower + upper) / 2.0;
}

double Mean(const std::vector<double>& values) {
  SKIMJOIN_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  SKIMJOIN_CHECK(!values.empty());
  const double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values.size()));
}

double Percentile(std::vector<double> values, double q) {
  SKIMJOIN_CHECK(!values.empty());
  SKIMJOIN_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

int64_t MedianInt64(std::vector<int64_t> values) {
  SKIMJOIN_CHECK(!values.empty());
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  int64_t upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  int64_t lower = *std::max_element(values.begin(), values.begin() + mid);
  // Average with truncation toward zero; avoids overflow via midpoint form.
  return lower + (upper - lower) / 2;
}

}  // namespace skimjoin
