// Wall-clock timer for coarse measurements in the bench harness (figure
// regeneration); micro-benchmarks use google-benchmark instead.

#ifndef SKIMJOIN_UTIL_TIMER_H_
#define SKIMJOIN_UTIL_TIMER_H_

#include <chrono>

namespace skimjoin {

/// Measures elapsed wall time from construction (or the last Reset()).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction/Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction/Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace skimjoin

#endif  // SKIMJOIN_UTIL_TIMER_H_
