// Process-wide metrics: named counters, gauges, and sharded low-overhead
// histograms, with JSON / Prometheus / Chrome-trace exporters.
//
// Design (following the near-zero-overhead instrumentation discipline of
// concurrent sketch implementations — Rinberg et al.'s Fast Concurrent
// Data Sketches, and the monitoring loop of Hokusai):
//
//   * Registration is the cold path: Registry::GetCounter / GetGauge /
//     GetHistogram take a mutex once and return a POINTER that stays valid
//     for the registry's lifetime. Callers cache the pointer.
//   * The hot path is lock-free: Counter::Increment is one relaxed atomic
//     add; ShardedHistogram::Record touches only the calling thread's
//     shard (selected once per thread, cache-line separated), so
//     concurrent writers never contend on a line.
//   * Snapshots merge the shards on the READER's dime: TakeSnapshot walks
//     every instrument with relaxed loads, producing a consistent-enough
//     view for monitoring (counters are monotone; a snapshot racing an
//     increment misses at most the in-flight delta).
//
// Exporters:
//   * ToJson     — one self-contained JSON object (counters / gauges /
//                  histograms with bucket arrays), machine-diffable.
//   * ToPrometheusText — text exposition format: counters as `# TYPE ...
//                  counter`, histograms as cumulative `_bucket{le="..."}`
//                  series plus `_sum` / `_count`.
//   * TraceRecorder::DrainAsChromeTrace — `trace_event` JSON consumable by
//                  chrome://tracing / Perfetto, fed by TraceSpan RAII spans
//                  around coarse engine phases (ingest batch, replica
//                  merge, SKIMDENSE, estimate, checkpoint save/restore).
//
// Compile-time kill switch: building with -DSKIMJOIN_DISABLE_METRICS (the
// `cmake -DSKIMJOIN_DISABLE_METRICS=ON` option) turns histogram recording
// and trace spans into no-ops so the CI perf gate can compare instrumented
// against uninstrumented builds. Counters stay live in both builds — they
// replaced pre-existing engine bookkeeping (ingest stats, checkpoint
// round-trips) that must keep working.

#ifndef SKIMJOIN_UTIL_METRICS_H_
#define SKIMJOIN_UTIL_METRICS_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/histogram.h"
#include "util/status.h"

namespace skimjoin {
namespace metrics {

/// A monotonically increasing counter. Increment is one relaxed atomic
/// add — safe from any thread, never a lock.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

  /// Overwrites the value. State restoration only (checkpoint restore
  /// re-seeding cumulative counts) — live paths must use Increment so the
  /// counter stays monotone.
  void Reset(uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A last-value-wins gauge (memory footprints, shard counts, ...).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Merged view of one histogram at snapshot time. Bucket edges follow
/// util::Histogram: [0,1), [1,2), [2,4), ..., last bucket open-ended.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  /// NaN when count == 0 (matching util::Histogram::Min/Max).
  double min = 0.0;
  double max = 0.0;
  std::vector<uint64_t> buckets;  // size Histogram::kBuckets

  double Mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Approximate q-quantile by linear interpolation within the target
  /// bucket (same scheme as util::Histogram::ApproximateQuantile).
  double Quantile(double q) const;
};

/// A histogram whose Record path touches only the calling thread's shard:
/// per-shard relaxed atomic bucket counts plus CAS-maintained sum/min/max,
/// each shard on its own cache lines. Snapshot merges all shards.
class ShardedHistogram {
 public:
  ShardedHistogram();

  /// Records one measurement. Lock-free; safe from any thread. Compiled
  /// out under SKIMJOIN_DISABLE_METRICS.
  void Record(double value);

  /// Merged view across every shard (relaxed loads; monitoring-grade
  /// consistency, not a linearization point).
  HistogramSnapshot Snapshot() const;

 private:
  static constexpr int kShards = 16;

  struct alignas(64) Shard {
    std::atomic<uint64_t> counts[Histogram::kBuckets];
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_bits{0};  // bit-cast double, CAS-accumulated
    std::atomic<uint64_t> min_bits;     // bit-cast double
    std::atomic<uint64_t> max_bits;     // bit-cast double

    Shard();
  };

  Shard& LocalShard();

  std::unique_ptr<Shard[]> shards_;
};

/// Everything a registry held at one instant, sorted by name.
struct Snapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  /// Optional help strings (Registry::SetHelp), keyed by the registered
  /// name — for labeled series, by the base name before the '{'.
  std::map<std::string, std::string> help;
};

/// Builds a labeled series name: `base{k1="v1",k2="v2"}`. Label values are
/// escaped per the Prometheus exposition rules (backslash, quote, newline)
/// here, at construction — ToPrometheusText passes the label block through
/// verbatim, and ToJson's fleet grouping unescapes the shard label. Use
/// this (never string concatenation) whenever a value is not a known-safe
/// literal.
std::string LabeledName(
    const std::string& base,
    const std::vector<std::pair<std::string, std::string>>& labels);

/// Splits `base{shard="X"}` into base and unescaped shard value. Returns
/// false (outputs untouched) when `name` carries no shard label.
bool SplitShardLabel(const std::string& name, std::string* base,
                     std::string* shard);

/// A namespace of instruments. Get* registers on first use and returns a
/// pointer that stays valid until the registry is destroyed (instruments
/// are heap-allocated; the name map only holds owning pointers) — cache it
/// and increment lock-free. Thread-safe throughout. There is one global
/// registry for process-wide use; query::Engine owns a private one so two
/// engines in one process never mix their streams' metrics.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry.
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  ShardedHistogram* GetHistogram(const std::string& name);

  /// Attaches a help string to `name` (any instrument kind; for labeled
  /// series, the base name). Rides along in snapshots and surfaces as a
  /// Prometheus `# HELP` line. Last call wins; empty help is dropped.
  void SetHelp(const std::string& name, const std::string& help);

  /// Merged view of every registered instrument, sorted by name.
  Snapshot TakeSnapshot() const;

  /// Drops every instrument. Pointers handed out before Clear dangle —
  /// only for teardown paths that also drop their cached pointers
  /// (Engine::Clear, tests).
  void Clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<ShardedHistogram>> histograms_;
  std::map<std::string, std::string> help_;
};

/// Renders a snapshot as one JSON object:
///   {"counters":{...},"gauges":{...},"histograms":{"name":{"count":...,
///    "sum":...,"min":...,"max":...,"p50":...,"p99":...,"buckets":[[lo,n],...]}}}
/// Histogram min/max are null when empty (JSON has no NaN). Bucket arrays
/// list only non-empty buckets as [lower_edge, count] pairs. Series named
/// `base{shard="X"}` (a fleet snapshot) leave the flat sections and are
/// grouped into a trailing "fleet" object keyed by shard:
///   ,"fleet":{"X":{"counters":{base:...},"gauges":{...},"histograms":{...}}}
/// — absent entirely when the snapshot carries no shard labels, so
/// single-process output is unchanged.
std::string ToJson(const Snapshot& snapshot);

/// Renders a snapshot in the Prometheus text exposition format. Metric
/// names are sanitized to [a-zA-Z0-9_:] (every other byte becomes '_').
/// Histograms export cumulative `name_bucket{le="..."}` series over the
/// power-of-two edges, plus `name_sum` and `name_count`. Names built by
/// LabeledName keep their `{key="value"}` block (only the base is
/// sanitized; series sharing a base share one `# TYPE` line). A help
/// string registered for the (base) name emits a `# HELP` line first.
std::string ToPrometheusText(const Snapshot& snapshot);

/// One completed span for the Chrome trace exporter. The trace/span ids
/// link spans into a Dapper-style tree that survives process boundaries:
/// the dist layer copies the emitting thread's CurrentTraceContext() into
/// every frame header, and the receiving worker adopts it via
/// ScopedTraceContext so its spans become children of the remote caller.
struct TraceEvent {
  std::string name;
  std::string category;
  uint64_t start_micros = 0;  // since recorder epoch
  uint64_t duration_micros = 0;
  uint64_t thread_id = 0;
  uint64_t trace_id = 0;        // 0: span predates trace propagation
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0: root span of its trace
};

/// The trace identity a thread is currently working under. All-zero when
/// no span is open (and no remote context was adopted).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// The calling thread's current trace context. TraceSpan maintains it;
/// the dist RPC layer reads it to stamp outgoing frame headers.
TraceContext CurrentTraceContext();

/// A fresh non-zero id for a new trace or span (process-unique, cheap).
uint64_t NewTraceOrSpanId();

/// Adopts a remote trace context on this thread for one scope: spans
/// opened inside become children of `remote.span_id` within
/// `remote.trace_id`. Restores the previous context on destruction. A
/// non-valid (zero) context installs "no context", which makes spans
/// inside start a fresh trace — handy for isolating untraced work.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& remote);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// One process's contribution to a merged fleet trace: its drained events,
/// the pid and human name to label the Perfetto process track with, and
/// the estimated offset between its trace clock and the merging process's
/// (added to every event timestamp so the fleet shares one timeline).
struct ProcessTrace {
  uint64_t pid = 0;
  std::string name;  // "" : emit no process_name metadata
  int64_t clock_offset_micros = 0;
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
};

/// Renders several processes' events as one Chrome trace JSON document:
/// each process gets its own pid track (plus a process_name "M" metadata
/// record when named), timestamps are shifted by that process's clock
/// offset (clamped at zero), span linkage rides in args as decimal-string
/// trace_id/span_id/parent_span_id (strings: u64 exceeds JSON's exact
/// integer range), and per-process drop counts append
/// "trace_events_dropped" instant events. Empty input renders
/// {"traceEvents":[]} — byte-identical to an empty single-process drain.
std::string MergeAsChromeTrace(const std::vector<ProcessTrace>& processes);

/// Collects TraceSpan events while enabled. Disabled (the default) a span
/// costs one relaxed atomic load. There is one recorder per process; spans
/// are cheap enough that engine code records unconditionally-when-enabled
/// rather than threading a recorder through every layer.
///
/// The buffer is bounded (max_events, default kDefaultMaxEvents): once
/// full, new events are dropped and counted instead of growing memory
/// without bound in long traced sessions. Drain (or raise the cap) before
/// the buffer fills to keep a complete trace; the drop count is reported
/// by dropped_count() and as a final instant event in the drained JSON.
class TraceRecorder {
 public:
  /// ~26 MB of TraceEvents at the default — plenty for a coarse-phase
  /// trace, bounded for a long-running one.
  static constexpr size_t kDefaultMaxEvents = 1 << 18;

  static TraceRecorder& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Caps the event buffer (existing events beyond a lowered cap stay
  /// until the next drain; only new events are dropped).
  void set_max_events(size_t max_events);

  /// Appends one completed event (called by ~TraceSpan). Dropped and
  /// counted when the buffer is at max_events.
  void Record(TraceEvent event);

  /// Events dropped since the last drain because the buffer was full.
  uint64_t dropped_count() const;

  /// Microseconds since the recorder's epoch (process start, first use).
  uint64_t NowMicros() const;

  /// Removes and returns the buffered events; `*dropped` (optional)
  /// receives — and resets — the drop count. The raw-event drain feeds
  /// the dist layer, which ships a worker's events to the coordinator for
  /// MergeAsChromeTrace.
  std::vector<TraceEvent> DrainEvents(uint64_t* dropped = nullptr);

  /// Renders and clears the buffered events as Chrome trace JSON:
  ///   {"traceEvents":[{"name":...,"cat":...,"ph":"X","ts":...,"dur":...,
  ///                    "pid":<pid>,"tid":...},...]}
  /// (MergeAsChromeTrace over one unnamed ProcessTrace for this process.)
  /// If events were dropped since the last drain, the array ends with one
  /// instant event named "trace_events_dropped" carrying the count in
  /// args.dropped; draining resets the count.
  std::string DrainAsChromeTrace();

  size_t event_count() const;

 private:
  TraceRecorder();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  size_t max_events_ = kDefaultMaxEvents;
  uint64_t dropped_ = 0;
};

/// RAII span recording one "ph":"X" event into TraceRecorder::Global()
/// when tracing is enabled. `name` and `category` must be string literals
/// (kept by pointer until destruction). No-op (one atomic load) when
/// tracing is disabled, compiled out under SKIMJOIN_DISABLE_METRICS.
///
/// While active, the span installs itself as the thread's current trace
/// context: nested spans become its children, and any context already
/// installed (an enclosing span, or a remote one via ScopedTraceContext)
/// becomes its parent. A span with no enclosing context starts a fresh
/// trace.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "engine");
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  uint64_t start_micros_ = 0;
  bool active_ = false;
  TraceContext context_;  // this span's identity while active
  TraceContext saved_;    // restored on destruction
};

/// Writes a fresh snapshot to `path` every `period`, each write through
/// util::AtomicWriteFile (readers always see a complete file). The first
/// write happens immediately on construction (a run shorter than one
/// period still leaves a snapshot); Stop() (or destruction) performs a
/// final write so the file always reflects the end state.
class PeriodicSnapshotWriter {
 public:
  enum class Format { kJson, kPrometheus };

  /// `source` is called on the writer's background thread — it must be
  /// thread-safe. Registry::TakeSnapshot is; Engine::MetricsSnapshot is
  /// NOT (it walks the single-writer engine's query containers), so
  /// engine embedders pass `engine.metrics_registry().TakeSnapshot()`
  /// and refresh gauges from the writer thread (see tools/skimjoin_cli.cc).
  PeriodicSnapshotWriter(std::string path, Format format,
                         std::chrono::milliseconds period,
                         std::function<Snapshot()> source);
  ~PeriodicSnapshotWriter();

  PeriodicSnapshotWriter(const PeriodicSnapshotWriter&) = delete;
  PeriodicSnapshotWriter& operator=(const PeriodicSnapshotWriter&) = delete;

  /// Stops the background thread and writes one final snapshot. Returns
  /// the status of the final write. Idempotent.
  Status Stop();

 private:
  Status WriteOnce();

  std::string path_;
  Format format_;
  std::chrono::milliseconds period_;
  std::function<Snapshot()> source_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace metrics
}  // namespace skimjoin

#endif  // SKIMJOIN_UTIL_METRICS_H_
