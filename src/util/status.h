// Status and StatusOr: exception-free error propagation for fallible
// operations (configuration validation, I/O, query registration).
//
// The library follows the RocksDB/Arrow convention: functions that can fail
// for reasons a caller should handle return Status (or StatusOr<T> when they
// also produce a value); programming errors are caught by SKIMJOIN_CHECK.

#ifndef SKIMJOIN_UTIL_STATUS_H_
#define SKIMJOIN_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

#include "util/logging.h"

namespace skimjoin {

/// Machine-readable classification of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kIoError = 7,
  kInternal = 8,
};

/// Returns a stable, human-readable name for `code` ("OK", "INVALID_ARGUMENT",
/// ...).
const char* StatusCodeToString(StatusCode code);

/// The result of an operation that can fail: either OK or a code plus a
/// message describing what went wrong. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk; use the default constructor (or OkStatus()) for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Convenience factories mirroring absl::*Error.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status IoError(std::string message);
Status InternalError(std::string message);

/// Either a value of type T or a non-OK Status explaining why the value could
/// not be produced. Accessing value() on an error aborts (see logging.h), so
/// callers must check ok() first.
template <typename T>
class StatusOr {
 public:
  /// Implicit conversion from a value: `return T{...};` works directly.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit conversion from an error Status. Passing an OK status is a
  /// programming error (the object would claim success while holding no
  /// value) and aborts.
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    SKIMJOIN_CHECK(!std::get<Status>(rep_).ok())
        << "StatusOr<T> constructed from an OK Status (no value)";
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error (OkStatus() when a value is held).
  Status status() const {
    if (ok()) return OkStatus();
    return std::get<Status>(rep_);
  }

  /// Pre-condition: ok(). Accessing the value of an error StatusOr aborts
  /// after printing the held status.
  const T& value() const& {
    EnsureOk();
    return std::get<T>(rep_);
  }
  T& value() & {
    EnsureOk();
    return std::get<T>(rep_);
  }
  T&& value() && {
    EnsureOk();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void EnsureOk() const {
    SKIMJOIN_CHECK(ok()) << "StatusOr<T>::value() on error: "
                         << std::get<Status>(rep_).ToString();
  }

  std::variant<T, Status> rep_;
};

/// Propagates a non-OK status to the caller: `SKIMJOIN_RETURN_IF_ERROR(expr);`
#define SKIMJOIN_RETURN_IF_ERROR(expr)                  \
  do {                                                  \
    ::skimjoin::Status _skimjoin_status = (expr);       \
    if (!_skimjoin_status.ok()) return _skimjoin_status; \
  } while (false)

#define SKIMJOIN_STATUS_CONCAT_INNER_(x, y) x##y
#define SKIMJOIN_STATUS_CONCAT_(x, y) SKIMJOIN_STATUS_CONCAT_INNER_(x, y)

/// Evaluates a StatusOr-returning expression; on error returns the status to
/// the caller, otherwise assigns the value:
///   SKIMJOIN_ASSIGN_OR_RETURN(auto writer, DurableFileWriter::Create(path));
#define SKIMJOIN_ASSIGN_OR_RETURN(lhs, expr)                              \
  SKIMJOIN_ASSIGN_OR_RETURN_IMPL_(                                        \
      SKIMJOIN_STATUS_CONCAT_(_skimjoin_statusor_, __LINE__), lhs, expr)

#define SKIMJOIN_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, expr) \
  auto statusor = (expr);                                    \
  if (!statusor.ok()) return statusor.status();              \
  lhs = std::move(statusor).value()

}  // namespace skimjoin

#endif  // SKIMJOIN_UTIL_STATUS_H_
