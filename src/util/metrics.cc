#include "util/metrics.h"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>
#include <set>
#include <sstream>

#include "util/durable_file.h"
#include "util/logging.h"

namespace skimjoin {
namespace metrics {

namespace {

// Shortest round-trippable rendering of a double (JSON / Prometheus).
std::string DoubleToString(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g",
                std::numeric_limits<double>::max_digits10, value);
  return buffer;
}

// JSON string escaping: quotes, backslash, and control bytes.
std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    const auto byte = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (byte < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", byte);
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Prometheus metric-name sanitization: [a-zA-Z0-9_:], leading digit gets a
// '_' prefix. Deterministic, so two exports of one registry always agree.
std::string PrometheusName(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

// Prometheus label-value escaping: backslash, double quote, newline.
std::string PrometheusLabelValue(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// HELP text escaping (no quotes to worry about, only backslash + newline).
std::string PrometheusHelpText(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string LabeledName(
    const std::string& base,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  std::string out = base;
  out.push_back('{');
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i) out.push_back(',');
    out += labels[i].first;
    out += "=\"";
    out += PrometheusLabelValue(labels[i].second);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

bool SplitShardLabel(const std::string& name, std::string* base,
                     std::string* shard) {
  static constexpr char kPrefix[] = "{shard=\"";
  const size_t open = name.find(kPrefix);
  if (open == std::string::npos) return false;
  std::string value;
  size_t i = open + sizeof(kPrefix) - 1;
  for (; i < name.size() && name[i] != '"'; ++i) {
    if (name[i] == '\\' && i + 1 < name.size()) {
      ++i;
      value.push_back(name[i] == 'n' ? '\n' : name[i]);
    } else {
      value.push_back(name[i]);
    }
  }
  if (i + 1 >= name.size() || name[i] != '"' || name[i + 1] != '}') {
    return false;
  }
  *base = name.substr(0, open);
  *shard = std::move(value);
  return true;
}

// --- HistogramSnapshot -----------------------------------------------------

double HistogramSnapshot::Quantile(double q) const {
  SKIMJOIN_CHECK(q >= 0.0 && q <= 1.0);
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (int bucket = 0; bucket < Histogram::kBuckets; ++bucket) {
    const double next = cumulative + static_cast<double>(buckets[bucket]);
    if (next >= target && buckets[bucket] > 0) {
      const double lo = Histogram::BucketLowerEdge(bucket);
      const double hi = (bucket + 1 < Histogram::kBuckets)
                            ? Histogram::BucketLowerEdge(bucket + 1)
                            : max;
      const double within =
          (target - cumulative) / static_cast<double>(buckets[bucket]);
      return lo + within * (std::max(hi, lo) - lo);
    }
    cumulative = next;
  }
  return max;
}

// --- ShardedHistogram ------------------------------------------------------

ShardedHistogram::Shard::Shard()
    : min_bits(std::bit_cast<uint64_t>(
          std::numeric_limits<double>::infinity())),
      max_bits(std::bit_cast<uint64_t>(
          -std::numeric_limits<double>::infinity())) {
  for (auto& c : counts) c.store(0, std::memory_order_relaxed);
}

ShardedHistogram::ShardedHistogram() : shards_(new Shard[kShards]) {}

ShardedHistogram::Shard& ShardedHistogram::LocalShard() {
  // One shard slot per thread, assigned round-robin on first use and then
  // reused for every histogram — threads never share a slot until there
  // are more than kShards of them.
  static std::atomic<uint64_t> next_slot{0};
  thread_local const uint64_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shards_[slot];
}

void ShardedHistogram::Record(double value) {
#ifdef SKIMJOIN_DISABLE_METRICS
  (void)value;
#else
  // Mirror Histogram::Add: a single NaN would wedge the bit-cast sum CAS
  // below into a poisoned value, and +-inf would saturate min/max forever.
  if (!std::isfinite(value)) return;
  Shard& shard = LocalShard();
  shard.counts[Histogram::BucketIndexOf(value)].fetch_add(
      1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  // Doubles live bit-cast in uint64 atomics; CAS loops stay lock-free and
  // are effectively uncontended because the shard is thread-private.
  uint64_t observed = shard.sum_bits.load(std::memory_order_relaxed);
  while (!shard.sum_bits.compare_exchange_weak(
      observed, std::bit_cast<uint64_t>(std::bit_cast<double>(observed) + value),
      std::memory_order_relaxed)) {
  }
  observed = shard.min_bits.load(std::memory_order_relaxed);
  while (value < std::bit_cast<double>(observed) &&
         !shard.min_bits.compare_exchange_weak(
             observed, std::bit_cast<uint64_t>(value),
             std::memory_order_relaxed)) {
  }
  observed = shard.max_bits.load(std::memory_order_relaxed);
  while (value > std::bit_cast<double>(observed) &&
         !shard.max_bits.compare_exchange_weak(
             observed, std::bit_cast<uint64_t>(value),
             std::memory_order_relaxed)) {
  }
#endif
}

HistogramSnapshot ShardedHistogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.buckets.assign(Histogram::kBuckets, 0);
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  for (int shard = 0; shard < kShards; ++shard) {
    const Shard& s = shards_[shard];
    for (int bucket = 0; bucket < Histogram::kBuckets; ++bucket) {
      snapshot.buckets[bucket] +=
          s.counts[bucket].load(std::memory_order_relaxed);
    }
    snapshot.count += s.count.load(std::memory_order_relaxed);
    snapshot.sum +=
        std::bit_cast<double>(s.sum_bits.load(std::memory_order_relaxed));
    min = std::min(min,
                   std::bit_cast<double>(
                       s.min_bits.load(std::memory_order_relaxed)));
    max = std::max(max,
                   std::bit_cast<double>(
                       s.max_bits.load(std::memory_order_relaxed)));
  }
  if (snapshot.count == 0) {
    snapshot.min = std::numeric_limits<double>::quiet_NaN();
    snapshot.max = std::numeric_limits<double>::quiet_NaN();
    snapshot.sum = 0.0;
  } else {
    snapshot.min = min;
    snapshot.max = max;
  }
  return snapshot;
}

// --- Registry --------------------------------------------------------------

Registry& Registry::Global() {
  static Registry* const registry = new Registry;
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

ShardedHistogram* Registry::GetHistogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<ShardedHistogram>();
  return slot.get();
}

void Registry::SetHelp(const std::string& name, const std::string& help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (help.empty()) {
    help_.erase(name);
  } else {
    help_[name] = help;
  }
}

Snapshot Registry::TakeSnapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snapshot;
  snapshot.help = help_;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snapshot;  // std::map iteration is already name-sorted
}

void Registry::Clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  help_.clear();
}

// --- exporters -------------------------------------------------------------

namespace {

// The three instrument sections of one JSON object body (no braces):
//   "counters":{...},"gauges":{...},"histograms":{...}
void RenderJsonSections(const Snapshot& snapshot, std::ostringstream& out) {
  out << "\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i) out << ',';
    out << '"' << JsonEscape(snapshot.counters[i].first)
        << "\":" << snapshot.counters[i].second;
  }
  out << "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i) out << ',';
    out << '"' << JsonEscape(snapshot.gauges[i].first)
        << "\":" << DoubleToString(snapshot.gauges[i].second);
  }
  out << "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    if (i) out << ',';
    const auto& [name, h] = snapshot.histograms[i];
    out << '"' << JsonEscape(name) << "\":{\"count\":" << h.count
        << ",\"sum\":" << DoubleToString(h.sum) << ",\"min\":"
        << (h.count == 0 ? "null" : DoubleToString(h.min)) << ",\"max\":"
        << (h.count == 0 ? "null" : DoubleToString(h.max))
        << ",\"p50\":" << DoubleToString(h.Quantile(0.5))
        << ",\"p99\":" << DoubleToString(h.Quantile(0.99)) << ",\"buckets\":[";
    bool first = true;
    for (int bucket = 0; bucket < Histogram::kBuckets; ++bucket) {
      if (h.buckets[bucket] == 0) continue;
      if (!first) out << ',';
      first = false;
      out << '[' << DoubleToString(Histogram::BucketLowerEdge(bucket)) << ','
          << h.buckets[bucket] << ']';
    }
    out << "]}";
  }
  out << '}';
}

}  // namespace

std::string ToJson(const Snapshot& snapshot) {
  // Shard-labeled series (a fleet snapshot) leave the flat sections and
  // group per shard under "fleet"; an unlabeled snapshot renders exactly
  // as it always has.
  Snapshot flat;
  flat.help = snapshot.help;
  std::map<std::string, Snapshot> fleet;
  std::string base, shard;
  for (const auto& entry : snapshot.counters) {
    if (SplitShardLabel(entry.first, &base, &shard)) {
      fleet[shard].counters.emplace_back(base, entry.second);
    } else {
      flat.counters.push_back(entry);
    }
  }
  for (const auto& entry : snapshot.gauges) {
    if (SplitShardLabel(entry.first, &base, &shard)) {
      fleet[shard].gauges.emplace_back(base, entry.second);
    } else {
      flat.gauges.push_back(entry);
    }
  }
  for (const auto& entry : snapshot.histograms) {
    if (SplitShardLabel(entry.first, &base, &shard)) {
      fleet[shard].histograms.emplace_back(base, entry.second);
    } else {
      flat.histograms.push_back(entry);
    }
  }
  std::ostringstream out;
  out << '{';
  RenderJsonSections(flat, out);
  if (!fleet.empty()) {
    out << ",\"fleet\":{";
    bool first = true;
    for (const auto& [shard_name, sub] : fleet) {
      if (!first) out << ',';
      first = false;
      out << '"' << JsonEscape(shard_name) << "\":{";
      RenderJsonSections(sub, out);
      out << '}';
    }
    out << '}';
  }
  out << '}';
  return out.str();
}

std::string ToPrometheusText(const Snapshot& snapshot) {
  // Sanitization can collapse distinct registry names onto one Prometheus
  // name ("ingest.a.x" and "ingest.a_x" both become "ingest_a_x"), and
  // strict parsers reject duplicate "# TYPE" lines for one name. Track
  // every emitted name and disambiguate collisions with a deterministic
  // "_2", "_3", ... suffix (snapshots are name-sorted, so two exports of
  // one registry always agree). Histograms reserve their derived series
  // names too, so a counter literally named "foo_count" cannot collide
  // with histogram "foo"'s _count series.
  std::set<std::string> used;
  const auto reserve_or_suffix =
      [&used](std::string base, const std::vector<std::string>& suffixes) {
        for (int attempt = 1;; ++attempt) {
          const std::string candidate =
              attempt == 1 ? base : base + "_" + std::to_string(attempt);
          bool free = !used.count(candidate);
          for (const std::string& suffix : suffixes) {
            free = free && !used.count(candidate + suffix);
          }
          if (!free) continue;
          used.insert(candidate);
          for (const std::string& suffix : suffixes) {
            used.insert(candidate + suffix);
          }
          return candidate;
        }
      };
  // Series built by LabeledName carry a `{key="value"}` block after the
  // base name. Only the base is sanitized/deduplicated; label values were
  // escaped at construction and pass through verbatim. Series sharing one
  // (section, base) pair share one "# TYPE" (and optional "# HELP") line —
  // snapshots are name-sorted, so same-base labeled series are adjacent
  // ('{' sorts after every name character the sanitizer keeps).
  const auto split_labels = [](const std::string& name) {
    const size_t brace = name.find('{');
    if (brace == std::string::npos) {
      return std::pair<std::string, std::string>(name, "");
    }
    return std::pair<std::string, std::string>(name.substr(0, brace),
                                               name.substr(brace));
  };
  std::ostringstream out;
  std::map<std::string, std::string> families;  // "<section><base>" -> prom
  const auto family_name = [&](char section, const std::string& base,
                               const std::vector<std::string>& suffixes,
                               const char* type) {
    const std::string key = std::string(1, section) + base;
    const auto it = families.find(key);
    if (it != families.end()) return it->second;
    const std::string prom = reserve_or_suffix(PrometheusName(base), suffixes);
    families.emplace(key, prom);
    const auto help = snapshot.help.find(base);
    if (help != snapshot.help.end()) {
      out << "# HELP " << prom << ' ' << PrometheusHelpText(help->second)
          << '\n';
    }
    out << "# TYPE " << prom << ' ' << type << '\n';
    return prom;
  };
  for (const auto& [name, value] : snapshot.counters) {
    const auto [base, labels] = split_labels(name);
    const std::string prom = family_name('c', base, {}, "counter");
    out << prom << labels << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const auto [base, labels] = split_labels(name);
    const std::string prom = family_name('g', base, {}, "gauge");
    out << prom << labels << ' ' << DoubleToString(value) << '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const auto [base, labels] = split_labels(name);
    const std::string prom = family_name(
        'h', base, {"_bucket", "_sum", "_count"}, "histogram");
    // The le label joins any series labels: {shard="x"} + le -> the
    // combined block {shard="x",le="..."}.
    const std::string le_prefix =
        labels.empty() ? "{"
                       : labels.substr(0, labels.size() - 1) + ",";
    uint64_t cumulative = 0;
    for (int bucket = 0; bucket < Histogram::kBuckets; ++bucket) {
      cumulative += h.buckets[bucket];
      // Only emit edges up to the last non-empty bucket; +Inf carries the
      // total, so the series stays parseable and short.
      if (h.buckets[bucket] == 0 && cumulative == 0) continue;
      if (bucket + 1 < Histogram::kBuckets && h.buckets[bucket] == 0) continue;
      if (bucket + 1 < Histogram::kBuckets) {
        out << prom << "_bucket" << le_prefix << "le=\""
            << DoubleToString(Histogram::BucketLowerEdge(bucket + 1)) << "\"} "
            << cumulative << '\n';
      }
    }
    out << prom << "_bucket" << le_prefix << "le=\"+Inf\"} " << h.count << '\n'
        << prom << "_sum" << labels << ' ' << DoubleToString(h.sum) << '\n'
        << prom << "_count" << labels << ' ' << h.count << '\n';
  }
  return out.str();
}

// --- tracing ---------------------------------------------------------------

namespace {

thread_local TraceContext t_trace_context;

}  // namespace

TraceContext CurrentTraceContext() { return t_trace_context; }

uint64_t NewTraceOrSpanId() {
  // splitmix64 over a per-process counter seeded from (pid, clock): ids
  // from different fleet processes never collide in practice, and no
  // cross-thread coordination happens on the hot path.
  static std::atomic<uint64_t> state{
      (static_cast<uint64_t>(::getpid()) << 32) ^
      static_cast<uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count())};
  uint64_t x = state.fetch_add(0x9E3779B97F4A7C15ull,
                               std::memory_order_relaxed) +
               0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x == 0 ? 1 : x;  // 0 means "no context" everywhere
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& remote)
    : saved_(t_trace_context) {
  t_trace_context = remote;
}

ScopedTraceContext::~ScopedTraceContext() { t_trace_context = saved_; }

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* const recorder = new TraceRecorder;
  return *recorder;
}

uint64_t TraceRecorder::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceRecorder::set_max_events(size_t max_events) {
  const std::lock_guard<std::mutex> lock(mutex_);
  max_events_ = max_events;
}

void TraceRecorder::Record(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Bounded buffer: drop-newest once full so a long traced session holds
  // the trace's beginning and a drop count rather than unbounded memory.
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

size_t TraceRecorder::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

uint64_t TraceRecorder::dropped_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<TraceEvent> TraceRecorder::DrainEvents(uint64_t* dropped) {
  std::vector<TraceEvent> events;
  const std::lock_guard<std::mutex> lock(mutex_);
  events.swap(events_);
  if (dropped != nullptr) *dropped = dropped_;
  dropped_ = 0;
  return events;
}

std::string MergeAsChromeTrace(const std::vector<ProcessTrace>& processes) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out << ',';
    first = false;
  };
  for (const ProcessTrace& p : processes) {
    if (!p.events.empty() && !p.name.empty()) {
      comma();
      out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << p.pid
          << ",\"tid\":0,\"args\":{\"name\":\"" << JsonEscape(p.name)
          << "\"}}";
    }
    uint64_t last_end = 0;
    for (const TraceEvent& e : p.events) {
      // One fleet timeline: shift this process's trace clock onto the
      // merging process's, clamping at zero (Chrome/Perfetto dislike
      // negative timestamps).
      const int64_t shifted =
          static_cast<int64_t>(e.start_micros) + p.clock_offset_micros;
      const uint64_t ts = shifted < 0 ? 0 : static_cast<uint64_t>(shifted);
      last_end = std::max(last_end, ts + e.duration_micros);
      comma();
      out << "{\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\""
          << JsonEscape(e.category) << "\",\"ph\":\"X\",\"ts\":" << ts
          << ",\"dur\":" << e.duration_micros << ",\"pid\":" << p.pid
          << ",\"tid\":" << e.thread_id;
      if (e.trace_id != 0) {
        // Decimal strings: u64 ids exceed JSON's exactly-representable
        // integer range, and Perfetto groups spans by the string anyway.
        out << ",\"args\":{\"trace_id\":\"" << e.trace_id
            << "\",\"span_id\":\"" << e.span_id << "\",\"parent_span_id\":\""
            << e.parent_span_id << "\"}";
      }
      out << '}';
    }
    if (p.dropped > 0) {
      comma();
      out << "{\"name\":\"trace_events_dropped\",\"cat\":\"meta\",\"ph\":"
             "\"i\",\"ts\":"
          << last_end << ",\"s\":\"g\",\"pid\":" << p.pid
          << ",\"tid\":0,\"args\":{\"dropped\":" << p.dropped << "}}";
    }
  }
  out << "]}";
  return out.str();
}

std::string TraceRecorder::DrainAsChromeTrace() {
  ProcessTrace self;
  self.pid = static_cast<uint64_t>(::getpid());
  self.events = DrainEvents(&self.dropped);
  return MergeAsChromeTrace({std::move(self)});
}

TraceSpan::TraceSpan(const char* name, const char* category)
    : name_(name), category_(category) {
#ifndef SKIMJOIN_DISABLE_METRICS
  TraceRecorder& recorder = TraceRecorder::Global();
  if (recorder.enabled()) {
    active_ = true;
    start_micros_ = recorder.NowMicros();
    // Link into the thread's context: the enclosing span (or an adopted
    // remote context) becomes the parent; with no context, a fresh trace
    // starts here.
    saved_ = t_trace_context;
    context_.trace_id =
        saved_.valid() ? saved_.trace_id : NewTraceOrSpanId();
    context_.span_id = NewTraceOrSpanId();
    context_.parent_span_id = saved_.span_id;
    t_trace_context = context_;
  }
#endif
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  t_trace_context = saved_;
  TraceRecorder& recorder = TraceRecorder::Global();
  // A span that began while tracing was on still records if tracing turned
  // off mid-span — losing it would skew phase accounting.
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.start_micros = start_micros_;
  event.duration_micros = recorder.NowMicros() - start_micros_;
  event.thread_id = static_cast<uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffff);
  event.trace_id = context_.trace_id;
  event.span_id = context_.span_id;
  event.parent_span_id = context_.parent_span_id;
  recorder.Record(std::move(event));
}

// --- periodic writer -------------------------------------------------------

PeriodicSnapshotWriter::PeriodicSnapshotWriter(std::string path, Format format,
                                               std::chrono::milliseconds period,
                                               std::function<Snapshot()> source)
    : path_(std::move(path)),
      format_(format),
      period_(period),
      source_(std::move(source)) {
  SKIMJOIN_CHECK(source_ != nullptr);
  SKIMJOIN_CHECK(period_.count() > 0);
  // First snapshot lands immediately (not after one period): a run shorter
  // than the interval still leaves a file behind.
  const Status first = WriteOnce();
  if (!first.ok()) {
    std::fprintf(stderr, "metrics snapshot write failed: %s\n",
                 first.ToString().c_str());
  }
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      wake_.wait_for(lock, period_, [this] { return stopping_; });
      if (stopping_) return;
      lock.unlock();
      const Status status = WriteOnce();
      if (!status.ok()) {
        std::fprintf(stderr, "metrics snapshot write failed: %s\n",
                     status.ToString().c_str());
      }
      lock.lock();
    }
  });
}

Status PeriodicSnapshotWriter::WriteOnce() {
  const Snapshot snapshot = source_();
  const std::string text = format_ == Format::kJson
                               ? ToJson(snapshot)
                               : ToPrometheusText(snapshot);
  return util::AtomicWriteFile(path_, text);
}

Status PeriodicSnapshotWriter::Stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return OkStatus();
    stopping_ = true;
    stopped_ = true;
  }
  wake_.notify_all();
  thread_.join();
  return WriteOnce();
}

PeriodicSnapshotWriter::~PeriodicSnapshotWriter() {
  const Status status = Stop();
  if (!status.ok()) {
    std::fprintf(stderr, "final metrics snapshot write failed: %s\n",
                 status.ToString().c_str());
  }
}

}  // namespace metrics
}  // namespace skimjoin
