// A leveled, structured event log: the queryable complement to the metrics
// registry (util/metrics.h). Metrics answer "how much / how fast"; the
// event log answers "what happened" — one discrete, schema-stable record
// per noteworthy occurrence (an estimate's confidence interval blowing up,
// the accuracy-drift monitor crossing its threshold, a SKIMJOIN_CHECK
// failure on its way to abort).
//
// Shape:
//   * An event is a level, a machine-stable name, and ordered string
//     key/value fields. Rendering is one JSON line per event with a frozen
//     schema (see ToJsonLine) so downstream collectors can parse it without
//     versioned heuristics; tests/event_log_test.cc pins the schema.
//   * The log keeps a bounded in-memory ring (oldest events overwritten)
//     surfaced by the shell's `logs [n]` command, and fans every accepted
//     event out to pluggable sinks (a file, a test probe, a collector
//     socket — any std::function).
//   * Levels gate cheaply: events below min_level are dropped before any
//     formatting or sink work.
//
// Emit takes a mutex — this is a COLD-path facility (estimate-time
// anomalies, lifecycle transitions, failures), never the per-element
// ingest path; the metrics registry covers the hot path.

#ifndef SKIMJOIN_UTIL_EVENT_LOG_H_
#define SKIMJOIN_UTIL_EVENT_LOG_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace skimjoin {

/// Severity of a structured event, least to most severe. The names the
/// JSON schema uses are frozen: "debug", "info", "warn", "error".
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// The frozen schema string for `level` ("debug" | "info" | "warn" |
/// "error").
const char* LogLevelName(LogLevel level);

/// One structured event. `sequence` and `ts_micros` are stamped by the
/// EventLog at Emit time; fields keep their insertion order so rendered
/// lines are deterministic.
struct LogEvent {
  LogLevel level = LogLevel::kInfo;
  /// Position in the log's total emission order, starting at 1.
  uint64_t sequence = 0;
  /// Wall-clock microseconds since the Unix epoch at Emit time.
  uint64_t ts_micros = 0;
  /// Machine-stable event name, e.g. "accuracy_drift", "check_failed".
  std::string event;
  /// Ordered key/value payload; values are rendered as JSON strings.
  std::vector<std::pair<std::string, std::string>> fields;
};

/// Renders one event as one JSON line (no trailing newline). The schema is
/// frozen — field names, their order, and the level strings are a contract
/// with downstream collectors (golden-tested):
///   {"seq":N,"ts_micros":N,"level":"warn","event":"...","fields":{...}}
std::string ToJsonLine(const LogEvent& event);

/// The event log: bounded ring + fan-out sinks. Thread-safe throughout
/// (one mutex; Emit is cold-path by design). There is one process-wide
/// instance (Global()) so that failure paths — SKIMJOIN_CHECK routes
/// through it before aborting — need no plumbing; embedders may also own
/// private instances.
class EventLog {
 public:
  static constexpr size_t kDefaultRingCapacity = 1024;

  /// The process-wide log. SKIMJOIN_CHECK failures and query::Engine
  /// anomaly events land here.
  static EventLog& Global();

  EventLog() = default;
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Accepts one event when `level` >= min_level: stamps sequence and
  /// timestamp, appends it to the ring (evicting the oldest at capacity),
  /// and invokes every sink with it. Below-level events are counted and
  /// otherwise free.
  void Emit(LogLevel level, std::string event,
            std::vector<std::pair<std::string, std::string>> fields = {});

  /// Events below this level are suppressed (default kDebug: everything
  /// passes).
  void set_min_level(LogLevel level);
  LogLevel min_level() const;

  /// Resizes the ring (>= 1; values below clamp to 1). Shrinking discards
  /// the oldest events beyond the new capacity.
  void set_ring_capacity(size_t capacity);

  /// A sink sees every accepted event, on the emitting thread, while the
  /// log's mutex is held — keep sinks fast and never re-enter the log.
  using Sink = std::function<void(const LogEvent&)>;

  /// Registers a sink; the returned id removes it again.
  uint64_t AddSink(Sink sink);
  void RemoveSink(uint64_t id);

  /// The most recent min(n, ring size) events, oldest first.
  std::vector<LogEvent> Tail(size_t n) const;

  /// Total events accepted (ring evictions included) / suppressed by
  /// min_level since construction or the last Clear.
  uint64_t emitted_count() const;
  uint64_t suppressed_count() const;

  /// Empties the ring and zeroes the counters; sinks and configuration
  /// stay registered. Sequence numbers restart at 1.
  void Clear();

 private:
  mutable std::mutex mutex_;
  LogLevel min_level_ = LogLevel::kDebug;
  size_t ring_capacity_ = kDefaultRingCapacity;
  std::vector<LogEvent> ring_;  // ring_[0] is the oldest retained event
  std::vector<std::pair<uint64_t, Sink>> sinks_;
  uint64_t next_sink_id_ = 1;
  uint64_t next_sequence_ = 1;
  uint64_t emitted_ = 0;
  uint64_t suppressed_ = 0;
};

}  // namespace skimjoin

#endif  // SKIMJOIN_UTIL_EVENT_LOG_H_
