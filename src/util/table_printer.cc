#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace skimjoin {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  SKIMJOIN_CHECK(!columns_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  SKIMJOIN_CHECK_EQ(row.size(), columns_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

namespace {

void WriteCsvCell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (char c : cell) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

}  // namespace

void TablePrinter::PrintCsv(std::ostream& os) const {
  os << "# " << title_ << "\n";
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) os << ',';
    WriteCsvCell(os, columns_[c]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      WriteCsvCell(os, row[c]);
    }
    os << "\n";
  }
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      os << " " << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
         << " |";
    }
    os << "\n";
  };

  os << "\n== " << title_ << " ==\n";
  print_row(columns_);
  os << "|";
  for (size_t c = 0; c < columns_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace skimjoin
