// Order statistics and summary statistics used by the estimators
// (median-of-means boosting) and the benchmark harness.

#ifndef SKIMJOIN_UTIL_STATS_H_
#define SKIMJOIN_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace skimjoin {

/// Median of `values` (lower median for even sizes is NOT used: the two
/// central elements are averaged, matching the convention in the paper's
/// estimator pseudo-code). Pre-condition: !values.empty(). The input is
/// taken by value because selection reorders it.
double Median(std::vector<double> values);

/// Arithmetic mean. Pre-condition: !values.empty().
double Mean(const std::vector<double>& values);

/// Population standard deviation. Pre-condition: !values.empty().
double StdDev(const std::vector<double>& values);

/// Linear-interpolation percentile, q in [0, 1]. Pre-condition:
/// !values.empty() and 0 <= q <= 1.
double Percentile(std::vector<double> values, double q);

/// Integer median used on counter-valued estimates; averages the two central
/// elements with rounding toward zero. Pre-condition: !values.empty().
int64_t MedianInt64(std::vector<int64_t> values);

}  // namespace skimjoin

#endif  // SKIMJOIN_UTIL_STATS_H_
