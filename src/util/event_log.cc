#include "util/event_log.h"

#include <chrono>

namespace skimjoin {

namespace {

// JSON string escaping for event names, field keys, and field values.
// Control bytes become \u00XX so any payload stays one parseable line.
void AppendJsonString(std::string* out, const std::string& text) {
  out->push_back('"');
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          *out += "\\u00";
          out->push_back(kHex[c >> 4]);
          out->push_back(kHex[c & 0xf]);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

std::string ToJsonLine(const LogEvent& event) {
  std::string line;
  line.reserve(64 + event.event.size() + 32 * event.fields.size());
  line += "{\"seq\":";
  line += std::to_string(event.sequence);
  line += ",\"ts_micros\":";
  line += std::to_string(event.ts_micros);
  line += ",\"level\":\"";
  line += LogLevelName(event.level);
  line += "\",\"event\":";
  AppendJsonString(&line, event.event);
  line += ",\"fields\":{";
  bool first = true;
  for (const auto& [key, value] : event.fields) {
    if (!first) line += ",";
    first = false;
    AppendJsonString(&line, key);
    line += ":";
    AppendJsonString(&line, value);
  }
  line += "}}";
  return line;
}

EventLog& EventLog::Global() {
  static EventLog* log = new EventLog();
  return *log;
}

void EventLog::Emit(LogLevel level, std::string event,
                    std::vector<std::pair<std::string, std::string>> fields) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (level < min_level_) {
    ++suppressed_;
    return;
  }
  LogEvent record;
  record.level = level;
  record.sequence = next_sequence_++;
  record.ts_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  record.event = std::move(event);
  record.fields = std::move(fields);
  ++emitted_;
  if (ring_.size() >= ring_capacity_) {
    ring_.erase(ring_.begin(),
                ring_.begin() +
                    static_cast<std::ptrdiff_t>(ring_.size() - ring_capacity_ +
                                                1));
  }
  ring_.push_back(record);
  for (const auto& [id, sink] : sinks_) sink(record);
}

void EventLog::set_min_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(mutex_);
  min_level_ = level;
}

LogLevel EventLog::min_level() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_level_;
}

void EventLog::set_ring_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_capacity_ = capacity < 1 ? 1 : capacity;
  if (ring_.size() > ring_capacity_) {
    ring_.erase(ring_.begin(),
                ring_.begin() + static_cast<std::ptrdiff_t>(ring_.size() -
                                                            ring_capacity_));
  }
}

uint64_t EventLog::AddSink(Sink sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t id = next_sink_id_++;
  sinks_.emplace_back(id, std::move(sink));
  return id;
}

void EventLog::RemoveSink(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = sinks_.begin(); it != sinks_.end(); ++it) {
    if (it->first == id) {
      sinks_.erase(it);
      return;
    }
  }
}

std::vector<LogEvent> EventLog::Tail(size_t n) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t count = n < ring_.size() ? n : ring_.size();
  return std::vector<LogEvent>(ring_.end() - static_cast<std::ptrdiff_t>(count),
                               ring_.end());
}

uint64_t EventLog::emitted_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return emitted_;
}

uint64_t EventLog::suppressed_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return suppressed_;
}

void EventLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  emitted_ = 0;
  suppressed_ = 0;
  next_sequence_ = 1;
}

}  // namespace skimjoin
