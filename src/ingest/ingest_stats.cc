#include "ingest/ingest_stats.h"

namespace skimjoin {
namespace ingest {

std::string IngestStats::ToString() const {
  return "elements=" + std::to_string(elements_absorbed) +
         " batches=" + std::to_string(batches) +
         " dropped=" + std::to_string(elements_dropped) +
         " merges=" + std::to_string(merges) +
         " absorb_ms=" + std::to_string(absorb_nanos / 1000000) +
         " merge_ms=" + std::to_string(merge_nanos / 1000000) +
         " cache_hits=" + std::to_string(hash_cache_hits) +
         " cache_misses=" + std::to_string(hash_cache_misses);
}

}  // namespace ingest
}  // namespace skimjoin
