// Truly concurrent ingestion with bounded-staleness reads.
//
// ParallelIngestor parallelizes WITHIN a batch but still runs
// absorb → barrier → merge as one synchronous pipeline: readers and the
// writer take strict turns on the master synopsis. This ingestor removes
// the turn-taking, adapting the relaxed-consistency concurrent sketches of
// Rinberg & Keidar (PODC '20) to exact linear synopses:
//
//   * Each worker owns a private replica synopsis. AbsorbBatch chunks the
//     batch across workers and returns WITHOUT waiting — ingestion truly
//     overlaps the caller and any concurrent readers.
//   * Workers fold elements into their replica lock-free (it is theirs
//     alone) and periodically PROPAGATE: take the shared synopsis's writer
//     lock, Merge the replica in, zero it, and advance the epoch counter.
//     Because Merge is plain counter addition (linearity), the shared state
//     after any prefix of propagations equals a sequential ingest of
//     exactly the propagated elements — relaxation costs staleness, never
//     accuracy.
//   * Readers take a shared (reader) lock and see a CONSISTENT snapshot:
//     whole replicas enter atomically under the writer lock, so a reader
//     can never observe half a propagation (the bounded-staleness
//     invariant concurrent_ingest_test.cc asserts via CountMin row sums).
//   * Staleness is bounded two ways: workers self-propagate every
//     `propagation_interval_elements`, and once the global un-propagated
//     backlog exceeds `max_lag_elements` a worker escalates from
//     try_lock (contention-shy) to a blocking writer lock.
//   * Flush() is the exact linearization point retained from the
//     join-then-merge design: barrier the pool, then merge every replica
//     under one writer lock. Afterwards the shared synopsis is
//     counter-for-counter identical to a sequential ingest of everything
//     ever submitted, and epoch_lag() == 0.
//
// NUMA: replicas are CONSTRUCTED on their worker threads (first-touch
// places counter pages on the worker's node) and Options::pin_threads
// keeps each worker — hence its replica pages — on one CPU. Single-socket
// machines see only the harmless affinity hint.
//
// Concurrency contract:
//   * One driving thread calls AbsorbBatch / Flush / stats-mutating calls.
//   * Any number of threads may hold ReaderLock() and read shared()
//     concurrently with ingestion.
//   * The shared synopsis must not be mutated except through this ingestor
//     while the ingestor is live (the engine routes its scalar Update path
//     through the same writer lock for exactly this reason).

#ifndef SKIMJOIN_INGEST_CONCURRENT_INGESTOR_H_
#define SKIMJOIN_INGEST_CONCURRENT_INGESTOR_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <utility>
#include <vector>

#include "ingest/ingest_stats.h"
#include "ingest/worker_pool.h"
#include "stream/stream_element.h"
#include "util/metrics.h"
#include "util/status.h"

namespace skimjoin {
namespace ingest {

/// Tuning knobs for one ConcurrentIngestor.
struct ConcurrentIngestOptions {
  /// Worker threads (and private replicas). Must be >= 1.
  uint64_t num_workers = 2;
  /// A worker volunteers a propagation after folding this many elements
  /// since its last one. Smaller = fresher reads, more lock traffic.
  uint64_t propagation_interval_elements = 1 << 16;
  /// Hard staleness bound: once submitted-but-unpropagated elements exceed
  /// this, the next worker to notice propagates with a BLOCKING writer
  /// lock instead of politely skipping on contention.
  uint64_t max_lag_elements = 1 << 20;
  /// Pin workers (and their first-touch replica pages) to CPUs.
  bool pin_threads = false;
};

/// Relaxed-consistency concurrent ingestor over any linear synopsis.
/// `Synopsis` needs the same surface as ParallelIngestor's: copyable,
/// UpdateBatch(span), Reset(), Merge(const Synopsis&).
///
/// Heap-only (std::shared_mutex pins the address); use Create.
template <typename Synopsis>
class ConcurrentIngestor {
 public:
  using ReadLock = std::shared_lock<std::shared_mutex>;
  using WriteLock = std::unique_lock<std::shared_mutex>;

  /// Builds workers and their replicas. Replica construction happens ON
  /// each worker thread (NUMA first-touch). `shared` must outlive the
  /// ingestor and is the synopsis readers query.
  static StatusOr<std::unique_ptr<ConcurrentIngestor>> Create(
      Synopsis* shared, ConcurrentIngestOptions options = {}) {
    if (shared == nullptr) {
      return InvalidArgumentError(
          "ConcurrentIngestor requires a shared synopsis");
    }
    if (options.num_workers < 1) {
      return InvalidArgumentError(
          "ConcurrentIngestor requires num_workers >= 1");
    }
    if (options.propagation_interval_elements < 1) {
      return InvalidArgumentError(
          "propagation_interval_elements must be >= 1");
    }
    auto ingestor = std::unique_ptr<ConcurrentIngestor>(
        new ConcurrentIngestor(shared, options));
    // First-touch: each worker constructs (and zeroes) its own replica, so
    // the counter pages are resident on the worker's NUMA node.
    for (uint64_t w = 0; w < options.num_workers; ++w) {
      ingestor->pool_->Submit(w, [state = ingestor->workers_[w].get(),
                                  prototype = shared] {
        state->replica.emplace(*prototype);
        state->replica->Reset();
      });
    }
    ingestor->pool_->Barrier();
    return ingestor;
  }

  /// Flushes outstanding work so the shared synopsis ends exact, then
  /// joins the pool (pool_ is declared last, destroyed first).
  ~ConcurrentIngestor() { Flush(); }

  ConcurrentIngestor(const ConcurrentIngestor&) = delete;
  ConcurrentIngestor& operator=(const ConcurrentIngestor&) = delete;

  /// Chunks `elements` across workers and returns immediately — the copy
  /// into per-task buffers is the only synchronous cost. Visibility of
  /// these elements to readers lags by at most max_lag_elements (plus one
  /// in-flight chunk per worker).
  void AbsorbBatch(std::span<const stream::StreamElement> elements) {
    if (elements.empty()) return;
    stats_.batches += 1;
    stats_.elements_absorbed += elements.size();
    submitted_elements_.fetch_add(elements.size(), std::memory_order_relaxed);

    const uint64_t workers = workers_.size();
    // Round-robin contiguous chunks; small batches go whole to one worker
    // (rotating so a stream of small batches still uses every worker).
    uint64_t shards = workers;
    while (shards > 1 && elements.size() / shards < kMinChunkElements) {
      --shards;
    }
    const uint64_t chunk = elements.size() / shards;
    for (uint64_t s = 0; s < shards; ++s) {
      const uint64_t begin = s * chunk;
      const uint64_t end = (s + 1 == shards) ? elements.size() : begin + chunk;
      const uint64_t w = (next_worker_ + s) % workers;
      pool_->Submit(
          w, [this, state = workers_[w].get(),
              copy = std::vector<stream::StreamElement>(
                  elements.begin() + static_cast<ptrdiff_t>(begin),
                  elements.begin() + static_cast<ptrdiff_t>(end))] {
            state->replica->UpdateBatch(copy);
            state->pending += copy.size();
            MaybePropagate(state);
          });
    }
    next_worker_ = (next_worker_ + shards) % workers;
  }

  /// Exact linearization point: waits for every in-flight chunk, then
  /// merges all replicas under one writer lock. Afterwards shared() equals
  /// a sequential ingest of everything submitted and epoch_lag() == 0.
  void Flush() {
    metrics::TraceSpan span("concurrent_flush", "ingest");
    pool_->Barrier();
    stats_.merges += 1;
    WriteLock lock(mu_);
    for (const std::unique_ptr<WorkerState>& state : workers_) {
      PropagateLocked(state.get());
    }
    // Same saturating drop accounting as ParallelIngestor::FlushInto, but
    // against the cumulative total since propagations happen continuously.
    const uint64_t dropped = dropped_elements_.load(std::memory_order_relaxed);
    const uint64_t newly_dropped = dropped - stats_.elements_dropped;
    stats_.elements_dropped = dropped;
    stats_.elements_absorbed -=
        std::min(newly_dropped, stats_.elements_absorbed);
  }

  /// Shared (reader) lock over the shared synopsis. Hold it across the
  /// whole read — point queries, SlimView refresh, serialization.
  ReadLock ReaderLock() const { return ReadLock(mu_); }

  /// Writer lock for callers that must mutate the shared synopsis directly
  /// (the engine's scalar Update path, Clear). Excludes propagations and
  /// readers.
  WriteLock WriterLock() const { return WriteLock(mu_); }

  /// The synopsis readers see; callers must hold ReaderLock (or
  /// WriterLock) while touching it.
  const Synopsis& shared() const { return *shared_; }

  /// Elements accepted by AbsorbBatch but not yet visible to readers.
  /// Zero immediately after Flush.
  uint64_t epoch_lag() const {
    const uint64_t submitted =
        submitted_elements_.load(std::memory_order_relaxed);
    const uint64_t propagated =
        propagated_elements_.load(std::memory_order_relaxed);
    return submitted - std::min(propagated, submitted);
  }

  /// Monotone count of completed propagations (replica → shared merges).
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  uint64_t num_workers() const { return workers_.size(); }
  uint64_t pinned_workers() const { return pool_->pinned_workers(); }
  const IngestStats& stats() const { return stats_; }

  /// Below this many elements per chunk, fan-out stops paying for the
  /// task + copy overhead and the batch collapses onto fewer workers.
  static constexpr uint64_t kMinChunkElements = 1024;

 private:
  struct WorkerState {
    /// Deferred-constructed so it can be built on the worker thread.
    std::optional<Synopsis> replica;
    /// Elements folded into `replica` since its last propagation. Written
    /// by the owning worker and, under the writer lock, by Flush.
    uint64_t pending = 0;
  };

  ConcurrentIngestor(Synopsis* shared, const ConcurrentIngestOptions& options)
      : shared_(shared), options_(options) {
    workers_.reserve(options.num_workers);
    for (uint64_t w = 0; w < options.num_workers; ++w) {
      workers_.push_back(std::make_unique<WorkerState>());
    }
    pool_ = std::make_unique<WorkerPool>(
        options.num_workers, WorkerPool::Options{options.pin_threads});
  }

  /// Worker-side propagation policy: volunteer at the interval, insist
  /// past the lag bound, otherwise stand down on contention.
  void MaybePropagate(WorkerState* state) {
    if (state->pending == 0) return;
    const bool overdue = epoch_lag() > options_.max_lag_elements;
    if (state->pending < options_.propagation_interval_elements && !overdue) {
      return;
    }
    WriteLock lock(mu_, std::try_to_lock);
    if (!lock.owns_lock()) {
      if (!overdue) return;  // Contended and within bounds: try next chunk.
      lock = WriteLock(mu_);
    }
    PropagateLocked(state);
  }

  /// Requires mu_ held exclusively. Merges and zeroes one replica,
  /// advancing the epoch so readers can detect progress.
  void PropagateLocked(WorkerState* state) {
    if (state->pending == 0) return;
    if constexpr (requires(const Synopsis& s) { s.dropped_updates(); }) {
      // Same saturating drop accounting as ParallelIngestor::FlushInto:
      // drops counted inside the replica were never truly absorbed.
      const uint64_t dropped = state->replica->dropped_updates();
      dropped_elements_.fetch_add(dropped, std::memory_order_relaxed);
    }
    shared_->Merge(*state->replica);
    state->replica->Reset();
    propagated_elements_.fetch_add(state->pending, std::memory_order_relaxed);
    state->pending = 0;
    epoch_.fetch_add(1, std::memory_order_relaxed);
  }

  Synopsis* const shared_;
  const ConcurrentIngestOptions options_;

  /// Guards shared_ plus every WorkerState's replica/pending during
  /// propagation. Readers share; propagations and Flush are exclusive.
  mutable std::shared_mutex mu_;

  std::vector<std::unique_ptr<WorkerState>> workers_;
  /// Driver-thread rotation point for small-batch placement.
  uint64_t next_worker_ = 0;

  std::atomic<uint64_t> submitted_elements_{0};
  std::atomic<uint64_t> propagated_elements_{0};
  std::atomic<uint64_t> dropped_elements_{0};
  std::atomic<uint64_t> epoch_{0};
  IngestStats stats_;

  /// Declared LAST: destroyed first, joining all workers before the
  /// replicas and shared-synopsis pointer they use go away.
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace ingest
}  // namespace skimjoin

#endif  // SKIMJOIN_INGEST_CONCURRENT_INGESTOR_H_
