// Sharded, batched parallel ingestion for linear synopses.
//
// Every sketch in this library is a linear projection of the frequency
// vector, so summarizing a stream is embarrassingly parallel: partition a
// batch across N shards, let each shard fold its elements into a private
// replica synopsis, and add the replicas together — Merge IS addition, so
// the result is counter-for-counter identical to a sequential pass (integer
// addition commutes and associates; there is no approximation in the
// parallelism). This is the replica-and-propagate design of Rinberg et
// al.'s concurrent sketches and the shard-and-aggregate ingestion of
// Hokusai, specialized to exact linearity.
//
// Threading model (see DESIGN.md, "Threading & ingestion model"):
//   * ONE thread drives a ParallelIngestor (single-writer); shard work runs
//     on a persistent WorkerPool owned by the ingestor — threads are
//     created once at Create time, not per batch — and AbsorbBatch blocks
//     on the pool's Barrier before returning, so no task outlives the call.
//   * Replica i is touched only by its dedicated pool worker during
//     AbsorbBatch (the driving thread absorbs shard 0 itself) and only by
//     the driving thread during FlushInto — the Barrier's release/acquire
//     edge orders the two.
//   * The master synopsis is never touched by workers; queries against it
//     remain single-writer exactly as before.
//
// Usage:
//   auto ingestor = *ingest::ParallelIngestor<core::SkimmedSketch>::Create(
//       master, /*num_shards=*/4);
//   ingestor.AbsorbBatch(batch1);        // parallel, replicas only
//   ingestor.AbsorbBatch(batch2);
//   ingestor.FlushInto(&master);         // exact merge, replicas reset
//
// or the one-shot IngestInto(&master, batch) convenience.

#ifndef SKIMJOIN_INGEST_PARALLEL_INGESTOR_H_
#define SKIMJOIN_INGEST_PARALLEL_INGESTOR_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "ingest/ingest_stats.h"
#include "ingest/worker_pool.h"
#include "stream/stream_element.h"
#include "util/metrics.h"
#include "util/status.h"

namespace skimjoin {
namespace ingest {

/// Below this many elements per shard a batch is absorbed inline on the
/// calling thread: thread spawn/join costs more than the work it would
/// distribute.
inline constexpr uint64_t kMinElementsPerShard = 4096;

/// A sharded ingestion pipeline over any linear synopsis type. `Synopsis`
/// must be copyable and provide UpdateBatch(span<const StreamElement>),
/// Reset(), and Merge(const Synopsis&) — HashSketch, AgmsSketch,
/// CountMinSketch, and SkimmedSketch all qualify.
template <typename Synopsis>
class ParallelIngestor {
 public:
  /// Builds `num_shards` thread-local replicas compatible with `prototype`
  /// (copies, zeroed). INVALID_ARGUMENT for num_shards < 1.
  static StatusOr<ParallelIngestor> Create(const Synopsis& prototype,
                                           uint64_t num_shards) {
    if (num_shards < 1) {
      return InvalidArgumentError(
          "ParallelIngestor requires num_shards >= 1");
    }
    std::vector<Synopsis> replicas;
    replicas.reserve(num_shards);
    for (uint64_t shard = 0; shard < num_shards; ++shard) {
      Synopsis replica = prototype;
      replica.Reset();
      replicas.push_back(std::move(replica));
    }
    // Shard 0 is absorbed on the driving thread, so the pool only needs
    // num_shards - 1 workers; a single-shard ingestor needs none at all.
    std::unique_ptr<WorkerPool> pool;
    if (num_shards > 1) {
      pool = std::make_unique<WorkerPool>(num_shards - 1);
    }
    return ParallelIngestor(std::move(replicas), std::move(pool));
  }

  /// Partitions `elements` into contiguous chunks and folds each into its
  /// shard's replica on a worker thread. Returns when every worker has
  /// joined; the master synopsis is untouched until FlushInto.
  void AbsorbBatch(std::span<const stream::StreamElement> elements) {
    const auto start = std::chrono::steady_clock::now();
    stats_.batches += 1;
    stats_.elements_absorbed += elements.size();

    // Small batches: absorb inline; fan-out overhead would dominate.
    uint64_t shards = replicas_.size();
    while (shards > 1 && elements.size() / shards < kMinElementsPerShard) {
      --shards;
    }
    if (shards <= 1) {
      replicas_[0].UpdateBatch(elements);
    } else {
      // Shards 1..N-1 go to the persistent pool; the driving thread folds
      // shard 0 itself instead of idling, then waits out the stragglers.
      const uint64_t chunk = elements.size() / shards;
      for (uint64_t shard = 1; shard < shards; ++shard) {
        const uint64_t begin = shard * chunk;
        const uint64_t end =
            (shard + 1 == shards) ? elements.size() : begin + chunk;
        pool_->Submit(shard - 1,
                      [replica = &replicas_[shard],
                       slice = elements.subspan(begin, end - begin)] {
                        replica->UpdateBatch(slice);
                      });
      }
      replicas_[0].UpdateBatch(elements.subspan(0, chunk));
      pool_->Barrier();
    }
    stats_.absorb_nanos += Elapsed(start);
  }

  /// Adds every replica into `*master` (exact, by linearity) and zeroes the
  /// replicas so the next AbsorbBatch starts clean. Dropped-element counts
  /// accumulated inside replicas (synopses that track them, e.g.
  /// SkimmedSketch) are folded into stats() before the reset erases them.
  void FlushInto(Synopsis* master) {
    metrics::TraceSpan span("replica_merge", "ingest");
    const auto start = std::chrono::steady_clock::now();
    stats_.merges += 1;
    for (Synopsis& replica : replicas_) {
      if constexpr (requires(const Synopsis& s) { s.dropped_updates(); }) {
        // A replica can carry drops this ingestor never counted as absorbed
        // (a prototype copied from a non-reset master, or a synopsis whose
        // Reset keeps its drop counter). Saturate instead of underflowing
        // the unsigned absorbed counter to ~2^64.
        const uint64_t dropped = replica.dropped_updates();
        stats_.elements_dropped += dropped;
        stats_.elements_absorbed -=
            std::min(dropped, stats_.elements_absorbed);
      }
      master->Merge(replica);
      replica.Reset();
    }
    stats_.merge_nanos += Elapsed(start);
  }

  /// One-shot convenience: AbsorbBatch + FlushInto.
  void IngestInto(Synopsis* master,
                  std::span<const stream::StreamElement> elements) {
    AbsorbBatch(elements);
    FlushInto(master);
  }

  uint64_t num_shards() const { return replicas_.size(); }
  const IngestStats& stats() const { return stats_; }

 private:
  ParallelIngestor(std::vector<Synopsis> replicas,
                   std::unique_ptr<WorkerPool> pool)
      : replicas_(std::move(replicas)), pool_(std::move(pool)) {}

  static uint64_t Elapsed(std::chrono::steady_clock::time_point start) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }

  std::vector<Synopsis> replicas_;
  IngestStats stats_;
  // Declared after replicas_ so the pool (and any in-flight tasks holding
  // replica pointers) is torn down before the replicas it references.
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace ingest
}  // namespace skimjoin

#endif  // SKIMJOIN_INGEST_PARALLEL_INGESTOR_H_
