// A small persistent worker pool with per-worker task queues.
//
// ParallelIngestor and ConcurrentIngestor need the same primitive: N
// long-lived threads, each permanently bound to one shard replica, that
// accept closures from a single driving thread and report global
// quiescence. Spawning std::thread per batch (the pre-pool design) cost a
// clone+join round trip per shard per batch — microseconds that dominate
// once the per-shard chunk drops toward kMinElementsPerShard. The pool
// amortizes thread creation across the ingestor's lifetime.
//
// Shape:
//   * One FIFO deque + mutex + condvar PER WORKER, not a shared run queue:
//     tasks are shard-addressed (replica i only ever runs on worker i), so
//     a shared queue would buy nothing and cost cross-thread contention.
//   * Submit(worker, fn) enqueues; it never blocks on task execution.
//   * Barrier() blocks the driver until every task submitted so far has
//     finished, and carries the release/acquire edge that lets the driver
//     read worker-written state (replica contents) afterwards.
//   * Single driver: Submit/Barrier must be called from one thread at a
//     time (matching the single-writer ingestion model in DESIGN.md §13).
//
// NUMA: workers are created once and — with Options::pin_threads — pinned
// round-robin to hardware CPUs, so pages first-touched inside a worker
// task (e.g. a replica constructed on the worker) stay on that worker's
// node for the pool's lifetime. On a single-socket machine pinning is a
// cheap no-op apart from scheduler affinity.

#ifndef SKIMJOIN_INGEST_WORKER_POOL_H_
#define SKIMJOIN_INGEST_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace skimjoin {
namespace ingest {

class WorkerPool {
 public:
  struct Options {
    /// Pin worker i to hardware CPU (i mod hardware_concurrency). Best
    /// effort: unsupported platforms and failed affinity calls degrade to
    /// unpinned workers, never to an error.
    bool pin_threads = false;
  };

  /// Starts `num_workers` threads immediately (num_workers >= 1 is
  /// clamped). Workers idle on their condvars until tasks arrive.
  WorkerPool(uint64_t num_workers, Options options);
  explicit WorkerPool(uint64_t num_workers)
      : WorkerPool(num_workers, Options{}) {}

  /// Joins all workers. Tasks already submitted are drained first, so a
  /// destructor-ordered member pool (declared last in its owner) gives the
  /// owner's other members a clean happens-after-all-tasks teardown.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues `task` on worker `worker` (mod num_workers). Returns without
  /// waiting for execution.
  void Submit(uint64_t worker, std::function<void()> task);

  /// Blocks until every task submitted before this call has completed.
  /// Establishes happens-before from all completed tasks to the caller.
  void Barrier();

  uint64_t num_workers() const { return workers_.size(); }

  /// Number of workers whose affinity call actually succeeded.
  uint64_t pinned_workers() const {
    return pinned_workers_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> tasks;
    bool stop = false;
    std::thread thread;
  };

  void WorkerLoop(uint64_t index, bool pin);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> pinned_workers_{0};
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
};

}  // namespace ingest
}  // namespace skimjoin

#endif  // SKIMJOIN_INGEST_WORKER_POOL_H_
