#include "ingest/worker_pool.h"

#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace skimjoin {
namespace ingest {

WorkerPool::WorkerPool(uint64_t num_workers, Options options) {
  if (num_workers < 1) num_workers = 1;
  workers_.reserve(num_workers);
  for (uint64_t i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Threads start only after the workers_ vector is fully built — WorkerLoop
  // indexes into it.
  for (uint64_t i = 0; i < num_workers; ++i) {
    workers_[i]->thread =
        std::thread([this, i, pin = options.pin_threads] { WorkerLoop(i, pin); });
  }
}

WorkerPool::~WorkerPool() {
  for (const std::unique_ptr<Worker>& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->stop = true;
    }
    worker->cv.notify_all();
  }
  for (const std::unique_ptr<Worker>& worker : workers_) {
    worker->thread.join();
  }
}

void WorkerPool::Submit(uint64_t worker_index, std::function<void()> task) {
  Worker& worker = *workers_[worker_index % workers_.size()];
  submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(worker.mu);
    worker.tasks.push_back(std::move(task));
  }
  worker.cv.notify_one();
}

void WorkerPool::Barrier() {
  // Submit and Barrier share one driving thread, so `submitted_` cannot
  // move underneath the wait.
  const uint64_t target = submitted_.load(std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(barrier_mu_);
  barrier_cv_.wait(lock, [this, target] {
    return completed_.load(std::memory_order_acquire) >= target;
  });
}

void WorkerPool::WorkerLoop(uint64_t index, bool pin) {
  if (pin) {
#if defined(__linux__)
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(static_cast<int>(index % hw), &set);
      if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0) {
        pinned_workers_.fetch_add(1, std::memory_order_relaxed);
      }
    }
#endif
  }
  Worker& self = *workers_[index];
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(self.mu);
      self.cv.wait(lock, [&self] { return self.stop || !self.tasks.empty(); });
      // Drain the queue before honoring stop so ~WorkerPool never abandons
      // submitted work.
      if (self.tasks.empty()) return;
      task = std::move(self.tasks.front());
      self.tasks.pop_front();
    }
    task();
    // The release store pairs with Barrier's acquire load: everything the
    // task wrote is visible to a driver that has seen the count.
    completed_.fetch_add(1, std::memory_order_release);
    {
      // Empty critical section: forces the notify to serialize against a
      // Barrier() that has checked the predicate but not yet slept.
      std::lock_guard<std::mutex> lock(barrier_mu_);
    }
    barrier_cv_.notify_all();
  }
}

}  // namespace ingest
}  // namespace skimjoin
