// Observability counters for the batched / sharded ingestion pipeline
// (ingest/parallel_ingestor.h and query::Engine::UpdateBatch).

#ifndef SKIMJOIN_INGEST_INGEST_STATS_H_
#define SKIMJOIN_INGEST_INGEST_STATS_H_

#include <cstdint>
#include <string>

namespace skimjoin {
namespace ingest {

/// Running totals for one ingestion pipeline (or one engine stream).
/// Plain counters — callers that share a pipeline across threads must
/// serialize access, matching the single-writer model documented in
/// DESIGN.md.
struct IngestStats {
  /// Stream elements absorbed into replicas / synopses.
  uint64_t elements_absorbed = 0;
  /// Batches accepted (AbsorbBatch / UpdateBatch calls).
  uint64_t batches = 0;
  /// Elements dropped before any synopsis saw them (out-of-domain values).
  uint64_t elements_dropped = 0;
  /// Replica-merge flushes performed.
  uint64_t merges = 0;
  /// Wall time spent inside parallel absorb fan-out.
  uint64_t absorb_nanos = 0;
  /// Wall time spent merging replicas into the master synopsis.
  uint64_t merge_nanos = 0;
  /// Hash plan-cache probes that hit / missed across the stream's
  /// frequency-query synopses (inline ingest path; sharded replicas keep
  /// their caches worker-local). Zero when the cache kernel is disabled.
  uint64_t hash_cache_hits = 0;
  uint64_t hash_cache_misses = 0;

  /// One-line human-readable rendering for logs and the bench harness.
  std::string ToString() const;
};

}  // namespace ingest
}  // namespace skimjoin

#endif  // SKIMJOIN_INGEST_INGEST_STATS_H_
