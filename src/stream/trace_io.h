// Plain-text trace files so workloads can be captured, shared, and replayed
// across processes (e.g., generate once, feed both a sketch run and an exact
// reference run). Format: one "value weight" pair per line; lines beginning
// with '#' are comments.

#ifndef SKIMJOIN_STREAM_TRACE_IO_H_
#define SKIMJOIN_STREAM_TRACE_IO_H_

#include <string>
#include <vector>

#include "stream/stream_element.h"
#include "util/status.h"

namespace skimjoin {
namespace stream {

/// Writes `elements` to `path`, atomically replacing any existing file
/// (util::AtomicWriteFile: temp → fsync → rename): an interrupted write
/// never leaves a torn trace behind.
Status WriteTrace(const std::string& path,
                  const std::vector<StreamElement>& elements);

/// Reads a trace written by WriteTrace (or hand-authored in the same
/// format). Returns IO_ERROR if the file cannot be opened and
/// INVALID_ARGUMENT on malformed lines.
StatusOr<std::vector<StreamElement>> ReadTrace(const std::string& path);

}  // namespace stream
}  // namespace skimjoin

#endif  // SKIMJOIN_STREAM_TRACE_IO_H_
