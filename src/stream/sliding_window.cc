#include "stream/sliding_window.h"

namespace skimjoin {
namespace stream {

StatusOr<SlidingWindow> SlidingWindow::Create(uint64_t capacity) {
  if (capacity == 0) {
    return InvalidArgumentError("sliding-window capacity must be >= 1");
  }
  return SlidingWindow(capacity);
}

}  // namespace stream
}  // namespace skimjoin
