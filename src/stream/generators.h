// Additional synthetic workloads beyond Zipf (stream/zipf.h) and the
// census substitute (stream/census_like.h): uniform and self-similar
// (80–20 rule) distributions, used by tests and ablation benchmarks to
// exercise the estimators on non-Zipf skew shapes.

#ifndef SKIMJOIN_STREAM_GENERATORS_H_
#define SKIMJOIN_STREAM_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "stream/frequency_vector.h"
#include "stream/stream_element.h"
#include "util/random.h"

namespace skimjoin {
namespace stream {

/// Uniform distribution over [0, domain_size).
class UniformDistribution {
 public:
  /// Pre-condition: domain_size >= 1.
  explicit UniformDistribution(uint64_t domain_size);

  uint64_t Sample(Rng* rng) const;
  std::vector<StreamElement> GenerateElements(uint64_t count, Rng* rng) const;

  /// Deterministic expected frequencies for a `count`-element stream (the
  /// remainder spread over the lowest values).
  FrequencyVector ExpectedFrequencies(uint64_t count) const;

  uint64_t domain_size() const { return domain_size_; }

 private:
  uint64_t domain_size_;
};

/// Self-similar ("80–20 law") distribution [Gray et al., SIGMOD '94]: a
/// fraction `bias` of the mass falls on the first half of the domain,
/// recursively. bias = 0.5 is uniform; bias = 0.8 is the classic 80–20;
/// bias → 1 concentrates everything on value 0.
class SelfSimilarDistribution {
 public:
  /// Pre-conditions: domain_size a power of two >= 2, 0.5 <= bias < 1.
  SelfSimilarDistribution(uint64_t domain_size, double bias);

  uint64_t Sample(Rng* rng) const;
  std::vector<StreamElement> GenerateElements(uint64_t count, Rng* rng) const;

  /// Exact per-value probability (product of per-level biases).
  double Probability(uint64_t value) const;

  /// Expected frequencies with largest-remainder rounding to exactly
  /// `count`.
  FrequencyVector ExpectedFrequencies(uint64_t count) const;

  uint64_t domain_size() const { return domain_size_; }
  double bias() const { return bias_; }

 private:
  uint64_t domain_size_;
  double bias_;
  uint64_t levels_;
};

}  // namespace stream
}  // namespace skimjoin

#endif  // SKIMJOIN_STREAM_GENERATORS_H_
