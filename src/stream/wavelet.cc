#include "stream/wavelet.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "util/logging.h"

namespace skimjoin {
namespace stream {

namespace {

bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

uint64_t Log2(uint64_t x) {
  uint64_t log = 0;
  while ((uint64_t{1} << log) < x) ++log;
  return log;
}

// Depth of heap-numbered node j >= 1 (root j=1 has depth 0).
uint64_t DepthOf(uint64_t j) {
  uint64_t depth = 0;
  while (j >>= 1) ++depth;
  return depth;
}

// Size of the intersection of [lo, hi] with [start, start+len).
uint64_t Overlap(uint64_t lo, uint64_t hi, uint64_t start, uint64_t len) {
  const uint64_t a = std::max(lo, start);
  const uint64_t b = std::min(hi, start + len - 1);
  return a <= b ? (b - a + 1) : 0;
}

}  // namespace

WaveletSynopsis::WaveletSynopsis(uint64_t domain_size)
    : domain_size_(domain_size), levels_(Log2(domain_size)) {}

StatusOr<WaveletSynopsis> WaveletSynopsis::Create(uint64_t domain_size) {
  if (!IsPowerOfTwo(domain_size) || domain_size < 2) {
    return InvalidArgumentError(
        "wavelet synopses require a power-of-two domain size >= 2");
  }
  return WaveletSynopsis(domain_size);
}

void WaveletSynopsis::Adjust(uint64_t index, double delta) {
  const double updated = Coefficient(index) + delta;
  if (updated == 0.0) {
    coefficients_.erase(index);
  } else {
    coefficients_[index] = updated;
  }
}

void WaveletSynopsis::Update(uint64_t value, int64_t weight) {
  SKIMJOIN_CHECK_LT(value, domain_size_);
  const double w = static_cast<double>(weight);
  // Average coefficient.
  Adjust(0, w / static_cast<double>(domain_size_));
  // Root-to-leaf path: node j covers [start, start+size); the detail
  // coefficient is (avg of left half - avg of right half) / 2, so a +w
  // point mass in the left half moves it by +w/size, right half by -w/size.
  uint64_t j = 1;
  uint64_t start = 0;
  uint64_t size = domain_size_;
  while (size >= 2) {
    const uint64_t half = size / 2;
    const bool left = value < start + half;
    Adjust(j, left ? w / static_cast<double>(size)
                   : -w / static_cast<double>(size));
    j = 2 * j + (left ? 0 : 1);
    if (!left) start += half;
    size = half;
  }
}

double WaveletSynopsis::PointEstimate(uint64_t value) const {
  SKIMJOIN_CHECK_LT(value, domain_size_);
  double result = Coefficient(0);
  uint64_t j = 1;
  uint64_t start = 0;
  uint64_t size = domain_size_;
  while (size >= 2) {
    const uint64_t half = size / 2;
    const bool left = value < start + half;
    result += left ? Coefficient(j) : -Coefficient(j);
    j = 2 * j + (left ? 0 : 1);
    if (!left) start += half;
    size = half;
  }
  return result;
}

StatusOr<double> WaveletSynopsis::RangeSum(uint64_t lo, uint64_t hi) const {
  if (lo > hi) {
    return InvalidArgumentError("range lower bound exceeds upper bound");
  }
  if (hi >= domain_size_) {
    return OutOfRangeError("range extends past the wavelet domain");
  }
  // Iterate the SPARSE coefficient store: each retained coefficient
  // contributes its reconstruction weight times its overlap with the range.
  double total = 0.0;
  for (const auto& [index, value] : coefficients_) {
    if (index == 0) {
      total += value * static_cast<double>(hi - lo + 1);
      continue;
    }
    const uint64_t depth = DepthOf(index);
    const uint64_t size = domain_size_ >> depth;
    const uint64_t start = (index - (uint64_t{1} << depth)) * size;
    const uint64_t half = size / 2;
    const uint64_t left_overlap = Overlap(lo, hi, start, half);
    const uint64_t right_overlap = Overlap(lo, hi, start + half, half);
    total += value * (static_cast<double>(left_overlap) -
                      static_cast<double>(right_overlap));
  }
  return total;
}

Status WaveletSynopsis::SerializeTo(std::ostream& out) const {
  out << "skimjoin.wavelet v1\n"
      << domain_size_ << ' ' << coefficients_.size() << '\n';
  const auto saved_precision = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  for (const auto& [index, value] : coefficients_) {
    out << index << ' ' << value << '\n';
  }
  out.precision(saved_precision);
  out << "end\n";
  if (!out) return IoError("wavelet serialization failed");
  return OkStatus();
}

StatusOr<WaveletSynopsis> WaveletSynopsis::DeserializeFrom(std::istream& in) {
  std::string tag, version;
  if (!(in >> tag >> version) || tag != "skimjoin.wavelet" ||
      version != "v1") {
    return InvalidArgumentError("not a skimjoin wavelet v1 record");
  }
  uint64_t domain_size = 0;
  uint64_t coefficient_count = 0;
  if (!(in >> domain_size >> coefficient_count)) {
    return InvalidArgumentError("malformed wavelet header");
  }
  StatusOr<WaveletSynopsis> synopsis = WaveletSynopsis::Create(domain_size);
  SKIMJOIN_RETURN_IF_ERROR(synopsis.status());
  // Coefficient indices live in [0, domain_size), so a valid record never
  // holds more than domain_size coefficients — caps the read up front.
  if (coefficient_count > domain_size) {
    return InvalidArgumentError("wavelet record has a bad coefficient count");
  }
  for (uint64_t i = 0; i < coefficient_count; ++i) {
    uint64_t index = 0;
    double value = 0.0;
    if (!(in >> index >> value)) {
      return InvalidArgumentError("truncated wavelet coefficient block");
    }
    if (index >= domain_size) {
      return InvalidArgumentError("wavelet coefficient index out of range");
    }
    if (!synopsis->coefficients_.emplace(index, value).second) {
      return InvalidArgumentError("wavelet record has a duplicate index");
    }
  }
  std::string sentinel;
  if (!(in >> sentinel) || sentinel != "end") {
    return InvalidArgumentError("wavelet record missing its end sentinel");
  }
  return synopsis;
}

double WaveletSynopsis::NormalizationOf(uint64_t index) const {
  if (index == 0) return std::sqrt(static_cast<double>(domain_size_));
  return std::sqrt(static_cast<double>(domain_size_ >> DepthOf(index)));
}

std::vector<std::pair<uint64_t, double>> WaveletSynopsis::TopCoefficients(
    uint64_t budget) const {
  std::vector<std::pair<uint64_t, double>> all(coefficients_.begin(),
                                               coefficients_.end());
  std::sort(all.begin(), all.end(), [this](const auto& a, const auto& b) {
    const double na = std::abs(a.second) * NormalizationOf(a.first);
    const double nb = std::abs(b.second) * NormalizationOf(b.first);
    if (na != nb) return na > nb;
    return a.first < b.first;
  });
  if (all.size() > budget) all.resize(budget);
  return all;
}

void WaveletSynopsis::CompressTo(uint64_t budget) {
  if (coefficients_.size() <= budget) return;
  const auto kept = TopCoefficients(budget);
  coefficients_.clear();
  for (const auto& [index, value] : kept) coefficients_.emplace(index, value);
}

uint64_t WaveletSynopsis::MemoryBytes() const {
  // Red-black tree nodes carry three pointers plus a color word on top of
  // the key/value payload.
  constexpr uint64_t kMapNodeOverhead = 4 * sizeof(void*);
  return sizeof(*this) +
         coefficients_.size() *
             (sizeof(std::pair<const uint64_t, double>) + kMapNodeOverhead);
}

}  // namespace stream
}  // namespace skimjoin
