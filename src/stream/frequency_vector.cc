#include "stream/frequency_vector.h"

#include "util/logging.h"

namespace skimjoin {
namespace stream {

FrequencyVector::FrequencyVector(uint64_t domain_size)
    : counts_(domain_size, 0) {
  SKIMJOIN_CHECK_GE(domain_size, 1u);
}

void FrequencyVector::Add(uint64_t value, int64_t weight) {
  SKIMJOIN_CHECK_LT(value, counts_.size()) << "value outside stream domain";
  counts_[value] += weight;
}

int64_t FrequencyVector::Get(uint64_t value) const {
  SKIMJOIN_CHECK_LT(value, counts_.size()) << "value outside stream domain";
  return counts_[value];
}

int64_t FrequencyVector::TotalCount() const {
  int64_t total = 0;
  for (int64_t c : counts_) total += c;
  return total;
}

uint64_t FrequencyVector::SupportSize() const {
  uint64_t support = 0;
  for (int64_t c : counts_) support += (c != 0) ? 1 : 0;
  return support;
}

int64_t FrequencyVector::SelfJoinSize() const {
  __int128 total = 0;
  for (int64_t c : counts_) total += static_cast<__int128>(c) * c;
  SKIMJOIN_CHECK(total <= INT64_MAX) << "self-join size overflows int64";
  return static_cast<int64_t>(total);
}

void FrequencyVector::Subtract(const FrequencyVector& other) {
  SKIMJOIN_CHECK_EQ(counts_.size(), other.counts_.size());
  for (size_t v = 0; v < counts_.size(); ++v) counts_[v] -= other.counts_[v];
}

int64_t JoinSize(const FrequencyVector& f, const FrequencyVector& g) {
  SKIMJOIN_CHECK_EQ(f.domain_size(), g.domain_size());
  __int128 total = 0;
  const auto& fc = f.counts();
  const auto& gc = g.counts();
  for (size_t v = 0; v < fc.size(); ++v) {
    total += static_cast<__int128>(fc[v]) * gc[v];
  }
  SKIMJOIN_CHECK(total <= INT64_MAX && total >= INT64_MIN)
      << "join size overflows int64";
  return static_cast<int64_t>(total);
}

}  // namespace stream
}  // namespace skimjoin
