// Zipfian and right-shifted Zipfian workloads (evaluation Section 5.1).
//
// The paper's synthetic experiments join a Zipf(z) stream against the same
// distribution "right-shifted" by a shift parameter: the shifted stream's
// frequency for value v equals the original frequency of value v - shift.
// Shift 0 makes the join a self-join; growing the shift shrinks the join
// size, stress-testing estimator accuracy (relative error is inversely
// proportional to join size).

#ifndef SKIMJOIN_STREAM_ZIPF_H_
#define SKIMJOIN_STREAM_ZIPF_H_

#include <cstdint>
#include <vector>

#include "stream/frequency_vector.h"
#include "stream/stream_element.h"
#include "util/random.h"

namespace skimjoin {
namespace stream {

/// A Zipfian distribution over [0, domain_size): value v has probability
/// proportional to 1 / (v + 1)^z, optionally right-shifted.
class ZipfDistribution {
 public:
  /// Pre-conditions: domain_size >= 1, z >= 0, shift < domain_size.
  /// A value v of the shifted distribution has the probability that v - shift
  /// has under the unshifted one; the bottom `shift` values get probability 0
  /// (mass is renormalized over the remaining domain, matching the paper's
  /// description of frequencies being "identical ... shifted right").
  ZipfDistribution(uint64_t domain_size, double z, uint64_t shift = 0);

  /// Draws one value.
  uint64_t Sample(Rng* rng) const;

  /// Emits `count` insert elements drawn i.i.d. from the distribution.
  std::vector<StreamElement> GenerateElements(uint64_t count, Rng* rng) const;

  /// Materializes the *expected* frequency vector for a stream of `count`
  /// elements, with deterministic largest-remainder rounding so the total is
  /// exactly `count`. Because sketches are linear, feeding this through
  /// Update(v, f_v) is arithmetically identical to streaming f_v inserts of
  /// each v; the accuracy benchmarks use this form (documented in DESIGN.md).
  FrequencyVector ExpectedFrequencies(uint64_t count) const;

  uint64_t domain_size() const { return domain_size_; }
  double z() const { return z_; }
  uint64_t shift() const { return shift_; }

 private:
  uint64_t domain_size_;
  double z_;
  uint64_t shift_;
  // Cumulative probabilities over the *unshifted* support, for inverse-CDF
  // sampling by binary search.
  std::vector<double> cdf_;
};

}  // namespace stream
}  // namespace skimjoin

#endif  // SKIMJOIN_STREAM_ZIPF_H_
