// Greenwald–Khanna ε-approximate quantile summaries (SIGMOD '01) —
// citation [1] of the paper's related work, implemented as the
// deterministic, insert-only counterpart of the randomized dyadic
// quantiles in core/skimmed_sketch.h.
//
// The summary holds tuples (value, g, Δ) sorted by value, where g is the
// gap in minimum rank to the previous tuple and Δ bounds the rank
// uncertainty. The invariant g_i + Δ_i <= ⌊2εn⌋ guarantees every quantile
// query is answered within ε·n ranks using O((1/ε)·log(εn)) tuples.
//
// Unlike every sketch in this library, GK summaries are NOT linear: they
// cannot process deletions (the trade-off for determinism) — exactly the
// kind of limitation the paper's sketch-based machinery avoids.

#ifndef SKIMJOIN_STREAM_GK_QUANTILES_H_
#define SKIMJOIN_STREAM_GK_QUANTILES_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "util/status.h"

namespace skimjoin {
namespace stream {

/// Deterministic ε-approximate quantiles over an insert-only value stream.
class GkQuantileSummary {
 public:
  /// `epsilon` in (0, 0.5]: queries answer within epsilon·n ranks.
  static StatusOr<GkQuantileSummary> Create(double epsilon);

  /// Inserts one observation. O(log(summary size)) search plus periodic
  /// O(summary size) compression.
  void Insert(uint64_t value);

  /// Value whose rank is within epsilon·n of ceil(phi·n).
  /// Pre-condition via Status: FAILED_PRECONDITION on an empty summary;
  /// INVALID_ARGUMENT unless 0 < phi <= 1.
  StatusOr<uint64_t> Quantile(double phi) const;

  /// Observations inserted.
  int64_t count() const { return count_; }

  /// Tuples currently held (the O((1/ε)·log(εn)) space bound).
  uint64_t summary_size() const { return tuples_.size(); }

  double epsilon() const { return epsilon_; }

  /// Total footprint in bytes (object plus tuple storage). Feeds the
  /// per-synopsis memory gauges.
  uint64_t MemoryBytes() const;

  /// Writes a self-describing text record (epsilon, count, tuples).
  Status SerializeTo(std::ostream& out) const;

  /// Reads a record written by SerializeTo. INVALID_ARGUMENT on a malformed
  /// or truncated record.
  static StatusOr<GkQuantileSummary> DeserializeFrom(std::istream& in);

 private:
  struct Tuple {
    uint64_t value;
    int64_t g;      // min-rank gap to the previous tuple
    int64_t delta;  // rank uncertainty
  };

  explicit GkQuantileSummary(double epsilon);

  /// Merges tuples whose combined band fits the 2εn budget.
  void Compress();

  double epsilon_;
  int64_t count_ = 0;
  std::vector<Tuple> tuples_;  // sorted by value
};

}  // namespace stream
}  // namespace skimjoin

#endif  // SKIMJOIN_STREAM_GK_QUANTILES_H_
