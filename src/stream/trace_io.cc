#include "stream/trace_io.h"

#include <fstream>
#include <sstream>

#include "util/durable_file.h"

namespace skimjoin {
namespace stream {

Status WriteTrace(const std::string& path,
                  const std::vector<StreamElement>& elements) {
  // Build the whole trace in memory and commit it atomically: a crash (or
  // injected I/O failure) mid-write leaves any previous trace at `path`
  // intact rather than a torn half-file.
  std::ostringstream out;
  out << "# skimjoin trace v1: <value> <weight>\n";
  for (const StreamElement& e : elements) {
    out << e.value << ' ' << e.weight << '\n';
  }
  return util::AtomicWriteFile(path, out.str());
}

StatusOr<std::vector<StreamElement>> ReadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return IoError("cannot open trace file for reading: " + path);
  std::vector<StreamElement> elements;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    StreamElement e;
    if (!(fields >> e.value >> e.weight)) {
      return InvalidArgumentError("malformed trace line " +
                                  std::to_string(line_number) + " in " + path);
    }
    std::string extra;
    if (fields >> extra) {
      return InvalidArgumentError("trailing tokens on trace line " +
                                  std::to_string(line_number) + " in " + path);
    }
    elements.push_back(e);
  }
  return elements;
}

}  // namespace stream
}  // namespace skimjoin
