// Exact (offline) reference computation of the aggregates the sketches
// approximate. Used by tests and by the benchmark harness to compute the
// true join sizes the error metric is measured against. These obviously do
// not respect the streaming space constraint — that is the point.

#ifndef SKIMJOIN_STREAM_EXACT_H_
#define SKIMJOIN_STREAM_EXACT_H_

#include <cstdint>
#include <vector>

#include "stream/frequency_vector.h"
#include "stream/stream_element.h"

namespace skimjoin {
namespace stream {

/// Materializes the frequency vector of an element sequence.
/// Pre-condition: all values < domain_size.
FrequencyVector Materialize(const std::vector<StreamElement>& elements,
                            uint64_t domain_size);

/// Exact COUNT(F ⋈ G) from raw element sequences.
int64_t ExactJoinSize(const std::vector<StreamElement>& f,
                      const std::vector<StreamElement>& g,
                      uint64_t domain_size);

/// Exact self-join size (second frequency moment F2) of a sequence.
int64_t ExactSelfJoinSize(const std::vector<StreamElement>& f,
                          uint64_t domain_size);

/// Exact SUM_w(F ⋈ G) where `f_weighted` carries measure values as weights
/// (see stream_element.h): sum_v w_v * g_v.
int64_t ExactSumJoin(const std::vector<StreamElement>& f_weighted,
                     const std::vector<StreamElement>& g,
                     uint64_t domain_size);

}  // namespace stream
}  // namespace skimjoin

#endif  // SKIMJOIN_STREAM_EXACT_H_
