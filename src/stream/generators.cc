#include "stream/generators.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace skimjoin {
namespace stream {

UniformDistribution::UniformDistribution(uint64_t domain_size)
    : domain_size_(domain_size) {
  SKIMJOIN_CHECK_GE(domain_size, 1u);
}

uint64_t UniformDistribution::Sample(Rng* rng) const {
  return rng->NextUint64Below(domain_size_);
}

std::vector<StreamElement> UniformDistribution::GenerateElements(
    uint64_t count, Rng* rng) const {
  std::vector<StreamElement> elements;
  elements.reserve(count);
  for (uint64_t i = 0; i < count; ++i) elements.push_back(Insert(Sample(rng)));
  return elements;
}

FrequencyVector UniformDistribution::ExpectedFrequencies(
    uint64_t count) const {
  FrequencyVector result(domain_size_);
  const uint64_t base = count / domain_size_;
  const uint64_t remainder = count % domain_size_;
  for (uint64_t v = 0; v < domain_size_; ++v) {
    result.Add(v, static_cast<int64_t>(base + (v < remainder ? 1 : 0)));
  }
  return result;
}

namespace {

bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

uint64_t Log2(uint64_t x) {
  uint64_t log = 0;
  while ((uint64_t{1} << log) < x) ++log;
  return log;
}

}  // namespace

SelfSimilarDistribution::SelfSimilarDistribution(uint64_t domain_size,
                                                 double bias)
    : domain_size_(domain_size), bias_(bias), levels_(Log2(domain_size)) {
  SKIMJOIN_CHECK(IsPowerOfTwo(domain_size) && domain_size >= 2)
      << "self-similar distributions need a power-of-two domain";
  SKIMJOIN_CHECK(bias >= 0.5 && bias < 1.0) << "bias must be in [0.5, 1)";
}

uint64_t SelfSimilarDistribution::Sample(Rng* rng) const {
  // Walk the bit levels top-down: at each level choose the biased (lower)
  // half with probability `bias`.
  uint64_t value = 0;
  for (uint64_t level = 0; level < levels_; ++level) {
    value <<= 1;
    if (rng->NextDouble() >= bias_) value |= 1;
  }
  return value;
}

double SelfSimilarDistribution::Probability(uint64_t value) const {
  SKIMJOIN_CHECK_LT(value, domain_size_);
  double p = 1.0;
  for (uint64_t level = 0; level < levels_; ++level) {
    const bool high_bit = (value >> (levels_ - 1 - level)) & 1;
    p *= high_bit ? (1.0 - bias_) : bias_;
  }
  return p;
}

std::vector<StreamElement> SelfSimilarDistribution::GenerateElements(
    uint64_t count, Rng* rng) const {
  std::vector<StreamElement> elements;
  elements.reserve(count);
  for (uint64_t i = 0; i < count; ++i) elements.push_back(Insert(Sample(rng)));
  return elements;
}

FrequencyVector SelfSimilarDistribution::ExpectedFrequencies(
    uint64_t count) const {
  FrequencyVector result(domain_size_);
  std::vector<double> fractional(domain_size_);
  uint64_t assigned = 0;
  for (uint64_t v = 0; v < domain_size_; ++v) {
    const double expected = Probability(v) * static_cast<double>(count);
    const auto base = static_cast<uint64_t>(expected);
    result.Add(v, static_cast<int64_t>(base));
    assigned += base;
    fractional[v] = expected - static_cast<double>(base);
  }
  SKIMJOIN_CHECK_LE(assigned, count);
  uint64_t leftover = count - assigned;
  if (leftover > 0) {
    std::vector<uint64_t> order(domain_size_);
    std::iota(order.begin(), order.end(), 0);
    const uint64_t take = std::min<uint64_t>(leftover, domain_size_);
    std::partial_sort(
        order.begin(), order.begin() + take, order.end(),
        [&](uint64_t a, uint64_t b) { return fractional[a] > fractional[b]; });
    for (uint64_t i = 0; i < leftover; ++i) {
      result.Add(order[i % domain_size_], 1);
    }
  }
  SKIMJOIN_CHECK_EQ(result.TotalCount(), static_cast<int64_t>(count));
  return result;
}

}  // namespace stream
}  // namespace skimjoin
