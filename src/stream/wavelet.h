// One-pass Haar wavelet synopses (Gilbert–Kotidis–Muthukrishnan–Strauss,
// VLDB '01 — citation [11] of the paper): maintain the Haar decomposition
// of the frequency vector under point updates, keep the B largest
// coefficients, and reconstruct approximate point values and range sums.
//
// A point update (v, w) touches exactly log2(m) + 1 coefficients (the
// average plus one detail per level along v's root-to-leaf path), so
// maintenance is logarithmic like every other synopsis here, and the
// structure is linear: deletions are exact negations. Coefficients are
// stored sparsely (only the touched ones), so space is bounded by the
// stream's path footprint until CompressTo(B) thresholds it down to a
// B-term synopsis.

#ifndef SKIMJOIN_STREAM_WAVELET_H_
#define SKIMJOIN_STREAM_WAVELET_H_

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <utility>
#include <vector>

#include "util/status.h"

namespace skimjoin {
namespace stream {

/// Sparse Haar wavelet synopsis of a frequency vector over [0, m), m a
/// power of two.
class WaveletSynopsis {
 public:
  /// INVALID_ARGUMENT unless domain_size is a power of two >= 2.
  static StatusOr<WaveletSynopsis> Create(uint64_t domain_size);

  /// Applies one point update: O(log m) coefficient adjustments.
  /// Pre-condition: value < domain_size.
  void Update(uint64_t value, int64_t weight);

  /// Reconstructed frequency of `value` from the retained coefficients.
  /// Exact while no compression has dropped coefficients on v's path.
  double PointEstimate(uint64_t value) const;

  /// Reconstructed sum of frequencies over [lo, hi] (inclusive) — the
  /// classic wavelet range-aggregate. Exact before compression.
  /// INVALID_ARGUMENT / OUT_OF_RANGE on bad ranges.
  StatusOr<double> RangeSum(uint64_t lo, uint64_t hi) const;

  /// Keeps only the `budget` largest-magnitude NORMALIZED coefficients
  /// (Haar normalization c/sqrt(support) — the choice that minimizes the L2
  /// reconstruction error for a given budget) and drops the rest.
  void CompressTo(uint64_t budget);

  /// Retained coefficients, as (index, raw value) pairs, largest
  /// normalized magnitude first. Index 0 is the overall average
  /// coefficient; index i >= 1 is the standard Haar detail numbering.
  std::vector<std::pair<uint64_t, double>> TopCoefficients(
      uint64_t budget) const;

  /// Non-zero coefficients currently stored.
  uint64_t CoefficientCount() const { return coefficients_.size(); }

  uint64_t domain_size() const { return domain_size_; }

  /// Total footprint in bytes: object plus the sparse coefficient map
  /// (each tree node costed at its payload plus pointer overhead). Feeds
  /// the per-synopsis memory gauges.
  uint64_t MemoryBytes() const;

  /// Writes a self-describing text record (domain size, coefficients).
  Status SerializeTo(std::ostream& out) const;

  /// Reads a record written by SerializeTo. INVALID_ARGUMENT on a malformed
  /// or truncated record.
  static StatusOr<WaveletSynopsis> DeserializeFrom(std::istream& in);

 private:
  explicit WaveletSynopsis(uint64_t domain_size);

  /// Normalization factor sqrt(support size) for coefficient `index`.
  double NormalizationOf(uint64_t index) const;

  /// Adds `delta` to coefficient `index`, erasing it when it reaches zero.
  void Adjust(uint64_t index, double delta);

  double Coefficient(uint64_t index) const {
    const auto it = coefficients_.find(index);
    return it == coefficients_.end() ? 0.0 : it->second;
  }

  uint64_t domain_size_;
  uint64_t levels_;  // log2(domain_size)
  // Sparse coefficient store: index 0 = average; detail coefficient for
  // node j (1-based heap numbering) at key j. Ordered map so RangeSum
  // accumulates coefficients in a deterministic order — floating-point
  // addition does not commute across orders, and checkpoint restore
  // promises bit-identical answers.
  std::map<uint64_t, double> coefficients_;
};

}  // namespace stream
}  // namespace skimjoin

#endif  // SKIMJOIN_STREAM_WAVELET_H_
