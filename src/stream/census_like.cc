#include "stream/census_like.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace skimjoin {
namespace stream {

namespace {

// Box–Muller standard normal from two uniforms. Deterministic given the rng.
double SampleStandardNormal(Rng* rng) {
  double u1 = rng->NextDouble();
  if (u1 <= 0.0) u1 = 1e-12;
  const double u2 = rng->NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
}

}  // namespace

CensusLikeGenerator::CensusLikeGenerator(const Options& options, uint64_t seed)
    : options_(options),
      wage_rng_(Rng(seed).Fork(1)),
      overtime_rng_(Rng(seed).Fork(2)) {
  SKIMJOIN_CHECK_GE(options.domain_size, 256u);
  SKIMJOIN_CHECK_GE(options.num_records, 1u);
  SKIMJOIN_CHECK(options.zero_spike >= 0.0 && options.zero_spike <= 1.0);
  SKIMJOIN_CHECK_GT(options.log_sigma, 0.0);
}

uint64_t CensusLikeGenerator::SampleWage(Rng* rng) {
  const double x =
      std::exp(options_.log_mean + options_.log_sigma * SampleStandardNormal(rng));
  auto wage = static_cast<uint64_t>(std::min(
      x, static_cast<double>(options_.domain_size - 1)));
  // Round-number clustering: with probability 0.4 snap to a multiple of 50,
  // with probability 0.2 to a multiple of 10 — CPS wage reports cluster the
  // same way.
  const double u = rng->NextDouble();
  if (u < 0.4) {
    wage = (wage / 50) * 50;
  } else if (u < 0.6) {
    wage = (wage / 10) * 10;
  }
  return std::min<uint64_t>(wage, options_.domain_size - 1);
}

std::vector<StreamElement> CensusLikeGenerator::GenerateWageStream() {
  std::vector<StreamElement> elements;
  elements.reserve(options_.num_records);
  for (uint64_t i = 0; i < options_.num_records; ++i) {
    elements.push_back(Insert(SampleWage(&wage_rng_)));
  }
  return elements;
}

std::vector<StreamElement> CensusLikeGenerator::GenerateOvertimeStream() {
  std::vector<StreamElement> elements;
  elements.reserve(options_.num_records);
  for (uint64_t i = 0; i < options_.num_records; ++i) {
    if (overtime_rng_.NextDouble() < options_.zero_spike) {
      elements.push_back(Insert(0));
      continue;
    }
    // Overtime pay is a fraction of a wage-like draw; this keeps the two
    // attributes' supports overlapping at the low end like the CPS columns.
    const uint64_t base = SampleWage(&overtime_rng_);
    elements.push_back(Insert(base / 4));
  }
  return elements;
}

}  // namespace stream
}  // namespace skimjoin
