#include "stream/exact.h"

namespace skimjoin {
namespace stream {

FrequencyVector Materialize(const std::vector<StreamElement>& elements,
                            uint64_t domain_size) {
  FrequencyVector result(domain_size);
  for (const StreamElement& e : elements) result.Apply(e);
  return result;
}

int64_t ExactJoinSize(const std::vector<StreamElement>& f,
                      const std::vector<StreamElement>& g,
                      uint64_t domain_size) {
  return JoinSize(Materialize(f, domain_size), Materialize(g, domain_size));
}

int64_t ExactSelfJoinSize(const std::vector<StreamElement>& f,
                          uint64_t domain_size) {
  return Materialize(f, domain_size).SelfJoinSize();
}

int64_t ExactSumJoin(const std::vector<StreamElement>& f_weighted,
                     const std::vector<StreamElement>& g,
                     uint64_t domain_size) {
  return JoinSize(Materialize(f_weighted, domain_size),
                  Materialize(g, domain_size));
}

}  // namespace stream
}  // namespace skimjoin
