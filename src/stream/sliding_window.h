// Sliding-window stream adapter.
//
// The paper's synopses handle general updates, which makes sliding-window
// semantics (cited in §1 via Datar et al.) a pure adapter concern: re-emit
// each arrival as an insert and, once the window is full, re-emit the
// expired arrival as a delete. Any linear synopsis downstream then
// summarizes exactly the last W elements — no specialized windowed sketch
// needed. The adapter buffers the window contents (the elements themselves,
// not a synopsis), so it is for moderate window sizes; its purpose is to
// turn window semantics into the insert/delete stream model of §2.1.

#ifndef SKIMJOIN_STREAM_SLIDING_WINDOW_H_
#define SKIMJOIN_STREAM_SLIDING_WINDOW_H_

#include <cstdint>
#include <deque>
#include <utility>

#include "stream/stream_element.h"
#include "util/logging.h"
#include "util/status.h"

namespace skimjoin {
namespace stream {

/// Count-based sliding window over a stream of values: the downstream sink
/// always reflects exactly the most recent `capacity` arrivals.
class SlidingWindow {
 public:
  /// Window of the last `capacity` arrivals. INVALID_ARGUMENT if
  /// capacity == 0.
  static StatusOr<SlidingWindow> Create(uint64_t capacity);

  /// Processes one arrival: forwards Insert(value) to `sink`, and if this
  /// push evicts the oldest arrival, forwards Delete(evicted) too. `sink`
  /// is any callable taking a StreamElement.
  template <typename Sink>
  void Push(uint64_t value, Sink&& sink) {
    window_.push_back(value);
    sink(Insert(value));
    if (window_.size() > capacity_) {
      const uint64_t evicted = window_.front();
      window_.pop_front();
      sink(Delete(evicted));
    }
  }

  /// Number of arrivals currently inside the window.
  uint64_t size() const { return window_.size(); }
  uint64_t capacity() const { return capacity_; }

  /// Oldest arrival still in the window. Pre-condition: size() > 0.
  uint64_t oldest() const {
    SKIMJOIN_CHECK(!window_.empty());
    return window_.front();
  }

 private:
  explicit SlidingWindow(uint64_t capacity) : capacity_(capacity) {}

  uint64_t capacity_;
  std::deque<uint64_t> window_;
};

}  // namespace stream
}  // namespace skimjoin

#endif  // SKIMJOIN_STREAM_SLIDING_WINDOW_H_
