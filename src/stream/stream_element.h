// The stream data-processing model of Section 2.1 of the paper.
//
// A data stream is an unordered sequence of elements with values from the
// domain [0, m). Each element carries a signed weight:
//   * weight = +1  — an insert (the common case),
//   * weight = -1  — a delete (the linear-projection synopses handle these
//     exactly; sampling cannot),
//   * weight = w   — a measure value, which turns a COUNT synopsis into a
//     SUM synopsis (SUM_w(F ⋈ G) is COUNT over the stream with each element
//     repeated w times; see Section 2.1).

#ifndef SKIMJOIN_STREAM_STREAM_ELEMENT_H_
#define SKIMJOIN_STREAM_STREAM_ELEMENT_H_

#include <cstdint>

namespace skimjoin {
namespace stream {

/// One stream arrival: a domain value plus a signed weight.
struct StreamElement {
  uint64_t value = 0;
  int64_t weight = 1;

  friend bool operator==(const StreamElement&, const StreamElement&) = default;
};

/// Convenience factories.
inline StreamElement Insert(uint64_t value) { return {value, 1}; }
inline StreamElement Delete(uint64_t value) { return {value, -1}; }
inline StreamElement Weighted(uint64_t value, int64_t weight) {
  return {value, weight};
}

}  // namespace stream
}  // namespace skimjoin

#endif  // SKIMJOIN_STREAM_STREAM_ELEMENT_H_
