// Synthetic substitute for the Census (Current Population Survey) workload
// of evaluation Section 5.1.
//
// The paper joins two numeric attributes of the September-2002 CPS extract —
// "weekly wage" and "weekly wage overtime" — 159,434 records over a shared
// integer domain. The raw CPS file is not redistributable here, so this
// generator reproduces the *shape* that drives the experiment (see
// DESIGN.md, "Substitutions"):
//   * a large point mass at 0 (most respondents report no overtime pay),
//   * spiky modes at round amounts (weekly wages cluster at round numbers),
//   * a heavy-tailed log-normal-ish body,
//   * overlapping supports so the join is non-trivial.

#ifndef SKIMJOIN_STREAM_CENSUS_LIKE_H_
#define SKIMJOIN_STREAM_CENSUS_LIKE_H_

#include <cstdint>
#include <vector>

#include "stream/frequency_vector.h"
#include "stream/stream_element.h"
#include "util/random.h"

namespace skimjoin {
namespace stream {

/// Paired generator for the two census-like attribute streams.
class CensusLikeGenerator {
 public:
  struct Options {
    /// Domain of both attributes (the CPS wage attributes are bucketed
    /// integers; 2^16 keeps the exact reference cheap).
    uint64_t domain_size = 1u << 16;
    /// Records per "month of survey data" (the paper uses 159,434).
    uint64_t num_records = 159434;
    /// Fraction of overtime values that are exactly zero.
    double zero_spike = 0.55;
    /// Log-normal body parameters (natural-log scale) for the wage stream.
    double log_mean = 6.3;
    double log_sigma = 0.7;
  };

  /// Pre-conditions: domain_size >= 256, num_records >= 1,
  /// 0 <= zero_spike <= 1, log_sigma > 0.
  CensusLikeGenerator(const Options& options, uint64_t seed);

  /// The "weekly wage" stream: one insert per record.
  std::vector<StreamElement> GenerateWageStream();

  /// The "weekly wage overtime" stream: zero spike + scaled-down wage body.
  std::vector<StreamElement> GenerateOvertimeStream();

  const Options& options() const { return options_; }

 private:
  /// Draws one wage-like value: log-normal body snapped to a round multiple
  /// with some probability, clamped into the domain.
  uint64_t SampleWage(Rng* rng);

  Options options_;
  Rng wage_rng_;
  Rng overtime_rng_;
};

}  // namespace stream
}  // namespace skimjoin

#endif  // SKIMJOIN_STREAM_CENSUS_LIKE_H_
