#include "stream/zipf.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace skimjoin {
namespace stream {

ZipfDistribution::ZipfDistribution(uint64_t domain_size, double z,
                                   uint64_t shift)
    : domain_size_(domain_size), z_(z), shift_(shift) {
  SKIMJOIN_CHECK_GE(domain_size, 1u);
  SKIMJOIN_CHECK_GE(z, 0.0);
  SKIMJOIN_CHECK_LT(shift, domain_size);
  const uint64_t support = domain_size - shift;
  cdf_.resize(support);
  double total = 0.0;
  for (uint64_t i = 0; i < support; ++i) {
    total += std::pow(static_cast<double>(i + 1), -z);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding drift
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const uint64_t rank = static_cast<uint64_t>(it - cdf_.begin());
  return rank + shift_;
}

std::vector<StreamElement> ZipfDistribution::GenerateElements(
    uint64_t count, Rng* rng) const {
  std::vector<StreamElement> elements;
  elements.reserve(count);
  for (uint64_t i = 0; i < count; ++i) elements.push_back(Insert(Sample(rng)));
  return elements;
}

FrequencyVector ZipfDistribution::ExpectedFrequencies(uint64_t count) const {
  FrequencyVector result(domain_size_);
  const uint64_t support = domain_size_ - shift_;
  // Largest-remainder rounding: floor every expectation, then hand the
  // leftover units to the values with the biggest fractional parts.
  std::vector<double> fractional(support);
  uint64_t assigned = 0;
  double prev = 0.0;
  for (uint64_t i = 0; i < support; ++i) {
    const double expected = (cdf_[i] - prev) * static_cast<double>(count);
    prev = cdf_[i];
    const auto base = static_cast<uint64_t>(expected);
    result.Add(i + shift_, static_cast<int64_t>(base));
    assigned += base;
    fractional[i] = expected - static_cast<double>(base);
  }
  SKIMJOIN_CHECK_LE(assigned, count);
  uint64_t leftover = count - assigned;
  if (leftover > 0) {
    std::vector<uint64_t> order(support);
    std::iota(order.begin(), order.end(), 0);
    const uint64_t take = std::min<uint64_t>(leftover, support);
    std::partial_sort(order.begin(), order.begin() + take, order.end(),
                      [&](uint64_t a, uint64_t b) {
                        return fractional[a] > fractional[b];
                      });
    // `leftover` can exceed the support only in degenerate tiny domains;
    // spread round-robin in that case.
    for (uint64_t i = 0; i < leftover; ++i) {
      result.Add(order[i % support] + shift_, 1);
    }
  }
  SKIMJOIN_CHECK_EQ(result.TotalCount(), static_cast<int64_t>(count));
  return result;
}

}  // namespace stream
}  // namespace skimjoin
