#include "stream/gk_quantiles.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "util/logging.h"

namespace skimjoin {
namespace stream {

GkQuantileSummary::GkQuantileSummary(double epsilon) : epsilon_(epsilon) {}

StatusOr<GkQuantileSummary> GkQuantileSummary::Create(double epsilon) {
  if (!(epsilon > 0.0 && epsilon <= 0.5)) {
    return InvalidArgumentError("GK epsilon must be in (0, 0.5]");
  }
  return GkQuantileSummary(epsilon);
}

void GkQuantileSummary::Insert(uint64_t value) {
  ++count_;
  const auto band =
      static_cast<int64_t>(std::floor(2.0 * epsilon_ *
                                      static_cast<double>(count_)));
  // Position: first tuple with a strictly larger value.
  const auto it = std::upper_bound(
      tuples_.begin(), tuples_.end(), value,
      [](uint64_t v, const Tuple& t) { return v < t.value; });
  Tuple inserted{value, 1, 0};
  if (it != tuples_.begin() && it != tuples_.end()) {
    // Interior insert: inherits the maximum allowed uncertainty.
    inserted.delta = std::max<int64_t>(band - 1, 0);
  }
  tuples_.insert(it, inserted);

  // Compress periodically (every ~1/(2ε) inserts keeps amortized cost low).
  const auto period =
      std::max<int64_t>(1, static_cast<int64_t>(1.0 / (2.0 * epsilon_)));
  if (count_ % period == 0) Compress();
}

void GkQuantileSummary::Compress() {
  if (tuples_.size() < 3) return;
  const auto band = static_cast<int64_t>(
      std::floor(2.0 * epsilon_ * static_cast<double>(count_)));
  std::vector<Tuple> compressed;
  compressed.reserve(tuples_.size());
  compressed.push_back(tuples_.front());
  // Sweep left to right, folding each tuple into its successor when the
  // combined uncertainty stays within the band. The first and last tuples
  // (stream extremes) are always kept.
  for (size_t i = 1; i + 1 < tuples_.size(); ++i) {
    const Tuple& current = tuples_[i];
    const Tuple& next = tuples_[i + 1];
    if (current.g + next.g + next.delta <= band) {
      // Merge `current` into `next` (the fold accumulates in tuples_ so
      // later merges see the combined g).
      tuples_[i + 1].g += current.g;
    } else {
      compressed.push_back(current);
    }
  }
  compressed.push_back(tuples_.back());
  tuples_ = std::move(compressed);
}

Status GkQuantileSummary::SerializeTo(std::ostream& out) const {
  const auto saved_precision = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "skimjoin.gk_quantiles v1\n"
      << epsilon_ << ' ' << count_ << ' ' << tuples_.size() << '\n';
  out.precision(saved_precision);
  for (const Tuple& tuple : tuples_) {
    out << tuple.value << ' ' << tuple.g << ' ' << tuple.delta << '\n';
  }
  out << "end\n";
  if (!out) return IoError("GK-quantile serialization failed");
  return OkStatus();
}

StatusOr<GkQuantileSummary> GkQuantileSummary::DeserializeFrom(
    std::istream& in) {
  std::string tag, version;
  if (!(in >> tag >> version) || tag != "skimjoin.gk_quantiles" ||
      version != "v1") {
    return InvalidArgumentError("not a skimjoin gk-quantiles v1 record");
  }
  double epsilon = 0.0;
  int64_t count = 0;
  uint64_t tuple_count = 0;
  if (!(in >> epsilon >> count >> tuple_count)) {
    return InvalidArgumentError("malformed gk-quantiles header");
  }
  StatusOr<GkQuantileSummary> summary = GkQuantileSummary::Create(epsilon);
  SKIMJOIN_RETURN_IF_ERROR(summary.status());
  // Each insert adds at most one tuple and compression only removes, so a
  // valid record never holds more tuples than observations — this bound
  // caps the read before any allocation.
  if (count < 0 || tuple_count > static_cast<uint64_t>(count)) {
    return InvalidArgumentError("gk-quantiles record has a bad tuple count");
  }
  summary->count_ = count;
  summary->tuples_.reserve(tuple_count);
  uint64_t previous_value = 0;
  for (uint64_t i = 0; i < tuple_count; ++i) {
    Tuple tuple{};
    if (!(in >> tuple.value >> tuple.g >> tuple.delta)) {
      return InvalidArgumentError("truncated gk-quantiles tuple block");
    }
    if (i > 0 && tuple.value < previous_value) {
      return InvalidArgumentError("gk-quantiles tuples out of order");
    }
    if (tuple.g < 0 || tuple.delta < 0) {
      return InvalidArgumentError("gk-quantiles tuple has negative ranks");
    }
    previous_value = tuple.value;
    summary->tuples_.push_back(tuple);
  }
  std::string sentinel;
  if (!(in >> sentinel) || sentinel != "end") {
    return InvalidArgumentError(
        "gk-quantiles record missing its end sentinel");
  }
  return summary;
}

StatusOr<uint64_t> GkQuantileSummary::Quantile(double phi) const {
  if (!(phi > 0.0 && phi <= 1.0)) {
    return InvalidArgumentError("phi must be in (0, 1]");
  }
  if (tuples_.empty()) {
    return FailedPreconditionError("quantile of an empty summary");
  }
  const auto rank = static_cast<int64_t>(
      std::ceil(phi * static_cast<double>(count_)));
  const auto slack = static_cast<int64_t>(
      std::ceil(epsilon_ * static_cast<double>(count_)));
  int64_t min_rank = 0;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    min_rank += tuples_[i].g;
    const int64_t max_rank = min_rank + tuples_[i].delta;
    if (max_rank >= rank + slack) {
      return tuples_[i > 0 ? i - 1 : 0].value;
    }
  }
  return tuples_.back().value;
}

uint64_t GkQuantileSummary::MemoryBytes() const {
  return sizeof(*this) + tuples_.capacity() * sizeof(Tuple);
}

}  // namespace stream
}  // namespace skimjoin
