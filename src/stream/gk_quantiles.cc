#include "stream/gk_quantiles.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace skimjoin {
namespace stream {

GkQuantileSummary::GkQuantileSummary(double epsilon) : epsilon_(epsilon) {}

StatusOr<GkQuantileSummary> GkQuantileSummary::Create(double epsilon) {
  if (!(epsilon > 0.0 && epsilon <= 0.5)) {
    return InvalidArgumentError("GK epsilon must be in (0, 0.5]");
  }
  return GkQuantileSummary(epsilon);
}

void GkQuantileSummary::Insert(uint64_t value) {
  ++count_;
  const auto band =
      static_cast<int64_t>(std::floor(2.0 * epsilon_ *
                                      static_cast<double>(count_)));
  // Position: first tuple with a strictly larger value.
  const auto it = std::upper_bound(
      tuples_.begin(), tuples_.end(), value,
      [](uint64_t v, const Tuple& t) { return v < t.value; });
  Tuple inserted{value, 1, 0};
  if (it != tuples_.begin() && it != tuples_.end()) {
    // Interior insert: inherits the maximum allowed uncertainty.
    inserted.delta = std::max<int64_t>(band - 1, 0);
  }
  tuples_.insert(it, inserted);

  // Compress periodically (every ~1/(2ε) inserts keeps amortized cost low).
  const auto period =
      std::max<int64_t>(1, static_cast<int64_t>(1.0 / (2.0 * epsilon_)));
  if (count_ % period == 0) Compress();
}

void GkQuantileSummary::Compress() {
  if (tuples_.size() < 3) return;
  const auto band = static_cast<int64_t>(
      std::floor(2.0 * epsilon_ * static_cast<double>(count_)));
  std::vector<Tuple> compressed;
  compressed.reserve(tuples_.size());
  compressed.push_back(tuples_.front());
  // Sweep left to right, folding each tuple into its successor when the
  // combined uncertainty stays within the band. The first and last tuples
  // (stream extremes) are always kept.
  for (size_t i = 1; i + 1 < tuples_.size(); ++i) {
    const Tuple& current = tuples_[i];
    const Tuple& next = tuples_[i + 1];
    if (current.g + next.g + next.delta <= band) {
      // Merge `current` into `next` (the fold accumulates in tuples_ so
      // later merges see the combined g).
      tuples_[i + 1].g += current.g;
    } else {
      compressed.push_back(current);
    }
  }
  compressed.push_back(tuples_.back());
  tuples_ = std::move(compressed);
}

StatusOr<uint64_t> GkQuantileSummary::Quantile(double phi) const {
  if (!(phi > 0.0 && phi <= 1.0)) {
    return InvalidArgumentError("phi must be in (0, 1]");
  }
  if (tuples_.empty()) {
    return FailedPreconditionError("quantile of an empty summary");
  }
  const auto rank = static_cast<int64_t>(
      std::ceil(phi * static_cast<double>(count_)));
  const auto slack = static_cast<int64_t>(
      std::ceil(epsilon_ * static_cast<double>(count_)));
  int64_t min_rank = 0;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    min_rank += tuples_[i].g;
    const int64_t max_rank = min_rank + tuples_[i].delta;
    if (max_rank >= rank + slack) {
      return tuples_[i > 0 ? i - 1 : 0].value;
    }
  }
  return tuples_.back().value;
}

}  // namespace stream
}  // namespace skimjoin
