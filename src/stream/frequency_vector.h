// Dense frequency vectors over a bounded domain [0, m).
//
// The frequency vector f of a stream F has f_v = (sum of weights of elements
// with value v). It is both the reference object for exact answers in tests
// and benchmarks, and the representation SKIMDENSE uses for the extracted
// dense frequencies (stored sparsely there; see core/skim.h).

#ifndef SKIMJOIN_STREAM_FREQUENCY_VECTOR_H_
#define SKIMJOIN_STREAM_FREQUENCY_VECTOR_H_

#include <cstdint>
#include <vector>

#include "stream/stream_element.h"

namespace skimjoin {
namespace stream {

/// Exact per-value frequencies of a stream over domain [0, domain_size).
class FrequencyVector {
 public:
  /// Zero vector over [0, domain_size). Pre-condition: domain_size >= 1.
  explicit FrequencyVector(uint64_t domain_size);

  /// Applies one stream element. Pre-condition: element.value < domain size.
  void Apply(const StreamElement& element) {
    Add(element.value, element.weight);
  }

  /// Adds `weight` to the frequency of `value`.
  /// Pre-condition: value < domain size.
  void Add(uint64_t value, int64_t weight);

  /// Frequency of `value`. Pre-condition: value < domain size.
  int64_t Get(uint64_t value) const;

  uint64_t domain_size() const { return counts_.size(); }

  /// Sum of frequencies (the stream's net element count n).
  int64_t TotalCount() const;

  /// Number of values with non-zero frequency.
  uint64_t SupportSize() const;

  /// Second frequency moment F2 = sum_v f_v^2 (the self-join size of §2.2).
  /// Computed in unsigned 128-bit internally; pre-condition: the result fits
  /// in int64_t (true for every workload in this repository).
  int64_t SelfJoinSize() const;

  /// Raw access for exact reference computations.
  const std::vector<int64_t>& counts() const { return counts_; }

  /// component-wise this -= other. Pre-condition: same domain size.
  void Subtract(const FrequencyVector& other);

 private:
  std::vector<int64_t> counts_;
};

/// Exact join size |F ⋈ G| = sum_v f_v * g_v (binary-join COUNT, §2.1).
/// Pre-condition: equal domain sizes; result fits in int64_t.
int64_t JoinSize(const FrequencyVector& f, const FrequencyVector& g);

}  // namespace stream
}  // namespace skimjoin

#endif  // SKIMJOIN_STREAM_FREQUENCY_VECTOR_H_
