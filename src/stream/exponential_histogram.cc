#include "stream/exponential_histogram.h"

#include <cmath>

#include "util/logging.h"

namespace skimjoin {
namespace stream {

ExponentialHistogram::ExponentialHistogram(uint64_t window, double epsilon,
                                           uint64_t max_per_size)
    : window_(window), epsilon_(epsilon), max_per_size_(max_per_size) {}

StatusOr<ExponentialHistogram> ExponentialHistogram::Create(uint64_t window,
                                                            double epsilon) {
  if (window < 1) {
    return InvalidArgumentError("window must be >= 1");
  }
  if (!(epsilon > 0.0 && epsilon <= 1.0)) {
    return InvalidArgumentError("epsilon must be in (0, 1]");
  }
  const auto k = static_cast<uint64_t>(std::ceil(1.0 / epsilon));
  return ExponentialHistogram(window, epsilon, k / 2 + 2);
}

void ExponentialHistogram::Arrive(bool one) {
  ++clock_;
  ExpireOldBuckets();
  if (!one) return;
  buckets_.push_front(Bucket{clock_, 1});
  total_size_ += 1;
  MergeOverflowingBuckets();
}

void ExponentialHistogram::ExpireOldBuckets() {
  while (!buckets_.empty() &&
         buckets_.back().timestamp + window_ <= clock_) {
    total_size_ -= buckets_.back().size;
    buckets_.pop_back();
  }
}

void ExponentialHistogram::MergeOverflowingBuckets() {
  // Scan from the newest end: whenever more than max_per_size_ buckets of
  // one size exist, merge the two OLDEST of that size into one of double
  // size (keeping the newer timestamp of the pair, per DGIM).
  size_t run_start = 0;
  while (run_start < buckets_.size()) {
    const int64_t size = buckets_[run_start].size;
    size_t run_end = run_start;
    while (run_end < buckets_.size() && buckets_[run_end].size == size) {
      ++run_end;
    }
    const size_t run_length = run_end - run_start;
    if (run_length <= max_per_size_) {
      run_start = run_end;
      continue;
    }
    // Merge the two oldest of this size (positions run_end-2 and
    // run_end-1); the merged bucket keeps the newer timestamp.
    const Bucket merged{buckets_[run_end - 2].timestamp, size * 2};
    buckets_.erase(buckets_.begin() + static_cast<ptrdiff_t>(run_end - 2),
                   buckets_.begin() + static_cast<ptrdiff_t>(run_end));
    buckets_.insert(buckets_.begin() + static_cast<ptrdiff_t>(run_end - 2),
                    merged);
    // The merged bucket may overflow the next size class: continue the scan
    // at this position without advancing.
  }
}

int64_t ExponentialHistogram::LowerBound() const {
  if (buckets_.empty()) return 0;
  // Of the oldest bucket only its most recent 1 is certainly in-window.
  return total_size_ - buckets_.back().size + 1;
}

int64_t ExponentialHistogram::Estimate() const {
  if (buckets_.empty()) return 0;
  return total_size_ - buckets_.back().size / 2;
}

}  // namespace stream
}  // namespace skimjoin
