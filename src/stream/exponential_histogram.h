// Exponential histograms for BasicCounting over sliding windows
// [Datar–Gionis–Indyk–Motwani, SODA '02] — citation [12] of the paper.
//
// Counts the number of 1s among the last `window` arrivals of a 0/1 stream
// using O((1/ε)·log²W) space, with relative error at most ε: buckets of
// exponentially growing sizes carry the timestamp of their most recent 1;
// when more than ⌈1/ε⌉/2 + 2 buckets of one size exist, the two oldest
// merge; buckets whose timestamp leaves the window expire. Only the oldest
// bucket's contribution is uncertain, giving the error bound.
//
// Complements stream/sliding_window.h: the adapter there buffers the window
// contents exactly; this summary answers windowed counts without buffering.

#ifndef SKIMJOIN_STREAM_EXPONENTIAL_HISTOGRAM_H_
#define SKIMJOIN_STREAM_EXPONENTIAL_HISTOGRAM_H_

#include <cstdint>
#include <deque>

#include "util/status.h"

namespace skimjoin {
namespace stream {

/// Approximate count of 1s in the last `window` arrivals.
class ExponentialHistogram {
 public:
  /// `window` >= 1 arrivals; `epsilon` in (0, 1] bounds the relative error.
  static StatusOr<ExponentialHistogram> Create(uint64_t window,
                                               double epsilon);

  /// Processes one arrival (a 1-bit when `one`, else a 0-bit). Every call
  /// advances the window clock by one position.
  void Arrive(bool one);

  /// Estimated number of 1s among the last `window` arrivals: the sum of
  /// live bucket sizes minus half the oldest bucket (its expired share is
  /// unknown).
  int64_t Estimate() const;

  /// Exact upper/lower bounds implied by the buckets (Estimate() is their
  /// midpoint, rounded down).
  int64_t UpperBound() const { return total_size_; }
  int64_t LowerBound() const;

  /// Live buckets currently held (space accounting; O((1/ε)·log W)).
  uint64_t num_buckets() const { return buckets_.size(); }

  uint64_t window() const { return window_; }
  double epsilon() const { return epsilon_; }

 private:
  struct Bucket {
    uint64_t timestamp;  // arrival index of the most recent 1 it covers
    int64_t size;        // number of 1s covered (a power of two)
  };

  ExponentialHistogram(uint64_t window, double epsilon, uint64_t max_per_size);

  void ExpireOldBuckets();
  void MergeOverflowingBuckets();

  uint64_t window_;
  double epsilon_;
  uint64_t max_per_size_;  // ⌈1/ε⌉/2 + 2, the DGIM bucket-count cap
  uint64_t clock_ = 0;     // arrivals processed
  std::deque<Bucket> buckets_;  // newest at front, sizes non-decreasing back
  int64_t total_size_ = 0;
};

}  // namespace stream
}  // namespace skimjoin

#endif  // SKIMJOIN_STREAM_EXPONENTIAL_HISTOGRAM_H_
