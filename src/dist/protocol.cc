#include "dist/protocol.h"

#include <cctype>
#include <charconv>
#include <cstring>
#include <sstream>
#include <utility>

#include "util/histogram.h"

namespace skimjoin {
namespace dist {

namespace {

// Doubles cross the wire as their IEEE-754 bit pattern (decimal u64), not
// decimal text: the estimator knobs seed hash-family construction on both
// ends, so a single ULP of round-trip drift would break the bit-identity
// contract between coordinator accumulator and worker synopses.
uint64_t DoubleBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Status Malformed(const char* what) {
  return InvalidArgumentError(std::string("malformed ") + what + " payload");
}

// Reads one whitespace-delimited token as the requested type; false on
// exhaustion or a non-numeric token.
bool ReadToken(std::istringstream& in, uint64_t* out) {
  return static_cast<bool>(in >> *out);
}
bool ReadToken(std::istringstream& in, int64_t* out) {
  return static_cast<bool>(in >> *out);
}
bool ReadToken(std::istringstream& in, uint32_t* out) {
  return static_cast<bool>(in >> *out);
}
bool ReadToken(std::istringstream& in, std::string* out) {
  return static_cast<bool>(in >> *out);
}

// A payload is fully consumed when only trailing whitespace remains;
// anything else is a framing bug or tampering.
Status ExpectExhausted(std::istringstream& in, const char* what) {
  std::string extra;
  if (in >> extra) {
    return InvalidArgumentError(std::string(what) +
                                " payload has trailing tokens");
  }
  return OkStatus();
}

// Telemetry payloads carry free text (metric names with label blocks,
// event names, field values), which whitespace tokenization can't frame.
// They use a cursor grammar instead: decimal integers separated by single
// spaces, and strings as length-prefixed blobs `<len>:<bytes>` whose bytes
// are taken raw. The declared blob length is checked against the bytes
// actually remaining BEFORE any copy, so a lying length can't over-read or
// over-allocate; the same bound makes every element-count cap of the form
// `count <= remaining bytes` airtight.
class WireCursor {
 public:
  explicit WireCursor(std::string_view data) : rest_(data) {}

  bool U64(uint64_t* out) {
    SkipSpace();
    const auto [ptr, ec] =
        std::from_chars(rest_.data(), rest_.data() + rest_.size(), *out);
    if (ec != std::errc()) return false;
    rest_.remove_prefix(static_cast<size_t>(ptr - rest_.data()));
    return true;
  }

  bool I64(int64_t* out) {
    SkipSpace();
    const auto [ptr, ec] =
        std::from_chars(rest_.data(), rest_.data() + rest_.size(), *out);
    if (ec != std::errc()) return false;
    rest_.remove_prefix(static_cast<size_t>(ptr - rest_.data()));
    return true;
  }

  bool Blob(std::string* out) {
    uint64_t len = 0;
    if (!U64(&len)) return false;
    if (rest_.empty() || rest_.front() != ':') return false;
    rest_.remove_prefix(1);
    if (len > rest_.size()) return false;  // caps allocation at what arrived
    out->assign(rest_.substr(0, len));
    rest_.remove_prefix(len);
    return true;
  }

  /// Remaining un-parsed bytes — the bound for declared element counts.
  size_t remaining() const { return rest_.size(); }

  bool AtEnd() {
    SkipSpace();
    return rest_.empty();
  }

 private:
  void SkipSpace() {
    while (!rest_.empty() &&
           std::isspace(static_cast<unsigned char>(rest_.front())) != 0) {
      rest_.remove_prefix(1);
    }
  }

  std::string_view rest_;
};

void AppendBlob(std::ostringstream& out, std::string_view bytes) {
  out << bytes.size() << ':' << bytes;
}

}  // namespace

Status ValidateWireName(std::string_view name, const char* what) {
  if (name.empty() || name.size() > 256) {
    return InvalidArgumentError(std::string(what) +
                                " must be 1..256 bytes long");
  }
  for (const char c : name) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      return InvalidArgumentError(std::string(what) +
                                  " must not contain whitespace");
    }
  }
  return OkStatus();
}

std::string EncodeHelloReply(const HelloReply& msg) {
  std::ostringstream out;
  out << msg.shard_name << ' ' << msg.incarnation << ' ' << msg.epoch << ' '
      << msg.trace_clock_micros;
  return out.str();
}

StatusOr<HelloReply> DecodeHelloReply(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  HelloReply msg;
  if (!ReadToken(in, &msg.shard_name) || !ReadToken(in, &msg.incarnation) ||
      !ReadToken(in, &msg.epoch)) {
    return Malformed("hello-reply");
  }
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.shard_name, "shard name"));
  // The trace-clock token is optional (absent from a pre-telemetry peer);
  // when present it must be a clean u64.
  std::string clock_token;
  if (ReadToken(in, &clock_token)) {
    const auto [ptr, ec] =
        std::from_chars(clock_token.data(),
                        clock_token.data() + clock_token.size(),
                        msg.trace_clock_micros);
    if (ec != std::errc() || ptr != clock_token.data() + clock_token.size()) {
      return Malformed("hello-reply");
    }
  }
  SKIMJOIN_RETURN_IF_ERROR(ExpectExhausted(in, "hello-reply"));
  return msg;
}

std::string EncodeStreamReg(const StreamReg& msg) {
  std::ostringstream out;
  out << msg.name << ' ' << msg.domain_size;
  return out.str();
}

StatusOr<StreamReg> DecodeStreamReg(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  StreamReg msg;
  if (!ReadToken(in, &msg.name) || !ReadToken(in, &msg.domain_size)) {
    return Malformed("stream-registration");
  }
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.name, "stream name"));
  SKIMJOIN_RETURN_IF_ERROR(ExpectExhausted(in, "stream-registration"));
  return msg;
}

std::string EncodeJoinQueryReg(const JoinQueryReg& msg) {
  std::ostringstream out;
  out << msg.query_name << ' ' << msg.left_stream << ' ' << msg.right_stream
      << ' ' << (msg.self_join ? 1 : 0) << ' ' << msg.kind << ' '
      << msg.space_counters << ' ' << msg.num_tables << ' '
      << msg.agms_num_medians << ' ' << DoubleBits(msg.threshold_scale) << ' '
      << DoubleBits(msg.recurse_slack) << ' ' << DoubleBits(msg.skim_margin)
      << ' ' << (msg.skimmed_use_dyadic ? 1 : 0) << ' ' << msg.seed;
  return out.str();
}

StatusOr<JoinQueryReg> DecodeJoinQueryReg(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  JoinQueryReg msg;
  uint64_t self_join = 0, use_dyadic = 0;
  uint64_t scale_bits = 0, slack_bits = 0, margin_bits = 0;
  if (!ReadToken(in, &msg.query_name) || !ReadToken(in, &msg.left_stream) ||
      !ReadToken(in, &msg.right_stream) || !ReadToken(in, &self_join) ||
      !ReadToken(in, &msg.kind) || !ReadToken(in, &msg.space_counters) ||
      !ReadToken(in, &msg.num_tables) ||
      !ReadToken(in, &msg.agms_num_medians) || !ReadToken(in, &scale_bits) ||
      !ReadToken(in, &slack_bits) || !ReadToken(in, &margin_bits) ||
      !ReadToken(in, &use_dyadic) || !ReadToken(in, &msg.seed)) {
    return Malformed("join-query-registration");
  }
  if (self_join > 1 || use_dyadic > 1) {
    return Malformed("join-query-registration");
  }
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.query_name, "query name"));
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.left_stream, "stream name"));
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.right_stream, "stream name"));
  SKIMJOIN_RETURN_IF_ERROR(ExpectExhausted(in, "join-query-registration"));
  msg.self_join = self_join == 1;
  msg.skimmed_use_dyadic = use_dyadic == 1;
  msg.threshold_scale = DoubleFromBits(scale_bits);
  msg.recurse_slack = DoubleFromBits(slack_bits);
  msg.skim_margin = DoubleFromBits(margin_bits);
  return msg;
}

std::string EncodeFrequencyQueryReg(const FrequencyQueryReg& msg) {
  std::ostringstream out;
  out << msg.query_name << ' ' << msg.stream << ' ' << msg.space_counters
      << ' ' << msg.num_tables << ' ' << (msg.use_dyadic ? 1 : 0) << ' '
      << msg.seed;
  return out.str();
}

StatusOr<FrequencyQueryReg> DecodeFrequencyQueryReg(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  FrequencyQueryReg msg;
  uint64_t use_dyadic = 0;
  if (!ReadToken(in, &msg.query_name) || !ReadToken(in, &msg.stream) ||
      !ReadToken(in, &msg.space_counters) || !ReadToken(in, &msg.num_tables) ||
      !ReadToken(in, &use_dyadic) || !ReadToken(in, &msg.seed)) {
    return Malformed("frequency-query-registration");
  }
  if (use_dyadic > 1) return Malformed("frequency-query-registration");
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.query_name, "query name"));
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.stream, "stream name"));
  SKIMJOIN_RETURN_IF_ERROR(
      ExpectExhausted(in, "frequency-query-registration"));
  msg.use_dyadic = use_dyadic == 1;
  return msg;
}

std::string EncodeUpdateBatch(const UpdateBatchMsg& msg) {
  std::ostringstream out;
  out << msg.stream << ' ' << msg.updates.size();
  for (const query::StreamUpdate& update : msg.updates) {
    out << ' ' << update.value << ' ' << update.count << ' ' << update.measure;
  }
  return out.str();
}

StatusOr<UpdateBatchMsg> DecodeUpdateBatch(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  UpdateBatchMsg msg;
  uint64_t count = 0;
  if (!ReadToken(in, &msg.stream) || !ReadToken(in, &count)) {
    return Malformed("update-batch");
  }
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.stream, "stream name"));
  if (count > kMaxWireBatchElements) {
    return InvalidArgumentError(
        "update-batch declares " + std::to_string(count) +
        " elements, above the " + std::to_string(kMaxWireBatchElements) +
        " cap");
  }
  // The declared count is additionally sanity-checked against the payload
  // size — each element needs at least 6 bytes ("v c m ") — so a lying
  // header can't even reserve beyond ~payload/6 entries.
  if (count > payload.size()) {
    return Malformed("update-batch");
  }
  msg.updates.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    query::StreamUpdate update;
    if (!ReadToken(in, &update.value) || !ReadToken(in, &update.count) ||
        !ReadToken(in, &update.measure)) {
      return Malformed("update-batch");
    }
    msg.updates.push_back(update);
  }
  SKIMJOIN_RETURN_IF_ERROR(ExpectExhausted(in, "update-batch"));
  return msg;
}

std::string EncodeDelta(const DeltaMsg& msg) {
  std::ostringstream out;
  out << msg.query_name << ' ' << msg.incarnation << ' ' << msg.epoch << ' '
      << msg.synopsis.size() << '\n'
      << msg.synopsis;
  return out.str();
}

StatusOr<DeltaMsg> DecodeDelta(std::string_view payload) {
  const size_t newline = payload.find('\n');
  if (newline == std::string_view::npos) return Malformed("delta");
  std::istringstream in{std::string(payload.substr(0, newline))};
  DeltaMsg msg;
  uint64_t declared_len = 0;
  if (!ReadToken(in, &msg.query_name) || !ReadToken(in, &msg.incarnation) ||
      !ReadToken(in, &msg.epoch) || !ReadToken(in, &declared_len)) {
    return Malformed("delta");
  }
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.query_name, "query name"));
  SKIMJOIN_RETURN_IF_ERROR(ExpectExhausted(in, "delta"));
  const std::string_view body = payload.substr(newline + 1);
  // Exact-length match: a truncated or padded synopsis block is a framing
  // error, and the declared length can never exceed what actually arrived
  // (the frame layer already capped that), so no speculative allocation.
  if (declared_len != body.size()) {
    return InvalidArgumentError("delta synopsis length mismatch: declared " +
                                std::to_string(declared_len) + ", got " +
                                std::to_string(body.size()));
  }
  msg.synopsis.assign(body);
  return msg;
}

std::string EncodeRelationReg(const RelationReg& msg) {
  std::ostringstream out;
  out << msg.name << ' ' << msg.arity << ' ' << msg.domain_size;
  return out.str();
}

StatusOr<RelationReg> DecodeRelationReg(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  RelationReg msg;
  if (!ReadToken(in, &msg.name) || !ReadToken(in, &msg.arity) ||
      !ReadToken(in, &msg.domain_size)) {
    return Malformed("relation-registration");
  }
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.name, "relation name"));
  SKIMJOIN_RETURN_IF_ERROR(ExpectExhausted(in, "relation-registration"));
  return msg;
}

std::string EncodeChainQueryReg(const ChainQueryReg& msg) {
  std::ostringstream out;
  out << msg.query_name << ' ' << msg.method << ' ' << msg.num_means << ' '
      << msg.num_medians << ' ' << msg.num_tables << ' ' << msg.num_buckets
      << ' ' << msg.seed << ' ' << msg.relations.size();
  for (const std::string& relation : msg.relations) {
    out << ' ' << relation;
  }
  return out.str();
}

StatusOr<ChainQueryReg> DecodeChainQueryReg(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  ChainQueryReg msg;
  uint64_t count = 0;
  if (!ReadToken(in, &msg.query_name) || !ReadToken(in, &msg.method) ||
      !ReadToken(in, &msg.num_means) || !ReadToken(in, &msg.num_medians) ||
      !ReadToken(in, &msg.num_tables) || !ReadToken(in, &msg.num_buckets) ||
      !ReadToken(in, &msg.seed) || !ReadToken(in, &count)) {
    return Malformed("chain-query-registration");
  }
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.query_name, "query name"));
  // A chain is at least 2 relations; each needs at least 2 payload bytes
  // ("r "), so payload size bounds the count before any allocation.
  if (count < 2 || count > payload.size()) {
    return Malformed("chain-query-registration");
  }
  msg.relations.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string relation;
    if (!ReadToken(in, &relation)) {
      return Malformed("chain-query-registration");
    }
    SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(relation, "relation name"));
    msg.relations.push_back(std::move(relation));
  }
  SKIMJOIN_RETURN_IF_ERROR(ExpectExhausted(in, "chain-query-registration"));
  return msg;
}

std::string EncodeRelationUpdate(const RelationUpdateMsg& msg) {
  std::ostringstream out;
  out << msg.relation << ' ' << msg.arity << ' ' << msg.tuples.size();
  for (const RelationUpdateMsg::Tuple& tuple : msg.tuples) {
    for (const uint64_t attribute : tuple.attributes) {
      out << ' ' << attribute;
    }
    out << ' ' << tuple.weight;
  }
  return out.str();
}

StatusOr<RelationUpdateMsg> DecodeRelationUpdate(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  RelationUpdateMsg msg;
  uint64_t count = 0;
  if (!ReadToken(in, &msg.relation) || !ReadToken(in, &msg.arity) ||
      !ReadToken(in, &count)) {
    return Malformed("relation-update");
  }
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.relation, "relation name"));
  // Arity is tiny in practice (chain ends 1, interiors 2); 64 is a
  // generous protocol ceiling that keeps count*arity from overflowing.
  if (msg.arity < 1 || msg.arity > 64) return Malformed("relation-update");
  if (count > kMaxWireBatchElements || count * msg.arity > payload.size()) {
    return Malformed("relation-update");
  }
  msg.tuples.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    RelationUpdateMsg::Tuple tuple;
    tuple.attributes.resize(msg.arity);
    for (uint64_t a = 0; a < msg.arity; ++a) {
      if (!ReadToken(in, &tuple.attributes[a])) {
        return Malformed("relation-update");
      }
    }
    if (!ReadToken(in, &tuple.weight)) return Malformed("relation-update");
    msg.tuples.push_back(std::move(tuple));
  }
  SKIMJOIN_RETURN_IF_ERROR(ExpectExhausted(in, "relation-update"));
  return msg;
}

std::string EncodeMetricsSnapshot(const metrics::Snapshot& snapshot) {
  std::ostringstream out;
  out << snapshot.counters.size();
  for (const auto& [name, value] : snapshot.counters) {
    out << ' ';
    AppendBlob(out, name);
    out << ' ' << value;
  }
  out << ' ' << snapshot.gauges.size();
  for (const auto& [name, value] : snapshot.gauges) {
    out << ' ';
    AppendBlob(out, name);
    out << ' ' << DoubleBits(value);
  }
  out << ' ' << snapshot.histograms.size();
  for (const auto& [name, h] : snapshot.histograms) {
    out << ' ';
    AppendBlob(out, name);
    out << ' ' << h.count << ' ' << DoubleBits(h.sum) << ' '
        << DoubleBits(h.min) << ' ' << DoubleBits(h.max);
    uint64_t nonzero = 0;
    for (const uint64_t b : h.buckets) nonzero += b != 0 ? 1 : 0;
    out << ' ' << nonzero;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] != 0) out << ' ' << i << ' ' << h.buckets[i];
    }
  }
  return out.str();
}

StatusOr<metrics::Snapshot> DecodeMetricsSnapshot(std::string_view payload) {
  WireCursor in(payload);
  metrics::Snapshot snapshot;
  uint64_t num_counters = 0;
  if (!in.U64(&num_counters) || num_counters > kMaxWireBatchElements ||
      num_counters > in.remaining()) {
    return Malformed("metrics-snapshot");
  }
  snapshot.counters.reserve(num_counters);
  for (uint64_t i = 0; i < num_counters; ++i) {
    std::string name;
    uint64_t value = 0;
    if (!in.Blob(&name) || name.empty() || !in.U64(&value)) {
      return Malformed("metrics-snapshot");
    }
    snapshot.counters.emplace_back(std::move(name), value);
  }
  uint64_t num_gauges = 0;
  if (!in.U64(&num_gauges) || num_gauges > kMaxWireBatchElements ||
      num_gauges > in.remaining()) {
    return Malformed("metrics-snapshot");
  }
  snapshot.gauges.reserve(num_gauges);
  for (uint64_t i = 0; i < num_gauges; ++i) {
    std::string name;
    uint64_t bits = 0;
    if (!in.Blob(&name) || name.empty() || !in.U64(&bits)) {
      return Malformed("metrics-snapshot");
    }
    snapshot.gauges.emplace_back(std::move(name), DoubleFromBits(bits));
  }
  uint64_t num_histograms = 0;
  if (!in.U64(&num_histograms) || num_histograms > kMaxWireBatchElements ||
      num_histograms > in.remaining()) {
    return Malformed("metrics-snapshot");
  }
  snapshot.histograms.reserve(num_histograms);
  for (uint64_t i = 0; i < num_histograms; ++i) {
    std::string name;
    metrics::HistogramSnapshot h;
    uint64_t sum_bits = 0, min_bits = 0, max_bits = 0, nonzero = 0;
    if (!in.Blob(&name) || name.empty() || !in.U64(&h.count) ||
        !in.U64(&sum_bits) || !in.U64(&min_bits) || !in.U64(&max_bits) ||
        !in.U64(&nonzero) ||
        nonzero > static_cast<uint64_t>(Histogram::kBuckets)) {
      return Malformed("metrics-snapshot");
    }
    h.sum = DoubleFromBits(sum_bits);
    h.min = DoubleFromBits(min_bits);
    h.max = DoubleFromBits(max_bits);
    h.buckets.assign(Histogram::kBuckets, 0);
    for (uint64_t b = 0; b < nonzero; ++b) {
      uint64_t index = 0, bucket_count = 0;
      if (!in.U64(&index) ||
          index >= static_cast<uint64_t>(Histogram::kBuckets) ||
          !in.U64(&bucket_count)) {
        return Malformed("metrics-snapshot");
      }
      h.buckets[index] = bucket_count;
    }
    snapshot.histograms.emplace_back(std::move(name), std::move(h));
  }
  if (!in.AtEnd()) {
    return InvalidArgumentError("metrics-snapshot payload has trailing bytes");
  }
  return snapshot;
}

std::string EncodeEventsRequest(const EventsRequest& msg) {
  std::ostringstream out;
  out << msg.max_events << ' ' << msg.after_sequence;
  return out.str();
}

StatusOr<EventsRequest> DecodeEventsRequest(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  EventsRequest msg;
  if (!ReadToken(in, &msg.max_events) || !ReadToken(in, &msg.after_sequence)) {
    return Malformed("events-request");
  }
  SKIMJOIN_RETURN_IF_ERROR(ExpectExhausted(in, "events-request"));
  return msg;
}

std::string EncodeEventBatch(const EventBatchMsg& msg) {
  std::ostringstream out;
  out << msg.events.size();
  for (const LogEvent& event : msg.events) {
    out << ' ' << static_cast<uint64_t>(event.level) << ' ' << event.sequence
        << ' ' << event.ts_micros << ' ';
    AppendBlob(out, event.event);
    out << ' ' << event.fields.size();
    for (const auto& [key, value] : event.fields) {
      out << ' ';
      AppendBlob(out, key);
      out << ' ';
      AppendBlob(out, value);
    }
  }
  return out.str();
}

StatusOr<EventBatchMsg> DecodeEventBatch(std::string_view payload) {
  WireCursor in(payload);
  EventBatchMsg msg;
  uint64_t count = 0;
  if (!in.U64(&count) || count > kMaxWireBatchElements ||
      count > in.remaining()) {
    return Malformed("event-batch");
  }
  msg.events.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    LogEvent event;
    uint64_t level = 0, num_fields = 0;
    if (!in.U64(&level) || level > static_cast<uint64_t>(LogLevel::kError) ||
        !in.U64(&event.sequence) || !in.U64(&event.ts_micros) ||
        !in.Blob(&event.event) || !in.U64(&num_fields) ||
        num_fields > in.remaining()) {
      return Malformed("event-batch");
    }
    event.level = static_cast<LogLevel>(level);
    event.fields.reserve(num_fields);
    for (uint64_t f = 0; f < num_fields; ++f) {
      std::string key, value;
      if (!in.Blob(&key) || !in.Blob(&value)) return Malformed("event-batch");
      event.fields.emplace_back(std::move(key), std::move(value));
    }
    msg.events.push_back(std::move(event));
  }
  if (!in.AtEnd()) {
    return InvalidArgumentError("event-batch payload has trailing bytes");
  }
  return msg;
}

std::string EncodeTraceControl(const TraceControlMsg& msg) {
  return msg.enable ? "1" : "0";
}

StatusOr<TraceControlMsg> DecodeTraceControl(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  uint64_t enable = 0;
  if (!ReadToken(in, &enable) || enable > 1) {
    return Malformed("trace-control");
  }
  SKIMJOIN_RETURN_IF_ERROR(ExpectExhausted(in, "trace-control"));
  TraceControlMsg msg;
  msg.enable = enable == 1;
  return msg;
}

std::string EncodeTraceEvents(const TraceEventsMsg& msg) {
  std::ostringstream out;
  out << msg.dropped << ' ' << msg.now_micros << ' ' << msg.events.size();
  for (const metrics::TraceEvent& event : msg.events) {
    out << ' ';
    AppendBlob(out, event.name);
    out << ' ';
    AppendBlob(out, event.category);
    out << ' ' << event.start_micros << ' ' << event.duration_micros << ' '
        << event.thread_id << ' ' << event.trace_id << ' ' << event.span_id
        << ' ' << event.parent_span_id;
  }
  return out.str();
}

StatusOr<TraceEventsMsg> DecodeTraceEvents(std::string_view payload) {
  WireCursor in(payload);
  TraceEventsMsg msg;
  uint64_t count = 0;
  if (!in.U64(&msg.dropped) || !in.U64(&msg.now_micros) || !in.U64(&count) ||
      count > kMaxWireBatchElements || count > in.remaining()) {
    return Malformed("trace-events");
  }
  msg.events.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    metrics::TraceEvent event;
    if (!in.Blob(&event.name) || !in.Blob(&event.category) ||
        !in.U64(&event.start_micros) || !in.U64(&event.duration_micros) ||
        !in.U64(&event.thread_id) || !in.U64(&event.trace_id) ||
        !in.U64(&event.span_id) || !in.U64(&event.parent_span_id)) {
      return Malformed("trace-events");
    }
    msg.events.push_back(std::move(event));
  }
  if (!in.AtEnd()) {
    return InvalidArgumentError("trace-events payload has trailing bytes");
  }
  return msg;
}

std::string EncodeHealthReport(const HealthReportMsg& msg) {
  std::ostringstream out;
  out << msg.findings.size();
  for (const query::HealthFinding& finding : msg.findings) {
    out << ' ' << static_cast<uint64_t>(finding.severity) << ' ';
    AppendBlob(out, finding.subject);
    out << ' ';
    AppendBlob(out, finding.rule);
    out << ' ';
    AppendBlob(out, finding.message);
  }
  return out.str();
}

StatusOr<HealthReportMsg> DecodeHealthReport(std::string_view payload) {
  WireCursor in(payload);
  HealthReportMsg msg;
  uint64_t count = 0;
  if (!in.U64(&count) || count > kMaxWireBatchElements ||
      count > in.remaining()) {
    return Malformed("health-report");
  }
  msg.findings.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    query::HealthFinding finding;
    uint64_t severity = 0;
    if (!in.U64(&severity) ||
        severity >
            static_cast<uint64_t>(query::HealthFinding::Severity::kCritical) ||
        !in.Blob(&finding.subject) || !in.Blob(&finding.rule) ||
        !in.Blob(&finding.message)) {
      return Malformed("health-report");
    }
    finding.severity = static_cast<query::HealthFinding::Severity>(severity);
    msg.findings.push_back(std::move(finding));
  }
  if (!in.AtEnd()) {
    return InvalidArgumentError("health-report payload has trailing bytes");
  }
  return msg;
}

std::string EncodeError(const Status& status) {
  std::ostringstream out;
  out << static_cast<int>(status.code()) << ' ' << status.message();
  return out.str();
}

Status DecodeError(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  int code = 0;
  if (!(in >> code) || code < static_cast<int>(StatusCode::kInvalidArgument) ||
      code > static_cast<int>(StatusCode::kInternal)) {
    return InternalError("peer sent an undecodable error payload");
  }
  std::string message;
  std::getline(in, message);
  if (!message.empty() && message.front() == ' ') message.erase(0, 1);
  return Status(static_cast<StatusCode>(code),
                "remote: " + (message.empty() ? "(no message)" : message));
}

StatusOr<Frame> Call(FrameChannel& channel, MessageType type,
                     std::string_view payload, Deadline deadline) {
  const metrics::TraceContext trace = metrics::CurrentTraceContext();
  SKIMJOIN_RETURN_IF_ERROR(
      channel.Send(static_cast<uint32_t>(type), payload, deadline,
                   trace.trace_id, trace.span_id, trace.parent_span_id));
  SKIMJOIN_ASSIGN_OR_RETURN(Frame reply, channel.Receive(deadline));
  if (reply.type == static_cast<uint32_t>(MessageType::kError)) {
    return DecodeError(reply.payload);
  }
  return reply;
}

}  // namespace dist
}  // namespace skimjoin
