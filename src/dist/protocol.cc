#include "dist/protocol.h"

#include <cctype>
#include <cstring>
#include <sstream>
#include <utility>

namespace skimjoin {
namespace dist {

namespace {

// Doubles cross the wire as their IEEE-754 bit pattern (decimal u64), not
// decimal text: the estimator knobs seed hash-family construction on both
// ends, so a single ULP of round-trip drift would break the bit-identity
// contract between coordinator accumulator and worker synopses.
uint64_t DoubleBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Status Malformed(const char* what) {
  return InvalidArgumentError(std::string("malformed ") + what + " payload");
}

// Reads one whitespace-delimited token as the requested type; false on
// exhaustion or a non-numeric token.
bool ReadToken(std::istringstream& in, uint64_t* out) {
  return static_cast<bool>(in >> *out);
}
bool ReadToken(std::istringstream& in, int64_t* out) {
  return static_cast<bool>(in >> *out);
}
bool ReadToken(std::istringstream& in, uint32_t* out) {
  return static_cast<bool>(in >> *out);
}
bool ReadToken(std::istringstream& in, std::string* out) {
  return static_cast<bool>(in >> *out);
}

// A payload is fully consumed when only trailing whitespace remains;
// anything else is a framing bug or tampering.
Status ExpectExhausted(std::istringstream& in, const char* what) {
  std::string extra;
  if (in >> extra) {
    return InvalidArgumentError(std::string(what) +
                                " payload has trailing tokens");
  }
  return OkStatus();
}

}  // namespace

Status ValidateWireName(std::string_view name, const char* what) {
  if (name.empty() || name.size() > 256) {
    return InvalidArgumentError(std::string(what) +
                                " must be 1..256 bytes long");
  }
  for (const char c : name) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      return InvalidArgumentError(std::string(what) +
                                  " must not contain whitespace");
    }
  }
  return OkStatus();
}

std::string EncodeHelloReply(const HelloReply& msg) {
  std::ostringstream out;
  out << msg.shard_name << ' ' << msg.incarnation << ' ' << msg.epoch;
  return out.str();
}

StatusOr<HelloReply> DecodeHelloReply(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  HelloReply msg;
  if (!ReadToken(in, &msg.shard_name) || !ReadToken(in, &msg.incarnation) ||
      !ReadToken(in, &msg.epoch)) {
    return Malformed("hello-reply");
  }
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.shard_name, "shard name"));
  SKIMJOIN_RETURN_IF_ERROR(ExpectExhausted(in, "hello-reply"));
  return msg;
}

std::string EncodeStreamReg(const StreamReg& msg) {
  std::ostringstream out;
  out << msg.name << ' ' << msg.domain_size;
  return out.str();
}

StatusOr<StreamReg> DecodeStreamReg(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  StreamReg msg;
  if (!ReadToken(in, &msg.name) || !ReadToken(in, &msg.domain_size)) {
    return Malformed("stream-registration");
  }
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.name, "stream name"));
  SKIMJOIN_RETURN_IF_ERROR(ExpectExhausted(in, "stream-registration"));
  return msg;
}

std::string EncodeJoinQueryReg(const JoinQueryReg& msg) {
  std::ostringstream out;
  out << msg.query_name << ' ' << msg.left_stream << ' ' << msg.right_stream
      << ' ' << (msg.self_join ? 1 : 0) << ' ' << msg.kind << ' '
      << msg.space_counters << ' ' << msg.num_tables << ' '
      << msg.agms_num_medians << ' ' << DoubleBits(msg.threshold_scale) << ' '
      << DoubleBits(msg.recurse_slack) << ' ' << DoubleBits(msg.skim_margin)
      << ' ' << (msg.skimmed_use_dyadic ? 1 : 0) << ' ' << msg.seed;
  return out.str();
}

StatusOr<JoinQueryReg> DecodeJoinQueryReg(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  JoinQueryReg msg;
  uint64_t self_join = 0, use_dyadic = 0;
  uint64_t scale_bits = 0, slack_bits = 0, margin_bits = 0;
  if (!ReadToken(in, &msg.query_name) || !ReadToken(in, &msg.left_stream) ||
      !ReadToken(in, &msg.right_stream) || !ReadToken(in, &self_join) ||
      !ReadToken(in, &msg.kind) || !ReadToken(in, &msg.space_counters) ||
      !ReadToken(in, &msg.num_tables) ||
      !ReadToken(in, &msg.agms_num_medians) || !ReadToken(in, &scale_bits) ||
      !ReadToken(in, &slack_bits) || !ReadToken(in, &margin_bits) ||
      !ReadToken(in, &use_dyadic) || !ReadToken(in, &msg.seed)) {
    return Malformed("join-query-registration");
  }
  if (self_join > 1 || use_dyadic > 1) {
    return Malformed("join-query-registration");
  }
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.query_name, "query name"));
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.left_stream, "stream name"));
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.right_stream, "stream name"));
  SKIMJOIN_RETURN_IF_ERROR(ExpectExhausted(in, "join-query-registration"));
  msg.self_join = self_join == 1;
  msg.skimmed_use_dyadic = use_dyadic == 1;
  msg.threshold_scale = DoubleFromBits(scale_bits);
  msg.recurse_slack = DoubleFromBits(slack_bits);
  msg.skim_margin = DoubleFromBits(margin_bits);
  return msg;
}

std::string EncodeFrequencyQueryReg(const FrequencyQueryReg& msg) {
  std::ostringstream out;
  out << msg.query_name << ' ' << msg.stream << ' ' << msg.space_counters
      << ' ' << msg.num_tables << ' ' << (msg.use_dyadic ? 1 : 0) << ' '
      << msg.seed;
  return out.str();
}

StatusOr<FrequencyQueryReg> DecodeFrequencyQueryReg(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  FrequencyQueryReg msg;
  uint64_t use_dyadic = 0;
  if (!ReadToken(in, &msg.query_name) || !ReadToken(in, &msg.stream) ||
      !ReadToken(in, &msg.space_counters) || !ReadToken(in, &msg.num_tables) ||
      !ReadToken(in, &use_dyadic) || !ReadToken(in, &msg.seed)) {
    return Malformed("frequency-query-registration");
  }
  if (use_dyadic > 1) return Malformed("frequency-query-registration");
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.query_name, "query name"));
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.stream, "stream name"));
  SKIMJOIN_RETURN_IF_ERROR(
      ExpectExhausted(in, "frequency-query-registration"));
  msg.use_dyadic = use_dyadic == 1;
  return msg;
}

std::string EncodeUpdateBatch(const UpdateBatchMsg& msg) {
  std::ostringstream out;
  out << msg.stream << ' ' << msg.updates.size();
  for (const query::StreamUpdate& update : msg.updates) {
    out << ' ' << update.value << ' ' << update.count << ' ' << update.measure;
  }
  return out.str();
}

StatusOr<UpdateBatchMsg> DecodeUpdateBatch(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  UpdateBatchMsg msg;
  uint64_t count = 0;
  if (!ReadToken(in, &msg.stream) || !ReadToken(in, &count)) {
    return Malformed("update-batch");
  }
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.stream, "stream name"));
  if (count > kMaxWireBatchElements) {
    return InvalidArgumentError(
        "update-batch declares " + std::to_string(count) +
        " elements, above the " + std::to_string(kMaxWireBatchElements) +
        " cap");
  }
  // The declared count is additionally sanity-checked against the payload
  // size — each element needs at least 6 bytes ("v c m ") — so a lying
  // header can't even reserve beyond ~payload/6 entries.
  if (count > payload.size()) {
    return Malformed("update-batch");
  }
  msg.updates.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    query::StreamUpdate update;
    if (!ReadToken(in, &update.value) || !ReadToken(in, &update.count) ||
        !ReadToken(in, &update.measure)) {
      return Malformed("update-batch");
    }
    msg.updates.push_back(update);
  }
  SKIMJOIN_RETURN_IF_ERROR(ExpectExhausted(in, "update-batch"));
  return msg;
}

std::string EncodeDelta(const DeltaMsg& msg) {
  std::ostringstream out;
  out << msg.query_name << ' ' << msg.incarnation << ' ' << msg.epoch << ' '
      << msg.synopsis.size() << '\n'
      << msg.synopsis;
  return out.str();
}

StatusOr<DeltaMsg> DecodeDelta(std::string_view payload) {
  const size_t newline = payload.find('\n');
  if (newline == std::string_view::npos) return Malformed("delta");
  std::istringstream in{std::string(payload.substr(0, newline))};
  DeltaMsg msg;
  uint64_t declared_len = 0;
  if (!ReadToken(in, &msg.query_name) || !ReadToken(in, &msg.incarnation) ||
      !ReadToken(in, &msg.epoch) || !ReadToken(in, &declared_len)) {
    return Malformed("delta");
  }
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(msg.query_name, "query name"));
  SKIMJOIN_RETURN_IF_ERROR(ExpectExhausted(in, "delta"));
  const std::string_view body = payload.substr(newline + 1);
  // Exact-length match: a truncated or padded synopsis block is a framing
  // error, and the declared length can never exceed what actually arrived
  // (the frame layer already capped that), so no speculative allocation.
  if (declared_len != body.size()) {
    return InvalidArgumentError("delta synopsis length mismatch: declared " +
                                std::to_string(declared_len) + ", got " +
                                std::to_string(body.size()));
  }
  msg.synopsis.assign(body);
  return msg;
}

std::string EncodeError(const Status& status) {
  std::ostringstream out;
  out << static_cast<int>(status.code()) << ' ' << status.message();
  return out.str();
}

Status DecodeError(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  int code = 0;
  if (!(in >> code) || code < static_cast<int>(StatusCode::kInvalidArgument) ||
      code > static_cast<int>(StatusCode::kInternal)) {
    return InternalError("peer sent an undecodable error payload");
  }
  std::string message;
  std::getline(in, message);
  if (!message.empty() && message.front() == ' ') message.erase(0, 1);
  return Status(static_cast<StatusCode>(code),
                "remote: " + (message.empty() ? "(no message)" : message));
}

StatusOr<Frame> Call(FrameChannel& channel, MessageType type,
                     std::string_view payload, Deadline deadline) {
  SKIMJOIN_RETURN_IF_ERROR(
      channel.Send(static_cast<uint32_t>(type), payload, deadline));
  SKIMJOIN_ASSIGN_OR_RETURN(Frame reply, channel.Receive(deadline));
  if (reply.type == static_cast<uint32_t>(MessageType::kError)) {
    return DecodeError(reply.payload);
  }
  return reply;
}

}  // namespace dist
}  // namespace skimjoin
