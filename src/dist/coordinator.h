// The coordinator of the distributed skimjoin runtime: fans registrations
// and shard-routed ingest out to workers, pulls per-query synopsis deltas
// back, and answers by LINEARITY — every distributable synopsis is a
// vector of counters, so summing shard synopses counter-for-counter yields
// exactly the synopsis one engine would have built from the whole stream.
// With every shard fresh, coordinator answers are bit-identical to that
// single engine's (the integration test pins this).
//
// Robustness model (the headline of this subsystem):
//   * Every RPC is bounded by a deadline and a retry budget with
//     exponential backoff + jitter; a worker can hang, die, or corrupt a
//     frame without ever wedging the coordinator.
//   * Health per shard: healthy → down after `down_after_failures`
//     consecutive failures (a `worker_down` warn event), down → recovering
//     on the next successful handshake, recovering → healthy on the next
//     successful delta pull (`worker_restored` event). Each retry emits an
//     `rpc_retry` info event; per-shard `dist.<shard>.*` counters/gauges
//     live in the coordinator's metrics registry.
//   * Re-adoption: the hello handshake carries the worker's incarnation;
//     a changed incarnation means "restarted from checkpoint", and the
//     coordinator replays its recorded registrations (idempotent on the
//     worker) before using the shard again.
//   * No double-merge by construction: deltas are full synopsis state, and
//     the coordinator keeps exactly one cached delta per (shard, query),
//     replaced wholesale on every successful pull. A restarted worker's
//     replayed updates appear inside its next full delta — there is no
//     increment stream that could be applied twice.
//   * Degraded answers: when a pull fails, the answer falls back to the
//     shard's cached delta and the EstimateReport flags the answer partial,
//     listing each shard's health, freshness, and epoch lag.

#ifndef SKIMJOIN_DIST_COORDINATOR_H_
#define SKIMJOIN_DIST_COORDINATOR_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dist/frame.h"
#include "dist/protocol.h"
#include "query/dist_backend.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/status.h"

namespace skimjoin {
namespace dist {

/// One worker address.
struct ShardAddress {
  std::string name;
  std::string socket_path;
};

struct CoordinatorOptions {
  /// Per-RPC-attempt deadline.
  std::chrono::milliseconds rpc_timeout{2000};
  /// Attempts per RPC (first try + retries). >= 1.
  int rpc_attempts = 3;
  /// Backoff before retry k (1-based): min(cap, base << (k-1)), scaled by
  /// a uniform jitter in [0.5, 1.0].
  std::chrono::milliseconds backoff_base{20};
  std::chrono::milliseconds backoff_cap{500};
  /// Consecutive hard failures before a shard is marked down.
  int down_after_failures = 2;
  /// Seed for the jitter RNG (deterministic backoff schedules in tests).
  uint64_t jitter_seed = 0x636f6f7264ULL;
};

class Coordinator : public query::DistBackend {
 public:
  /// Connections are lazy: construction never touches the network.
  Coordinator(std::vector<ShardAddress> shards, CoordinatorOptions options);

  // --- query::DistBackend -------------------------------------------------
  Status RegisterStream(const query::StreamSpec& spec) override;
  StatusOr<query::QueryId> AddJoinQuery(const query::JoinQuerySpec& spec,
                                        uint64_t seed) override;
  StatusOr<query::QueryId> AddSelfJoinQuery(
      const query::SelfJoinQuerySpec& spec, uint64_t seed) override;
  StatusOr<query::QueryId> AddFrequencyQuery(
      const query::FrequencyQuerySpec& spec, uint64_t seed) override;
  Status Update(const std::string& stream,
                const query::StreamUpdate& update) override;
  Status UpdateBatch(const std::string& stream,
                     std::span<const query::StreamUpdate> updates) override;
  StatusOr<double> AnswerJoin(query::QueryId query) override;
  StatusOr<EstimateReport> AnswerJoinWithReport(query::QueryId query) override;
  StatusOr<int64_t> AnswerPointFrequency(query::QueryId query,
                                         uint64_t value) override;
  Status RegisterRelation(const query::RelationSpec& spec) override;
  StatusOr<query::QueryId> AddChainJoinQuery(
      const query::ChainJoinQuerySpec& spec, uint64_t seed) override;
  Status UpdateRelation(const std::string& relation,
                        const std::vector<uint64_t>& attributes,
                        int64_t weight) override;
  StatusOr<double> AnswerChainJoin(query::QueryId query) override;
  StatusOr<EstimateReport> AnswerChainJoinWithReport(
      query::QueryId query) override;
  StatusOr<metrics::Snapshot> FleetMetricsSnapshot() override;
  Status ScrapeFleetEvents() override;
  Status SetFleetTracing(bool enable) override;
  StatusOr<std::string> DumpFleetTrace() override;
  StatusOr<query::HealthReport> FleetHealthReport() override;
  Status CheckpointShards() override;
  Status ProbeHealth() override;
  std::vector<query::DistShardStatus> ShardStatuses() override;
  uint64_t NumShards() const override { return shards_.size(); }
  metrics::Registry* MetricsRegistry() override { return &metrics_; }

  /// Which shard an element routes to: value % NumShards(). Exposed so
  /// tests can aim updates at a chosen victim shard.
  uint64_t ShardIndexFor(uint64_t value) const {
    return value % shards_.size();
  }

  /// The coordinator's own metrics (`dist.<shard>.*`), Prometheus-
  /// exportable like any registry.
  metrics::Registry& metrics_registry() { return metrics_; }

 private:
  enum class Health { kHealthy, kRecovering, kDown };
  static const char* HealthName(Health health);

  /// A shard-local copy of one query's last pulled synopsis. Full state:
  /// each successful pull REPLACES it (see file comment — this is the
  /// no-double-merge invariant).
  struct CachedDelta {
    std::string synopsis;
    uint64_t incarnation = 0;
    uint64_t epoch = 0;
    /// Pull round that produced it; == current round ⇒ fresh.
    uint64_t round = 0;
    bool valid = false;
  };

  struct ShardState {
    ShardAddress address;
    FrameChannel channel;
    Health health = Health::kHealthy;
    int consecutive_failures = 0;
    uint64_t incarnation = 0;
    uint64_t last_acked_epoch = 0;
    std::unordered_map<query::QueryId, CachedDelta> deltas;
    /// Estimated worker-recorder-clock minus coordinator-recorder-clock, in
    /// micros, from the hello handshake: the reply's trace_clock_micros
    /// against the round trip's midpoint on the coordinator's clock.
    /// Negated, it is the ProcessTrace clock offset that shifts the
    /// worker's trace timestamps onto the coordinator's timeline.
    int64_t clock_offset_micros = 0;
    /// Highest worker event-log sequence already scraped (per-incarnation:
    /// a restarted worker restarts its sequence numbers, so re-adoption
    /// resets this to 0).
    uint64_t events_scraped_through = 0;
    metrics::Counter* rpc_calls = nullptr;
    metrics::Counter* rpc_retries = nullptr;
    metrics::Counter* rpc_failures = nullptr;
    metrics::Counter* delta_bytes = nullptr;
    metrics::Gauge* health_gauge = nullptr;  // 0 healthy, 1 recovering, 2 down
    metrics::Gauge* epoch_gauge = nullptr;
  };

  /// What the coordinator knows about one registered query.
  struct QueryInfo {
    std::string wire_name;  // "q<id>" on the wire
    enum class Kind { kJoin, kSelfJoin, kFrequency, kChain } kind = Kind::kJoin;
    query::JoinQuerySpec join_spec;        // kJoin (estimator.domain_size filled)
    query::SelfJoinQuerySpec self_spec;    // kSelfJoin (ditto)
    query::FrequencyQuerySpec freq_spec;   // kFrequency
    query::ChainJoinQuerySpec chain_spec;  // kChain
    uint64_t seed = 0;
  };

  /// One registration message, recorded in order for replay after a worker
  /// restart.
  struct RegistrationRecord {
    MessageType type;
    std::string payload;
  };

  /// Ensures a connected, handshaken channel. A NEW incarnation (first
  /// contact or restart) triggers registration replay before the channel
  /// is considered usable.
  Status EnsureConnected(ShardState& shard);

  /// One deadline-bounded request/reply against a connected channel (no
  /// retries — Rpc layers those on top).
  StatusOr<Frame> CallOnce(ShardState& shard, MessageType type,
                           std::string_view payload);

  /// The retrying RPC: up to rpc_attempts tries, each its own connect +
  /// call under rpc_timeout, with jittered exponential backoff between.
  StatusOr<Frame> Rpc(ShardState& shard, MessageType type,
                      std::string_view payload);

  /// Broadcasts one registration to every shard and records it for replay.
  /// Fails if any shard never acked (after retries) — registrations are
  /// the one operation that must reach everyone before use.
  Status Broadcast(MessageType type, const std::string& payload);

  void MarkFailure(ShardState& shard, const Status& status);
  void MarkSuccess(ShardState& shard);
  void PublishHealth(ShardState& shard);

  /// Pulls `query`'s delta from every shard (one new round); failures keep
  /// the stale cache. Returns per-shard contributions for the report.
  std::vector<ShardContribution> PullDeltas(query::QueryId query);

  /// Merges every cached delta of a join-kind query into a freshly built
  /// accumulator pair.
  StatusOr<std::unique_ptr<core::JoinEstimatorPair>> MergedJoinPair(
      query::QueryId query, const QueryInfo& info);

  /// Merges every cached delta of a chain query (grid or hash method) and
  /// reports the merged estimate. FAILED_PRECONDITION when no shard has
  /// contributed a delta yet.
  StatusOr<EstimateReport> MergedChainReport(query::QueryId query,
                                             const QueryInfo& info);

  StatusOr<QueryInfo*> FindQuery(query::QueryId query);

  /// The `dist.rpc.<type>.latency_ns` histogram for one message type,
  /// created on first use and cached (registry instruments are stable).
  metrics::ShardedHistogram* RpcLatencyHistogram(MessageType type);

  /// Stable lower-case name of a request type for metric names
  /// ("hello", "update_batch", ...).
  static const char* RpcTypeName(MessageType type);

  /// Serializes the whole public surface. Coarse by design: the
  /// coordinator is a control plane, not a data plane — contention is
  /// between the shell/CLI thread and the PeriodicSnapshotWriter scraping
  /// fleet metrics in the background. Update() stays lock-free and
  /// delegates to UpdateBatch() (which locks) to avoid self-deadlock.
  std::mutex mutex_;

  std::vector<std::unique_ptr<ShardState>> shards_;
  CoordinatorOptions options_;
  metrics::Registry metrics_;
  Rng jitter_rng_;
  std::map<std::string, uint64_t> stream_domains_;
  std::map<std::string, query::RelationSpec> relation_specs_;
  std::map<query::QueryId, QueryInfo> queries_;
  std::vector<RegistrationRecord> registrations_;
  /// MessageType → latency histogram, filled lazily by RpcLatencyHistogram.
  std::unordered_map<uint32_t, metrics::ShardedHistogram*> rpc_latency_;
  query::QueryId next_query_id_ = 1;
  uint64_t pull_round_ = 0;
};

}  // namespace dist
}  // namespace skimjoin

#endif  // SKIMJOIN_DIST_COORDINATOR_H_
