#include "dist/worker.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <utility>

#include "util/event_log.h"
#include "util/metrics.h"

namespace skimjoin {
namespace dist {

namespace {

constexpr char kMetaIncarnation[] = "dist.incarnation";
constexpr char kMetaEpoch[] = "dist.epoch";
constexpr char kMetaQueryPrefix[] = "dist.query.";

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

Frame MakeFrame(MessageType type, std::string payload) {
  Frame frame;
  frame.type = static_cast<uint32_t>(type);
  frame.payload = std::move(payload);
  return frame;
}

}  // namespace

Worker::Worker(WorkerOptions options) : options_(std::move(options)) {}

StatusOr<std::unique_ptr<Worker>> Worker::Create(const WorkerOptions& options) {
  SKIMJOIN_RETURN_IF_ERROR(
      ValidateWireName(options.shard_name, "shard name"));
  if (options.socket_path.empty()) {
    return InvalidArgumentError("WorkerOptions.socket_path must be set");
  }
  std::unique_ptr<Worker> worker(new Worker(options));
  SKIMJOIN_RETURN_IF_ERROR(worker->RestoreIfPresent());
  SKIMJOIN_ASSIGN_OR_RETURN(worker->listener_,
                            Listener::Create(options.socket_path));
  return worker;
}

Status Worker::RestoreIfPresent() {
  if (options_.checkpoint_path.empty()) return OkStatus();
  if (!std::ifstream(options_.checkpoint_path).good()) return OkStatus();
  SKIMJOIN_ASSIGN_OR_RETURN(
      query::RestoreReport report,
      engine_.RestoreCheckpoint(options_.checkpoint_path));
  uint64_t stored_incarnation = 0;
  uint64_t stored_epoch = 0;
  for (const auto& [key, value] : report.metadata) {
    if (key == kMetaIncarnation) {
      if (!ParseU64(value, &stored_incarnation)) {
        return InvalidArgumentError("corrupt dist.incarnation in checkpoint");
      }
    } else if (key == kMetaEpoch) {
      if (!ParseU64(value, &stored_epoch)) {
        return InvalidArgumentError("corrupt dist.epoch in checkpoint");
      }
    } else if (key.rfind(kMetaQueryPrefix, 0) == 0) {
      uint64_t id = 0;
      if (!ParseU64(value, &id)) {
        return InvalidArgumentError("corrupt query-id entry in checkpoint");
      }
      query_ids_[key.substr(sizeof(kMetaQueryPrefix) - 1)] = id;
    }
  }
  // Advertising incarnation + 1 is the restart signal: the coordinator
  // compares against the incarnation it last shook hands with and replays
  // registrations (and flags staleness) on any change.
  incarnation_ = stored_incarnation + 1;
  epoch_ = stored_epoch;
  EventLog::Global().Emit(
      LogLevel::kInfo, "worker_restored_from_checkpoint",
      {{"shard", options_.shard_name},
       {"incarnation", std::to_string(incarnation_)},
       {"epoch", std::to_string(epoch_)}});
  return OkStatus();
}

Status Worker::Checkpoint() {
  if (options_.checkpoint_path.empty()) {
    return FailedPreconditionError("worker has no checkpoint path configured");
  }
  std::map<std::string, std::string> metadata;
  metadata[kMetaIncarnation] = std::to_string(incarnation_);
  metadata[kMetaEpoch] = std::to_string(epoch_);
  for (const auto& [name, id] : query_ids_) {
    metadata[kMetaQueryPrefix + name] = std::to_string(id);
  }
  batches_since_checkpoint_ = 0;
  return engine_.SaveCheckpoint(options_.checkpoint_path, metadata);
}

Frame Worker::HelloFrame() const {
  HelloReply reply;
  reply.shard_name = options_.shard_name;
  reply.incarnation = incarnation_;
  reply.epoch = epoch_;
  // The recorder clock stamped here is one half of the fleet clock-offset
  // estimate; the coordinator pairs it with the hello round trip's
  // midpoint on its own recorder clock.
  reply.trace_clock_micros = metrics::TraceRecorder::Global().NowMicros();
  return MakeFrame(MessageType::kHelloReply, EncodeHelloReply(reply));
}

StatusOr<Frame> Worker::HandleRegisterStream(const Frame& request) {
  SKIMJOIN_ASSIGN_OR_RETURN(StreamReg msg, DecodeStreamReg(request.payload));
  // Idempotent by name: re-registration of a known stream is the replay
  // path after coordinator re-adoption, not an error.
  if (!engine_.StreamElementCount(msg.name).ok()) {
    query::StreamSpec spec;
    spec.name = msg.name;
    spec.domain_size = msg.domain_size;
    SKIMJOIN_RETURN_IF_ERROR(engine_.RegisterStream(spec).status());
  }
  return MakeFrame(MessageType::kRegistered, msg.name);
}

StatusOr<Frame> Worker::HandleRegisterJoinQuery(const Frame& request) {
  SKIMJOIN_ASSIGN_OR_RETURN(JoinQueryReg msg,
                            DecodeJoinQueryReg(request.payload));
  if (query_ids_.count(msg.query_name) != 0) {
    return MakeFrame(MessageType::kRegistered, msg.query_name);
  }
  const auto kind = static_cast<core::EstimatorKind>(msg.kind);
  switch (kind) {
    case core::EstimatorKind::kAgms:
    case core::EstimatorKind::kHashSketch:
    case core::EstimatorKind::kSkimmedSketch:
    case core::EstimatorKind::kCountMin:
      break;
    default:
      // Sampling and partitioned-AGMS synopses are not linear-mergeable
      // (or not even serializable), so they cannot be distributed.
      return InvalidArgumentError(
          "estimator kind " + std::to_string(msg.kind) +
          " is not distributable (needs a serializable, mergeable synopsis)");
  }
  core::EstimatorSpec estimator;
  estimator.kind = kind;
  estimator.space_counters = msg.space_counters;
  estimator.num_tables = msg.num_tables;
  estimator.agms_num_medians = msg.agms_num_medians;
  estimator.threshold_scale = msg.threshold_scale;
  estimator.recurse_slack = msg.recurse_slack;
  estimator.skim_margin = msg.skim_margin;
  estimator.skimmed_use_dyadic = msg.skimmed_use_dyadic;
  query::QueryId id = 0;
  if (msg.self_join) {
    query::SelfJoinQuerySpec spec;
    spec.stream = msg.left_stream;
    spec.estimator = estimator;
    SKIMJOIN_ASSIGN_OR_RETURN(id, engine_.AddSelfJoinQuery(spec, msg.seed));
  } else {
    query::JoinQuerySpec spec;
    spec.left_stream = msg.left_stream;
    spec.right_stream = msg.right_stream;
    spec.estimator = estimator;
    SKIMJOIN_ASSIGN_OR_RETURN(id, engine_.AddJoinQuery(spec, msg.seed));
  }
  query_ids_[msg.query_name] = id;
  return MakeFrame(MessageType::kRegistered, msg.query_name);
}

StatusOr<Frame> Worker::HandleRegisterFrequencyQuery(const Frame& request) {
  SKIMJOIN_ASSIGN_OR_RETURN(FrequencyQueryReg msg,
                            DecodeFrequencyQueryReg(request.payload));
  if (query_ids_.count(msg.query_name) != 0) {
    return MakeFrame(MessageType::kRegistered, msg.query_name);
  }
  query::FrequencyQuerySpec spec;
  spec.stream = msg.stream;
  spec.space_counters = msg.space_counters;
  spec.num_tables = msg.num_tables;
  spec.use_dyadic = msg.use_dyadic;
  SKIMJOIN_ASSIGN_OR_RETURN(query::QueryId id,
                            engine_.AddFrequencyQuery(spec, msg.seed));
  query_ids_[msg.query_name] = id;
  return MakeFrame(MessageType::kRegistered, msg.query_name);
}

StatusOr<Frame> Worker::HandleRegisterRelation(const Frame& request) {
  SKIMJOIN_ASSIGN_OR_RETURN(RelationReg msg,
                            DecodeRelationReg(request.payload));
  query::RelationSpec spec;
  spec.name = msg.name;
  spec.arity = msg.arity;
  spec.domain_size = msg.domain_size;
  // Idempotent by name like stream registration: an ALREADY_EXISTS on the
  // coordinator's re-adoption replay is the expected path, not an error.
  const StatusOr<query::StreamId> id = engine_.RegisterRelation(spec);
  if (!id.ok() && id.status().code() != StatusCode::kAlreadyExists) {
    return id.status();
  }
  return MakeFrame(MessageType::kRegistered, msg.name);
}

StatusOr<Frame> Worker::HandleRegisterChainQuery(const Frame& request) {
  SKIMJOIN_ASSIGN_OR_RETURN(ChainQueryReg msg,
                            DecodeChainQueryReg(request.payload));
  if (query_ids_.count(msg.query_name) != 0) {
    return MakeFrame(MessageType::kRegistered, msg.query_name);
  }
  query::ChainJoinQuerySpec spec;
  spec.relations = msg.relations;
  switch (msg.method) {
    case static_cast<uint32_t>(query::ChainJoinQuerySpec::Method::kAgmsGrid):
      spec.method = query::ChainJoinQuerySpec::Method::kAgmsGrid;
      break;
    case static_cast<uint32_t>(
        query::ChainJoinQuerySpec::Method::kHashSketch):
      spec.method = query::ChainJoinQuerySpec::Method::kHashSketch;
      break;
    default:
      return InvalidArgumentError("unknown chain-join method " +
                                  std::to_string(msg.method));
  }
  spec.num_means = msg.num_means;
  spec.num_medians = msg.num_medians;
  spec.num_tables = msg.num_tables;
  spec.num_buckets = msg.num_buckets;
  SKIMJOIN_ASSIGN_OR_RETURN(query::QueryId id,
                            engine_.AddChainJoinQuery(spec, msg.seed));
  query_ids_[msg.query_name] = id;
  return MakeFrame(MessageType::kRegistered, msg.query_name);
}

StatusOr<Frame> Worker::HandleUpdateRelation(const Frame& request) {
  SKIMJOIN_ASSIGN_OR_RETURN(RelationUpdateMsg msg,
                            DecodeRelationUpdate(request.payload));
  for (const RelationUpdateMsg::Tuple& tuple : msg.tuples) {
    SKIMJOIN_RETURN_IF_ERROR(
        engine_.UpdateRelation(msg.relation, tuple.attributes, tuple.weight));
  }
  ++epoch_;
  ++batches_since_checkpoint_;
  HelloReply ack;
  ack.shard_name = options_.shard_name;
  ack.incarnation = incarnation_;
  ack.epoch = epoch_;
  return MakeFrame(MessageType::kUpdateAck, EncodeHelloReply(ack));
}

StatusOr<Frame> Worker::HandleMetricsRequest(const Frame& request) {
  (void)request;
  // Serve() is the engine's writer thread, so the full gauge-refreshing
  // snapshot is safe here.
  return MakeFrame(MessageType::kMetricsSnapshot,
                   EncodeMetricsSnapshot(engine_.MetricsSnapshot()));
}

StatusOr<Frame> Worker::HandleEventsRequest(const Frame& request) {
  SKIMJOIN_ASSIGN_OR_RETURN(EventsRequest msg,
                            DecodeEventsRequest(request.payload));
  const uint64_t cap =
      msg.max_events == 0
          ? EventLog::kDefaultRingCapacity
          : std::min<uint64_t>(msg.max_events, kMaxWireBatchElements);
  EventBatchMsg batch;
  for (LogEvent& event : EventLog::Global().Tail(cap)) {
    if (event.sequence > msg.after_sequence) {
      batch.events.push_back(std::move(event));
    }
  }
  return MakeFrame(MessageType::kEventBatch, EncodeEventBatch(batch));
}

StatusOr<Frame> Worker::HandleTraceControl(const Frame& request) {
  SKIMJOIN_ASSIGN_OR_RETURN(TraceControlMsg msg,
                            DecodeTraceControl(request.payload));
  if (msg.enable) {
    metrics::TraceRecorder::Global().Enable();
  } else {
    metrics::TraceRecorder::Global().Disable();
  }
  return MakeFrame(MessageType::kRegistered, "trace");
}

StatusOr<Frame> Worker::HandleTraceRequest(const Frame& request) {
  (void)request;
  TraceEventsMsg msg;
  msg.events = metrics::TraceRecorder::Global().DrainEvents(&msg.dropped);
  msg.now_micros = metrics::TraceRecorder::Global().NowMicros();
  return MakeFrame(MessageType::kTraceEvents, EncodeTraceEvents(msg));
}

StatusOr<Frame> Worker::HandleHealthRequest(const Frame& request) {
  (void)request;
  // Serve() is the engine's writer thread, so the full (estimate-priced,
  // read-only) health pass is safe here. Only the findings travel — the
  // coordinator's fleet doctor aggregates those; profiles and probes stay
  // inspectable worker-side.
  HealthReportMsg msg;
  msg.findings = engine_.HealthReport().findings;
  return MakeFrame(MessageType::kHealthReport, EncodeHealthReport(msg));
}

StatusOr<Frame> Worker::HandleUpdateBatch(const Frame& request) {
  SKIMJOIN_ASSIGN_OR_RETURN(UpdateBatchMsg msg,
                            DecodeUpdateBatch(request.payload));
  SKIMJOIN_RETURN_IF_ERROR(engine_.UpdateBatch(
      msg.stream, std::span<const query::StreamUpdate>(msg.updates)));
  ++epoch_;
  ++batches_since_checkpoint_;
  if (options_.checkpoint_every_batches > 0 &&
      !options_.checkpoint_path.empty() &&
      batches_since_checkpoint_ >= options_.checkpoint_every_batches) {
    // The batch is already applied; a failed auto-checkpoint must not turn
    // into a NACK (the coordinator would re-send and double-apply). Log
    // and ack — the next checkpoint attempt covers the same state.
    const Status saved = Checkpoint();
    if (!saved.ok()) {
      EventLog::Global().Emit(LogLevel::kWarn, "checkpoint_failed",
                              {{"shard", options_.shard_name},
                               {"error", saved.ToString()}});
    }
  }
  HelloReply ack;
  ack.shard_name = options_.shard_name;
  ack.incarnation = incarnation_;
  ack.epoch = epoch_;
  return MakeFrame(MessageType::kUpdateAck, EncodeHelloReply(ack));
}

StatusOr<Frame> Worker::HandlePullDelta(const Frame& request) {
  const std::string name(request.payload);
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(name, "query name"));
  const auto it = query_ids_.find(name);
  if (it == query_ids_.end()) {
    return NotFoundError("unknown query '" + name + "' on shard " +
                         options_.shard_name);
  }
  DeltaMsg delta;
  delta.query_name = name;
  delta.incarnation = incarnation_;
  delta.epoch = epoch_;
  SKIMJOIN_RETURN_IF_ERROR(
      engine_.SerializeQuerySynopsis(it->second, &delta.synopsis));
  return MakeFrame(MessageType::kDelta, EncodeDelta(delta));
}

StatusOr<Frame> Worker::Handle(const Frame& request) {
  // Adopt the caller's trace context from the frame header: every span
  // opened while handling this request — including the engine's own ingest
  // and checkpoint spans — becomes a child of the coordinator's RPC span,
  // so a merged fleet trace shows the call fanning into this shard.
  metrics::ScopedTraceContext adopt(metrics::TraceContext{
      request.trace_id, request.span_id, request.parent_span_id});
  switch (static_cast<MessageType>(request.type)) {
    case MessageType::kHello:
    case MessageType::kPing:
      return HelloFrame();
    case MessageType::kRegisterStream:
      return HandleRegisterStream(request);
    case MessageType::kRegisterJoinQuery:
      return HandleRegisterJoinQuery(request);
    case MessageType::kRegisterFrequencyQuery:
      return HandleRegisterFrequencyQuery(request);
    case MessageType::kRegisterRelation:
      return HandleRegisterRelation(request);
    case MessageType::kRegisterChainQuery:
      return HandleRegisterChainQuery(request);
    case MessageType::kUpdateBatch: {
      metrics::TraceSpan span("worker.ingest", "dist");
      return HandleUpdateBatch(request);
    }
    case MessageType::kUpdateRelation: {
      metrics::TraceSpan span("worker.ingest_relation", "dist");
      return HandleUpdateRelation(request);
    }
    case MessageType::kPullDelta: {
      metrics::TraceSpan span("worker.delta", "dist");
      return HandlePullDelta(request);
    }
    case MessageType::kMetricsRequest:
      return HandleMetricsRequest(request);
    case MessageType::kEventsRequest:
      return HandleEventsRequest(request);
    case MessageType::kTraceControl:
      return HandleTraceControl(request);
    case MessageType::kTraceRequest:
      return HandleTraceRequest(request);
    case MessageType::kHealthRequest:
      return HandleHealthRequest(request);
    case MessageType::kCheckpoint: {
      metrics::TraceSpan span("worker.checkpoint", "dist");
      SKIMJOIN_RETURN_IF_ERROR(Checkpoint());
      HelloReply ack;
      ack.shard_name = options_.shard_name;
      ack.incarnation = incarnation_;
      ack.epoch = epoch_;
      return MakeFrame(MessageType::kCheckpointAck, EncodeHelloReply(ack));
    }
    default:
      return InvalidArgumentError("unknown message type " +
                                  std::to_string(request.type));
  }
}

Status Worker::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    // A connection accepted below is NOT in pfds this round — remember how
    // many were polled so the service loop never indexes past the array; a
    // fresh connection's first request is picked up on the next iteration.
    const size_t polled = connections_.size();
    std::vector<pollfd> pfds(polled + 1);
    pfds[0].fd = listener_.fd();
    pfds[0].events = POLLIN;
    for (size_t i = 0; i < polled; ++i) {
      pfds[i + 1].fd = connections_[i].fd();
      pfds[i + 1].events = POLLIN;
    }
    const int ready =
        ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 50);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoError(std::string("worker poll failed: ") +
                     std::strerror(errno));
    }
    if (ready == 0) continue;
    if ((pfds[0].revents & POLLIN) != 0) {
      StatusOr<FrameChannel> accepted =
          listener_.Accept(DeadlineAfter(std::chrono::milliseconds(100)));
      if (accepted.ok()) connections_.push_back(*std::move(accepted));
    }
    for (size_t i = 0; i < polled; ++i) {
      if ((pfds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      FrameChannel& conn = connections_[i];
      StatusOr<Frame> request = conn.Receive(DeadlineAfter(options_.io_timeout));
      if (!request.ok()) {
        // A torn frame, injected fault, or peer hangup poisons only this
        // connection; the coordinator reconnects and retries.
        conn.Close();
        continue;
      }
      StatusOr<Frame> reply = Handle(*request);
      Frame out = reply.ok() ? *std::move(reply)
                             : MakeFrame(MessageType::kError,
                                         EncodeError(reply.status()));
      const Status sent = conn.Send(out.type, out.payload,
                                    DeadlineAfter(options_.io_timeout));
      if (!sent.ok()) conn.Close();
    }
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const FrameChannel& c) { return !c.valid(); }),
        connections_.end());
  }
  return OkStatus();
}

}  // namespace dist
}  // namespace skimjoin
