// The wire layer of the distributed skimjoin runtime (DESIGN.md §12): a
// CRC-framed, length-prefixed message format over Unix-domain stream
// sockets, with every blocking operation bounded by an explicit deadline.
//
// Frame layout, version 1 (all integers little-endian u32):
//   [magic 'SKJF'][type][payload_len][crc32c(type_le || payload)][payload]
// Version 2 appends a Dapper-style trace context (little-endian u64s):
//   [magic 'SKJ2'][type][payload_len][crc][trace_id][span_id]
//   [parent_span_id][payload]
// where the CRC covers type_le || trace_id_le || span_id_le ||
// parent_span_id_le || payload. The version is the 4th magic byte ('F' or
// '2'); the first three bytes stay 'S','K','J' so resync behavior is
// identical. Encoders emit v1 whenever the trace context is all-zero —
// an untraced fleet produces byte-identical wire traffic to the v1-only
// protocol — and decoders accept both versions unconditionally.
//
// The 16-byte (v1) / 40-byte (v2) header is validated BEFORE the payload
// is buffered: a frame declaring more than kMaxFramePayload bytes is
// rejected without allocation, so a corrupt length word can never balloon
// memory. The CRC covers everything past the length word, so a flipped bit
// anywhere past the magic fails closed (the magic itself is the resync
// sentinel — a flipped magic byte reads as "not a frame at all").
//
// Failure injection mirrors util/durable_file's durable:* discipline —
// hooks compiled into the shipped path, zero-cost while inactive:
//   dist:send       torn frame: CheckWrite caps the bytes handed to the
//                   socket, then surfaces the injected status
//   dist:recv       injected receive failure at Receive entry
//   dist:frame-crc  corrupts one CRC byte of an outgoing frame (the frame
//                   is sent whole; the RECEIVER's validation must catch it)
//
// Deadlines are steady-clock points, not durations, so one deadline bounds
// a whole multi-step exchange (connect + send + receive) end to end. A
// missed deadline surfaces as a Status whose message starts with
// "deadline exceeded" (IsDeadlineExceeded) — callers distinguish slowness
// from corruption without a new status code.

#ifndef SKIMJOIN_DIST_FRAME_H_
#define SKIMJOIN_DIST_FRAME_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace skimjoin {
namespace dist {

/// 'SKJF' as a little-endian u32 (frame version 1, no trace context).
constexpr uint32_t kFrameMagic = 0x464A4B53;
/// 'SKJ2' as a little-endian u32 (frame version 2, trace context header).
constexpr uint32_t kFrameMagicV2 = 0x324A4B53;
constexpr size_t kFrameHeaderBytes = 16;
constexpr size_t kFrameHeaderBytesV2 = 40;
/// Hard payload cap, enforced before any payload allocation.
constexpr size_t kMaxFramePayload = size_t{16} << 20;

/// One decoded frame. The trace ids are all-zero for a v1 frame (or a v2
/// frame sent without a context, which encoders never produce).
struct Frame {
  uint32_t type = 0;
  std::string payload;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
};

/// Encodes one complete frame (header + payload): v1 when the trace ids
/// are all zero, v2 otherwise.
std::string EncodeFrame(uint32_t type, std::string_view payload,
                        uint64_t trace_id = 0, uint64_t span_id = 0,
                        uint64_t parent_span_id = 0);

/// Incremental decoder over a receive buffer. Returns:
///   * a Frame and sets *consumed to the bytes it spans — a complete,
///     CRC-valid frame was at the front of `buffer`;
///   * nullopt with *consumed == 0 — the buffer holds a valid prefix but
///     not yet a whole frame (read more bytes and retry);
///   * InvalidArgument — the buffer can never become a valid frame (bad
///     magic, oversized length, CRC mismatch). The connection is poisoned.
StatusOr<std::optional<Frame>> TryDecodeFrame(std::string_view buffer,
                                              size_t* consumed);

/// Deadlines are absolute points on the steady clock.
using Deadline = std::chrono::steady_clock::time_point;

/// The deadline `timeout` from now.
Deadline DeadlineAfter(std::chrono::milliseconds timeout);

/// True when `status` reports a missed deadline (message-prefix tagged,
/// same scheme as failpoint::IsSimulatedCrash).
bool IsDeadlineExceeded(const Status& status);

/// A connected stream socket speaking frames. Move-only; owns the fd
/// (nonblocking) and an internal receive buffer.
class FrameChannel {
 public:
  FrameChannel() = default;
  /// Takes ownership of `fd` and switches it to nonblocking mode.
  explicit FrameChannel(int fd);

  FrameChannel(FrameChannel&& other) noexcept;
  FrameChannel& operator=(FrameChannel&& other) noexcept;
  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;
  ~FrameChannel();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Sends one whole frame before `deadline`. On any error (deadline, peer
  /// gone, injected fault) the channel may hold a torn frame mid-wire and
  /// must not be reused — callers Close() and reconnect. A non-zero trace
  /// context upgrades the frame to v2 so the ids ride in the header.
  Status Send(uint32_t type, std::string_view payload, Deadline deadline,
              uint64_t trace_id = 0, uint64_t span_id = 0,
              uint64_t parent_span_id = 0);

  /// Receives one whole frame before `deadline`. IoError with "connection
  /// closed by peer" on clean EOF; InvalidArgument (from TryDecodeFrame) on
  /// a corrupt byte stream.
  StatusOr<Frame> Receive(Deadline deadline);

  /// True when bytes already read off the socket are waiting in the
  /// internal buffer (a following frame, or a partial one).
  bool HasBufferedData() const { return !buffer_.empty(); }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Connects to a Unix-domain listener. The whole connect (including the
/// in-progress wait on a nonblocking socket) is bounded by `deadline`.
StatusOr<FrameChannel> ConnectUnix(const std::string& socket_path,
                                   Deadline deadline);

/// A Unix-domain listening socket. Unlinks any stale socket file before
/// binding, so a restarted worker re-adopts its old address.
class Listener {
 public:
  static StatusOr<Listener> Create(const std::string& socket_path);

  /// An invalid (unbound) listener, for delayed initialization.
  Listener() = default;

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  const std::string& path() const { return path_; }

  /// Accepts one pending connection, waiting at most until `deadline`
  /// ("deadline exceeded" when none arrives).
  StatusOr<FrameChannel> Accept(Deadline deadline);

 private:
  Listener(int fd, std::string path);
  void Close();

  int fd_ = -1;
  std::string path_;
};

}  // namespace dist
}  // namespace skimjoin

#endif  // SKIMJOIN_DIST_FRAME_H_
