#include "dist/frame.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/durable_file.h"
#include "util/failpoint.h"

namespace skimjoin {
namespace dist {

namespace {

constexpr char kDeadlinePrefix[] = "deadline exceeded";

Status DeadlineError(const char* what) {
  return Status(StatusCode::kIoError,
                std::string(kDeadlinePrefix) + " while " + what);
}

void PutU32(std::string* out, uint32_t value) {
  out->push_back(static_cast<char>(value & 0xFF));
  out->push_back(static_cast<char>((value >> 8) & 0xFF));
  out->push_back(static_cast<char>((value >> 16) & 0xFF));
  out->push_back(static_cast<char>((value >> 24) & 0xFF));
}

uint32_t GetU32(std::string_view bytes, size_t offset) {
  return static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset])) |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 1]))
             << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 2]))
             << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 3]))
             << 24;
}

void PutU64(std::string* out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

uint64_t GetU64(std::string_view bytes, size_t offset) {
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) |
            static_cast<unsigned char>(bytes[offset + static_cast<size_t>(i)]);
  }
  return value;
}

uint32_t FrameCrc(uint32_t type, std::string_view payload) {
  std::string type_le;
  PutU32(&type_le, type);
  return util::Crc32c(payload, util::Crc32c(type_le));
}

// v2 CRC: type word, then the three trace-context words, then the payload
// — every header byte past the length word is covered.
uint32_t FrameCrcV2(uint32_t type, uint64_t trace_id, uint64_t span_id,
                    uint64_t parent_span_id, std::string_view payload) {
  std::string covered;
  covered.reserve(28);
  PutU32(&covered, type);
  PutU64(&covered, trace_id);
  PutU64(&covered, span_id);
  PutU64(&covered, parent_span_id);
  return util::Crc32c(payload, util::Crc32c(covered));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return IoError(std::string("fcntl(O_NONBLOCK) failed: ") +
                   std::strerror(errno));
  }
  return OkStatus();
}

/// Waits for `events` on `fd` until `deadline`. OK when ready; a
/// deadline-exceeded status otherwise.
Status WaitReady(int fd, short events, Deadline deadline, const char* what) {
  while (true) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return DeadlineError(what);
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    // poll() rounds toward zero; always wait at least 1ms so a sub-ms
    // remainder does not degenerate into a busy spin.
    const int timeout_ms =
        static_cast<int>(std::max<int64_t>(1, remaining.count()));
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoError(std::string("poll failed: ") + std::strerror(errno));
    }
    if (ready > 0) return OkStatus();
    // Timed out this round; loop re-checks the deadline.
  }
}

Status FillSockaddr(const std::string& socket_path, sockaddr_un* addr) {
  if (socket_path.empty() ||
      socket_path.size() >= sizeof(addr->sun_path)) {
    return InvalidArgumentError("unix socket path empty or too long: '" +
                                socket_path + "'");
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, socket_path.c_str(), socket_path.size() + 1);
  return OkStatus();
}

}  // namespace

std::string EncodeFrame(uint32_t type, std::string_view payload,
                        uint64_t trace_id, uint64_t span_id,
                        uint64_t parent_span_id) {
  const bool traced = trace_id != 0 || span_id != 0 || parent_span_id != 0;
  std::string frame;
  if (!traced) {
    frame.reserve(kFrameHeaderBytes + payload.size());
    PutU32(&frame, kFrameMagic);
    PutU32(&frame, type);
    PutU32(&frame, static_cast<uint32_t>(payload.size()));
    PutU32(&frame, FrameCrc(type, payload));
  } else {
    frame.reserve(kFrameHeaderBytesV2 + payload.size());
    PutU32(&frame, kFrameMagicV2);
    PutU32(&frame, type);
    PutU32(&frame, static_cast<uint32_t>(payload.size()));
    PutU32(&frame,
           FrameCrcV2(type, trace_id, span_id, parent_span_id, payload));
    PutU64(&frame, trace_id);
    PutU64(&frame, span_id);
    PutU64(&frame, parent_span_id);
  }
  frame.append(payload);
  return frame;
}

StatusOr<std::optional<Frame>> TryDecodeFrame(std::string_view buffer,
                                              size_t* consumed) {
  *consumed = 0;
  // A partial header can still be rejected early once the magic is
  // known-wrong — no point waiting for a full header of garbage. The first
  // three bytes are shared by both versions; the 4th selects one.
  for (size_t i = 0; i < buffer.size() && i < 3; ++i) {
    if (static_cast<unsigned char>(buffer[i]) !=
        ((kFrameMagic >> (8 * i)) & 0xFF)) {
      return InvalidArgumentError("bad frame magic");
    }
  }
  if (buffer.size() >= 4) {
    const unsigned char version_byte = static_cast<unsigned char>(buffer[3]);
    if (version_byte != ((kFrameMagic >> 24) & 0xFF) &&
        version_byte != ((kFrameMagicV2 >> 24) & 0xFF)) {
      return InvalidArgumentError("bad frame magic");
    }
  }
  if (buffer.size() < kFrameHeaderBytes) return std::optional<Frame>();
  const uint32_t magic = GetU32(buffer, 0);
  const size_t header_bytes =
      magic == kFrameMagicV2 ? kFrameHeaderBytesV2 : kFrameHeaderBytes;
  const uint32_t type = GetU32(buffer, 4);
  const uint32_t payload_len = GetU32(buffer, 8);
  const uint32_t declared_crc = GetU32(buffer, 12);
  if (payload_len > kMaxFramePayload) {
    return InvalidArgumentError(
        "frame declares " + std::to_string(payload_len) +
        " payload bytes, above the " + std::to_string(kMaxFramePayload) +
        " cap");
  }
  if (buffer.size() < header_bytes + payload_len) {
    return std::optional<Frame>();
  }
  Frame frame;
  frame.type = type;
  if (magic == kFrameMagicV2) {
    frame.trace_id = GetU64(buffer, 16);
    frame.span_id = GetU64(buffer, 24);
    frame.parent_span_id = GetU64(buffer, 32);
  }
  const std::string_view payload = buffer.substr(header_bytes, payload_len);
  const uint32_t computed_crc =
      magic == kFrameMagicV2
          ? FrameCrcV2(type, frame.trace_id, frame.span_id,
                       frame.parent_span_id, payload)
          : FrameCrc(type, payload);
  if (computed_crc != declared_crc) {
    return InvalidArgumentError("frame crc mismatch");
  }
  frame.payload.assign(payload);
  *consumed = header_bytes + payload_len;
  return std::optional<Frame>(std::move(frame));
}

Deadline DeadlineAfter(std::chrono::milliseconds timeout) {
  return std::chrono::steady_clock::now() + timeout;
}

bool IsDeadlineExceeded(const Status& status) {
  return !status.ok() && status.message().rfind(kDeadlinePrefix, 0) == 0;
}

FrameChannel::FrameChannel(int fd) : fd_(fd) {
  if (fd_ >= 0) {
    const Status status = SetNonBlocking(fd_);
    (void)status;  // poll-based I/O still works on a blocking fd
  }
}

FrameChannel::FrameChannel(FrameChannel&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
  other.buffer_.clear();
}

FrameChannel& FrameChannel::operator=(FrameChannel&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
    other.buffer_.clear();
  }
  return *this;
}

FrameChannel::~FrameChannel() { Close(); }

void FrameChannel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status FrameChannel::Send(uint32_t type, std::string_view payload,
                          Deadline deadline, uint64_t trace_id,
                          uint64_t span_id, uint64_t parent_span_id) {
  if (fd_ < 0) return FailedPreconditionError("send on a closed channel");
  std::string frame =
      EncodeFrame(type, payload, trace_id, span_id, parent_span_id);
  // dist:frame-crc corrupts one CRC byte but SENDS THE WHOLE FRAME — the
  // fault this models is in-flight corruption, which only the receiver's
  // validation can catch.
  if (!failpoint::Check("dist:frame-crc").ok() && frame.size() > 12) {
    frame[12] = static_cast<char>(frame[12] ^ 0x01);
  }
  // dist:send models a torn send: only `allowed_bytes` reach the socket and
  // the injected status surfaces afterwards, leaving a half frame on the
  // wire exactly as a mid-send crash would.
  const auto outcome = failpoint::CheckWrite("dist:send", frame.size());
  size_t offset = 0;
  while (offset < outcome.allowed_bytes) {
    SKIMJOIN_RETURN_IF_ERROR(WaitReady(fd_, POLLOUT, deadline, "sending frame"));
    const ssize_t written =
        ::send(fd_, frame.data() + offset, outcome.allowed_bytes - offset,
               MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return IoError(std::string("send failed: ") + std::strerror(errno));
    }
    offset += static_cast<size_t>(written);
  }
  return outcome.status;
}

StatusOr<Frame> FrameChannel::Receive(Deadline deadline) {
  if (fd_ < 0) return FailedPreconditionError("receive on a closed channel");
  SKIMJOIN_RETURN_IF_ERROR(failpoint::Check("dist:recv"));
  while (true) {
    size_t consumed = 0;
    StatusOr<std::optional<Frame>> decoded = TryDecodeFrame(buffer_, &consumed);
    SKIMJOIN_RETURN_IF_ERROR(decoded.status());
    if (decoded->has_value()) {
      buffer_.erase(0, consumed);
      return std::move(**decoded);
    }
    SKIMJOIN_RETURN_IF_ERROR(
        WaitReady(fd_, POLLIN, deadline, "receiving frame"));
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return IoError(std::string("recv failed: ") + std::strerror(errno));
    }
    if (got == 0) return IoError("connection closed by peer");
    buffer_.append(chunk, static_cast<size_t>(got));
  }
}

StatusOr<FrameChannel> ConnectUnix(const std::string& socket_path,
                                   Deadline deadline) {
  sockaddr_un addr;
  SKIMJOIN_RETURN_IF_ERROR(FillSockaddr(socket_path, &addr));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return IoError(std::string("socket() failed: ") + std::strerror(errno));
  }
  FrameChannel channel(fd);  // takes ownership; sets nonblocking
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      return IoError("connect to '" + socket_path +
                     "' failed: " + std::strerror(errno));
    }
    SKIMJOIN_RETURN_IF_ERROR(
        WaitReady(fd, POLLOUT, deadline, "connecting to worker"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      return IoError("connect to '" + socket_path +
                     "' failed: " + std::strerror(err != 0 ? err : errno));
    }
  }
  return channel;
}

Listener::Listener(int fd, std::string path)
    : fd_(fd), path_(std::move(path)) {}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

Listener::~Listener() { Close(); }

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

StatusOr<Listener> Listener::Create(const std::string& socket_path) {
  sockaddr_un addr;
  SKIMJOIN_RETURN_IF_ERROR(FillSockaddr(socket_path, &addr));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return IoError(std::string("socket() failed: ") + std::strerror(errno));
  }
  Listener listener(fd, socket_path);
  // A restarted worker must re-adopt its advertised address; a stale socket
  // file from the previous incarnation would otherwise fail the bind.
  ::unlink(socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    return IoError("bind to '" + socket_path +
                   "' failed: " + std::strerror(errno));
  }
  if (::listen(fd, 16) < 0) {
    return IoError(std::string("listen failed: ") + std::strerror(errno));
  }
  SKIMJOIN_RETURN_IF_ERROR(SetNonBlocking(fd));
  return listener;
}

StatusOr<FrameChannel> Listener::Accept(Deadline deadline) {
  if (fd_ < 0) return FailedPreconditionError("accept on a closed listener");
  while (true) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) return FrameChannel(conn);
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      return IoError(std::string("accept failed: ") + std::strerror(errno));
    }
    SKIMJOIN_RETURN_IF_ERROR(
        WaitReady(fd_, POLLIN, deadline, "accepting connection"));
  }
}

}  // namespace dist
}  // namespace skimjoin
