#include "dist/coordinator.h"

#include <unistd.h>

#include <algorithm>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "core/skimmed_sketch.h"
#include "query/multi_join.h"
#include "query/multi_join_hash.h"
#include "util/event_log.h"
#include "util/logging.h"

namespace skimjoin {
namespace dist {

namespace {

/// Builds a join-kind query's wire registration from its recorded spec.
JoinQueryReg RegFromJoinSpec(const std::string& wire_name,
                             const query::JoinQuerySpec& spec, uint64_t seed) {
  JoinQueryReg reg;
  reg.query_name = wire_name;
  reg.left_stream = spec.left_stream;
  reg.right_stream = spec.right_stream;
  reg.self_join = false;
  reg.kind = static_cast<uint32_t>(spec.estimator.kind);
  reg.space_counters = spec.estimator.space_counters;
  reg.num_tables = spec.estimator.num_tables;
  reg.agms_num_medians = spec.estimator.agms_num_medians;
  reg.threshold_scale = spec.estimator.threshold_scale;
  reg.recurse_slack = spec.estimator.recurse_slack;
  reg.skim_margin = spec.estimator.skim_margin;
  reg.skimmed_use_dyadic = spec.estimator.skimmed_use_dyadic;
  reg.seed = seed;
  return reg;
}

/// Records wall time from construction until scope exit into a latency
/// histogram (nanoseconds). Covers the WHOLE retrying RPC, backoffs
/// included — the operator-facing number is "how long did this call keep
/// the coordinator busy", not per-attempt socket time.
class LatencyScope {
 public:
  explicit LatencyScope(metrics::ShardedHistogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~LatencyScope() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

 private:
  metrics::ShardedHistogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

const char* Coordinator::RpcTypeName(MessageType type) {
  switch (type) {
    case MessageType::kHello:
      return "hello";
    case MessageType::kHelloReply:
      return "hello_reply";
    case MessageType::kRegisterStream:
      return "register_stream";
    case MessageType::kRegisterJoinQuery:
      return "register_join_query";
    case MessageType::kRegisterFrequencyQuery:
      return "register_frequency_query";
    case MessageType::kRegistered:
      return "registered";
    case MessageType::kUpdateBatch:
      return "update_batch";
    case MessageType::kUpdateAck:
      return "update_ack";
    case MessageType::kPullDelta:
      return "pull_delta";
    case MessageType::kDelta:
      return "delta";
    case MessageType::kCheckpoint:
      return "checkpoint";
    case MessageType::kCheckpointAck:
      return "checkpoint_ack";
    case MessageType::kPing:
      return "ping";
    case MessageType::kError:
      return "error";
    case MessageType::kRegisterRelation:
      return "register_relation";
    case MessageType::kRegisterChainQuery:
      return "register_chain_query";
    case MessageType::kUpdateRelation:
      return "update_relation";
    case MessageType::kMetricsRequest:
      return "metrics_request";
    case MessageType::kMetricsSnapshot:
      return "metrics_snapshot";
    case MessageType::kEventsRequest:
      return "events_request";
    case MessageType::kEventBatch:
      return "event_batch";
    case MessageType::kTraceControl:
      return "trace_control";
    case MessageType::kTraceRequest:
      return "trace_request";
    case MessageType::kTraceEvents:
      return "trace_events";
    case MessageType::kHealthRequest:
      return "health_request";
    case MessageType::kHealthReport:
      return "health_report";
  }
  return "unknown";
}

metrics::ShardedHistogram* Coordinator::RpcLatencyHistogram(MessageType type) {
  const uint32_t key = static_cast<uint32_t>(type);
  const auto it = rpc_latency_.find(key);
  if (it != rpc_latency_.end()) return it->second;
  const std::string name =
      std::string("dist.rpc.") + RpcTypeName(type) + ".latency_ns";
  metrics::ShardedHistogram* histogram = metrics_.GetHistogram(name);
  metrics_.SetHelp(name,
                   std::string("End-to-end latency of ") + RpcTypeName(type) +
                       " RPCs in nanoseconds, retries and backoff included.");
  rpc_latency_[key] = histogram;
  return histogram;
}

const char* Coordinator::HealthName(Health health) {
  switch (health) {
    case Health::kHealthy:
      return "healthy";
    case Health::kRecovering:
      return "recovering";
    case Health::kDown:
      return "down";
  }
  return "unknown";
}

Coordinator::Coordinator(std::vector<ShardAddress> shards,
                         CoordinatorOptions options)
    : options_(options), jitter_rng_(options.jitter_seed) {
  SKIMJOIN_CHECK(!shards.empty()) << "coordinator needs at least one shard";
  if (options_.rpc_attempts < 1) options_.rpc_attempts = 1;
  shards_.reserve(shards.size());
  for (ShardAddress& address : shards) {
    auto shard = std::make_unique<ShardState>();
    const std::string prefix = "dist." + address.name + ".";
    shard->rpc_calls = metrics_.GetCounter(prefix + "rpc_calls");
    metrics_.SetHelp(prefix + "rpc_calls",
                     "RPC attempts sent to this shard (retries included).");
    shard->rpc_retries = metrics_.GetCounter(prefix + "rpc_retries");
    metrics_.SetHelp(prefix + "rpc_retries",
                     "RPC attempts beyond the first, after backoff.");
    shard->rpc_failures = metrics_.GetCounter(prefix + "rpc_failures");
    metrics_.SetHelp(prefix + "rpc_failures",
                     "RPCs that exhausted every attempt against this shard.");
    shard->delta_bytes = metrics_.GetCounter(prefix + "delta_bytes");
    metrics_.SetHelp(prefix + "delta_bytes",
                     "Synopsis delta payload bytes pulled from this shard.");
    shard->health_gauge = metrics_.GetGauge(prefix + "health");
    metrics_.SetHelp(prefix + "health",
                     "Shard health: 0 healthy, 1 recovering, 2 down.");
    shard->epoch_gauge = metrics_.GetGauge(prefix + "acked_epoch");
    metrics_.SetHelp(prefix + "acked_epoch",
                     "Highest update-batch epoch this shard has acknowledged.");
    shard->address = std::move(address);
    shards_.push_back(std::move(shard));
  }
}

void Coordinator::PublishHealth(ShardState& shard) {
  shard.health_gauge->Set(static_cast<double>(static_cast<int>(shard.health)));
  shard.epoch_gauge->Set(static_cast<double>(shard.last_acked_epoch));
}

void Coordinator::MarkFailure(ShardState& shard, const Status& status) {
  shard.channel.Close();
  shard.rpc_failures->Increment();
  ++shard.consecutive_failures;
  if (shard.health != Health::kDown &&
      shard.consecutive_failures >= options_.down_after_failures) {
    shard.health = Health::kDown;
    EventLog::Global().Emit(LogLevel::kWarn, "worker_down",
                            {{"shard", shard.address.name},
                             {"error", status.ToString()}});
  }
  PublishHealth(shard);
}

void Coordinator::MarkSuccess(ShardState& shard) {
  shard.consecutive_failures = 0;
  if (shard.health == Health::kDown) shard.health = Health::kRecovering;
  PublishHealth(shard);
}

Status Coordinator::EnsureConnected(ShardState& shard) {
  if (shard.channel.valid()) return OkStatus();
  const Deadline deadline = DeadlineAfter(options_.rpc_timeout);
  SKIMJOIN_ASSIGN_OR_RETURN(shard.channel,
                            ConnectUnix(shard.address.socket_path, deadline));
  metrics::TraceRecorder& recorder = metrics::TraceRecorder::Global();
  const uint64_t hello_sent = recorder.NowMicros();
  SKIMJOIN_ASSIGN_OR_RETURN(
      Frame hello,
      Call(shard.channel, MessageType::kHello, "", deadline));
  const uint64_t hello_received = recorder.NowMicros();
  if (hello.type != static_cast<uint32_t>(MessageType::kHelloReply)) {
    return InvalidArgumentError("unexpected hello reply type " +
                                std::to_string(hello.type));
  }
  SKIMJOIN_ASSIGN_OR_RETURN(HelloReply reply, DecodeHelloReply(hello.payload));
  if (reply.trace_clock_micros != 0) {
    // The worker stamped its recorder clock into the reply; assuming a
    // symmetric link, that stamp was taken at the round trip's midpoint on
    // our clock. worker − coordinator, in micros.
    const uint64_t midpoint =
        hello_sent + (hello_received - hello_sent) / 2;
    shard.clock_offset_micros =
        static_cast<int64_t>(reply.trace_clock_micros) -
        static_cast<int64_t>(midpoint);
  }
  if (reply.incarnation != shard.incarnation) {
    // First contact, or the worker restarted from its checkpoint. Replay
    // every recorded registration (idempotent on the worker) so the shard
    // can serve queries again; its data lag shows up as epochs_behind
    // until the lost updates are re-driven.
    for (const RegistrationRecord& record : registrations_) {
      SKIMJOIN_ASSIGN_OR_RETURN(
          Frame ack, Call(shard.channel, record.type, record.payload,
                          DeadlineAfter(options_.rpc_timeout)));
      if (ack.type != static_cast<uint32_t>(MessageType::kRegistered)) {
        return InternalError("registration replay got reply type " +
                             std::to_string(ack.type));
      }
    }
    if (shard.incarnation != 0) {
      EventLog::Global().Emit(
          LogLevel::kInfo, "worker_readopted",
          {{"shard", shard.address.name},
           {"incarnation", std::to_string(reply.incarnation)},
           {"epoch", std::to_string(reply.epoch)}});
      if (shard.health == Health::kDown) shard.health = Health::kRecovering;
    }
    shard.incarnation = reply.incarnation;
    // A restarted worker restarts its event-log sequence numbers; scraping
    // must start over or the fresh events would all look already-seen.
    shard.events_scraped_through = 0;
  }
  PublishHealth(shard);
  return OkStatus();
}

StatusOr<Frame> Coordinator::CallOnce(ShardState& shard, MessageType type,
                                      std::string_view payload) {
  SKIMJOIN_RETURN_IF_ERROR(EnsureConnected(shard));
  shard.rpc_calls->Increment();
  return Call(shard.channel, type, payload,
              DeadlineAfter(options_.rpc_timeout));
}

StatusOr<Frame> Coordinator::Rpc(ShardState& shard, MessageType type,
                                 std::string_view payload) {
  const LatencyScope latency(RpcLatencyHistogram(type));
  Status last = OkStatus();
  for (int attempt = 1; attempt <= options_.rpc_attempts; ++attempt) {
    StatusOr<Frame> reply = CallOnce(shard, type, payload);
    if (reply.ok()) {
      MarkSuccess(shard);
      return reply;
    }
    last = reply.status();
    // A remote application error ("remote: ...") means the RPC itself
    // worked — the worker answered with a Status. Don't burn retries or
    // damn the shard's health for it.
    if (last.message().rfind("remote: ", 0) == 0) {
      MarkSuccess(shard);
      return last;
    }
    MarkFailure(shard, last);
    if (attempt == options_.rpc_attempts) break;
    const int64_t base_ms = options_.backoff_base.count();
    const int64_t capped = std::min<int64_t>(
        options_.backoff_cap.count(),
        base_ms << std::min(attempt - 1, 20));
    const auto backoff = std::chrono::milliseconds(static_cast<int64_t>(
        static_cast<double>(capped) * (0.5 + 0.5 * jitter_rng_.NextDouble())));
    shard.rpc_retries->Increment();
    EventLog::Global().Emit(LogLevel::kInfo, "rpc_retry",
                            {{"shard", shard.address.name},
                             {"attempt", std::to_string(attempt)},
                             {"backoff_ms", std::to_string(backoff.count())},
                             {"error", last.ToString()}});
    std::this_thread::sleep_for(backoff);
  }
  return last;
}

Status Coordinator::Broadcast(MessageType type, const std::string& payload) {
  registrations_.push_back({type, payload});
  Status first_failure = OkStatus();
  for (const auto& shard : shards_) {
    StatusOr<Frame> reply = Rpc(*shard, type, payload);
    if (!reply.ok() && first_failure.ok()) first_failure = reply.status();
  }
  // A shard that missed the broadcast gets it replayed at its next
  // handshake (the record above is what makes that possible), but the
  // caller still learns registration did not reach the whole fleet.
  return first_failure;
}

Status Coordinator::RegisterStream(const query::StreamSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(spec.name, "stream name"));
  if (stream_domains_.count(spec.name) != 0) {
    return AlreadyExistsError("stream '" + spec.name + "' already registered");
  }
  StreamReg reg;
  reg.name = spec.name;
  reg.domain_size = spec.domain_size;
  SKIMJOIN_RETURN_IF_ERROR(
      Broadcast(MessageType::kRegisterStream, EncodeStreamReg(reg)));
  stream_domains_[spec.name] = spec.domain_size;
  return OkStatus();
}

StatusOr<query::QueryId> Coordinator::AddJoinQuery(
    const query::JoinQuerySpec& spec, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spec.left_predicate.has_value() || spec.right_predicate.has_value()) {
    return InvalidArgumentError(
        "predicated join queries are not distributable");
  }
  if (spec.left_input != query::AggregateInput::kCount ||
      spec.right_input != query::AggregateInput::kCount) {
    return InvalidArgumentError(
        "SUM-aggregate join queries are not distributable (wire "
        "registrations carry COUNT inputs only)");
  }
  const auto left = stream_domains_.find(spec.left_stream);
  const auto right = stream_domains_.find(spec.right_stream);
  if (left == stream_domains_.end() || right == stream_domains_.end()) {
    return NotFoundError("join query references an unregistered stream");
  }
  QueryInfo info;
  info.kind = QueryInfo::Kind::kJoin;
  info.join_spec = spec;
  // The merge accumulator must be built from the SAME effective spec the
  // workers use; the engine fills domain_size from the registered streams,
  // so the coordinator does the same from its recorded registrations.
  info.join_spec.estimator.domain_size =
      std::max(left->second, right->second);
  info.seed = seed;
  const query::QueryId id = next_query_id_++;
  info.wire_name = "q" + std::to_string(id);
  SKIMJOIN_RETURN_IF_ERROR(Broadcast(
      MessageType::kRegisterJoinQuery,
      EncodeJoinQueryReg(
          RegFromJoinSpec(info.wire_name, info.join_spec, seed))));
  queries_[id] = std::move(info);
  return id;
}

StatusOr<query::QueryId> Coordinator::AddSelfJoinQuery(
    const query::SelfJoinQuerySpec& spec, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spec.predicate.has_value()) {
    return InvalidArgumentError(
        "predicated self-join queries are not distributable");
  }
  if (spec.input != query::AggregateInput::kCount) {
    return InvalidArgumentError(
        "SUM-aggregate self-join queries are not distributable (wire "
        "registrations carry COUNT inputs only)");
  }
  const auto stream = stream_domains_.find(spec.stream);
  if (stream == stream_domains_.end()) {
    return NotFoundError("self-join query references an unregistered stream");
  }
  QueryInfo info;
  info.kind = QueryInfo::Kind::kSelfJoin;
  info.self_spec = spec;
  info.self_spec.estimator.domain_size = stream->second;
  info.seed = seed;
  const query::QueryId id = next_query_id_++;
  info.wire_name = "q" + std::to_string(id);
  query::JoinQuerySpec as_join;
  as_join.left_stream = spec.stream;
  as_join.right_stream = spec.stream;
  as_join.estimator = info.self_spec.estimator;
  JoinQueryReg reg = RegFromJoinSpec(info.wire_name, as_join, seed);
  reg.self_join = true;
  SKIMJOIN_RETURN_IF_ERROR(
      Broadcast(MessageType::kRegisterJoinQuery, EncodeJoinQueryReg(reg)));
  queries_[id] = std::move(info);
  return id;
}

StatusOr<query::QueryId> Coordinator::AddFrequencyQuery(
    const query::FrequencyQuerySpec& spec, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spec.predicate.has_value()) {
    return InvalidArgumentError(
        "predicated frequency queries are not distributable");
  }
  if (stream_domains_.count(spec.stream) == 0) {
    return NotFoundError("frequency query references an unregistered stream");
  }
  QueryInfo info;
  info.kind = QueryInfo::Kind::kFrequency;
  info.freq_spec = spec;
  info.seed = seed;
  const query::QueryId id = next_query_id_++;
  info.wire_name = "q" + std::to_string(id);
  FrequencyQueryReg reg;
  reg.query_name = info.wire_name;
  reg.stream = spec.stream;
  reg.space_counters = spec.space_counters;
  reg.num_tables = spec.num_tables;
  reg.use_dyadic = spec.use_dyadic;
  reg.seed = seed;
  SKIMJOIN_RETURN_IF_ERROR(Broadcast(MessageType::kRegisterFrequencyQuery,
                                     EncodeFrequencyQueryReg(reg)));
  queries_[id] = std::move(info);
  return id;
}

Status Coordinator::Update(const std::string& stream,
                           const query::StreamUpdate& update) {
  return UpdateBatch(stream,
                     std::span<const query::StreamUpdate>(&update, 1));
}

Status Coordinator::UpdateBatch(const std::string& stream,
                                std::span<const query::StreamUpdate> updates) {
  // Root span of the fan-out: Call() stamps this context into every frame
  // header, so each worker's ingest span joins this trace (inert — and
  // zero wire-format impact — while tracing is off).
  const metrics::TraceSpan span("coordinator.update_batch", "dist");
  std::lock_guard<std::mutex> lock(mutex_);
  if (stream_domains_.count(stream) == 0) {
    return NotFoundError("unknown stream '" + stream + "'");
  }
  // Route each element to value % num_shards, preserving arrival order
  // within a shard. Counter merges commute, so any value-deterministic
  // routing keeps the merged synopsis bit-identical to single-engine
  // ingestion of the same batch.
  std::vector<std::vector<query::StreamUpdate>> routed(shards_.size());
  for (const query::StreamUpdate& update : updates) {
    routed[ShardIndexFor(update.value)].push_back(update);
  }
  Status first_failure = OkStatus();
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (routed[i].empty()) continue;
    UpdateBatchMsg msg;
    msg.stream = stream;
    msg.updates = std::move(routed[i]);
    StatusOr<Frame> reply =
        Rpc(*shards_[i], MessageType::kUpdateBatch, EncodeUpdateBatch(msg));
    if (!reply.ok()) {
      if (first_failure.ok()) first_failure = reply.status();
      continue;
    }
    StatusOr<HelloReply> ack = DecodeHelloReply(reply->payload);
    if (ack.ok()) {
      shards_[i]->last_acked_epoch = ack->epoch;
      PublishHealth(*shards_[i]);
    }
  }
  return first_failure;
}

StatusOr<Coordinator::QueryInfo*> Coordinator::FindQuery(
    query::QueryId query) {
  const auto it = queries_.find(query);
  if (it == queries_.end()) return NotFoundError("unknown query id");
  return &it->second;
}

std::vector<ShardContribution> Coordinator::PullDeltas(query::QueryId query) {
  const QueryInfo& info = queries_.at(query);
  ++pull_round_;
  std::vector<ShardContribution> contributions;
  contributions.reserve(shards_.size());
  for (const auto& shard : shards_) {
    StatusOr<Frame> reply =
        Rpc(*shard, MessageType::kPullDelta, info.wire_name);
    if (reply.ok() &&
        reply->type == static_cast<uint32_t>(MessageType::kDelta)) {
      StatusOr<DeltaMsg> delta = DecodeDelta(reply->payload);
      if (delta.ok() && delta->query_name == info.wire_name) {
        CachedDelta& cached = shard->deltas[query];
        cached.synopsis = std::move(delta->synopsis);
        cached.incarnation = delta->incarnation;
        cached.epoch = delta->epoch;
        cached.round = pull_round_;
        cached.valid = true;
        shard->delta_bytes->Increment(cached.synopsis.size());
        if (shard->health != Health::kHealthy) {
          shard->health = Health::kHealthy;
          shard->consecutive_failures = 0;
          EventLog::Global().Emit(
              LogLevel::kInfo, "worker_restored",
              {{"shard", shard->address.name},
               {"incarnation", std::to_string(cached.incarnation)},
               {"epoch", std::to_string(cached.epoch)}});
        }
        PublishHealth(*shard);
      }
    }
    ShardContribution contribution;
    contribution.shard = shard->address.name;
    contribution.health = HealthName(shard->health);
    const auto it = shard->deltas.find(query);
    if (it != shard->deltas.end() && it->second.valid) {
      contribution.fresh = it->second.round == pull_round_;
      contribution.epoch = it->second.epoch;
      contribution.epochs_behind =
          shard->last_acked_epoch > it->second.epoch
              ? shard->last_acked_epoch - it->second.epoch
              : 0;
    } else {
      // Never pulled anything from this shard: it contributes nothing at
      // all to the merge.
      contribution.fresh = false;
      contribution.epoch = 0;
      contribution.epochs_behind = shard->last_acked_epoch;
    }
    contributions.push_back(std::move(contribution));
  }
  return contributions;
}

StatusOr<std::unique_ptr<core::JoinEstimatorPair>> Coordinator::MergedJoinPair(
    query::QueryId query, const QueryInfo& info) {
  const core::EstimatorSpec& spec = info.kind == QueryInfo::Kind::kJoin
                                        ? info.join_spec.estimator
                                        : info.self_spec.estimator;
  SKIMJOIN_ASSIGN_OR_RETURN(std::unique_ptr<core::JoinEstimatorPair> merged,
                            core::CreateJoinEstimatorPair(spec, info.seed));
  for (const auto& shard : shards_) {
    const auto it = shard->deltas.find(query);
    if (it == shard->deltas.end() || !it->second.valid) continue;
    SKIMJOIN_ASSIGN_OR_RETURN(std::unique_ptr<core::JoinEstimatorPair> piece,
                              core::CreateJoinEstimatorPair(spec, info.seed));
    std::istringstream in(it->second.synopsis);
    SKIMJOIN_RETURN_IF_ERROR(piece->RestoreFrom(in));
    SKIMJOIN_RETURN_IF_ERROR(merged->MergeFrom(*piece));
  }
  return merged;
}

StatusOr<double> Coordinator::AnswerJoin(query::QueryId query) {
  const metrics::TraceSpan span("coordinator.answer_join", "dist");
  std::lock_guard<std::mutex> lock(mutex_);
  SKIMJOIN_ASSIGN_OR_RETURN(QueryInfo * info, FindQuery(query));
  if (info->kind != QueryInfo::Kind::kJoin &&
      info->kind != QueryInfo::Kind::kSelfJoin) {
    return InvalidArgumentError("query is not a (self-)join query");
  }
  PullDeltas(query);
  SKIMJOIN_ASSIGN_OR_RETURN(std::unique_ptr<core::JoinEstimatorPair> merged,
                            MergedJoinPair(query, *info));
  return merged->Estimate();
}

StatusOr<EstimateReport> Coordinator::AnswerJoinWithReport(
    query::QueryId query) {
  const metrics::TraceSpan span("coordinator.answer_join", "dist");
  std::lock_guard<std::mutex> lock(mutex_);
  SKIMJOIN_ASSIGN_OR_RETURN(QueryInfo * info, FindQuery(query));
  if (info->kind != QueryInfo::Kind::kJoin &&
      info->kind != QueryInfo::Kind::kSelfJoin) {
    return InvalidArgumentError("query is not a (self-)join query");
  }
  std::vector<ShardContribution> shards = PullDeltas(query);
  SKIMJOIN_ASSIGN_OR_RETURN(std::unique_ptr<core::JoinEstimatorPair> merged,
                            MergedJoinPair(query, *info));
  SKIMJOIN_ASSIGN_OR_RETURN(EstimateReport report,
                            merged->EstimateWithReport());
  report.partial = false;
  for (const ShardContribution& shard : shards) {
    if (!shard.fresh || shard.epochs_behind > 0) report.partial = true;
  }
  report.shards = std::move(shards);
  return report;
}

StatusOr<int64_t> Coordinator::AnswerPointFrequency(query::QueryId query,
                                                    uint64_t value) {
  const metrics::TraceSpan span("coordinator.answer_point", "dist");
  std::lock_guard<std::mutex> lock(mutex_);
  SKIMJOIN_ASSIGN_OR_RETURN(QueryInfo * info, FindQuery(query));
  if (info->kind != QueryInfo::Kind::kFrequency) {
    return InvalidArgumentError("query is not a frequency query");
  }
  PullDeltas(query);
  std::optional<core::SkimmedSketch> merged;
  for (const auto& shard : shards_) {
    const auto it = shard->deltas.find(query);
    if (it == shard->deltas.end() || !it->second.valid) continue;
    std::istringstream in(it->second.synopsis);
    SKIMJOIN_ASSIGN_OR_RETURN(core::SkimmedSketch piece,
                              core::SkimmedSketch::DeserializeFrom(in));
    if (!merged.has_value()) {
      merged.emplace(std::move(piece));
    } else {
      if (!merged->CompatibleWith(piece)) {
        return InternalError(
            "shard deltas disagree on frequency-sketch configuration");
      }
      merged->Merge(piece);
    }
  }
  if (!merged.has_value()) {
    return FailedPreconditionError(
        "no shard delta available for this frequency query");
  }
  return merged->EstimatePointFrequency(value);
}

Status Coordinator::RegisterRelation(const query::RelationSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(spec.name, "relation name"));
  if (relation_specs_.count(spec.name) != 0) {
    return AlreadyExistsError("relation '" + spec.name +
                              "' already registered");
  }
  if (spec.arity < 1 || spec.arity > 64) {
    return InvalidArgumentError("relation arity must be in [1, 64]");
  }
  RelationReg reg;
  reg.name = spec.name;
  reg.arity = spec.arity;
  reg.domain_size = spec.domain_size;
  SKIMJOIN_RETURN_IF_ERROR(
      Broadcast(MessageType::kRegisterRelation, EncodeRelationReg(reg)));
  relation_specs_[spec.name] = spec;
  return OkStatus();
}

StatusOr<query::QueryId> Coordinator::AddChainJoinQuery(
    const query::ChainJoinQuerySpec& spec, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spec.relations.size() < 2) {
    return InvalidArgumentError("chain join needs at least two relations");
  }
  for (const std::string& relation : spec.relations) {
    if (relation_specs_.count(relation) == 0) {
      return NotFoundError("chain join references unregistered relation '" +
                           relation + "'");
    }
  }
  QueryInfo info;
  info.kind = QueryInfo::Kind::kChain;
  info.chain_spec = spec;
  info.seed = seed;
  const query::QueryId id = next_query_id_++;
  info.wire_name = "q" + std::to_string(id);
  ChainQueryReg reg;
  reg.query_name = info.wire_name;
  reg.relations = spec.relations;
  reg.method = static_cast<uint32_t>(spec.method);
  reg.num_means = spec.num_means;
  reg.num_medians = spec.num_medians;
  reg.num_tables = spec.num_tables;
  reg.num_buckets = spec.num_buckets;
  reg.seed = seed;
  SKIMJOIN_RETURN_IF_ERROR(Broadcast(MessageType::kRegisterChainQuery,
                                     EncodeChainQueryReg(reg)));
  queries_[id] = std::move(info);
  return id;
}

Status Coordinator::UpdateRelation(const std::string& relation,
                                   const std::vector<uint64_t>& attributes,
                                   int64_t weight) {
  const metrics::TraceSpan span("coordinator.update_relation", "dist");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = relation_specs_.find(relation);
  if (it == relation_specs_.end()) {
    return NotFoundError("unknown relation '" + relation + "'");
  }
  if (attributes.size() != it->second.arity) {
    return InvalidArgumentError(
        "tuple arity mismatch: relation '" + relation + "' has arity " +
        std::to_string(it->second.arity) + ", got " +
        std::to_string(attributes.size()) + " attributes");
  }
  // Route by the first attribute. Any value-deterministic routing keeps
  // the merged chain synopsis exact (the counters are linear), and keying
  // on attributes[0] lets tests aim a tuple at a chosen shard the same way
  // stream updates do.
  ShardState& shard = *shards_[ShardIndexFor(attributes[0])];
  RelationUpdateMsg msg;
  msg.relation = relation;
  msg.arity = it->second.arity;
  msg.tuples.push_back({attributes, weight});
  SKIMJOIN_ASSIGN_OR_RETURN(
      Frame reply,
      Rpc(shard, MessageType::kUpdateRelation, EncodeRelationUpdate(msg)));
  StatusOr<HelloReply> ack = DecodeHelloReply(reply.payload);
  if (ack.ok()) {
    shard.last_acked_epoch = ack->epoch;
    PublishHealth(shard);
  }
  return OkStatus();
}

StatusOr<EstimateReport> Coordinator::MergedChainReport(
    query::QueryId query, const QueryInfo& info) {
  if (info.chain_spec.method == query::ChainJoinQuerySpec::Method::kAgmsGrid) {
    std::optional<query::MultiJoinEstimator> merged;
    for (const auto& shard : shards_) {
      const auto it = shard->deltas.find(query);
      if (it == shard->deltas.end() || !it->second.valid) continue;
      std::istringstream in(it->second.synopsis);
      SKIMJOIN_ASSIGN_OR_RETURN(query::MultiJoinEstimator piece,
                                query::MultiJoinEstimator::DeserializeFrom(in));
      if (!merged.has_value()) {
        merged.emplace(std::move(piece));
      } else {
        // MergeFrom validates config and seed — disagreeing shard deltas
        // surface here instead of silently summing incompatible grids.
        SKIMJOIN_RETURN_IF_ERROR(merged->MergeFrom(piece));
      }
    }
    if (!merged.has_value()) {
      return FailedPreconditionError(
          "no shard delta available for this chain-join query");
    }
    return merged->EstimateWithReport();
  }
  std::optional<query::MultiJoinHashEstimator> merged;
  for (const auto& shard : shards_) {
    const auto it = shard->deltas.find(query);
    if (it == shard->deltas.end() || !it->second.valid) continue;
    std::istringstream in(it->second.synopsis);
    SKIMJOIN_ASSIGN_OR_RETURN(
        query::MultiJoinHashEstimator piece,
        query::MultiJoinHashEstimator::DeserializeFrom(in));
    if (!merged.has_value()) {
      merged.emplace(std::move(piece));
    } else {
      SKIMJOIN_RETURN_IF_ERROR(merged->MergeFrom(piece));
    }
  }
  if (!merged.has_value()) {
    return FailedPreconditionError(
        "no shard delta available for this chain-join query");
  }
  return merged->EstimateWithReport();
}

StatusOr<double> Coordinator::AnswerChainJoin(query::QueryId query) {
  const metrics::TraceSpan span("coordinator.answer_chain", "dist");
  std::lock_guard<std::mutex> lock(mutex_);
  SKIMJOIN_ASSIGN_OR_RETURN(QueryInfo * info, FindQuery(query));
  if (info->kind != QueryInfo::Kind::kChain) {
    return InvalidArgumentError("query is not a chain-join query");
  }
  PullDeltas(query);
  SKIMJOIN_ASSIGN_OR_RETURN(EstimateReport report,
                            MergedChainReport(query, *info));
  return report.estimate;
}

StatusOr<EstimateReport> Coordinator::AnswerChainJoinWithReport(
    query::QueryId query) {
  const metrics::TraceSpan span("coordinator.answer_chain", "dist");
  std::lock_guard<std::mutex> lock(mutex_);
  SKIMJOIN_ASSIGN_OR_RETURN(QueryInfo * info, FindQuery(query));
  if (info->kind != QueryInfo::Kind::kChain) {
    return InvalidArgumentError("query is not a chain-join query");
  }
  std::vector<ShardContribution> shards = PullDeltas(query);
  SKIMJOIN_ASSIGN_OR_RETURN(EstimateReport report,
                            MergedChainReport(query, *info));
  report.partial = false;
  for (const ShardContribution& shard : shards) {
    if (!shard.fresh || shard.epochs_behind > 0) report.partial = true;
  }
  report.shards = std::move(shards);
  return report;
}

StatusOr<metrics::Snapshot> Coordinator::FleetMetricsSnapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  // The coordinator's own series stay unlabeled — exactly what a
  // single-process snapshot of this registry would show — and every
  // reachable shard's series are appended as `base{shard="<index>"}`.
  metrics::Snapshot merged = metrics_.TakeSnapshot();
  for (size_t i = 0; i < shards_.size(); ++i) {
    StatusOr<Frame> reply = Rpc(*shards_[i], MessageType::kMetricsRequest, "");
    if (!reply.ok() ||
        reply->type != static_cast<uint32_t>(MessageType::kMetricsSnapshot)) {
      continue;  // a down shard is simply absent from this snapshot
    }
    StatusOr<metrics::Snapshot> remote = DecodeMetricsSnapshot(reply->payload);
    if (!remote.ok()) continue;
    const std::vector<std::pair<std::string, std::string>> labels = {
        {"shard", std::to_string(i)}};
    for (auto& [name, value] : remote->counters) {
      merged.counters.emplace_back(metrics::LabeledName(name, labels), value);
    }
    for (auto& [name, value] : remote->gauges) {
      merged.gauges.emplace_back(metrics::LabeledName(name, labels), value);
    }
    for (auto& [name, value] : remote->histograms) {
      merged.histograms.emplace_back(metrics::LabeledName(name, labels),
                                     std::move(value));
    }
  }
  // Re-establish the sorted-by-name invariant exporters group on (labeled
  // series of one base sort adjacent, sharing one # TYPE family).
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(merged.counters.begin(), merged.counters.end(), by_name);
  std::sort(merged.gauges.begin(), merged.gauges.end(), by_name);
  std::sort(merged.histograms.begin(), merged.histograms.end(), by_name);
  return merged;
}

Status Coordinator::ScrapeFleetEvents() {
  std::lock_guard<std::mutex> lock(mutex_);
  Status first_failure = OkStatus();
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardState& shard = *shards_[i];
    EventsRequest request;
    request.max_events = 0;  // worker default: its whole retained tail
    request.after_sequence = shard.events_scraped_through;
    StatusOr<Frame> reply =
        Rpc(shard, MessageType::kEventsRequest, EncodeEventsRequest(request));
    if (!reply.ok()) {
      if (first_failure.ok()) first_failure = reply.status();
      continue;
    }
    if (reply->type != static_cast<uint32_t>(MessageType::kEventBatch)) {
      continue;
    }
    StatusOr<EventBatchMsg> batch = DecodeEventBatch(reply->payload);
    if (!batch.ok()) {
      if (first_failure.ok()) first_failure = batch.status();
      continue;
    }
    for (LogEvent& event : batch->events) {
      if (event.sequence <= shard.events_scraped_through) continue;
      shard.events_scraped_through = event.sequence;
      // Re-emit into this process's log under a fresh sequence/timestamp,
      // keeping the worker's identity and ordering in the payload.
      std::vector<std::pair<std::string, std::string>> fields =
          std::move(event.fields);
      fields.emplace_back("origin_shard", std::to_string(i));
      fields.emplace_back("origin_seq", std::to_string(event.sequence));
      EventLog::Global().Emit(event.level, std::move(event.event),
                              std::move(fields));
    }
  }
  return first_failure;
}

Status Coordinator::SetFleetTracing(bool enable) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (enable) {
    metrics::TraceRecorder::Global().Enable();
  } else {
    metrics::TraceRecorder::Global().Disable();
  }
  TraceControlMsg msg;
  msg.enable = enable;
  const std::string payload = EncodeTraceControl(msg);
  Status first_failure = OkStatus();
  for (const auto& shard : shards_) {
    StatusOr<Frame> reply = Rpc(*shard, MessageType::kTraceControl, payload);
    if (!reply.ok() && first_failure.ok()) first_failure = reply.status();
  }
  return first_failure;
}

StatusOr<std::string> Coordinator::DumpFleetTrace() {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics::TraceRecorder& recorder = metrics::TraceRecorder::Global();
  std::vector<metrics::ProcessTrace> processes;
  processes.reserve(shards_.size() + 1);
  metrics::ProcessTrace own;
  own.pid = static_cast<uint64_t>(getpid());
  own.name = "coordinator";
  own.clock_offset_micros = 0;  // the coordinator clock IS the timeline
  own.events = recorder.DrainEvents(&own.dropped);
  processes.push_back(std::move(own));
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardState& shard = *shards_[i];
    const uint64_t sent = recorder.NowMicros();
    StatusOr<Frame> reply = Rpc(shard, MessageType::kTraceRequest, "");
    const uint64_t received = recorder.NowMicros();
    if (!reply.ok() ||
        reply->type != static_cast<uint32_t>(MessageType::kTraceEvents)) {
      continue;  // an unreachable shard is absent from the merged trace
    }
    StatusOr<TraceEventsMsg> msg = DecodeTraceEvents(reply->payload);
    if (!msg.ok()) continue;
    if (msg->now_micros != 0) {
      // Refine the hello-handshake offset estimate with this (much more
      // recent) round trip: the worker stamped its clock roughly at our
      // midpoint.
      shard.clock_offset_micros =
          static_cast<int64_t>(msg->now_micros) -
          static_cast<int64_t>(sent + (received - sent) / 2);
    }
    metrics::ProcessTrace process;
    // Workers run on other machines in general — their real pids can
    // collide with ours or each other's. Synthesize distinct track ids.
    process.pid = static_cast<uint64_t>(getpid()) + 1 + i;
    process.name = shard.address.name;
    // Stored offset is worker − coordinator; shifting the worker's
    // timestamps onto the coordinator timeline subtracts it.
    process.clock_offset_micros = -shard.clock_offset_micros;
    process.events = std::move(msg->events);
    process.dropped = msg->dropped;
    processes.push_back(std::move(process));
  }
  return metrics::MergeAsChromeTrace(processes);
}

StatusOr<query::HealthReport> Coordinator::FleetHealthReport() {
  const metrics::TraceSpan span("coordinator.health", "dist");
  std::lock_guard<std::mutex> lock(mutex_);
  query::HealthReport report;
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardState& shard = *shards_[i];
    const std::string shard_label = std::to_string(i);
    StatusOr<Frame> reply = Rpc(shard, MessageType::kHealthRequest, "");
    if (!reply.ok() ||
        reply->type != static_cast<uint32_t>(MessageType::kHealthReport)) {
      // A dead shard must not vanish from the doctor's view: it becomes a
      // finding itself, labeled like everything else from this shard.
      report.findings.push_back(
          {query::HealthFinding::Severity::kCritical,
           "shard " + shard.address.name, "unreachable",
           reply.ok() ? "worker sent an unexpected reply type"
                      : reply.status().ToString(),
           shard_label});
      continue;
    }
    StatusOr<HealthReportMsg> msg = DecodeHealthReport(reply->payload);
    if (!msg.ok()) {
      report.findings.push_back({query::HealthFinding::Severity::kCritical,
                                 "shard " + shard.address.name, "unreachable",
                                 msg.status().ToString(), shard_label});
      continue;
    }
    for (query::HealthFinding& finding : msg->findings) {
      finding.shard = shard_label;
      report.findings.push_back(std::move(finding));
    }
  }
  return report;
}

Status Coordinator::CheckpointShards() {
  const metrics::TraceSpan span("coordinator.checkpoint", "dist");
  std::lock_guard<std::mutex> lock(mutex_);
  Status first_failure = OkStatus();
  for (const auto& shard : shards_) {
    StatusOr<Frame> reply = Rpc(*shard, MessageType::kCheckpoint, "");
    if (!reply.ok()) {
      if (first_failure.ok()) first_failure = reply.status();
      continue;
    }
    StatusOr<HelloReply> ack = DecodeHelloReply(reply->payload);
    if (ack.ok()) shard->last_acked_epoch = ack->epoch;
  }
  return first_failure;
}

Status Coordinator::ProbeHealth() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    // Single attempt on purpose: a probe measures, it does not insist.
    StatusOr<Frame> reply = CallOnce(*shard, MessageType::kPing, "");
    if (reply.ok()) {
      MarkSuccess(*shard);
    } else {
      MarkFailure(*shard, reply.status());
    }
  }
  return OkStatus();
}

std::vector<query::DistShardStatus> Coordinator::ShardStatuses() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<query::DistShardStatus> statuses;
  statuses.reserve(shards_.size());
  for (const auto& shard : shards_) {
    query::DistShardStatus status;
    status.shard = shard->address.name;
    status.health = HealthName(shard->health);
    status.incarnation = shard->incarnation;
    status.last_acked_epoch = shard->last_acked_epoch;
    status.rpc_retries = shard->rpc_retries->Value();
    status.rpc_failures = shard->rpc_failures->Value();
    statuses.push_back(std::move(status));
  }
  return statuses;
}

}  // namespace dist
}  // namespace skimjoin
