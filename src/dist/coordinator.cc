#include "dist/coordinator.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "core/skimmed_sketch.h"
#include "util/event_log.h"
#include "util/logging.h"

namespace skimjoin {
namespace dist {

namespace {

/// Builds a join-kind query's wire registration from its recorded spec.
JoinQueryReg RegFromJoinSpec(const std::string& wire_name,
                             const query::JoinQuerySpec& spec, uint64_t seed) {
  JoinQueryReg reg;
  reg.query_name = wire_name;
  reg.left_stream = spec.left_stream;
  reg.right_stream = spec.right_stream;
  reg.self_join = false;
  reg.kind = static_cast<uint32_t>(spec.estimator.kind);
  reg.space_counters = spec.estimator.space_counters;
  reg.num_tables = spec.estimator.num_tables;
  reg.agms_num_medians = spec.estimator.agms_num_medians;
  reg.threshold_scale = spec.estimator.threshold_scale;
  reg.recurse_slack = spec.estimator.recurse_slack;
  reg.skim_margin = spec.estimator.skim_margin;
  reg.skimmed_use_dyadic = spec.estimator.skimmed_use_dyadic;
  reg.seed = seed;
  return reg;
}

}  // namespace

const char* Coordinator::HealthName(Health health) {
  switch (health) {
    case Health::kHealthy:
      return "healthy";
    case Health::kRecovering:
      return "recovering";
    case Health::kDown:
      return "down";
  }
  return "unknown";
}

Coordinator::Coordinator(std::vector<ShardAddress> shards,
                         CoordinatorOptions options)
    : options_(options), jitter_rng_(options.jitter_seed) {
  SKIMJOIN_CHECK(!shards.empty()) << "coordinator needs at least one shard";
  if (options_.rpc_attempts < 1) options_.rpc_attempts = 1;
  shards_.reserve(shards.size());
  for (ShardAddress& address : shards) {
    auto shard = std::make_unique<ShardState>();
    const std::string prefix = "dist." + address.name + ".";
    shard->rpc_calls = metrics_.GetCounter(prefix + "rpc_calls");
    shard->rpc_retries = metrics_.GetCounter(prefix + "rpc_retries");
    shard->rpc_failures = metrics_.GetCounter(prefix + "rpc_failures");
    shard->delta_bytes = metrics_.GetCounter(prefix + "delta_bytes");
    shard->health_gauge = metrics_.GetGauge(prefix + "health");
    shard->epoch_gauge = metrics_.GetGauge(prefix + "acked_epoch");
    shard->address = std::move(address);
    shards_.push_back(std::move(shard));
  }
}

void Coordinator::PublishHealth(ShardState& shard) {
  shard.health_gauge->Set(static_cast<double>(static_cast<int>(shard.health)));
  shard.epoch_gauge->Set(static_cast<double>(shard.last_acked_epoch));
}

void Coordinator::MarkFailure(ShardState& shard, const Status& status) {
  shard.channel.Close();
  shard.rpc_failures->Increment();
  ++shard.consecutive_failures;
  if (shard.health != Health::kDown &&
      shard.consecutive_failures >= options_.down_after_failures) {
    shard.health = Health::kDown;
    EventLog::Global().Emit(LogLevel::kWarn, "worker_down",
                            {{"shard", shard.address.name},
                             {"error", status.ToString()}});
  }
  PublishHealth(shard);
}

void Coordinator::MarkSuccess(ShardState& shard) {
  shard.consecutive_failures = 0;
  if (shard.health == Health::kDown) shard.health = Health::kRecovering;
  PublishHealth(shard);
}

Status Coordinator::EnsureConnected(ShardState& shard) {
  if (shard.channel.valid()) return OkStatus();
  const Deadline deadline = DeadlineAfter(options_.rpc_timeout);
  SKIMJOIN_ASSIGN_OR_RETURN(shard.channel,
                            ConnectUnix(shard.address.socket_path, deadline));
  SKIMJOIN_ASSIGN_OR_RETURN(
      Frame hello,
      Call(shard.channel, MessageType::kHello, "", deadline));
  if (hello.type != static_cast<uint32_t>(MessageType::kHelloReply)) {
    return InvalidArgumentError("unexpected hello reply type " +
                                std::to_string(hello.type));
  }
  SKIMJOIN_ASSIGN_OR_RETURN(HelloReply reply, DecodeHelloReply(hello.payload));
  if (reply.incarnation != shard.incarnation) {
    // First contact, or the worker restarted from its checkpoint. Replay
    // every recorded registration (idempotent on the worker) so the shard
    // can serve queries again; its data lag shows up as epochs_behind
    // until the lost updates are re-driven.
    for (const RegistrationRecord& record : registrations_) {
      SKIMJOIN_ASSIGN_OR_RETURN(
          Frame ack, Call(shard.channel, record.type, record.payload,
                          DeadlineAfter(options_.rpc_timeout)));
      if (ack.type != static_cast<uint32_t>(MessageType::kRegistered)) {
        return InternalError("registration replay got reply type " +
                             std::to_string(ack.type));
      }
    }
    if (shard.incarnation != 0) {
      EventLog::Global().Emit(
          LogLevel::kInfo, "worker_readopted",
          {{"shard", shard.address.name},
           {"incarnation", std::to_string(reply.incarnation)},
           {"epoch", std::to_string(reply.epoch)}});
      if (shard.health == Health::kDown) shard.health = Health::kRecovering;
    }
    shard.incarnation = reply.incarnation;
  }
  PublishHealth(shard);
  return OkStatus();
}

StatusOr<Frame> Coordinator::CallOnce(ShardState& shard, MessageType type,
                                      std::string_view payload) {
  SKIMJOIN_RETURN_IF_ERROR(EnsureConnected(shard));
  shard.rpc_calls->Increment();
  return Call(shard.channel, type, payload,
              DeadlineAfter(options_.rpc_timeout));
}

StatusOr<Frame> Coordinator::Rpc(ShardState& shard, MessageType type,
                                 std::string_view payload) {
  Status last = OkStatus();
  for (int attempt = 1; attempt <= options_.rpc_attempts; ++attempt) {
    StatusOr<Frame> reply = CallOnce(shard, type, payload);
    if (reply.ok()) {
      MarkSuccess(shard);
      return reply;
    }
    last = reply.status();
    // A remote application error ("remote: ...") means the RPC itself
    // worked — the worker answered with a Status. Don't burn retries or
    // damn the shard's health for it.
    if (last.message().rfind("remote: ", 0) == 0) {
      MarkSuccess(shard);
      return last;
    }
    MarkFailure(shard, last);
    if (attempt == options_.rpc_attempts) break;
    const int64_t base_ms = options_.backoff_base.count();
    const int64_t capped = std::min<int64_t>(
        options_.backoff_cap.count(),
        base_ms << std::min(attempt - 1, 20));
    const auto backoff = std::chrono::milliseconds(static_cast<int64_t>(
        static_cast<double>(capped) * (0.5 + 0.5 * jitter_rng_.NextDouble())));
    shard.rpc_retries->Increment();
    EventLog::Global().Emit(LogLevel::kInfo, "rpc_retry",
                            {{"shard", shard.address.name},
                             {"attempt", std::to_string(attempt)},
                             {"backoff_ms", std::to_string(backoff.count())},
                             {"error", last.ToString()}});
    std::this_thread::sleep_for(backoff);
  }
  return last;
}

Status Coordinator::Broadcast(MessageType type, const std::string& payload) {
  registrations_.push_back({type, payload});
  Status first_failure = OkStatus();
  for (const auto& shard : shards_) {
    StatusOr<Frame> reply = Rpc(*shard, type, payload);
    if (!reply.ok() && first_failure.ok()) first_failure = reply.status();
  }
  // A shard that missed the broadcast gets it replayed at its next
  // handshake (the record above is what makes that possible), but the
  // caller still learns registration did not reach the whole fleet.
  return first_failure;
}

Status Coordinator::RegisterStream(const query::StreamSpec& spec) {
  SKIMJOIN_RETURN_IF_ERROR(ValidateWireName(spec.name, "stream name"));
  if (stream_domains_.count(spec.name) != 0) {
    return AlreadyExistsError("stream '" + spec.name + "' already registered");
  }
  StreamReg reg;
  reg.name = spec.name;
  reg.domain_size = spec.domain_size;
  SKIMJOIN_RETURN_IF_ERROR(
      Broadcast(MessageType::kRegisterStream, EncodeStreamReg(reg)));
  stream_domains_[spec.name] = spec.domain_size;
  return OkStatus();
}

StatusOr<query::QueryId> Coordinator::AddJoinQuery(
    const query::JoinQuerySpec& spec, uint64_t seed) {
  if (spec.left_predicate.has_value() || spec.right_predicate.has_value()) {
    return InvalidArgumentError(
        "predicated join queries are not distributable");
  }
  if (spec.left_input != query::AggregateInput::kCount ||
      spec.right_input != query::AggregateInput::kCount) {
    return InvalidArgumentError(
        "SUM-aggregate join queries are not distributable (wire "
        "registrations carry COUNT inputs only)");
  }
  const auto left = stream_domains_.find(spec.left_stream);
  const auto right = stream_domains_.find(spec.right_stream);
  if (left == stream_domains_.end() || right == stream_domains_.end()) {
    return NotFoundError("join query references an unregistered stream");
  }
  QueryInfo info;
  info.kind = QueryInfo::Kind::kJoin;
  info.join_spec = spec;
  // The merge accumulator must be built from the SAME effective spec the
  // workers use; the engine fills domain_size from the registered streams,
  // so the coordinator does the same from its recorded registrations.
  info.join_spec.estimator.domain_size =
      std::max(left->second, right->second);
  info.seed = seed;
  const query::QueryId id = next_query_id_++;
  info.wire_name = "q" + std::to_string(id);
  SKIMJOIN_RETURN_IF_ERROR(Broadcast(
      MessageType::kRegisterJoinQuery,
      EncodeJoinQueryReg(
          RegFromJoinSpec(info.wire_name, info.join_spec, seed))));
  queries_[id] = std::move(info);
  return id;
}

StatusOr<query::QueryId> Coordinator::AddSelfJoinQuery(
    const query::SelfJoinQuerySpec& spec, uint64_t seed) {
  if (spec.predicate.has_value()) {
    return InvalidArgumentError(
        "predicated self-join queries are not distributable");
  }
  if (spec.input != query::AggregateInput::kCount) {
    return InvalidArgumentError(
        "SUM-aggregate self-join queries are not distributable (wire "
        "registrations carry COUNT inputs only)");
  }
  const auto stream = stream_domains_.find(spec.stream);
  if (stream == stream_domains_.end()) {
    return NotFoundError("self-join query references an unregistered stream");
  }
  QueryInfo info;
  info.kind = QueryInfo::Kind::kSelfJoin;
  info.self_spec = spec;
  info.self_spec.estimator.domain_size = stream->second;
  info.seed = seed;
  const query::QueryId id = next_query_id_++;
  info.wire_name = "q" + std::to_string(id);
  query::JoinQuerySpec as_join;
  as_join.left_stream = spec.stream;
  as_join.right_stream = spec.stream;
  as_join.estimator = info.self_spec.estimator;
  JoinQueryReg reg = RegFromJoinSpec(info.wire_name, as_join, seed);
  reg.self_join = true;
  SKIMJOIN_RETURN_IF_ERROR(
      Broadcast(MessageType::kRegisterJoinQuery, EncodeJoinQueryReg(reg)));
  queries_[id] = std::move(info);
  return id;
}

StatusOr<query::QueryId> Coordinator::AddFrequencyQuery(
    const query::FrequencyQuerySpec& spec, uint64_t seed) {
  if (spec.predicate.has_value()) {
    return InvalidArgumentError(
        "predicated frequency queries are not distributable");
  }
  if (stream_domains_.count(spec.stream) == 0) {
    return NotFoundError("frequency query references an unregistered stream");
  }
  QueryInfo info;
  info.kind = QueryInfo::Kind::kFrequency;
  info.freq_spec = spec;
  info.seed = seed;
  const query::QueryId id = next_query_id_++;
  info.wire_name = "q" + std::to_string(id);
  FrequencyQueryReg reg;
  reg.query_name = info.wire_name;
  reg.stream = spec.stream;
  reg.space_counters = spec.space_counters;
  reg.num_tables = spec.num_tables;
  reg.use_dyadic = spec.use_dyadic;
  reg.seed = seed;
  SKIMJOIN_RETURN_IF_ERROR(Broadcast(MessageType::kRegisterFrequencyQuery,
                                     EncodeFrequencyQueryReg(reg)));
  queries_[id] = std::move(info);
  return id;
}

Status Coordinator::Update(const std::string& stream,
                           const query::StreamUpdate& update) {
  return UpdateBatch(stream,
                     std::span<const query::StreamUpdate>(&update, 1));
}

Status Coordinator::UpdateBatch(const std::string& stream,
                                std::span<const query::StreamUpdate> updates) {
  if (stream_domains_.count(stream) == 0) {
    return NotFoundError("unknown stream '" + stream + "'");
  }
  // Route each element to value % num_shards, preserving arrival order
  // within a shard. Counter merges commute, so any value-deterministic
  // routing keeps the merged synopsis bit-identical to single-engine
  // ingestion of the same batch.
  std::vector<std::vector<query::StreamUpdate>> routed(shards_.size());
  for (const query::StreamUpdate& update : updates) {
    routed[ShardIndexFor(update.value)].push_back(update);
  }
  Status first_failure = OkStatus();
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (routed[i].empty()) continue;
    UpdateBatchMsg msg;
    msg.stream = stream;
    msg.updates = std::move(routed[i]);
    StatusOr<Frame> reply =
        Rpc(*shards_[i], MessageType::kUpdateBatch, EncodeUpdateBatch(msg));
    if (!reply.ok()) {
      if (first_failure.ok()) first_failure = reply.status();
      continue;
    }
    StatusOr<HelloReply> ack = DecodeHelloReply(reply->payload);
    if (ack.ok()) {
      shards_[i]->last_acked_epoch = ack->epoch;
      PublishHealth(*shards_[i]);
    }
  }
  return first_failure;
}

StatusOr<Coordinator::QueryInfo*> Coordinator::FindQuery(
    query::QueryId query) {
  const auto it = queries_.find(query);
  if (it == queries_.end()) return NotFoundError("unknown query id");
  return &it->second;
}

std::vector<ShardContribution> Coordinator::PullDeltas(query::QueryId query) {
  const QueryInfo& info = queries_.at(query);
  ++pull_round_;
  std::vector<ShardContribution> contributions;
  contributions.reserve(shards_.size());
  for (const auto& shard : shards_) {
    StatusOr<Frame> reply =
        Rpc(*shard, MessageType::kPullDelta, info.wire_name);
    if (reply.ok() &&
        reply->type == static_cast<uint32_t>(MessageType::kDelta)) {
      StatusOr<DeltaMsg> delta = DecodeDelta(reply->payload);
      if (delta.ok() && delta->query_name == info.wire_name) {
        CachedDelta& cached = shard->deltas[query];
        cached.synopsis = std::move(delta->synopsis);
        cached.incarnation = delta->incarnation;
        cached.epoch = delta->epoch;
        cached.round = pull_round_;
        cached.valid = true;
        shard->delta_bytes->Increment(cached.synopsis.size());
        if (shard->health != Health::kHealthy) {
          shard->health = Health::kHealthy;
          shard->consecutive_failures = 0;
          EventLog::Global().Emit(
              LogLevel::kInfo, "worker_restored",
              {{"shard", shard->address.name},
               {"incarnation", std::to_string(cached.incarnation)},
               {"epoch", std::to_string(cached.epoch)}});
        }
        PublishHealth(*shard);
      }
    }
    ShardContribution contribution;
    contribution.shard = shard->address.name;
    contribution.health = HealthName(shard->health);
    const auto it = shard->deltas.find(query);
    if (it != shard->deltas.end() && it->second.valid) {
      contribution.fresh = it->second.round == pull_round_;
      contribution.epoch = it->second.epoch;
      contribution.epochs_behind =
          shard->last_acked_epoch > it->second.epoch
              ? shard->last_acked_epoch - it->second.epoch
              : 0;
    } else {
      // Never pulled anything from this shard: it contributes nothing at
      // all to the merge.
      contribution.fresh = false;
      contribution.epoch = 0;
      contribution.epochs_behind = shard->last_acked_epoch;
    }
    contributions.push_back(std::move(contribution));
  }
  return contributions;
}

StatusOr<std::unique_ptr<core::JoinEstimatorPair>> Coordinator::MergedJoinPair(
    query::QueryId query, const QueryInfo& info) {
  const core::EstimatorSpec& spec = info.kind == QueryInfo::Kind::kJoin
                                        ? info.join_spec.estimator
                                        : info.self_spec.estimator;
  SKIMJOIN_ASSIGN_OR_RETURN(std::unique_ptr<core::JoinEstimatorPair> merged,
                            core::CreateJoinEstimatorPair(spec, info.seed));
  for (const auto& shard : shards_) {
    const auto it = shard->deltas.find(query);
    if (it == shard->deltas.end() || !it->second.valid) continue;
    SKIMJOIN_ASSIGN_OR_RETURN(std::unique_ptr<core::JoinEstimatorPair> piece,
                              core::CreateJoinEstimatorPair(spec, info.seed));
    std::istringstream in(it->second.synopsis);
    SKIMJOIN_RETURN_IF_ERROR(piece->RestoreFrom(in));
    SKIMJOIN_RETURN_IF_ERROR(merged->MergeFrom(*piece));
  }
  return merged;
}

StatusOr<double> Coordinator::AnswerJoin(query::QueryId query) {
  SKIMJOIN_ASSIGN_OR_RETURN(QueryInfo * info, FindQuery(query));
  if (info->kind == QueryInfo::Kind::kFrequency) {
    return InvalidArgumentError("query is a frequency query, not a join");
  }
  PullDeltas(query);
  SKIMJOIN_ASSIGN_OR_RETURN(std::unique_ptr<core::JoinEstimatorPair> merged,
                            MergedJoinPair(query, *info));
  return merged->Estimate();
}

StatusOr<EstimateReport> Coordinator::AnswerJoinWithReport(
    query::QueryId query) {
  SKIMJOIN_ASSIGN_OR_RETURN(QueryInfo * info, FindQuery(query));
  if (info->kind == QueryInfo::Kind::kFrequency) {
    return InvalidArgumentError("query is a frequency query, not a join");
  }
  std::vector<ShardContribution> shards = PullDeltas(query);
  SKIMJOIN_ASSIGN_OR_RETURN(std::unique_ptr<core::JoinEstimatorPair> merged,
                            MergedJoinPair(query, *info));
  SKIMJOIN_ASSIGN_OR_RETURN(EstimateReport report,
                            merged->EstimateWithReport());
  report.partial = false;
  for (const ShardContribution& shard : shards) {
    if (!shard.fresh || shard.epochs_behind > 0) report.partial = true;
  }
  report.shards = std::move(shards);
  return report;
}

StatusOr<int64_t> Coordinator::AnswerPointFrequency(query::QueryId query,
                                                    uint64_t value) {
  SKIMJOIN_ASSIGN_OR_RETURN(QueryInfo * info, FindQuery(query));
  if (info->kind != QueryInfo::Kind::kFrequency) {
    return InvalidArgumentError("query is not a frequency query");
  }
  PullDeltas(query);
  std::optional<core::SkimmedSketch> merged;
  for (const auto& shard : shards_) {
    const auto it = shard->deltas.find(query);
    if (it == shard->deltas.end() || !it->second.valid) continue;
    std::istringstream in(it->second.synopsis);
    SKIMJOIN_ASSIGN_OR_RETURN(core::SkimmedSketch piece,
                              core::SkimmedSketch::DeserializeFrom(in));
    if (!merged.has_value()) {
      merged.emplace(std::move(piece));
    } else {
      if (!merged->CompatibleWith(piece)) {
        return InternalError(
            "shard deltas disagree on frequency-sketch configuration");
      }
      merged->Merge(piece);
    }
  }
  if (!merged.has_value()) {
    return FailedPreconditionError(
        "no shard delta available for this frequency query");
  }
  return merged->EstimatePointFrequency(value);
}

Status Coordinator::CheckpointShards() {
  Status first_failure = OkStatus();
  for (const auto& shard : shards_) {
    StatusOr<Frame> reply = Rpc(*shard, MessageType::kCheckpoint, "");
    if (!reply.ok()) {
      if (first_failure.ok()) first_failure = reply.status();
      continue;
    }
    StatusOr<HelloReply> ack = DecodeHelloReply(reply->payload);
    if (ack.ok()) shard->last_acked_epoch = ack->epoch;
  }
  return first_failure;
}

Status Coordinator::ProbeHealth() {
  for (const auto& shard : shards_) {
    // Single attempt on purpose: a probe measures, it does not insist.
    StatusOr<Frame> reply = CallOnce(*shard, MessageType::kPing, "");
    if (reply.ok()) {
      MarkSuccess(*shard);
    } else {
      MarkFailure(*shard, reply.status());
    }
  }
  return OkStatus();
}

std::vector<query::DistShardStatus> Coordinator::ShardStatuses() {
  std::vector<query::DistShardStatus> statuses;
  statuses.reserve(shards_.size());
  for (const auto& shard : shards_) {
    query::DistShardStatus status;
    status.shard = shard->address.name;
    status.health = HealthName(shard->health);
    status.incarnation = shard->incarnation;
    status.last_acked_epoch = shard->last_acked_epoch;
    status.rpc_retries = shard->rpc_retries->Value();
    status.rpc_failures = shard->rpc_failures->Value();
    statuses.push_back(std::move(status));
  }
  return statuses;
}

}  // namespace dist
}  // namespace skimjoin
