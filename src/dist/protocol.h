// Message vocabulary of the coordinator↔worker protocol, riding on
// dist/frame.h. Payloads are whitespace-tokenized text (the same
// self-describing style as the sketch serializers), each with a typed
// encoder and a hardened decoder: decoders validate every token, cap every
// declared count BEFORE allocating, and always return a Status — a fuzzed
// or truncated payload can never crash or over-allocate the receiver
// (tests/serialization_fuzz_test.cc sweeps every byte).
//
// Exchange shape: the coordinator opens a channel, sends kHello, and the
// worker replies kHelloReply carrying its shard name, INCARNATION (bumped
// each restart-from-checkpoint), and EPOCH (update batches applied). Every
// later request gets exactly one reply — the matching *Ack/answer type, or
// kError carrying a Status. The incarnation is the re-adoption handshake:
// when the coordinator sees a new incarnation it replays its recorded
// registrations (all idempotent on the worker) before trusting the shard
// again, and flags the shard's answers as behind until the worker's epoch
// catches back up to the last acknowledged one.

#ifndef SKIMJOIN_DIST_PROTOCOL_H_
#define SKIMJOIN_DIST_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dist/frame.h"
#include "query/engine.h"
#include "query/query.h"
#include "util/event_log.h"
#include "util/metrics.h"
#include "util/status.h"

namespace skimjoin {
namespace dist {

/// Frame types. Values are the wire contract — append, never renumber.
enum class MessageType : uint32_t {
  kHello = 1,
  kHelloReply = 2,
  kRegisterStream = 3,
  kRegisterJoinQuery = 4,
  kRegisterFrequencyQuery = 5,
  kRegistered = 6,
  kUpdateBatch = 7,
  kUpdateAck = 8,
  kPullDelta = 9,
  kDelta = 10,
  kCheckpoint = 11,
  kCheckpointAck = 12,
  kPing = 13,
  kError = 14,
  // Chain-join routing (acked by kRegistered / kUpdateAck like their
  // stream-shaped counterparts).
  kRegisterRelation = 15,
  kRegisterChainQuery = 16,
  kUpdateRelation = 17,
  // Fleet telemetry plane: the coordinator pulls each worker's metrics
  // registry snapshot, event-log tail, and trace buffer on demand.
  kMetricsRequest = 18,   // empty payload -> kMetricsSnapshot
  kMetricsSnapshot = 19,
  kEventsRequest = 20,    // EventsRequest -> kEventBatch
  kEventBatch = 21,
  kTraceControl = 22,     // TraceControlMsg -> kRegistered
  kTraceRequest = 23,     // empty payload -> kTraceEvents
  kTraceEvents = 24,
  // Fleet doctor: the coordinator pulls each worker's rule-based health
  // findings (Engine::HealthReport run worker-side; findings only).
  kHealthRequest = 25,    // empty payload -> kHealthReport
  kHealthReport = 26,
};

/// Largest element count one kUpdateBatch may declare; validated before
/// any allocation on the receive path.
constexpr uint64_t kMaxWireBatchElements = uint64_t{1} << 20;

/// kHelloReply / kUpdateAck / kCheckpointAck payload: the worker's
/// identity and progress marker.
struct HelloReply {
  std::string shard_name;
  uint64_t incarnation = 0;
  uint64_t epoch = 0;
  /// The worker's TraceRecorder::NowMicros() when the reply was encoded.
  /// Always encoded; optional on decode (0 from a pre-telemetry peer), so
  /// old and new endpoints interoperate. The coordinator subtracts it from
  /// the hello round trip's midpoint on its own recorder clock to estimate
  /// the per-shard clock offset that aligns a merged fleet trace.
  uint64_t trace_clock_micros = 0;
};

/// kRegisterStream payload.
struct StreamReg {
  std::string name;
  uint64_t domain_size = 0;
};

/// kRegisterJoinQuery payload: a join or self-join registration. Carries
/// the estimator shape verbatim so every worker builds a synopsis pair
/// bit-compatible with the coordinator's merge accumulator (same spec,
/// same seed ⇒ same hash families). Predicated queries are not routable
/// (the coordinator rejects them before anything reaches the wire).
struct JoinQueryReg {
  std::string query_name;
  std::string left_stream;
  std::string right_stream;
  bool self_join = false;
  uint32_t kind = 0;  // static_cast of core::EstimatorKind
  uint64_t space_counters = 0;
  uint64_t num_tables = 0;
  uint64_t agms_num_medians = 0;
  double threshold_scale = 0.0;
  double recurse_slack = 0.0;
  double skim_margin = 0.0;
  bool skimmed_use_dyadic = false;
  uint64_t seed = 0;
};

/// kRegisterFrequencyQuery payload.
struct FrequencyQueryReg {
  std::string query_name;
  std::string stream;
  uint64_t space_counters = 0;
  uint64_t num_tables = 0;
  bool use_dyadic = false;
  uint64_t seed = 0;
};

/// kUpdateBatch payload: a shard-routed slice of one logical batch.
struct UpdateBatchMsg {
  std::string stream;
  std::vector<query::StreamUpdate> updates;
};

/// kRegisterRelation payload: a multi-attribute relation for chain joins.
struct RelationReg {
  std::string name;
  uint64_t arity = 1;
  uint64_t domain_size = 0;
};

/// kRegisterChainQuery payload. Like JoinQueryReg, the estimator shape and
/// seed travel verbatim: both chain estimator families build their hash
/// families purely from (shape, seed), so every worker's counters land in
/// cells the coordinator's merge accumulator agrees about.
struct ChainQueryReg {
  std::string query_name;
  std::vector<std::string> relations;  // chain order
  uint32_t method = 0;  // static_cast of query::ChainJoinQuerySpec::Method
  uint64_t num_means = 0;
  uint64_t num_medians = 0;
  uint64_t num_tables = 0;
  uint64_t num_buckets = 0;
  uint64_t seed = 0;
};

/// kUpdateRelation payload: a shard-routed slice of tuples for one
/// relation. Every tuple carries exactly `arity` attribute values.
struct RelationUpdateMsg {
  struct Tuple {
    std::vector<uint64_t> attributes;
    int64_t weight = 1;
  };

  std::string relation;
  uint64_t arity = 0;
  std::vector<Tuple> tuples;
};

/// kEventsRequest payload: pull up to `max_events` of the worker's event
/// log tail, restricted to events with sequence > `after_sequence` so a
/// polling coordinator never re-ingests what it already scraped.
struct EventsRequest {
  uint64_t max_events = 0;
  uint64_t after_sequence = 0;
};

/// kEventBatch payload: the matching tail slice, oldest first. Free-text
/// fields (event names, field keys/values) travel as length-prefixed
/// blobs, so arbitrary bytes can't break the tokenized framing.
struct EventBatchMsg {
  std::vector<LogEvent> events;
};

/// kTraceControl payload: flips the worker's TraceRecorder on or off.
struct TraceControlMsg {
  bool enable = false;
};

/// kTraceEvents payload: the worker's drained trace buffer plus its
/// recorder clock at encode time (`now_micros`), which lets the receiver
/// refine the hello-handshake clock-offset estimate.
struct TraceEventsMsg {
  uint64_t dropped = 0;
  uint64_t now_micros = 0;
  std::vector<metrics::TraceEvent> events;
};

/// kHealthReport payload: the worker engine's rule-based health findings
/// (query::HealthFinding minus the shard label, which the coordinator
/// assigns on receipt). Free text — subjects, rules, messages — travels as
/// length-prefixed blobs. Profiles and probes stay worker-side; findings
/// are the fleet-doctor currency.
struct HealthReportMsg {
  std::vector<query::HealthFinding> findings;
};

/// kDelta payload: one query's full serialized synopsis, stamped with the
/// worker's incarnation and epoch. Deltas are FULL STATE, not increments —
/// the coordinator replaces its cached copy wholesale, which is what makes
/// double-merging a replayed delta structurally impossible.
struct DeltaMsg {
  std::string query_name;
  uint64_t incarnation = 0;
  uint64_t epoch = 0;
  std::string synopsis;
};

std::string EncodeHelloReply(const HelloReply& msg);
StatusOr<HelloReply> DecodeHelloReply(std::string_view payload);

std::string EncodeStreamReg(const StreamReg& msg);
StatusOr<StreamReg> DecodeStreamReg(std::string_view payload);

std::string EncodeJoinQueryReg(const JoinQueryReg& msg);
StatusOr<JoinQueryReg> DecodeJoinQueryReg(std::string_view payload);

std::string EncodeFrequencyQueryReg(const FrequencyQueryReg& msg);
StatusOr<FrequencyQueryReg> DecodeFrequencyQueryReg(std::string_view payload);

std::string EncodeUpdateBatch(const UpdateBatchMsg& msg);
StatusOr<UpdateBatchMsg> DecodeUpdateBatch(std::string_view payload);

std::string EncodeDelta(const DeltaMsg& msg);
StatusOr<DeltaMsg> DecodeDelta(std::string_view payload);

std::string EncodeRelationReg(const RelationReg& msg);
StatusOr<RelationReg> DecodeRelationReg(std::string_view payload);

std::string EncodeChainQueryReg(const ChainQueryReg& msg);
StatusOr<ChainQueryReg> DecodeChainQueryReg(std::string_view payload);

std::string EncodeRelationUpdate(const RelationUpdateMsg& msg);
StatusOr<RelationUpdateMsg> DecodeRelationUpdate(std::string_view payload);

/// kMetricsSnapshot: a whole metrics::Snapshot (help strings excluded —
/// they are registration-site documentation, re-attached by the receiver).
/// Metric names travel as length-prefixed blobs; doubles as IEEE-754 bit
/// patterns; histogram buckets sparsely as (index, count) pairs.
std::string EncodeMetricsSnapshot(const metrics::Snapshot& snapshot);
StatusOr<metrics::Snapshot> DecodeMetricsSnapshot(std::string_view payload);

std::string EncodeEventsRequest(const EventsRequest& msg);
StatusOr<EventsRequest> DecodeEventsRequest(std::string_view payload);

std::string EncodeEventBatch(const EventBatchMsg& msg);
StatusOr<EventBatchMsg> DecodeEventBatch(std::string_view payload);

std::string EncodeTraceControl(const TraceControlMsg& msg);
StatusOr<TraceControlMsg> DecodeTraceControl(std::string_view payload);

std::string EncodeTraceEvents(const TraceEventsMsg& msg);
StatusOr<TraceEventsMsg> DecodeTraceEvents(std::string_view payload);

std::string EncodeHealthReport(const HealthReportMsg& msg);
StatusOr<HealthReportMsg> DecodeHealthReport(std::string_view payload);

/// kError payload: "<code> <message...>". DecodeError NEVER yields an OK
/// status — a mangled error payload decodes to an INTERNAL status
/// describing the mangling, so a fault can't masquerade as success.
std::string EncodeError(const Status& status);
Status DecodeError(std::string_view payload);

/// One round trip: sends `type` + `payload`, receives exactly one reply
/// frame before `deadline`. A kError reply is decoded and returned as this
/// call's status; any other reply comes back as the frame. The calling
/// thread's CurrentTraceContext() (if any) is stamped into the outgoing
/// frame header, so a traced coordinator call fans its trace out to the
/// worker for free.
StatusOr<Frame> Call(FrameChannel& channel, MessageType type,
                     std::string_view payload, Deadline deadline);

/// Protocol names ("name" tokens on the wire): nonempty, at most 256
/// bytes, no whitespace. Shared by both ends so a hostile name can't break
/// the tokenized framing.
Status ValidateWireName(std::string_view name, const char* what);

}  // namespace dist
}  // namespace skimjoin

#endif  // SKIMJOIN_DIST_PROTOCOL_H_
