// Message vocabulary of the coordinator↔worker protocol, riding on
// dist/frame.h. Payloads are whitespace-tokenized text (the same
// self-describing style as the sketch serializers), each with a typed
// encoder and a hardened decoder: decoders validate every token, cap every
// declared count BEFORE allocating, and always return a Status — a fuzzed
// or truncated payload can never crash or over-allocate the receiver
// (tests/serialization_fuzz_test.cc sweeps every byte).
//
// Exchange shape: the coordinator opens a channel, sends kHello, and the
// worker replies kHelloReply carrying its shard name, INCARNATION (bumped
// each restart-from-checkpoint), and EPOCH (update batches applied). Every
// later request gets exactly one reply — the matching *Ack/answer type, or
// kError carrying a Status. The incarnation is the re-adoption handshake:
// when the coordinator sees a new incarnation it replays its recorded
// registrations (all idempotent on the worker) before trusting the shard
// again, and flags the shard's answers as behind until the worker's epoch
// catches back up to the last acknowledged one.

#ifndef SKIMJOIN_DIST_PROTOCOL_H_
#define SKIMJOIN_DIST_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dist/frame.h"
#include "query/engine.h"
#include "query/query.h"
#include "util/status.h"

namespace skimjoin {
namespace dist {

/// Frame types. Values are the wire contract — append, never renumber.
enum class MessageType : uint32_t {
  kHello = 1,
  kHelloReply = 2,
  kRegisterStream = 3,
  kRegisterJoinQuery = 4,
  kRegisterFrequencyQuery = 5,
  kRegistered = 6,
  kUpdateBatch = 7,
  kUpdateAck = 8,
  kPullDelta = 9,
  kDelta = 10,
  kCheckpoint = 11,
  kCheckpointAck = 12,
  kPing = 13,
  kError = 14,
};

/// Largest element count one kUpdateBatch may declare; validated before
/// any allocation on the receive path.
constexpr uint64_t kMaxWireBatchElements = uint64_t{1} << 20;

/// kHelloReply / kUpdateAck / kCheckpointAck payload: the worker's
/// identity and progress marker.
struct HelloReply {
  std::string shard_name;
  uint64_t incarnation = 0;
  uint64_t epoch = 0;
};

/// kRegisterStream payload.
struct StreamReg {
  std::string name;
  uint64_t domain_size = 0;
};

/// kRegisterJoinQuery payload: a join or self-join registration. Carries
/// the estimator shape verbatim so every worker builds a synopsis pair
/// bit-compatible with the coordinator's merge accumulator (same spec,
/// same seed ⇒ same hash families). Predicated queries are not routable
/// (the coordinator rejects them before anything reaches the wire).
struct JoinQueryReg {
  std::string query_name;
  std::string left_stream;
  std::string right_stream;
  bool self_join = false;
  uint32_t kind = 0;  // static_cast of core::EstimatorKind
  uint64_t space_counters = 0;
  uint64_t num_tables = 0;
  uint64_t agms_num_medians = 0;
  double threshold_scale = 0.0;
  double recurse_slack = 0.0;
  double skim_margin = 0.0;
  bool skimmed_use_dyadic = false;
  uint64_t seed = 0;
};

/// kRegisterFrequencyQuery payload.
struct FrequencyQueryReg {
  std::string query_name;
  std::string stream;
  uint64_t space_counters = 0;
  uint64_t num_tables = 0;
  bool use_dyadic = false;
  uint64_t seed = 0;
};

/// kUpdateBatch payload: a shard-routed slice of one logical batch.
struct UpdateBatchMsg {
  std::string stream;
  std::vector<query::StreamUpdate> updates;
};

/// kDelta payload: one query's full serialized synopsis, stamped with the
/// worker's incarnation and epoch. Deltas are FULL STATE, not increments —
/// the coordinator replaces its cached copy wholesale, which is what makes
/// double-merging a replayed delta structurally impossible.
struct DeltaMsg {
  std::string query_name;
  uint64_t incarnation = 0;
  uint64_t epoch = 0;
  std::string synopsis;
};

std::string EncodeHelloReply(const HelloReply& msg);
StatusOr<HelloReply> DecodeHelloReply(std::string_view payload);

std::string EncodeStreamReg(const StreamReg& msg);
StatusOr<StreamReg> DecodeStreamReg(std::string_view payload);

std::string EncodeJoinQueryReg(const JoinQueryReg& msg);
StatusOr<JoinQueryReg> DecodeJoinQueryReg(std::string_view payload);

std::string EncodeFrequencyQueryReg(const FrequencyQueryReg& msg);
StatusOr<FrequencyQueryReg> DecodeFrequencyQueryReg(std::string_view payload);

std::string EncodeUpdateBatch(const UpdateBatchMsg& msg);
StatusOr<UpdateBatchMsg> DecodeUpdateBatch(std::string_view payload);

std::string EncodeDelta(const DeltaMsg& msg);
StatusOr<DeltaMsg> DecodeDelta(std::string_view payload);

/// kError payload: "<code> <message...>". DecodeError NEVER yields an OK
/// status — a mangled error payload decodes to an INTERNAL status
/// describing the mangling, so a fault can't masquerade as success.
std::string EncodeError(const Status& status);
Status DecodeError(std::string_view payload);

/// One round trip: sends `type` + `payload`, receives exactly one reply
/// frame before `deadline`. A kError reply is decoded and returned as this
/// call's status; any other reply comes back as the frame.
StatusOr<Frame> Call(FrameChannel& channel, MessageType type,
                     std::string_view payload, Deadline deadline);

/// Protocol names ("name" tokens on the wire): nonempty, at most 256
/// bytes, no whitespace. Shared by both ends so a hostile name can't break
/// the tokenized framing.
Status ValidateWireName(std::string_view name, const char* what);

}  // namespace dist
}  // namespace skimjoin

#endif  // SKIMJOIN_DIST_PROTOCOL_H_
