// A worker shard of the distributed skimjoin runtime: one process owning a
// slice of every registered stream, wrapped around an ordinary
// query::Engine. The worker is deliberately thin — all estimation
// machinery, fast-path ingest kernels, and checkpoint durability are the
// engine's; the worker adds only the protocol surface and the restart
// story:
//
//   * Registrations (streams, join/self-join queries, frequency queries)
//     arrive over the wire and are IDEMPOTENT by name, so a coordinator
//     re-adopting a restarted worker can blindly replay them.
//   * Every kUpdateBatch bumps the worker's EPOCH (batches applied) and is
//     acknowledged with it; the coordinator uses acked epochs to measure
//     how far a restarted shard lags.
//   * With a checkpoint path configured, the worker persists engine state +
//     its own protocol bookkeeping (incarnation, epoch, query-name map) in
//     the checkpoint's metadata; on startup it restores the newest
//     checkpoint and advertises incarnation+1, which is what tells the
//     coordinator "I am the same shard, restarted, at this older epoch".
//
// Serve() is a single-threaded poll loop (the engine is single-writer by
// contract), handling any number of concurrent connections; a torn or
// corrupt frame poisons only its own connection, never the server.

#ifndef SKIMJOIN_DIST_WORKER_H_
#define SKIMJOIN_DIST_WORKER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dist/frame.h"
#include "dist/protocol.h"
#include "query/engine.h"
#include "util/status.h"

namespace skimjoin {
namespace dist {

struct WorkerOptions {
  /// Unix-domain socket to serve on (stale socket files are re-adopted).
  std::string socket_path;
  /// Shard name advertised in the hello handshake.
  std::string shard_name = "shard";
  /// Engine checkpoint file; empty disables persistence (a killed worker
  /// then restarts empty, at incarnation 1 / epoch 0).
  std::string checkpoint_path;
  /// Auto-checkpoint every N applied update batches (0 = only on explicit
  /// kCheckpoint requests).
  uint64_t checkpoint_every_batches = 0;
  /// Per-connection I/O deadline for reading a request / writing a reply.
  std::chrono::milliseconds io_timeout{2000};
};

class Worker {
 public:
  /// Binds the socket and, when a checkpoint exists at checkpoint_path,
  /// restores it (bumping the incarnation). The returned worker is ready
  /// for Serve().
  static StatusOr<std::unique_ptr<Worker>> Create(const WorkerOptions& options);

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Serves until RequestStop(). Returns only fatal server errors
  /// (per-connection failures are contained and logged).
  Status Serve();

  /// Stops Serve() at its next poll tick. Safe from any thread or signal
  /// context (one atomic store).
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }

  uint64_t incarnation() const { return incarnation_; }
  uint64_t epoch() const { return epoch_; }
  const std::string& shard_name() const { return options_.shard_name; }

  /// The wrapped engine; single-writer — touch only from the Serve thread
  /// (or before Serve starts).
  query::Engine& engine() { return engine_; }

 private:
  explicit Worker(WorkerOptions options);

  /// Restores the checkpoint if one exists; sets incarnation_/epoch_ and
  /// rebuilds the query-name map from the checkpoint metadata.
  Status RestoreIfPresent();

  /// SaveCheckpoint with the worker's protocol bookkeeping as metadata.
  Status Checkpoint();

  /// Dispatches one request frame; the returned frame is the reply (kError
  /// frames are built by the caller from a non-OK status).
  StatusOr<Frame> Handle(const Frame& request);

  StatusOr<Frame> HandleRegisterStream(const Frame& request);
  StatusOr<Frame> HandleRegisterJoinQuery(const Frame& request);
  StatusOr<Frame> HandleRegisterFrequencyQuery(const Frame& request);
  StatusOr<Frame> HandleRegisterRelation(const Frame& request);
  StatusOr<Frame> HandleRegisterChainQuery(const Frame& request);
  StatusOr<Frame> HandleUpdateBatch(const Frame& request);
  StatusOr<Frame> HandleUpdateRelation(const Frame& request);
  StatusOr<Frame> HandlePullDelta(const Frame& request);
  StatusOr<Frame> HandleMetricsRequest(const Frame& request);
  StatusOr<Frame> HandleEventsRequest(const Frame& request);
  StatusOr<Frame> HandleTraceControl(const Frame& request);
  StatusOr<Frame> HandleTraceRequest(const Frame& request);
  StatusOr<Frame> HandleHealthRequest(const Frame& request);

  Frame HelloFrame() const;

  WorkerOptions options_;
  Listener listener_;
  query::Engine engine_;
  std::atomic<bool> stop_{false};
  /// Bumped on every restore-from-checkpoint; starts at 1 for a fresh
  /// worker so "0" unambiguously means "never seen" on the coordinator.
  uint64_t incarnation_ = 1;
  /// Update batches applied since the shard's birth (restored from
  /// checkpoint metadata, so a restart resumes at the checkpointed epoch).
  uint64_t epoch_ = 0;
  uint64_t batches_since_checkpoint_ = 0;
  /// Protocol-level query names → engine ids; persisted in checkpoint
  /// metadata so pulls keep resolving after a restart.
  std::map<std::string, query::QueryId> query_ids_;
  std::vector<FrameChannel> connections_;
};

}  // namespace dist
}  // namespace skimjoin

#endif  // SKIMJOIN_DIST_WORKER_H_
